//! Message-passing synchronization protocols (§3.6).
//!
//! These use the machine's atomic active-message handlers instead of
//! shared memory. Under high contention they win on communication
//! efficiency (a fetch-and-op is exactly one request + one reply); under
//! low contention the fixed send/receive overheads make them more
//! expensive than shared-memory protocols — the same contention-
//! dependent tradeoff, resolved by the reactive algorithms in
//! `reactive-core`.
//!
//! * [`MpQueueLock`] — a lock manager node queues requesters and grants
//!   the lock by (deferred) RPC reply.
//! * [`MpCounter`] — a centralized fetch-and-op: the counter lives in a
//!   manager handler; two messages per operation.
//! * [`MpCombiningTree`] — handlers relay requests up a tree of nodes,
//!   combining requests that arrive within a short window (the paper's
//!   handlers "poll the network to detect messages to combine with"; the
//!   window models that batching).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use alewife_sim::{Cpu, HandlerCtx, Machine, Port, ReplyToken};

use crate::spin::Lock;

/// Reply value used by reactive message-passing protocols to tell a
/// requester the protocol is invalid and it must re-dispatch.
pub const MP_RETRY: u64 = u64::MAX;

static NEXT_PORT: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0x100);

fn fresh_port() -> Port {
    // order: Relaxed — unique-id allocation; nothing is published.
    Port(NEXT_PORT.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
}

// ---------------------------------------------------------------------
// Message-passing queue lock
// ---------------------------------------------------------------------

/// State shared by a lock manager's request/release handlers.
#[derive(Debug, Default)]
struct MpLockState {
    held: bool,
    waiters: VecDeque<u64>,
    /// Reactive protocols set this false to bounce requesters (§3.6).
    valid: bool,
}

/// A message-passing queue lock: a designated manager node maintains the
/// queue of waiting requesters in its private state and grants the lock
/// by replying to their RPCs.
#[derive(Clone, Debug)]
pub struct MpQueueLock {
    manager: usize,
    req: Port,
    rel: Port,
    chg: Port,
    state: Rc<RefCell<MpLockState>>,
}

impl MpQueueLock {
    /// Install a lock manager on `manager` and return the client handle.
    pub fn new(m: &Machine, manager: usize) -> MpQueueLock {
        Self::with_validity(m, manager, true)
    }

    /// Install a manager whose initial validity is `valid` (the invalid
    /// state is used as a consensus object by reactive algorithms).
    pub fn with_validity(m: &Machine, manager: usize, valid: bool) -> MpQueueLock {
        let state = Rc::new(RefCell::new(MpLockState {
            held: false,
            waiters: VecDeque::new(),
            valid,
        }));
        let req = fresh_port();
        let rel = fresh_port();
        let chg = fresh_port();
        {
            let state = state.clone();
            m.register_handler(manager, req, move |ctx, _args| {
                let mut s = state.borrow_mut();
                let tok = ctx.token();
                if !s.valid {
                    drop(s);
                    ctx.reply_to(tok, MP_RETRY);
                    return;
                }
                if s.held {
                    s.waiters.push_back(tok.0);
                } else {
                    s.held = true;
                    drop(s);
                    // Grant reply encodes (queued-behind-us + 1).
                    ctx.reply_to(tok, 1);
                }
            });
        }
        {
            let state = state.clone();
            m.register_handler(manager, rel, move |ctx, _args| {
                let mut s = state.borrow_mut();
                debug_assert!(s.held, "release of an unheld MP lock");
                match s.waiters.pop_front() {
                    Some(t) => {
                        let qlen = s.waiters.len() as u64;
                        drop(s);
                        ctx.reply_to(ReplyToken(t), qlen + 1);
                    }
                    None => s.held = false,
                }
            });
        }
        {
            // Protocol-change port (used by reactive algorithms, §3.6):
            // arg 0 = 0 invalidates the manager and bounces every queued
            // waiter with MP_RETRY; arg 0 = 1 validates it with the lock
            // marked held by the sender (the protocol changer holds the
            // overall lock).
            let state = state.clone();
            m.register_handler(manager, chg, move |ctx, args| {
                let mut s = state.borrow_mut();
                if args[0] == 0 {
                    s.valid = false;
                    s.held = false;
                    let ws = std::mem::take(&mut s.waiters);
                    drop(s);
                    for t in ws {
                        ctx.reply_to(ReplyToken(t), MP_RETRY);
                    }
                } else {
                    s.valid = true;
                    s.held = true;
                }
            });
        }
        MpQueueLock {
            manager,
            req,
            rel,
            chg,
            state,
        }
    }

    /// Ask the manager to invalidate itself, bouncing queued waiters.
    /// Only the current lock holder may do this (protocol change).
    pub async fn invalidate_via(&self, cpu: &Cpu) {
        cpu.send(self.manager, self.chg, [0, 0, 0, 0]).await;
    }

    /// Ask the manager to become valid with the lock held by the caller
    /// (the target half of a protocol change).
    pub async fn validate_held_via(&self, cpu: &Cpu) {
        cpu.send(self.manager, self.chg, [1, 0, 0, 0]).await;
    }

    /// Grant-time queue length monitoring: acquire and also report how
    /// many waiters were queued behind us at grant time. `None` when
    /// bounced (invalid manager).
    pub async fn try_acquire_with_qlen(&self, cpu: &Cpu) -> Option<u64> {
        let r = cpu.rpc(self.manager, self.req, [1, 0, 0, 0]).await;
        if r == MP_RETRY {
            None
        } else {
            Some(r - 1)
        }
    }

    /// Mark the manager invalid so requesters get [`MP_RETRY`]. Must be
    /// called from a protocol-change critical section (holding the
    /// lock), which guarantees the waiter queue is quiescent.
    pub fn invalidate(&self) {
        let mut s = self.state.borrow_mut();
        s.valid = false;
    }

    /// Mark the manager valid again (target of a protocol change).
    pub fn validate(&self) {
        self.state.borrow_mut().valid = true;
    }

    /// Force the held bit (protocol changes leave the inactive sub-lock
    /// busy so it can never be acquired, §3.3.1).
    pub fn set_held(&self, held: bool) {
        self.state.borrow_mut().held = held;
    }

    /// Acquire; returns `false` if the manager bounced us (invalid).
    pub async fn try_acquire(&self, cpu: &Cpu) -> bool {
        cpu.rpc(self.manager, self.req, [0; 4]).await != MP_RETRY
    }
}

impl Lock for MpQueueLock {
    type Token = ();

    async fn acquire(&self, cpu: &Cpu) {
        let granted = self.try_acquire(cpu).await;
        assert!(granted, "passive MpQueueLock bounced a requester");
    }

    async fn release(&self, cpu: &Cpu, _t: ()) {
        cpu.send(self.manager, self.rel, [0; 4]).await;
    }
}

// ---------------------------------------------------------------------
// Centralized message-passing fetch-and-op
// ---------------------------------------------------------------------

/// Centralized message-passing fetch-and-op: the counter lives at the
/// manager; each operation is one request and one reply (the theoretical
/// minimum, §3.6).
#[derive(Clone, Debug)]
pub struct MpCounter {
    manager: usize,
    port: Port,
    chg: Port,
    value: Rc<RefCell<u64>>,
    valid: Rc<RefCell<bool>>,
}

impl MpCounter {
    /// Install the counter handler on `manager`.
    pub fn new(m: &Machine, manager: usize) -> MpCounter {
        Self::with_validity(m, manager, true)
    }

    /// Install with explicit initial validity (for reactive selection).
    pub fn with_validity(m: &Machine, manager: usize, valid: bool) -> MpCounter {
        let value = Rc::new(RefCell::new(0u64));
        let valid_flag = Rc::new(RefCell::new(valid));
        let port = fresh_port();
        let chg = fresh_port();
        {
            let value = value.clone();
            let valid_flag = valid_flag.clone();
            m.register_handler(manager, port, move |ctx, args| {
                let tok = ctx.token();
                if !*valid_flag.borrow() {
                    ctx.reply_to(tok, MP_RETRY);
                    return;
                }
                let mut v = value.borrow_mut();
                let old = *v;
                *v = v.wrapping_add(args[0]);
                drop(v);
                ctx.reply_to(tok, old);
            });
        }
        {
            // Protocol-change port: handlers are atomic, so the change
            // serializes against every pending operation (the handler IS
            // the consensus object, §3.6). arg0 = 0: invalidate and
            // reply the final value; arg0 = 1: validate with value arg1.
            let value = value.clone();
            let valid_flag = valid_flag.clone();
            m.register_handler(manager, chg, move |ctx, args| {
                let tok = ctx.token();
                if args[0] == 0 || args[0] == 2 {
                    // arg0 = 2 is the *conditional* invalidate: the
                    // handler is the consensus object, so concurrent
                    // changers arbitrate here — a loser (counter
                    // already invalid) is bounced with MP_RETRY.
                    if args[0] == 2 && !*valid_flag.borrow() {
                        ctx.reply_to(tok, MP_RETRY);
                        return;
                    }
                    *valid_flag.borrow_mut() = false;
                    ctx.reply_to(tok, *value.borrow());
                } else {
                    *value.borrow_mut() = args[1];
                    *valid_flag.borrow_mut() = true;
                    ctx.reply_to(tok, 1);
                }
            });
        }
        MpCounter {
            manager,
            port,
            chg,
            value,
            valid: valid_flag,
        }
    }

    /// Atomically invalidate the counter via its handler, returning the
    /// final value (protocol change, first half).
    pub async fn invalidate_via(&self, cpu: &Cpu) -> u64 {
        cpu.rpc(self.manager, self.chg, [0, 0, 0, 0]).await
    }

    /// Conditionally invalidate: wins (and returns the final value)
    /// only if the counter was still valid — the handler arbitrates
    /// between concurrent protocol changers. `None` = lost the race.
    pub async fn try_invalidate_via(&self, cpu: &Cpu) -> Option<u64> {
        match cpu.rpc(self.manager, self.chg, [2, 0, 0, 0]).await {
            MP_RETRY => None,
            v => Some(v),
        }
    }

    /// Atomically validate the counter with `value` (change, 2nd half).
    pub async fn validate_via(&self, cpu: &Cpu, value: u64) {
        cpu.rpc(self.manager, self.chg, [1, value, 0, 0]).await;
    }

    /// Current value (host-side inspection / protocol-change transfer).
    pub fn value(&self) -> u64 {
        *self.value.borrow()
    }

    /// Set the value (protocol-change transfer).
    pub fn set_value(&self, v: u64) {
        *self.value.borrow_mut() = v;
    }

    /// Flip validity (protocol change).
    pub fn set_valid(&self, v: bool) {
        *self.valid.borrow_mut() = v;
    }

    /// One operation; `Err(())` means the manager bounced us (invalid).
    pub async fn try_fetch_add(&self, cpu: &Cpu, delta: u64) -> Result<u64, ()> {
        let r = cpu.rpc(self.manager, self.port, [delta, 0, 0, 0]).await;
        if r == MP_RETRY {
            Err(())
        } else {
            Ok(r)
        }
    }
}

impl crate::fetch_op::FetchOp for MpCounter {
    async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        self.try_fetch_add(cpu, delta)
            .await
            .expect("passive MpCounter bounced a requester")
    }
}

// ---------------------------------------------------------------------
// Message-passing combining tree
// ---------------------------------------------------------------------

/// A batch entry: either a waiting RPC requester or a child node's
/// forwarded batch.
#[derive(Clone, Copy, Debug)]
enum Entry {
    Rpc(u64),
    Child { idx: usize, batch: u64 },
}

#[derive(Debug, Default)]
struct MpTreeNode {
    pending_sum: u64,
    pending: Vec<(Entry, u64)>,
    flushing: bool,
    next_batch: u64,
    inflight: Vec<(u64, Vec<(Entry, u64)>)>,
}

/// Cycles a node waits for combinable partners before forwarding.
const COMBINE_WINDOW: u64 = 40;

/// Flush-marker sentinel in `args[1]`.
const FLUSH: u64 = u64::MAX;

/// A message-passing combining tree for fetch-and-add: a binary tree of
/// handler nodes mapped onto processors. Requests arriving at a node
/// within a combining window are merged and forwarded as one; the root
/// handler owns the counter and results fan back down.
#[derive(Clone, Debug)]
pub struct MpCombiningTree {
    /// `(node, request-port, result-port)` per heap index; index 0 unused.
    places: Rc<Vec<(usize, Port, Port)>>,
    leaves: usize,
    counter: Rc<RefCell<u64>>,
    valid: Rc<RefCell<bool>>,
    chg: Port,
}

impl MpCombiningTree {
    /// Build a tree with one leaf per processor (rounded up to a power
    /// of two); the counter lives at the root handler on `root_node`.
    pub fn new(m: &Machine, root_node: usize, procs: usize) -> MpCombiningTree {
        Self::with_validity(m, root_node, procs, true)
    }

    /// Build with explicit initial validity (for reactive selection).
    pub fn with_validity(
        m: &Machine,
        root_node: usize,
        procs: usize,
        valid: bool,
    ) -> MpCombiningTree {
        let leaves = procs.next_power_of_two().max(2);
        let mut places = vec![(0usize, Port(0), Port(0)); 2 * leaves];
        for (idx, p) in places.iter_mut().enumerate().skip(1) {
            let node = if idx == 1 { root_node } else { idx % m.nodes() };
            *p = (node, fresh_port(), fresh_port());
        }
        let places = Rc::new(places);
        let counter = Rc::new(RefCell::new(0u64));
        let valid_flag = Rc::new(RefCell::new(valid));
        let chg = fresh_port();
        {
            // Root protocol-change handler: atomic with respect to root
            // combining (handlers on a node serialize). arg0 = 0:
            // invalidate + reply final value; arg0 = 1: validate with
            // value arg1.
            let counter = counter.clone();
            let valid_flag = valid_flag.clone();
            m.register_handler(root_node, chg, move |ctx, args| {
                let tok = ctx.token();
                if args[0] == 0 || args[0] == 2 {
                    // arg0 = 2: conditional invalidate (see MpCounter);
                    // concurrent changers arbitrate at this handler.
                    if args[0] == 2 && !*valid_flag.borrow() {
                        ctx.reply_to(tok, MP_RETRY);
                        return;
                    }
                    *valid_flag.borrow_mut() = false;
                    ctx.reply_to(tok, *counter.borrow());
                } else {
                    *counter.borrow_mut() = args[1];
                    *valid_flag.borrow_mut() = true;
                    ctx.reply_to(tok, 1);
                }
            });
        }
        let root_place = places[1].0;

        for idx in 1..2 * leaves {
            let state = Rc::new(RefCell::new(MpTreeNode::default()));
            let (node, req, res) = places[idx];

            // Request handler: accumulate entries; on flush, apply at the
            // root or forward the combined batch to the parent.
            {
                let state = state.clone();
                let places = places.clone();
                let counter = counter.clone();
                let valid_flag = valid_flag.clone();
                m.register_handler(node, req, move |ctx, args| {
                    let mut s = state.borrow_mut();
                    if args[1] == FLUSH {
                        s.flushing = false;
                        if s.pending.is_empty() {
                            return;
                        }
                        let sum = s.pending_sum;
                        let entries = std::mem::take(&mut s.pending);
                        s.pending_sum = 0;
                        if idx == 1 {
                            // Root: apply the combined op and distribute.
                            let base = if *valid_flag.borrow() {
                                let mut c = counter.borrow_mut();
                                let old = *c;
                                *c = c.wrapping_add(sum);
                                old
                            } else {
                                MP_RETRY
                            };
                            drop(s);
                            for (e, off) in entries {
                                route_result(ctx, &places, e, base, off);
                            }
                        } else {
                            let id = s.next_batch;
                            s.next_batch += 1;
                            s.inflight.push((id, entries));
                            drop(s);
                            let parent = places[idx / 2];
                            ctx.send(parent.0, parent.1, [sum, 0, id, idx as u64]);
                        }
                        return;
                    }
                    // A new entry joins the pending batch.
                    let entry = if ctx.token().0 != 0 {
                        Entry::Rpc(ctx.token().0)
                    } else {
                        Entry::Child {
                            idx: args[3] as usize,
                            batch: args[2],
                        }
                    };
                    let offset = s.pending_sum;
                    s.pending_sum = s.pending_sum.wrapping_add(args[0]);
                    s.pending.push((entry, offset));
                    let first = !s.flushing;
                    if first {
                        s.flushing = true;
                    }
                    drop(s);
                    if first {
                        let window = if idx == 1 {
                            COMBINE_WINDOW / 2
                        } else {
                            COMBINE_WINDOW
                        };
                        ctx.send_self_delayed(req, [0, FLUSH, 0, 0], window);
                    }
                });
            }

            // Result handler: `[base, batch_id]` for a forwarded batch.
            {
                let state = state.clone();
                let places = places.clone();
                m.register_handler(node, res, move |ctx, args| {
                    let (base, id) = (args[0], args[1]);
                    let batch = {
                        let mut s = state.borrow_mut();
                        let pos = s
                            .inflight
                            .iter()
                            .position(|(b, _)| *b == id)
                            .expect("MP tree: result for unknown batch");
                        s.inflight.remove(pos).1
                    };
                    for (e, off) in batch {
                        route_result(ctx, &places, e, base, off);
                    }
                });
            }
        }

        let tree = MpCombiningTree {
            places,
            leaves,
            counter,
            valid: valid_flag,
            chg,
        };
        let _ = root_place;
        tree
    }

    /// Atomically invalidate the tree root via its handler, returning
    /// the final counter value (protocol change, first half). Combined
    /// batches already queued bounce with [`MP_RETRY`].
    pub async fn invalidate_via(&self, cpu: &Cpu) -> u64 {
        cpu.rpc(self.places[1].0, self.chg, [0, 0, 0, 0]).await
    }

    /// Conditionally invalidate the root: wins (and returns the final
    /// value) only if the tree was still valid; `None` = a concurrent
    /// protocol changer got there first (the root handler arbitrates).
    pub async fn try_invalidate_via(&self, cpu: &Cpu) -> Option<u64> {
        match cpu.rpc(self.places[1].0, self.chg, [2, 0, 0, 0]).await {
            MP_RETRY => None,
            v => Some(v),
        }
    }

    /// Atomically validate the root with `value` (change, second half).
    pub async fn validate_via(&self, cpu: &Cpu, value: u64) {
        cpu.rpc(self.places[1].0, self.chg, [1, value, 0, 0]).await;
    }

    fn leaf_of(&self, proc_id: usize) -> usize {
        self.leaves + (proc_id % self.leaves)
    }

    /// Current counter value (inspection / protocol-change transfer).
    pub fn value(&self) -> u64 {
        *self.counter.borrow()
    }

    /// Set the counter (protocol-change transfer).
    pub fn set_value(&self, v: u64) {
        *self.counter.borrow_mut() = v;
    }

    /// Flip validity (protocol change): an invalid root answers every
    /// combined batch with [`MP_RETRY`], which fans back down to all
    /// combined requesters — the message-passing analogue of aborting at
    /// an invalid consensus object.
    pub fn set_valid(&self, v: bool) {
        *self.valid.borrow_mut() = v;
    }

    /// One operation; `Err(())` means the root bounced the batch.
    pub async fn try_fetch_add(&self, cpu: &Cpu, delta: u64) -> Result<u64, ()> {
        let (node, req, _res) = self.places[self.leaf_of(cpu.node())];
        let r = cpu.rpc(node, req, [delta, 0, 0, 0]).await;
        if r == MP_RETRY {
            Err(())
        } else {
            Ok(r)
        }
    }
}

impl crate::fetch_op::FetchOp for MpCombiningTree {
    async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        self.try_fetch_add(cpu, delta)
            .await
            .expect("passive MpCombiningTree bounced a requester")
    }
}

fn route_result(
    ctx: &mut HandlerCtx<'_>,
    places: &[(usize, Port, Port)],
    entry: Entry,
    base: u64,
    offset: u64,
) {
    let value = if base == MP_RETRY {
        MP_RETRY
    } else {
        base.wrapping_add(offset)
    };
    match entry {
        Entry::Rpc(tok) => ctx.reply_to(ReplyToken(tok), value),
        Entry::Child { idx, batch } => {
            let (node, _req, res) = places[idx];
            ctx.send(node, res, [value, batch, 0, 0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch_op::FetchOp;
    use alewife_sim::Config;

    #[test]
    fn mp_queue_lock_mutual_exclusion() {
        let m = Machine::new(Config::default().nodes(8));
        let lock = MpQueueLock::new(&m, 0);
        let shared = m.alloc_on(1, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, ()).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 160);
    }

    #[test]
    fn mp_queue_lock_grants_fifo() {
        let m = Machine::new(Config::default().nodes(4));
        let lock = MpQueueLock::new(&m, 0);
        let order = m.alloc_on(1, 4);
        let slot = m.alloc_on(2, 1);
        for p in 0..4 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                cpu.work(300 * p as u64).await;
                lock.acquire(&cpu).await;
                cpu.work(2_000).await;
                let s = cpu.fetch_and_add(slot, 1).await;
                cpu.write(order.plus(s), p as u64).await;
                lock.release(&cpu, ()).await;
            });
        }
        m.run();
        let got: Vec<u64> = (0..4).map(|i| m.read_word(order.plus(i))).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mp_counter_linearizes() {
        let m = Machine::new(Config::default().nodes(8));
        let c = MpCounter::new(&m, 3);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for p in 0..8 {
            let cpu = m.cpu(p);
            let c = c.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..25 {
                    let v = c.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..200u64).collect::<Vec<_>>());
        assert_eq!(c.value(), 200);
    }

    #[test]
    fn mp_combining_tree_linearizes() {
        let m = Machine::new(Config::default().nodes(16));
        let t = MpCombiningTree::new(&m, 0, 16);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for p in 0..16 {
            let cpu = m.cpu(p);
            let t = t.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..10 {
                    let v = t.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..160u64).collect::<Vec<_>>());
        assert_eq!(t.value(), 160);
    }

    #[test]
    fn mp_retry_bounces_requesters() {
        let m = Machine::new(Config::default().nodes(2));
        let c = MpCounter::with_validity(&m, 0, false);
        let out = m.alloc_on(1, 1);
        let cpu = m.cpu(1);
        let cc = c.clone();
        m.spawn(1, async move {
            let r = cc.try_fetch_add(&cpu, 1).await;
            cpu.write(out, if r.is_err() { 7 } else { 0 }).await;
        });
        m.run();
        assert_eq!(m.read_word(out), 7);
        assert_eq!(c.value(), 0);
    }
}
