//! Barrier synchronization with a pluggable waiting strategy (§4.6).
//!
//! * [`SenseBarrier`] — a centralized sense-reversing barrier: arrivals
//!   increment one counter; the last arriver resets it and flips the
//!   global sense. Minimal fixed cost, but every arrival contends on
//!   the same line.
//! * [`ArrivalTree`] / [`TreeBarrier`] — a software combining arrival
//!   tree: arrivals count up at fanout-bounded tree nodes, so at most
//!   `fanout` processors ever share an arrival line; the root winner
//!   releases everyone. Higher fixed cost (one level per `log_f P`),
//!   flat scaling — the barrier-shaped instance of the paper's
//!   cheap-vs-scalable protocol tradeoff, which
//!   `reactive_core::barrier::ReactiveBarrier` switches between at run
//!   time.
//!
//! How the non-last arrivers *wait* for the sense flip is delegated to
//! a [`WaitStrategy`] — spin, block, or (from `reactive-core`)
//! two-phase waiting, which is exactly the experiment of Figure 4.13.

use alewife_sim::{Addr, Cpu, Machine, WaitQueueId};

use crate::waiting::WaitStrategy;

/// A centralized sense-reversing barrier for a fixed set of
/// participants. Per-participant local sense is kept by the caller via
/// [`BarrierCtx`].
#[derive(Clone, Copy, Debug)]
pub struct SenseBarrier {
    count: Addr,
    sense: Addr,
    participants: u64,
    q: WaitQueueId,
}

/// Per-participant barrier context (the thread-local sense).
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierCtx {
    local_sense: u64,
}

impl BarrierCtx {
    /// The participant's current sense (for barrier implementations
    /// outside this crate, e.g. the reactive barrier).
    pub fn local_sense(&self) -> u64 {
        self.local_sense
    }

    /// Set the participant's sense.
    pub fn set_local_sense(&mut self, s: u64) {
        self.local_sense = s;
    }
}

impl SenseBarrier {
    /// Create a barrier for `participants` threads; the counter and
    /// sense words are homed on `home`.
    pub fn new(m: &Machine, home: usize, participants: u64) -> SenseBarrier {
        assert!(participants > 0, "barrier needs at least one participant");
        // Counter and sense on separate lines: the counter is write-hot,
        // the sense is read-polled by every waiter.
        let count = m.alloc_on(home, 1);
        let sense = m.alloc_on(home, 1);
        SenseBarrier {
            count,
            sense,
            participants,
            q: m.new_wait_queue(),
        }
    }

    /// Enter the barrier; returns when all participants have arrived.
    /// `wait` decides the waiting mechanism; the measured waiting time
    /// (cycles between arrival and release) is recorded in the machine's
    /// `"barrier"` histogram for the waiting-time profiles of Fig 4.8.
    pub async fn wait<W: WaitStrategy>(&self, cpu: &Cpu, ctx: &mut BarrierCtx, wait: &W) {
        let new_sense = 1 - ctx.local_sense;
        ctx.local_sense = new_sense;
        let arrived = cpu.fetch_and_add(self.count, 1).await;
        let t0 = cpu.now();
        if arrived == self.participants - 1 {
            // Last arriver: reset and release everyone.
            cpu.write(self.count, 0).await;
            cpu.write(self.sense, new_sense).await;
            cpu.signal_all(self.q).await;
            cpu.record_wait("barrier", 0);
        } else {
            wait.wait_word(cpu, self.sense, self.q, move |v| v == new_sense)
                .await;
            let t = cpu.now() - t0;
            cpu.record_wait("barrier", t);
        }
    }
}

/// One completed arrival through an [`ArrivalTree`].
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Whether this arrival completed the root — i.e. this process is
    /// the round's last arriver and must release the others.
    pub winner: bool,
    /// Cycles spent on the leaf-level counter update — the tree's
    /// contention signal (at most `fanout` processors share that line).
    pub leaf_latency: u64,
}

/// A software combining **arrival tree**: the scalable half of a tree
/// barrier, separated from release so reactive barriers can interpose
/// between "everyone arrived" and "release everyone".
///
/// Processors are leaves in groups of `fanout`; each tree node is a
/// counter; the last arriver at a node resets it and climbs. The winner
/// of the single top node has observed every participant's arrival.
#[derive(Clone, Debug)]
pub struct ArrivalTree {
    /// Per-level node counters with their expected arrival counts.
    /// `levels[l]` is the list of `(counter, expected)` for level `l`.
    levels: std::rc::Rc<Vec<Vec<(Addr, u64)>>>,
    fanout: usize,
}

impl ArrivalTree {
    /// Build an arrival tree for participants `0..participants` with
    /// the given fanout (arrivals sharing one counter line).
    pub fn new(m: &Machine, participants: usize, fanout: usize) -> ArrivalTree {
        assert!(participants > 0, "arrival tree needs a participant");
        assert!(fanout >= 2, "arrival tree fanout must be at least 2");
        let mut levels = Vec::new();
        let mut width = participants;
        while width > 1 {
            let nodes = width.div_ceil(fanout);
            let level: Vec<(Addr, u64)> = (0..nodes)
                .map(|j| {
                    // Spread counter lines across the machine.
                    let addr = m.alloc_on(j % m.nodes(), 1);
                    let expected = (width - j * fanout).min(fanout) as u64;
                    (addr, expected)
                })
                .collect();
            levels.push(level);
            width = nodes;
        }
        ArrivalTree {
            levels: std::rc::Rc::new(levels),
            fanout,
        }
    }

    /// Arrive as participant `who`; returns whether this arrival won
    /// the root (observed every participant) plus the leaf-level
    /// counter latency for contention monitoring.
    pub async fn arrive(&self, cpu: &Cpu, who: usize) -> Arrival {
        let mut idx = who;
        let mut leaf_latency = 0;
        for (l, level) in self.levels.iter().enumerate() {
            let (addr, expected) = level[idx / self.fanout];
            let t0 = cpu.now();
            let pos = cpu.fetch_and_add(addr, 1).await;
            if l == 0 {
                leaf_latency = cpu.now() - t0;
            }
            if pos + 1 < expected {
                return Arrival {
                    winner: false,
                    leaf_latency,
                };
            }
            // Last arriver at this node: reset it for the next round
            // and climb as the node's representative.
            cpu.write(addr, 0).await;
            idx /= self.fanout;
        }
        Arrival {
            winner: true,
            leaf_latency,
        }
    }

    /// Reset every node counter to zero (used when a reactive barrier
    /// re-validates the tree protocol).
    pub async fn reset(&self, cpu: &Cpu) {
        for level in self.levels.iter() {
            for &(addr, _) in level {
                cpu.write(addr, 0).await;
            }
        }
    }
}

/// A combining-tree barrier: [`ArrivalTree`] arrivals, sense-reversing
/// release. The static "scalable" counterpart of [`SenseBarrier`].
#[derive(Clone, Debug)]
pub struct TreeBarrier {
    tree: ArrivalTree,
    sense: Addr,
    q: WaitQueueId,
}

impl TreeBarrier {
    /// Create a tree barrier for participants `0..participants` (who
    /// must call [`TreeBarrier::wait`] with their node as the
    /// participant id); the sense word is homed on `home`.
    pub fn new(m: &Machine, home: usize, participants: usize, fanout: usize) -> TreeBarrier {
        TreeBarrier {
            tree: ArrivalTree::new(m, participants, fanout),
            sense: m.alloc_on(home, 1),
            q: m.new_wait_queue(),
        }
    }

    /// Enter the barrier; returns when all participants have arrived.
    pub async fn wait<W: WaitStrategy>(&self, cpu: &Cpu, ctx: &mut BarrierCtx, wait: &W) {
        let new_sense = 1 - ctx.local_sense;
        ctx.local_sense = new_sense;
        let t0 = cpu.now();
        if self.tree.arrive(cpu, cpu.node()).await.winner {
            cpu.write(self.sense, new_sense).await;
            cpu.signal_all(self.q).await;
            cpu.record_wait("barrier", 0);
        } else {
            wait.wait_word(cpu, self.sense, self.q, move |v| v == new_sense)
                .await;
            cpu.record_wait("barrier", cpu.now() - t0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waiting::{AlwaysBlock, AlwaysSpin};
    use alewife_sim::{Config, Machine};

    fn run_barrier<W: WaitStrategy>(w: W, procs: usize, rounds: u64) {
        let m = Machine::new(Config::default().nodes(procs));
        let bar = SenseBarrier::new(&m, 0, procs as u64);
        // Each round, every proc adds its round number to a per-round
        // accumulator. If the barrier leaks anyone early, a round sees a
        // partial sum.
        let acc = m.alloc_on(0, rounds);
        let check = m.alloc_on(if procs > 1 { 1 } else { 0 }, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let w = w.clone();
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                for r in 0..rounds {
                    cpu.work(cpu.rand_below(500)).await;
                    cpu.fetch_and_add(acc.plus(r), 1).await;
                    bar.wait(&cpu, &mut ctx, &w).await;
                    // After the barrier, the accumulator must be complete.
                    let v = cpu.read(acc.plus(r)).await;
                    if v != cpu.nodes() as u64 {
                        cpu.fetch_and_add(check, 1).await; // count violations
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "barrier deadlock");
        assert_eq!(m.read_word(check), 0, "barrier released someone early");
        for r in 0..rounds {
            assert_eq!(m.read_word(acc.plus(r)), procs as u64);
        }
    }

    #[test]
    fn barrier_spin_4_procs() {
        run_barrier(AlwaysSpin, 4, 5);
    }

    #[test]
    fn barrier_block_4_procs() {
        run_barrier(AlwaysBlock, 4, 5);
    }

    #[test]
    fn barrier_spin_16_procs() {
        run_barrier(AlwaysSpin, 16, 3);
    }

    #[test]
    fn barrier_block_16_procs() {
        run_barrier(AlwaysBlock, 16, 3);
    }

    #[test]
    fn barrier_single_participant() {
        run_barrier(AlwaysSpin, 1, 10);
    }

    fn run_tree_barrier<W: WaitStrategy>(w: W, procs: usize, fanout: usize, rounds: u64) {
        let m = Machine::new(Config::default().nodes(procs));
        let bar = TreeBarrier::new(&m, 0, procs, fanout);
        let acc = m.alloc_on(0, rounds);
        let check = m.alloc_on(if procs > 1 { 1 } else { 0 }, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let w = w.clone();
            let bar = bar.clone();
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                for r in 0..rounds {
                    cpu.work(cpu.rand_below(500)).await;
                    cpu.fetch_and_add(acc.plus(r), 1).await;
                    bar.wait(&cpu, &mut ctx, &w).await;
                    let v = cpu.read(acc.plus(r)).await;
                    if v != cpu.nodes() as u64 {
                        cpu.fetch_and_add(check, 1).await;
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "tree barrier deadlock");
        assert_eq!(m.read_word(check), 0, "tree barrier released someone early");
        for r in 0..rounds {
            assert_eq!(m.read_word(acc.plus(r)), procs as u64);
        }
    }

    #[test]
    fn tree_barrier_small() {
        run_tree_barrier(AlwaysSpin, 4, 4, 5);
    }

    #[test]
    fn tree_barrier_multi_level() {
        // 16 participants at fanout 4: two levels.
        run_tree_barrier(AlwaysSpin, 16, 4, 3);
    }

    #[test]
    fn tree_barrier_ragged() {
        // Non-power-of-fanout participant count exercises the partial
        // last group at every level.
        run_tree_barrier(AlwaysSpin, 13, 4, 3);
    }

    #[test]
    fn tree_barrier_blocking_waiters() {
        run_tree_barrier(AlwaysBlock, 8, 2, 3);
    }

    #[test]
    fn tree_barrier_single_participant() {
        run_tree_barrier(AlwaysSpin, 1, 2, 5);
    }

    #[test]
    fn arrival_tree_reports_exactly_one_winner_per_round() {
        let m = Machine::new(Config::default().nodes(8));
        let tree = ArrivalTree::new(&m, 8, 2);
        let winners = m.alloc_on(0, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let tree = tree.clone();
            m.spawn(p, async move {
                cpu.work(cpu.rand_below(300)).await;
                if tree.arrive(&cpu, p).await.winner {
                    cpu.fetch_and_add(winners, 1).await;
                }
            });
        }
        m.run();
        assert_eq!(m.read_word(winners), 1, "exactly one root winner");
    }

    #[test]
    fn barrier_records_waiting_times() {
        let m = Machine::new(Config::default().nodes(4));
        let bar = SenseBarrier::new(&m, 0, 4);
        for p in 0..4 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                // Unbalanced arrival: proc 3 arrives much later.
                cpu.work(1 + 3_000 * (p == 3) as u64).await;
                bar.wait(&cpu, &mut ctx, &AlwaysSpin).await;
            });
        }
        m.run();
        let st = m.stats();
        let h = st.waits.get("barrier").expect("barrier histogram");
        assert_eq!(h.count, 4);
        assert!(h.max >= 2_000, "early arrivers should wait ~3000 cycles");
    }
}
