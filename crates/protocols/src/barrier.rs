//! Barrier synchronization with a pluggable waiting strategy (§4.6).
//!
//! A centralized sense-reversing barrier: arrivals increment a counter;
//! the last arriver resets the counter and flips the global sense. How
//! the non-last arrivers *wait* for the sense flip is delegated to a
//! [`WaitStrategy`] — spin, block, or (from `reactive-core`) two-phase
//! waiting, which is exactly the experiment of Figure 4.13.

use alewife_sim::{Addr, Cpu, Machine, WaitQueueId};

use crate::waiting::WaitStrategy;

/// A centralized sense-reversing barrier for a fixed set of
/// participants. Per-participant local sense is kept by the caller via
/// [`BarrierCtx`].
#[derive(Clone, Copy, Debug)]
pub struct SenseBarrier {
    count: Addr,
    sense: Addr,
    participants: u64,
    q: WaitQueueId,
}

/// Per-participant barrier context (the thread-local sense).
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierCtx {
    local_sense: u64,
}

impl SenseBarrier {
    /// Create a barrier for `participants` threads; the counter and
    /// sense words are homed on `home`.
    pub fn new(m: &Machine, home: usize, participants: u64) -> SenseBarrier {
        assert!(participants > 0, "barrier needs at least one participant");
        // Counter and sense on separate lines: the counter is write-hot,
        // the sense is read-polled by every waiter.
        let count = m.alloc_on(home, 1);
        let sense = m.alloc_on(home, 1);
        SenseBarrier {
            count,
            sense,
            participants,
            q: m.new_wait_queue(),
        }
    }

    /// Enter the barrier; returns when all participants have arrived.
    /// `wait` decides the waiting mechanism; the measured waiting time
    /// (cycles between arrival and release) is recorded in the machine's
    /// `"barrier"` histogram for the waiting-time profiles of Fig 4.8.
    pub async fn wait<W: WaitStrategy>(&self, cpu: &Cpu, ctx: &mut BarrierCtx, wait: &W) {
        let new_sense = 1 - ctx.local_sense;
        ctx.local_sense = new_sense;
        let arrived = cpu.fetch_and_add(self.count, 1).await;
        let t0 = cpu.now();
        if arrived == self.participants - 1 {
            // Last arriver: reset and release everyone.
            cpu.write(self.count, 0).await;
            cpu.write(self.sense, new_sense).await;
            cpu.signal_all(self.q).await;
            cpu.record_wait("barrier", 0);
        } else {
            wait.wait_word(cpu, self.sense, self.q, move |v| v == new_sense)
                .await;
            let t = cpu.now() - t0;
            cpu.record_wait("barrier", t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waiting::{AlwaysBlock, AlwaysSpin};
    use alewife_sim::{Config, Machine};

    fn run_barrier<W: WaitStrategy>(w: W, procs: usize, rounds: u64) {
        let m = Machine::new(Config::default().nodes(procs));
        let bar = SenseBarrier::new(&m, 0, procs as u64);
        // Each round, every proc adds its round number to a per-round
        // accumulator. If the barrier leaks anyone early, a round sees a
        // partial sum.
        let acc = m.alloc_on(0, rounds);
        let check = m.alloc_on(if procs > 1 { 1 } else { 0 }, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let w = w.clone();
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                for r in 0..rounds {
                    cpu.work(cpu.rand_below(500)).await;
                    cpu.fetch_and_add(acc.plus(r), 1).await;
                    bar.wait(&cpu, &mut ctx, &w).await;
                    // After the barrier, the accumulator must be complete.
                    let v = cpu.read(acc.plus(r)).await;
                    if v != cpu.nodes() as u64 {
                        cpu.fetch_and_add(check, 1).await; // count violations
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "barrier deadlock");
        assert_eq!(m.read_word(check), 0, "barrier released someone early");
        for r in 0..rounds {
            assert_eq!(m.read_word(acc.plus(r)), procs as u64);
        }
    }

    #[test]
    fn barrier_spin_4_procs() {
        run_barrier(AlwaysSpin, 4, 5);
    }

    #[test]
    fn barrier_block_4_procs() {
        run_barrier(AlwaysBlock, 4, 5);
    }

    #[test]
    fn barrier_spin_16_procs() {
        run_barrier(AlwaysSpin, 16, 3);
    }

    #[test]
    fn barrier_block_16_procs() {
        run_barrier(AlwaysBlock, 16, 3);
    }

    #[test]
    fn barrier_single_participant() {
        run_barrier(AlwaysSpin, 1, 10);
    }

    #[test]
    fn barrier_records_waiting_times() {
        let m = Machine::new(Config::default().nodes(4));
        let bar = SenseBarrier::new(&m, 0, 4);
        for p in 0..4 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                // Unbalanced arrival: proc 3 arrives much later.
                cpu.work(1 + 3_000 * (p == 3) as u64).await;
                bar.wait(&cpu, &mut ctx, &AlwaysSpin).await;
            });
        }
        m.run();
        let st = m.stats();
        let h = st.waits.get("barrier").expect("barrier histogram");
        assert_eq!(h.count, 4);
        assert!(h.max >= 2_000, "early arrivers should wait ~3000 cycles");
    }
}
