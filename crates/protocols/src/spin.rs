//! Passive spin-lock protocols (§3.1.1).
//!
//! Three protocols with the contention-dependent tradeoff of Figure 1.1:
//!
//! * [`TestAndSetLock`] — polls with `test&set` (every poll is a
//!   write-intent coherence transaction) plus randomized exponential
//!   backoff.
//! * [`TtsLock`] — test-and-test-and-set: waits by *read*-polling a
//!   cached copy, so no traffic while the lock is held, but a release
//!   triggers an invalidate-and-refetch storm that serializes at the home
//!   directory (the reason it does not scale, §3.1.3).
//! * [`McsLock`] — the Mellor-Crummey & Scott queue lock in the
//!   `fetch&store`-only variant (Alewife had no `compare&swap`), with the
//!   usurper race handling of Figure 3.28. Each waiter spins on a flag in
//!   its own queue node, so a release invalidates exactly one cache.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};

use crate::waiting::spin_wait_until;

/// Lock word value: free.
pub const FREE: u64 = 0;
/// Lock word value: held.
pub const BUSY: u64 = 1;

/// Queue-node status: waiting for a predecessor's signal.
pub const WAITING: u64 = 0;
/// Queue-node status: lock granted.
pub const GO: u64 = 1;
/// Queue-node status: the queue protocol was invalidated — retry with
/// the other protocol (used by the reactive lock, §3.7.3).
pub const INVALID_STATUS: u64 = 2;

/// Tail-pointer encoding: empty queue.
pub const NIL: u64 = 0;
/// Tail-pointer encoding: the queue lock is invalid (reactive lock).
pub const INVALID_PTR: u64 = 1;

/// Encode a queue-node address into a tail/next pointer word.
pub fn enc(a: Addr) -> u64 {
    a.0 + 2
}

/// Decode a tail/next pointer word into a queue-node address.
///
/// # Panics
/// Panics if the word is `NIL` or `INVALID_PTR`.
pub fn dec(v: u64) -> Addr {
    assert!(v >= 2, "dec: not a queue-node pointer: {v}");
    Addr(v - 2)
}

/// A mutual-exclusion lock protocol on the simulated machine.
///
/// `Token` carries per-acquisition state (e.g. the MCS queue node) from
/// [`Lock::acquire`] to [`Lock::release`].
pub trait Lock: Clone + 'static {
    /// Per-acquisition state passed from acquire to release.
    type Token;

    /// Acquire the lock, waiting as the protocol prescribes.
    fn acquire(&self, cpu: &Cpu) -> impl std::future::Future<Output = Self::Token>;

    /// Release the lock.
    fn release(&self, cpu: &Cpu, t: Self::Token) -> impl std::future::Future<Output = ()>;
}

/// Randomized exponential backoff state (Anderson, §3.1.1).
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    delay: u64,
    max: u64,
}

impl Backoff {
    /// Start with `initial` mean delay, capped at `max`.
    pub fn new(initial: u64, max: u64) -> Backoff {
        Backoff {
            delay: initial.max(1),
            max: max.max(1),
        }
    }

    /// Wait a random interval and double the mean (up to the cap).
    pub async fn pause(&mut self, cpu: &Cpu) {
        let d = cpu.rand_below(self.delay) + 1;
        cpu.work(d).await;
        self.delay = (self.delay * 2).min(self.max);
    }
}

/// Default initial mean backoff delay in cycles.
pub const INITIAL_DELAY: u64 = 16;

/// Default backoff cap for `max_procs` potential contenders; the paper
/// sizes the cap "to accommodate the maximum possible number of
/// contending processors".
pub fn backoff_cap(max_procs: usize) -> u64 {
    64 * (max_procs as u64).max(1)
}

// ---------------------------------------------------------------------
// test&set lock
// ---------------------------------------------------------------------

/// Test-and-set spin lock with randomized exponential backoff.
#[derive(Clone, Debug)]
pub struct TestAndSetLock {
    flag: Addr,
    max_delay: u64,
}

impl TestAndSetLock {
    /// Create a lock homed on `home`, with backoff sized for `max_procs`.
    pub fn new(m: &Machine, home: usize, max_procs: usize) -> TestAndSetLock {
        TestAndSetLock {
            flag: m.alloc_on(home, 1),
            max_delay: backoff_cap(max_procs),
        }
    }

    /// The lock word (the protocol's consensus object).
    pub fn flag(&self) -> Addr {
        self.flag
    }
}

impl Lock for TestAndSetLock {
    type Token = ();

    async fn acquire(&self, cpu: &Cpu) {
        let mut b = Backoff::new(INITIAL_DELAY, self.max_delay);
        loop {
            if cpu.test_and_set(self.flag).await == FREE {
                return;
            }
            b.pause(cpu).await;
        }
    }

    async fn release(&self, cpu: &Cpu, _t: ()) {
        cpu.write(self.flag, FREE).await;
    }
}

// ---------------------------------------------------------------------
// test-and-test-and-set lock
// ---------------------------------------------------------------------

/// Test-and-test-and-set spin lock with randomized exponential backoff:
/// waits by read-polling the (cached) lock word, attempting `test&set`
/// only when it observes the lock free.
#[derive(Clone, Debug)]
pub struct TtsLock {
    flag: Addr,
    max_delay: u64,
}

impl TtsLock {
    /// Create a lock homed on `home`, with backoff sized for `max_procs`.
    pub fn new(m: &Machine, home: usize, max_procs: usize) -> TtsLock {
        TtsLock {
            flag: m.alloc_on(home, 1),
            max_delay: backoff_cap(max_procs),
        }
    }

    /// Build a TTS lock over an existing lock word (used by the reactive
    /// lock, whose sub-locks share a line).
    pub fn over(flag: Addr, max_procs: usize) -> TtsLock {
        TtsLock {
            flag,
            max_delay: backoff_cap(max_procs),
        }
    }

    /// The lock word (the protocol's consensus object).
    pub fn flag(&self) -> Addr {
        self.flag
    }

    /// One acquisition attempt loop, also counting failed `test&set`s;
    /// returns the number of failures (the reactive lock's contention
    /// estimate, §3.3.1).
    pub async fn acquire_counting(&self, cpu: &Cpu) -> u64 {
        let mut b = Backoff::new(INITIAL_DELAY, self.max_delay);
        let mut failures = 0;
        loop {
            // Read-poll the cached copy until the lock looks free.
            spin_wait_until(cpu, self.flag, |v| v == FREE).await;
            if cpu.test_and_set(self.flag).await == FREE {
                return failures;
            }
            failures += 1;
            b.pause(cpu).await;
        }
    }
}

impl Lock for TtsLock {
    type Token = ();

    async fn acquire(&self, cpu: &Cpu) {
        self.acquire_counting(cpu).await;
    }

    async fn release(&self, cpu: &Cpu, _t: ()) {
        cpu.write(self.flag, FREE).await;
    }
}

// ---------------------------------------------------------------------
// MCS queue lock
// ---------------------------------------------------------------------

/// The MCS list-based queue lock (Figure 3.1), `fetch&store`-only
/// variant. Queue nodes are pooled per requesting node so waiters spin
/// on flags homed at their own processor.
#[derive(Clone)]
pub struct McsLock {
    tail: Addr,
    pool: Rc<RefCell<Vec<Vec<Addr>>>>,
}

impl std::fmt::Debug for McsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McsLock").field("tail", &self.tail).finish()
    }
}

/// Queue-node field offsets: `next` pointer then `status` flag.
const QN_NEXT: u64 = 0;
const QN_STATUS: u64 = 1;

impl McsLock {
    /// Create a queue lock whose tail pointer is homed on `home`.
    pub fn new(m: &Machine, home: usize) -> McsLock {
        McsLock {
            tail: m.alloc_on(home, 1),
            pool: Rc::new(RefCell::new(vec![Vec::new(); m.nodes()])),
        }
    }

    /// The tail pointer word (the protocol's consensus object).
    pub fn tail(&self) -> Addr {
        self.tail
    }

    /// Take a queue node homed at `cpu`'s node from the pool (allocating
    /// one if none is free).
    pub fn take_qnode(&self, cpu: &Cpu) -> Addr {
        let mut pool = self.pool.borrow_mut();
        match pool[cpu.node()].pop() {
            Some(a) => a,
            None => cpu.alloc_on(cpu.node(), 2),
        }
    }

    /// Return a queue node to the pool after release.
    pub fn put_qnode(&self, cpu: &Cpu, q: Addr) {
        self.pool.borrow_mut()[cpu.node()].push(q);
    }

    /// The core enqueue step: returns `(qnode, predecessor_word)`.
    pub async fn enqueue(&self, cpu: &Cpu) -> (Addr, u64) {
        let q = self.take_qnode(cpu);
        cpu.write(q.plus(QN_NEXT), NIL).await;
        let pred = cpu.fetch_and_store(self.tail, enc(q)).await;
        (q, pred)
    }

    /// Wait on `q`'s status flag until signalled; returns the status.
    pub async fn wait_status(&self, cpu: &Cpu, q: Addr) -> u64 {
        spin_wait_until(cpu, q.plus(QN_STATUS), |v| v != WAITING).await
    }

    /// Release given the holder's queue node, handling the usurper race
    /// of the `fetch&store`-only variant (Figure 3.28). Returns the
    /// queue node to the pool.
    pub async fn release_qnode(&self, cpu: &Cpu, q: Addr) {
        let next = cpu.read(q.plus(QN_NEXT)).await;
        if next == NIL {
            // No known successor: try to empty the queue.
            let old_tail = cpu.fetch_and_store(self.tail, NIL).await;
            if old_tail == enc(q) {
                self.put_qnode(cpu, q);
                return; // really had no successor
            }
            // Someone was enqueueing: restore the tail and find them.
            let usurper = cpu.fetch_and_store(self.tail, old_tail).await;
            let next = spin_wait_until(cpu, q.plus(QN_NEXT), |v| v != NIL).await;
            if usurper != NIL {
                // A process enqueued while the queue looked empty; splice
                // our successor chain behind it.
                cpu.write(dec(usurper).plus(QN_NEXT), next).await;
            } else {
                cpu.write(dec(next).plus(QN_STATUS), GO).await;
            }
        } else {
            cpu.write(dec(next).plus(QN_STATUS), GO).await;
        }
        self.put_qnode(cpu, q);
    }
}

impl Lock for McsLock {
    type Token = Addr;

    async fn acquire(&self, cpu: &Cpu) -> Addr {
        let (q, pred) = self.enqueue(cpu).await;
        if pred != NIL {
            cpu.write(q.plus(QN_STATUS), WAITING).await;
            cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
            self.wait_status(cpu, q).await;
        }
        q
    }

    async fn release(&self, cpu: &Cpu, q: Addr) {
        self.release_qnode(cpu, q).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::Config;
    use std::cell::Cell;

    /// Run `procs` processors doing `iters` lock/unlock pairs around a
    /// non-atomic read-modify-write; returns (final counter, elapsed).
    fn hammer<L: Lock>(mk: impl Fn(&Machine) -> L, procs: usize, iters: u64) -> (u64, u64) {
        let m = Machine::new(Config::default().nodes(procs.max(2)));
        let lock = mk(&m);
        let shared = m.alloc_on(0, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let t = lock.acquire(&cpu).await;
                    // Non-atomic increment: only safe under mutual
                    // exclusion, so lost updates expose broken locks.
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        let t = m.run();
        assert_eq!(m.live_tasks(), 0, "deadlock: tasks still blocked");
        (m.read_word(shared), t)
    }

    #[test]
    fn test_and_set_mutual_exclusion() {
        let (v, _) = hammer(|m| TestAndSetLock::new(m, 0, 8), 8, 25);
        assert_eq!(v, 200);
    }

    #[test]
    fn tts_mutual_exclusion() {
        let (v, _) = hammer(|m| TtsLock::new(m, 0, 8), 8, 25);
        assert_eq!(v, 200);
    }

    #[test]
    fn mcs_mutual_exclusion() {
        let (v, _) = hammer(|m| McsLock::new(m, 0), 8, 25);
        assert_eq!(v, 200);
    }

    #[test]
    fn mcs_single_proc_repeated() {
        let (v, _) = hammer(|m| McsLock::new(m, 0), 1, 100);
        assert_eq!(v, 100);
    }

    #[test]
    fn mcs_two_procs_exercises_usurper_race() {
        // Two contenders maximize the empty-queue race window (§3.5.3).
        let (v, _) = hammer(|m| McsLock::new(m, 0), 2, 200);
        assert_eq!(v, 400);
    }

    #[test]
    fn mcs_is_fifo_under_load() {
        // With heavy contention, grants should follow enqueue order.
        let m = Machine::new(Config::default().nodes(8));
        let lock = McsLock::new(&m, 0);
        let order = m.alloc_on(1, 8);
        let next_slot = m.alloc_on(2, 1);
        let started = Rc::new(Cell::new(0u32));
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            let started = started.clone();
            m.spawn(p, async move {
                // Stagger arrivals deterministically by node id.
                cpu.work(500 * p as u64).await;
                started.set(started.get() + 1);
                let t = lock.acquire(&cpu).await;
                cpu.work(2_000).await; // long critical section
                let slot = cpu.fetch_and_add(next_slot, 1).await;
                cpu.write(order.plus(slot), p as u64).await;
                lock.release(&cpu, t).await;
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let grants: Vec<u64> = (0..8).map(|i| m.read_word(order.plus(i))).collect();
        // Arrivals are 500 cycles apart; critical sections are 2000, so
        // all later arrivals queue while 0 holds the lock. FIFO order.
        assert_eq!(grants, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn tts_cheaper_than_mcs_uncontended() {
        let (_, t_tts) = hammer(|m| TtsLock::new(m, 0, 1), 1, 200);
        let (_, t_mcs) = hammer(|m| McsLock::new(m, 0), 1, 200);
        assert!(
            t_tts < t_mcs,
            "TTS ({t_tts}) should beat MCS ({t_mcs}) without contention"
        );
    }

    #[test]
    fn mcs_beats_test_and_set_under_contention() {
        let (_, t_ts) = hammer(|m| TestAndSetLock::new(m, 0, 16), 16, 20);
        let (_, t_mcs) = hammer(|m| McsLock::new(m, 0), 16, 20);
        assert!(
            t_mcs < t_ts,
            "MCS ({t_mcs}) should beat test&set ({t_ts}) at 16 procs"
        );
    }

    #[test]
    fn pointer_encoding_round_trips() {
        for a in [0u64, 1, 5, 1000] {
            assert_eq!(dec(enc(Addr(a))), Addr(a));
        }
        assert_ne!(enc(Addr(0)), NIL);
        assert_ne!(enc(Addr(0)), INVALID_PTR);
    }
}
