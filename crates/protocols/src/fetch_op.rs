//! Passive fetch-and-op protocols (§3.1.2).
//!
//! * [`LockFetchOp`] — a centralized variable protected by any
//!   [`crate::spin::Lock`]; minimal latency, fully serialized.
//! * [`CombiningTree`] — a software combining tree after Goodman, Vernon
//!   & Woest (Appendix C): processes climb a binary tree from their leaf;
//!   the first arriver at a node *marks* it and continues, a second
//!   arriver deposits its (already combined) contribution at the marked
//!   node and waits there; the winner collects deposits on a second
//!   upward pass, applies the combined operation at the root, and
//!   distributes results downward. Low throughput per op when idle
//!   (three tree traversals), but combining parallelizes the operation
//!   under contention — overhead *drops* as contention rises (Fig 3.2).
//!
//! Both implement [`FetchOp`]; the reactive fetch-and-op in
//! `reactive-core` selects among them at run time.

use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};

use crate::spin::{Backoff, Lock};
use crate::waiting::spin_wait_until;

/// A fetch-and-add protocol on the simulated machine. (Fetch-and-add is
/// the paper's representative combinable fetch-and-op.)
pub trait FetchOp: Clone + 'static {
    /// Atomically add `delta` and return the previous value.
    fn fetch_add(&self, cpu: &Cpu, delta: u64) -> impl std::future::Future<Output = u64>;
}

// ---------------------------------------------------------------------
// Lock-based fetch-and-op
// ---------------------------------------------------------------------

/// A fetch-and-op variable protected by a mutual-exclusion lock.
#[derive(Clone, Debug)]
pub struct LockFetchOp<L> {
    lock: L,
    var: Addr,
}

impl<L: Lock> LockFetchOp<L> {
    /// Protect a fresh variable (homed on `home`) with `lock`.
    pub fn new(m: &Machine, home: usize, lock: L) -> Self {
        LockFetchOp {
            lock,
            var: m.alloc_on(home, 1),
        }
    }

    /// The protected variable.
    pub fn var(&self) -> Addr {
        self.var
    }
}

impl<L: Lock> FetchOp for LockFetchOp<L> {
    async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        let t = self.lock.acquire(cpu).await;
        let old = cpu.read(self.var).await;
        cpu.write(self.var, old.wrapping_add(delta)).await;
        self.lock.release(cpu, t).await;
        old
    }
}

// ---------------------------------------------------------------------
// Software combining tree
// ---------------------------------------------------------------------

/// Tree-node status: open for marking.
const FREE: u64 = 0;
/// Tree-node status: marked by a climber; a second may deposit here.
const COMBINE: u64 = 1;
/// Tree-node status: a second's contribution is deposited.
const LOADED: u64 = 2;

/// Node field offsets within one allocation.
const F_LOCK: u64 = 0;
const F_STATUS: u64 = 1;
const F_SECOND: u64 = 2;
const F_RESULT: u64 = 3;

/// Instruction overhead charged per tree-node visit (the protocol runs a
/// few dozen instructions per node; the simulator only charges memory
/// operations, so this models the difference).
const NODE_VISIT_WORK: u64 = 24;

/// Result value reserved to tell combined waiters to retry (used by the
/// reactive fetch-and-op when the tree protocol is invalidated). Counter
/// values must stay below this sentinel.
pub const RETRY_SENTINEL: u64 = u64::MAX;

/// The Goodman/Vernon/Woest software combining tree for fetch-and-add.
///
/// The tree is a complete binary heap over `leaves` leaves (one per
/// processor, radix 2 as in the paper's experiments); node lines are
/// distributed across the machine. The counter itself lives at
/// [`CombiningTree::var`]; the *root node* of the tree is the protocol's
/// consensus object (every operation passes through it exactly once,
/// either directly or via a combined representative).
#[derive(Clone)]
pub struct CombiningTree {
    /// Heap-indexed node base addresses; index 0 unused.
    nodes: Rc<Vec<Addr>>,
    var: Addr,
    leaves: usize,
}

impl std::fmt::Debug for CombiningTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombiningTree")
            .field("leaves", &self.leaves)
            .field("var", &self.var)
            .finish()
    }
}

impl CombiningTree {
    /// Build a tree with one leaf per participating processor (`procs`,
    /// rounded up to a power of two, minimum 2). The counter is homed on
    /// `home`.
    pub fn new(m: &Machine, home: usize, procs: usize) -> CombiningTree {
        let leaves = procs.next_power_of_two().max(2);
        let mut nodes = vec![Addr(0); 2 * leaves];
        for (idx, slot) in nodes.iter_mut().enumerate().skip(1) {
            // Spread node lines across the machine for parallelism.
            *slot = m.alloc_on(idx % m.nodes(), 4);
        }
        CombiningTree {
            nodes: Rc::new(nodes),
            var: m.alloc_on(home, 1),
            leaves,
        }
    }

    /// The fetch-and-op variable at the root.
    pub fn var(&self) -> Addr {
        self.var
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    fn node(&self, idx: usize) -> Addr {
        self.nodes[idx]
    }

    fn leaf_of(&self, proc_id: usize) -> usize {
        self.leaves + (proc_id % self.leaves)
    }

    async fn lock_node(&self, cpu: &Cpu, idx: usize) {
        let a = self.node(idx).plus(F_LOCK);
        let mut b = Backoff::new(4, 256);
        loop {
            if cpu.test_and_set(a).await == 0 {
                return;
            }
            b.pause(cpu).await;
        }
    }

    async fn unlock_node(&self, cpu: &Cpu, idx: usize) {
        cpu.write(self.node(idx).plus(F_LOCK), 0).await;
    }

    /// Close-and-collect pass over nodes we marked (bottom -> top): pick
    /// up deposited seconds, recording the distribution offset for each;
    /// close (free) nodes with no deposit.
    async fn collect(
        &self,
        cpu: &Cpu,
        owned: &mut Vec<usize>,
        owed: &mut Vec<(usize, u64)>,
        total: &mut u64,
    ) {
        for &idx in owned.iter() {
            cpu.work(NODE_VISIT_WORK).await;
            self.lock_node(cpu, idx).await;
            let s = cpu.read(self.node(idx).plus(F_STATUS)).await;
            if s == LOADED {
                let second = cpu.read(self.node(idx).plus(F_SECOND)).await;
                owed.push((idx, *total));
                *total = total.wrapping_add(second);
                // Leave LOADED: the depositor is waiting here and third
                // arrivers must keep out until it resets the node.
            } else {
                debug_assert_eq!(s, COMBINE, "collect on unmarked node");
                cpu.write(self.node(idx).plus(F_STATUS), FREE).await;
            }
            self.unlock_node(cpu, idx).await;
        }
        owned.clear();
    }

    /// Distribute results to the waiters whose contributions we carried:
    /// the waiter recorded at `(node, offset)` receives `base + offset`
    /// (or [`RETRY_SENTINEL`], which propagates unchanged).
    pub async fn distribute(&self, cpu: &Cpu, owed: &[(usize, u64)], base: u64) {
        // Top -> bottom so deeper subtrees start their own distribution
        // as early as possible.
        for &(idx, offset) in owed.iter().rev() {
            let val = if base == RETRY_SENTINEL {
                RETRY_SENTINEL
            } else {
                base.wrapping_add(offset)
            };
            cpu.write_fill(self.node(idx).plus(F_RESULT), val).await;
        }
    }

    /// Run the combining protocol up to the root. Returns
    /// `Ok((total, owed))` if this process won the root (the caller must
    /// apply the operation and then call [`CombiningTree::distribute`]),
    /// or `Err(base)` if the operation was combined into another process
    /// and `base` is this process's result (or [`RETRY_SENTINEL`]).
    ///
    /// Exposed so the reactive fetch-and-op can interpose its consensus
    /// check at the root.
    pub async fn climb(&self, cpu: &Cpu, delta: u64) -> Result<(u64, Vec<(usize, u64)>), u64> {
        let mut total = delta;
        let mut owned: Vec<usize> = Vec::new();
        let mut owed: Vec<(usize, u64)> = Vec::new();
        let mut idx = self.leaf_of(cpu.node());
        loop {
            cpu.work(NODE_VISIT_WORK).await;
            self.lock_node(cpu, idx).await;
            let s = cpu.read(self.node(idx).plus(F_STATUS)).await;
            match s {
                FREE => {
                    cpu.write(self.node(idx).plus(F_STATUS), COMBINE).await;
                    self.unlock_node(cpu, idx).await;
                    owned.push(idx);
                    if idx == 1 {
                        // Reached the top as owner: winner.
                        self.collect(cpu, &mut owned, &mut owed, &mut total).await;
                        return Ok((total, owed));
                    }
                    idx /= 2;
                }
                COMBINE => {
                    // Merge point: finalize our subtree, then deposit.
                    self.unlock_node(cpu, idx).await;
                    self.collect(cpu, &mut owned, &mut owed, &mut total).await;
                    self.lock_node(cpu, idx).await;
                    let s2 = cpu.read(self.node(idx).plus(F_STATUS)).await;
                    match s2 {
                        COMBINE => {
                            cpu.write(self.node(idx).plus(F_SECOND), total).await;
                            cpu.write(self.node(idx).plus(F_STATUS), LOADED).await;
                            self.unlock_node(cpu, idx).await;
                            // Wait at this node for our result.
                            let r = self.node(idx).plus(F_RESULT);
                            let base = cpu.poll_until_full(r).await;
                            // Reset the node for the next generation.
                            cpu.reset_empty(r).await;
                            cpu.write(self.node(idx).plus(F_STATUS), FREE).await;
                            self.distribute(cpu, &owed, base).await;
                            return Err(base);
                        }
                        FREE => {
                            // The owner closed it before we deposited:
                            // mark it ourselves and keep climbing.
                            cpu.write(self.node(idx).plus(F_STATUS), COMBINE).await;
                            self.unlock_node(cpu, idx).await;
                            owned.push(idx);
                            if idx == 1 {
                                self.collect(cpu, &mut owned, &mut owed, &mut total).await;
                                return Ok((total, owed));
                            }
                            idx /= 2;
                        }
                        _ => {
                            // LOADED: another second beat us; wait for
                            // the node to free and retry it.
                            self.unlock_node(cpu, idx).await;
                            spin_wait_until(cpu, self.node(idx).plus(F_STATUS), |v| v != LOADED)
                                .await;
                        }
                    }
                }
                _ => {
                    // LOADED: generation in progress; wait and retry.
                    self.unlock_node(cpu, idx).await;
                    spin_wait_until(cpu, self.node(idx).plus(F_STATUS), |v| v != LOADED).await;
                }
            }
        }
    }
}

impl FetchOp for CombiningTree {
    async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        match self.climb(cpu, delta).await {
            Ok((total, owed)) => {
                let base = cpu.fetch_and_add(self.var, total).await;
                self.distribute(cpu, &owed, base).await;
                base
            }
            Err(base) => {
                debug_assert_ne!(base, RETRY_SENTINEL, "passive tree never invalidates");
                base
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spin::{McsLock, TtsLock};
    use alewife_sim::{Config, Machine};
    use std::cell::RefCell;

    /// Each of `procs` processors performs `iters` fetch_add(1) calls and
    /// records every return value; verifies the returns form exactly the
    /// set {0, .., procs*iters-1} (a correct fetch-and-add
    /// linearization) and returns the elapsed time.
    fn hammer<F: FetchOp>(mk: impl Fn(&Machine) -> F, procs: usize, iters: u64) -> u64 {
        let m = Machine::new(Config::default().nodes(procs.max(2)));
        let f = mk(&m);
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for p in 0..procs {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(200)).await;
                }
            });
        }
        let t = m.run();
        assert_eq!(m.live_tasks(), 0, "deadlock in fetch-op test");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        let want: Vec<u64> = (0..procs as u64 * iters).collect();
        assert_eq!(got, want, "fetch-and-add returns not a permutation");
        t
    }

    #[test]
    fn lock_based_tts_correct() {
        hammer(|m| LockFetchOp::new(m, 0, TtsLock::new(m, 0, 8)), 8, 20);
    }

    #[test]
    fn lock_based_mcs_correct() {
        hammer(|m| LockFetchOp::new(m, 0, McsLock::new(m, 0)), 8, 20);
    }

    #[test]
    fn combining_tree_single_proc() {
        hammer(|m| CombiningTree::new(m, 0, 1), 1, 50);
    }

    #[test]
    fn combining_tree_two_procs() {
        hammer(|m| CombiningTree::new(m, 0, 2), 2, 50);
    }

    #[test]
    fn combining_tree_many_procs() {
        hammer(|m| CombiningTree::new(m, 0, 16), 16, 25);
    }

    #[test]
    fn combining_tree_odd_proc_count() {
        hammer(|m| CombiningTree::new(m, 0, 7), 7, 20);
    }

    #[test]
    fn combining_actually_combines_under_contention() {
        // With simultaneous arrivals, the root should see fewer
        // operations than the number of requests.
        let m = Machine::new(Config::default().nodes(16));
        let tree = CombiningTree::new(&m, 0, 16);
        let root_ops = Rc::new(RefCell::new(0u64));
        for p in 0..16 {
            let cpu = m.cpu(p);
            let tree = tree.clone();
            let root_ops = root_ops.clone();
            m.spawn(p, async move {
                for _ in 0..10 {
                    if let Ok((total, owed)) = tree.climb(&cpu, 1).await {
                        *root_ops.borrow_mut() += 1;
                        let base = cpu.fetch_and_add(tree.var(), total).await;
                        tree.distribute(&cpu, &owed, base).await;
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(tree.var()), 160);
        let roots = *root_ops.borrow();
        assert!(
            roots < 160,
            "no combining happened: {roots} root operations for 160 requests"
        );
    }

    #[test]
    fn tree_beats_lock_at_high_contention_and_loses_alone() {
        let t_tree_1 = hammer(|m| CombiningTree::new(m, 0, 2), 1, 40);
        let t_lock_1 = hammer(|m| LockFetchOp::new(m, 0, TtsLock::new(m, 0, 2)), 1, 40);
        assert!(
            t_lock_1 < t_tree_1,
            "lock-based ({t_lock_1}) should beat tree ({t_tree_1}) uncontended"
        );

        let t_tree_32 = hammer(|m| CombiningTree::new(m, 0, 32), 32, 12);
        let t_lock_32 = hammer(|m| LockFetchOp::new(m, 0, TtsLock::new(m, 0, 32)), 32, 12);
        assert!(
            t_tree_32 < t_lock_32,
            "tree ({t_tree_32}) should beat TTS-lock-based ({t_lock_32}) at 32 procs"
        );
    }
}
