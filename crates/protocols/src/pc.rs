//! Producer-consumer synchronization with full/empty bits (§4.6.1):
//! J-structures and futures, the constructs behind the waiting-time
//! profiles of Figures 4.6-4.7 and the benchmarks of Figure 4.12.

use alewife_sim::{Addr, Cpu, Machine, WaitQueueId};

use crate::waiting::WaitStrategy;

/// A J-structure: an array of write-once slots tagged with full/empty
/// bits. Readers of an empty slot wait until a producer fills it; slots
/// can be reset for reuse. Multiple readers may consume one write
/// (unlike I-structure `take`, which is also provided).
#[derive(Clone, Debug)]
pub struct JStructure {
    slots: Vec<Addr>,
    queues: Vec<WaitQueueId>,
}

impl JStructure {
    /// Allocate `n` slots, striped across the machine's nodes for
    /// locality (slot `i` homed on node `i % nodes`).
    pub fn new(m: &Machine, n: usize) -> JStructure {
        let nodes = m.nodes();
        JStructure {
            slots: (0..n).map(|i| m.alloc_on(i % nodes, 1)).collect(),
            queues: (0..n).map(|_| m.new_wait_queue()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the structure has zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Address of slot `i` (for custom polling).
    pub fn slot(&self, i: usize) -> Addr {
        self.slots[i]
    }

    /// Read slot `i`, waiting (per `wait`) until it is full. Records the
    /// waiting time in the `"jstruct"` histogram (Figure 4.6).
    pub async fn read<W: WaitStrategy>(&self, cpu: &Cpu, wait: &W, i: usize) -> u64 {
        let t0 = cpu.now();
        let v = wait.wait_full(cpu, self.slots[i], self.queues[i]).await;
        cpu.record_wait("jstruct", cpu.now() - t0);
        v
    }

    /// Write slot `i` and mark it full, waking any blocked readers.
    ///
    /// # Panics
    /// Panics (in debug) if the slot was already full: J-structure slots
    /// are write-once between resets.
    pub async fn write(&self, cpu: &Cpu, i: usize, v: u64) {
        let was_full = cpu.write_fill(self.slots[i], v).await;
        debug_assert!(!was_full, "J-structure slot {i} written twice");
        cpu.signal_all(self.queues[i]).await;
    }

    /// Reset slot `i` to empty (reuse across phases).
    pub async fn reset(&self, cpu: &Cpu, i: usize) {
        cpu.reset_empty(self.slots[i]).await;
    }
}

/// A future cell: a single write-once value produced by one thread and
/// touched (possibly repeatedly) by others — the synchronization beneath
/// Mul-T futures (§2.2.3). A consumer that touches an undetermined
/// future waits.
#[derive(Clone, Copy, Debug)]
pub struct FutureCell {
    slot: Addr,
    queue: WaitQueueId,
}

impl FutureCell {
    /// Allocate a future cell homed on `home`.
    pub fn new(m: &Machine, home: usize) -> FutureCell {
        FutureCell {
            slot: m.alloc_on(home, 1),
            queue: m.new_wait_queue(),
        }
    }

    /// Allocate a future cell from inside a running task (dynamic
    /// future creation, e.g. a future-spawning runtime).
    pub fn new_on_cpu(cpu: &Cpu, home: usize) -> FutureCell {
        FutureCell {
            slot: cpu.alloc_on(home, 1),
            queue: cpu.new_wait_queue(),
        }
    }

    /// The underlying slot address.
    pub fn slot(&self) -> Addr {
        self.slot
    }

    /// Resolve the future with `v`, waking touchers.
    pub async fn determine(&self, cpu: &Cpu, v: u64) {
        let was_full = cpu.write_fill(self.slot, v).await;
        debug_assert!(!was_full, "future determined twice");
        cpu.signal_all(self.queue).await;
    }

    /// Touch the future: wait (per `wait`) until determined, then return
    /// its value. Records waiting time in the `"future"` histogram
    /// (Figure 4.7).
    pub async fn touch<W: WaitStrategy>(&self, cpu: &Cpu, wait: &W) -> u64 {
        let t0 = cpu.now();
        let v = wait.wait_full(cpu, self.slot, self.queue).await;
        cpu.record_wait("future", cpu.now() - t0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waiting::{AlwaysBlock, AlwaysSpin};
    use alewife_sim::{Config, Machine};

    fn pipeline<W: WaitStrategy>(w: W, n: usize) {
        // Producer fills slots in order with i*i; consumers read them.
        let m = Machine::new(Config::default().nodes(4));
        let js = JStructure::new(&m, n);
        let sum_out = m.alloc_on(0, 1);
        {
            let cpu = m.cpu(0);
            let js = js.clone();
            m.spawn(0, async move {
                for i in 0..js.len() {
                    cpu.work(cpu.rand_below(300)).await;
                    js.write(&cpu, i, (i * i) as u64).await;
                }
            });
        }
        for p in 1..4 {
            let cpu = m.cpu(p);
            let js = js.clone();
            let w = w.clone();
            m.spawn(p, async move {
                let mut sum = 0;
                for i in 0..js.len() {
                    sum += js.read(&cpu, &w, i).await;
                }
                cpu.fetch_and_add(sum_out, sum).await;
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "producer-consumer deadlock");
        let expect: u64 = (0..n as u64).map(|i| i * i).sum();
        assert_eq!(m.read_word(sum_out), 3 * expect);
    }

    #[test]
    fn jstructure_spin_readers() {
        pipeline(AlwaysSpin, 16);
    }

    #[test]
    fn jstructure_block_readers() {
        pipeline(AlwaysBlock, 16);
    }

    #[test]
    fn jstructure_reset_reuse() {
        let m = Machine::new(Config::default().nodes(2));
        let js = JStructure::new(&m, 1);
        let out = m.alloc_on(0, 2);
        let c0 = m.cpu(0);
        let js2 = js.clone();
        m.spawn(0, async move {
            let a = js2.read(&c0, &AlwaysSpin, 0).await;
            c0.write(out, a).await;
            // Wait for the reset+rewrite, then read phase 2.
            c0.work(3_000).await;
            let b = js2.read(&c0, &AlwaysSpin, 0).await;
            c0.write(out.plus(1), b).await;
        });
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            js.write(&c1, 0, 5).await;
            c1.work(1_000).await;
            js.reset(&c1, 0).await;
            c1.work(1_000).await;
            js.write(&c1, 0, 9).await;
        });
        m.run();
        assert_eq!(m.read_word(out), 5);
        assert_eq!(m.read_word(out.plus(1)), 9);
    }

    #[test]
    fn future_touch_before_and_after_determine() {
        let m = Machine::new(Config::default().nodes(3));
        let f = FutureCell::new(&m, 0);
        let out = m.alloc_on(1, 2);
        // Toucher 1 arrives before determination, toucher 2 after.
        let c1 = m.cpu(1);
        let f1 = f;
        m.spawn(1, async move {
            let v = f1.touch(&c1, &AlwaysBlock).await;
            c1.write(out, v).await;
        });
        let c2 = m.cpu(2);
        m.spawn(2, async move {
            c2.work(5_000).await;
            let v = f.touch(&c2, &AlwaysBlock).await;
            c2.write(out.plus(1), v).await;
        });
        let c0 = m.cpu(0);
        m.spawn(0, async move {
            c0.work(1_500).await;
            f.determine(&c0, 77).await;
        });
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(out), 77);
        assert_eq!(m.read_word(out.plus(1)), 77);
    }

    #[test]
    fn waiting_times_recorded() {
        let m = Machine::new(Config::default().nodes(2));
        let f = FutureCell::new(&m, 0);
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            f.touch(&c1, &AlwaysSpin).await;
        });
        let c0 = m.cpu(0);
        m.spawn(0, async move {
            c0.work(2_000).await;
            f.determine(&c0, 1).await;
        });
        m.run();
        let st = m.stats();
        let h = st.waits.get("future").expect("future histogram");
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_500);
    }
}
