//! An abortable queue lock with constant amortized RMR cost
//! (Jayanti–Jayanti style: MCS with abandonment, cost of each
//! abandonment charged to the abort that caused it).
//!
//! Waiters enqueue behind a fetch&store'd tail and spin on a status
//! word in their *own* queue node (homed on their node, so waiting is
//! local under both the CC and DSM cost models). An abort is one CAS —
//! `WAITING → ABORTED` — after which the aborter leaves immediately;
//! it never unlinks itself. The releaser walks the queue, granting the
//! first still-waiting successor and *skipping* aborted nodes; each
//! skip costs O(1) remote references and is charged to the abort that
//! created it, giving total RMRs ≤ c·(passages + aborts) — the bound
//! the `rmr_abortable` scenario and the property tests gate.
//!
//! Queue nodes come from a small per-process ring. A node becomes
//! reusable only after a release walk has passed it (status
//! `REUSABLE`), so a pointer held by an in-flight releaser can never
//! alias a recycled node. Waiting for one's own ring slot is a local
//! spin and therefore RMR-free.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};

use crate::spin::{dec, enc, NIL};
use crate::waiting::spin_wait_until;

/// Queue-node status: recycled, free for its owner to reuse.
pub const REUSABLE: u64 = 0;
/// Queue-node status: enqueued, waiting for a grant.
pub const WAITING: u64 = 1;
/// Queue-node status: lock granted by the releaser.
pub const GRANTED: u64 = 2;
/// Queue-node status: the waiter gave up (timeout or abort signal).
pub const ABORTED: u64 = 3;

/// Queue-node field offsets: `next` pointer then `status`.
const QN_NEXT: u64 = 0;
const QN_STATUS: u64 = 1;

/// Queue nodes per process: bounds how many abandoned attempts can be
/// outstanding before an acquire must wait (locally) for a recycle.
const RING: usize = 8;

/// Outcome of [`AbortableMcsLock::acquire`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// The lock is held; pass the token to `release`.
    Granted(Addr),
    /// The wait was abandoned (deadline passed or abort delivered).
    Aborted,
}

impl Acquired {
    /// Whether the lock was obtained.
    pub fn is_granted(&self) -> bool {
        matches!(self, Acquired::Granted(_))
    }
}

/// The abortable MCS-style queue lock. Cheaply cloneable.
#[derive(Clone)]
pub struct AbortableMcsLock {
    tail: Addr,
    /// Per-process qnode rings and cursor.
    rings: Rc<RefCell<Vec<Ring>>>,
}

struct Ring {
    nodes: Vec<Addr>,
    next: usize,
}

impl std::fmt::Debug for AbortableMcsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbortableMcsLock")
            .field("tail", &self.tail)
            .finish()
    }
}

impl AbortableMcsLock {
    /// Create a lock whose tail is homed on `home`, with per-process
    /// queue-node rings for `procs` processes (process `p` on node
    /// `p % nodes`).
    pub fn new(m: &Machine, home: usize, procs: usize) -> AbortableMcsLock {
        let rings = (0..procs)
            .map(|p| Ring {
                nodes: (0..RING).map(|_| m.alloc_on(p % m.nodes(), 2)).collect(),
                next: 0,
            })
            .collect();
        AbortableMcsLock {
            tail: m.alloc_on(home, 1),
            rings: Rc::new(RefCell::new(rings)),
        }
    }

    /// The tail pointer word (the protocol's consensus object).
    pub fn tail(&self) -> Addr {
        self.tail
    }

    /// Acquire as process `p`, abandoning at `deadline` (absolute
    /// cycles; `u64::MAX` = wait forever) or when an abort signal is
    /// delivered to this node. On [`Acquired::Aborted`] the caller owns
    /// nothing and may retry later.
    pub async fn acquire(&self, cpu: &Cpu, p: usize, deadline: u64) -> Acquired {
        let q = {
            let mut rings = self.rings.borrow_mut();
            let ring = &mut rings[p];
            let q = ring.nodes[ring.next];
            ring.next = (ring.next + 1) % RING;
            q
        };
        // The slot may still be queued from an earlier abandoned
        // attempt; wait (locally — the node is homed here) until a
        // release walk has recycled it.
        spin_wait_until(cpu, q.plus(QN_STATUS), |s| s == REUSABLE).await;
        cpu.write(q.plus(QN_NEXT), NIL).await;
        cpu.write(q.plus(QN_STATUS), WAITING).await;
        let pred = cpu.fetch_and_store(self.tail, enc(q)).await;
        if pred == NIL {
            return Acquired::Granted(q);
        }
        cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
        match cpu
            .poll_until_abortable(q.plus(QN_STATUS), |s| s != WAITING, deadline)
            .await
        {
            Some(_) => Acquired::Granted(q),
            None => {
                // Timeout or abort signal: one CAS decides against a
                // racing grant.
                if cpu
                    .compare_and_swap(q.plus(QN_STATUS), WAITING, ABORTED)
                    .await
                {
                    Acquired::Aborted
                } else {
                    // The releaser granted us first; take the lock.
                    Acquired::Granted(q)
                }
            }
        }
    }

    /// Release the lock held via `q`: grant the first still-waiting
    /// successor, skipping (and recycling) aborted nodes along the way.
    pub async fn release(&self, cpu: &Cpu, q: Addr) {
        let mut passed: Vec<Addr> = Vec::new();
        let mut cur = q;
        loop {
            let mut next = cpu.read(cur.plus(QN_NEXT)).await;
            if next == NIL {
                if cpu.compare_and_swap(self.tail, enc(cur), NIL).await {
                    // Queue drained; recycle everything we walked.
                    passed.push(cur);
                    break;
                }
                // An enqueuer has swapped the tail but not yet linked;
                // its link write is imminent.
                next = spin_wait_until(cpu, cur.plus(QN_NEXT), |v| v != NIL).await;
            }
            let succ = dec(next);
            passed.push(cur);
            if cpu
                .compare_and_swap(succ.plus(QN_STATUS), WAITING, GRANTED)
                .await
            {
                break;
            }
            // Successor aborted: skip it. The O(1) work here is charged
            // to that abort.
            cur = succ;
        }
        // Recycle walked nodes (ours + skipped aborted ones) only now,
        // when no pointer into them remains.
        for node in passed {
            cpu.write(node.plus(QN_STATUS), REUSABLE).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::{Config, FaultPlan, Machine};

    fn hammer(procs: usize, iters: u64, deadline_gap: Option<u64>) -> (u64, u64, u64) {
        let m = Machine::new(Config::default().nodes(procs.max(2)));
        let lock = AbortableMcsLock::new(&m, 0, procs);
        let shared = m.alloc_on(0, 1);
        let aborts = m.alloc_on(1, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let deadline = match deadline_gap {
                        Some(gap) => cpu.now() + gap,
                        None => u64::MAX,
                    };
                    match lock.acquire(&cpu, p, deadline).await {
                        Acquired::Granted(q) => {
                            let v = cpu.read(shared).await;
                            cpu.work(10).await;
                            cpu.write(shared, v + 1).await;
                            lock.release(&cpu, q).await;
                        }
                        Acquired::Aborted => {
                            cpu.fetch_and_add(aborts, 1).await;
                            cpu.work(50).await;
                        }
                    }
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "deadlock");
        (
            m.read_word(shared),
            m.read_word(aborts),
            m.stats().rmr_cc_total(),
        )
    }

    #[test]
    fn mutual_exclusion_no_aborts() {
        let (v, a, _) = hammer(8, 25, None);
        assert_eq!(v, 200);
        assert_eq!(a, 0);
    }

    #[test]
    fn single_proc_repeated() {
        let (v, a, _) = hammer(1, 100, None);
        assert_eq!(v, 100);
        assert_eq!(a, 0);
    }

    #[test]
    fn tight_deadlines_abort_but_never_corrupt() {
        // Deadlines shorter than the critical section force aborts.
        let (v, a, _) = hammer(8, 25, Some(400));
        assert_eq!(v + a, 200, "every attempt must end in grant or abort");
        assert!(a > 0, "tight deadlines should cause at least one abort");
    }

    #[test]
    fn abort_signals_from_fault_plan_are_delivered() {
        let procs = 4;
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::abort_storm(9, procs, 12, 60_000)),
        );
        let lock = AbortableMcsLock::new(&m, 0, procs);
        let shared = m.alloc_on(0, 1);
        let aborts = m.alloc_on(1, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..30 {
                    match lock.acquire(&cpu, p, u64::MAX).await {
                        Acquired::Granted(q) => {
                            let v = cpu.read(shared).await;
                            cpu.work(200).await;
                            cpu.write(shared, v + 1).await;
                            lock.release(&cpu, q).await;
                        }
                        Acquired::Aborted => {
                            cpu.fetch_and_add(aborts, 1).await;
                        }
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let v = m.read_word(shared);
        let a = m.read_word(aborts);
        assert_eq!(v + a, 30 * procs as u64);
    }

    /// Total lock-protocol RMRs stay linear in (passages + aborts):
    /// the amortized-O(1) property at test scale.
    #[test]
    fn rmr_linear_in_passages_plus_aborts() {
        let (v, a, rmr) = hammer(8, 30, Some(600));
        let budget = 14 * (v + a) + 200;
        assert!(
            rmr <= budget,
            "RMR {rmr} exceeds c·(passages {v} + aborts {a}) = {budget}"
        );
    }
}
