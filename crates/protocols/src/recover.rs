//! A crash-recoverable mutual-exclusion lock (Golab–Ramaraju style).
//!
//! The failure model matches the simulator's fault layer: a crash
//! destroys a process's registers (its future state machine) but every
//! protocol word lives in simulated shared memory, which persists as
//! "NVM". The lock is a tournament tree of 2-process Peterson locks —
//! chosen because Peterson's algorithm uses only idempotent single-word
//! stores, so a crashed process's recovery can blindly re-issue or undo
//! its steps without corrupting the other contender's state.
//!
//! Per-process recoverability state is one NVM word, `prog[p]`:
//! written to `l + 1` *before* process `p` starts acquiring tree level
//! `l`, and to `levels + 1` once `p` is in the critical section. After
//! a crash, [`RecoverableMutex::recover`] reads `prog[p]` and releases
//! every level `p` held or may have partially claimed (store `flag = 0`
//! — the released state — which is safe whether or not the claim
//! succeeded), then clears the critical-section word if `p` crashed
//! inside it. Writes are **self-revealing**: the CS word holds `p + 1`
//! and each Peterson flag slot is owned by exactly one side, so
//! recovery can decide "did my in-flight write land?" by reading NVM —
//! the kill may have raced an operation whose reply was lost.
//!
//! RMR complexity (CC model): a passage climbs `log2 n` levels; at each
//! level the spin words share one cache line that only the two
//! contenders write, so re-reads are invalidation-driven and bounded.
//! Per-passage remote references are `O(log n)` — the bound the
//! `rmr_recoverable` scenario gates. (Under the DSM model a Peterson
//! tree is not local-spin; use the abortable queue lock there.)

use alewife_sim::{Addr, Cpu, Machine};

/// Peterson-node word offsets within one cache line.
const FLAG0: u64 = 0;
const FLAG1: u64 = 1;
const TURN: u64 = 2;

/// Re-check period (cycles) for the two-word Peterson wait condition;
/// wakes are normally invalidation-driven (both words share a line), so
/// this only bounds the stall of a lost wake race.
const PATIENCE: u64 = 150;

/// What [`RecoverableMutex::recover`] found in NVM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// The process was not in a passage when it crashed.
    Idle,
    /// The process crashed while acquiring; its claims were released.
    WasAcquiring,
    /// The process crashed inside the critical section; the caller must
    /// repair application state before the lock is handed on (the lock
    /// itself has been released).
    WasInCs,
}

/// A crash-recoverable mutex for `procs` processes (one per node in the
/// intended use), built as a Peterson tournament tree over NVM.
#[derive(Clone, Debug)]
pub struct RecoverableMutex {
    /// Number of tree levels (`log2` of the padded process count).
    levels: u32,
    /// Padded (power-of-two) process count.
    n_pow: usize,
    /// Internal tree nodes in heap order (`tree[v - 1]` for node `v`,
    /// `v` in `1..n_pow`); each is one line of `{flag0, flag1, turn}`.
    tree: Vec<Addr>,
    /// Per-process NVM progress word, homed on the process's node.
    prog: Vec<Addr>,
    /// Critical-section word: `p + 1` while `p` is inside, else 0.
    cs: Addr,
}

impl RecoverableMutex {
    /// Build a lock for `procs` processes on `m`. Tree nodes are spread
    /// across the machine; `prog[p]` is homed on node `p % nodes`.
    pub fn new(m: &Machine, procs: usize) -> RecoverableMutex {
        assert!(procs >= 1);
        let n_pow = procs.next_power_of_two();
        let levels = n_pow.trailing_zeros();
        let tree = (1..n_pow).map(|v| m.alloc_on(v % m.nodes(), 4)).collect();
        let prog = (0..procs).map(|p| m.alloc_on(p % m.nodes(), 1)).collect();
        RecoverableMutex {
            levels,
            n_pow,
            tree,
            prog,
            cs: m.alloc_on(0, 1),
        }
    }

    /// The internal node `p` meets at level `l` (heap numbering).
    fn node(&self, p: usize, l: u32) -> Addr {
        let v = (self.n_pow + p) >> (l + 1);
        self.tree[v - 1]
    }

    /// Which side of that node `p` plays.
    fn side(p: usize, l: u32) -> u64 {
        ((p >> l) & 1) as u64
    }

    /// Wait out the Peterson condition at one node: proceed when the
    /// peer's flag is down or the turn word points away from us.
    async fn peterson_wait(cpu: &Cpu, flag_other: Addr, turn: Addr, me: u64) {
        loop {
            if cpu.read(flag_other).await == 0 {
                return;
            }
            if cpu.read(turn).await != me {
                return;
            }
            // Sleep until the node's line changes (both words share it),
            // with a patience timer against the read-then-register race.
            let deadline = cpu.now() + PATIENCE;
            if cpu
                .poll_until_deadline(turn, move |t| t != me, deadline)
                .await
                .is_some()
            {
                return;
            }
        }
    }

    /// Acquire the lock as process `p`, recording progress in NVM so a
    /// crash at any point is recoverable.
    pub async fn acquire(&self, cpu: &Cpu, p: usize) {
        for l in 0..self.levels {
            // NVM: "level l is now uncertain" — written before the
            // first store of the Peterson handshake.
            cpu.write(self.prog[p], l as u64 + 1).await;
            let node = self.node(p, l);
            let side = Self::side(p, l);
            let (mine, other) = if side == 0 {
                (node.plus(FLAG0), node.plus(FLAG1))
            } else {
                (node.plus(FLAG1), node.plus(FLAG0))
            };
            cpu.write(mine, 1).await;
            cpu.write(node.plus(TURN), side).await;
            Self::peterson_wait(cpu, other, node.plus(TURN), side).await;
        }
        cpu.write(self.prog[p], self.levels as u64 + 1).await;
        // Self-revealing CS marker: the value names the holder.
        cpu.write(self.cs, p as u64 + 1).await;
    }

    /// Release the lock as process `p` (root first, then down the tree).
    pub async fn release(&self, cpu: &Cpu, p: usize) {
        cpu.write(self.cs, 0).await;
        self.unwind(cpu, p, self.levels).await;
    }

    /// Store 0 into `p`'s flag at levels `0..upto`, root first. Safe
    /// whether or not each claim landed: 0 is the released state.
    async fn unwind(&self, cpu: &Cpu, p: usize, upto: u32) {
        for l in (0..upto).rev() {
            let node = self.node(p, l);
            let side = Self::side(p, l);
            let mine = if side == 0 {
                node.plus(FLAG0)
            } else {
                node.plus(FLAG1)
            };
            cpu.write(mine, 0).await;
        }
        cpu.write(self.prog[p], 0).await;
    }

    /// Repair after a crash of process `p`: inspect NVM, release every
    /// level `p` held or may have claimed, clear the CS word if `p`
    /// died inside the critical section. Idempotent — a crash *during
    /// recovery* is repaired by running recovery again.
    pub async fn recover(&self, cpu: &Cpu, p: usize) -> Recovery {
        let k = cpu.read(self.prog[p]).await;
        if k == 0 {
            return Recovery::Idle;
        }
        let in_cs = cpu.read(self.cs).await == p as u64 + 1;
        if in_cs {
            cpu.write(self.cs, 0).await;
        }
        let upto = (k as u32).min(self.levels);
        self.unwind(cpu, p, upto).await;
        if in_cs {
            Recovery::WasInCs
        } else {
            Recovery::WasAcquiring
        }
    }

    /// The CS word (helpful for external double-grant checks): holds
    /// `holder + 1`, or 0 when free.
    pub fn cs_word(&self) -> Addr {
        self.cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::{Config, FaultPlan, Machine};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn mutual_exclusion_without_crashes() {
        let procs = 8;
        let m = Machine::new(Config::default().nodes(procs));
        let lock = RecoverableMutex::new(&m, procs);
        let shared = m.alloc_on(0, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    lock.acquire(&cpu, p).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, p).await;
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "deadlock");
        assert_eq!(m.read_word(shared), 20 * procs as u64);
    }

    #[test]
    fn single_process_fast_path() {
        let m = Machine::new(Config::default().nodes(2));
        let lock = RecoverableMutex::new(&m, 1);
        let cpu = m.cpu(0);
        let l2 = lock.clone();
        let out = m.alloc_on(0, 1);
        m.spawn(0, async move {
            for _ in 0..50 {
                l2.acquire(&cpu, 0).await;
                let v = cpu.read(out).await;
                cpu.write(out, v + 1).await;
                l2.release(&cpu, 0).await;
            }
        });
        m.run();
        assert_eq!(m.read_word(out), 50);
    }

    /// Crash a holder mid-critical-section; recovery must release the
    /// lock so the survivors make progress, and the repaired counter
    /// must show no lost or double increments afterwards.
    #[test]
    fn crash_in_critical_section_recovers() {
        let procs = 4;
        let victim = 1usize;
        // Kill node 1 once, early; recover shortly after.
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::new().kill_for(8_000, victim, 4_000)),
        );
        let lock = RecoverableMutex::new(&m, procs);
        let shared = m.alloc_on(0, 1);
        // Per-process passage tallies, in NVM so they survive the kill.
        let mine = m.alloc_on(1, procs as u64);
        let done = Rc::new(RefCell::new(vec![false; procs]));
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            let done = done.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    lock.acquire(&cpu, p).await;
                    let v = cpu.read(shared).await;
                    // Long critical section: the victim is very likely
                    // to die while holding the lock.
                    cpu.work(600).await;
                    cpu.write(shared, v + 1).await;
                    cpu.fetch_and_add(mine.plus(p as u64), 1).await;
                    lock.release(&cpu, p).await;
                }
                done.borrow_mut()[p] = true;
            });
        }
        let rcpu = m.cpu(victim);
        let rlock = lock.clone();
        let rdone = done.clone();
        m.on_recovery(victim, move || {
            let cpu = rcpu.clone();
            let lock = rlock.clone();
            let done = rdone.clone();
            Box::pin(async move {
                lock.recover(&cpu, victim).await;
                // Resume a shortened workload after repair.
                for _ in 0..5 {
                    lock.acquire(&cpu, victim).await;
                    let v = cpu.read(shared).await;
                    cpu.work(50).await;
                    cpu.write(shared, v + 1).await;
                    cpu.fetch_and_add(mine.plus(victim as u64), 1).await;
                    lock.release(&cpu, victim).await;
                }
                done.borrow_mut()[victim] = true;
            })
        });
        m.run();
        assert_eq!(m.live_tasks(), 0, "survivors deadlocked after crash");
        assert!(
            done.borrow().iter().all(|&d| d),
            "some process never finished: {:?}",
            done.borrow()
        );
        // Conservation: the shared counter must equal the sum of the
        // per-process tallies, except that the single kill may have
        // fallen between the two CS writes (then shared leads by one).
        // Any lost update or double grant would break the balance.
        let v = m.read_word(shared);
        let tallied: u64 = (0..procs).map(|p| m.read_word(mine.plus(p as u64))).sum();
        assert!(
            v == tallied || v == tallied + 1,
            "counter {v} vs tallies {tallied}: lost or duplicated update"
        );
        // Survivors completed everything; the victim at least its
        // post-recovery passages.
        assert!(tallied >= 15 * (procs as u64 - 1) + 5);
    }

    /// Crash a process while it is *waiting* (not holding); recovery
    /// must clear its partial claims so the tree is not wedged.
    #[test]
    fn crash_while_waiting_recovers() {
        let procs = 2;
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::new().kill_for(3_000, 1, 3_000)),
        );
        let lock = RecoverableMutex::new(&m, procs);
        let shared = m.alloc_on(0, 1);
        let c0 = m.cpu(0);
        let l0 = lock.clone();
        m.spawn(0, async move {
            // Hold the lock across the kill window so process 1 dies
            // while spinning in the tree.
            l0.acquire(&c0, 0).await;
            c0.work(6_000).await;
            l0.release(&c0, 0).await;
            for _ in 0..10 {
                l0.acquire(&c0, 0).await;
                let v = c0.read(shared).await;
                c0.write(shared, v + 1).await;
                l0.release(&c0, 0).await;
            }
        });
        let c1 = m.cpu(1);
        let l1 = lock.clone();
        m.spawn(1, async move {
            // Start after process 0 surely holds the lock, so the kill
            // at t=3000 lands while this acquire is waiting in the tree.
            c1.work(1_000).await;
            l1.acquire(&c1, 1).await; // dies in here
            let v = c1.read(shared).await;
            c1.write(shared, v + 1).await;
            l1.release(&c1, 1).await;
        });
        let rcpu = m.cpu(1);
        let rlock = lock.clone();
        m.on_recovery(1, move || {
            let cpu = rcpu.clone();
            let lock = rlock.clone();
            Box::pin(async move {
                let r = lock.recover(&cpu, 1).await;
                assert_ne!(r, Recovery::WasInCs, "waiter cannot have been in CS");
                for _ in 0..5 {
                    lock.acquire(&cpu, 1).await;
                    let v = cpu.read(shared).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, 1).await;
                }
            })
        });
        m.run();
        assert_eq!(m.live_tasks(), 0, "tree wedged after waiter crash");
        assert_eq!(m.read_word(shared), 15);
    }

    /// Same seed, same plan: the crash schedule and every downstream
    /// effect replay exactly.
    #[test]
    fn crashes_replay_deterministically() {
        let run = || {
            let plan = FaultPlan::crash_storm(11, 4, 3, 40_000, 2_500);
            let m = Machine::new(Config::default().nodes(4).seed(5).faults(plan));
            let lock = RecoverableMutex::new(&m, 4);
            let shared = m.alloc_on(0, 1);
            for p in 0..4 {
                let cpu = m.cpu(p);
                let wlock = lock.clone();
                m.spawn(p, async move {
                    for _ in 0..10 {
                        wlock.acquire(&cpu, p).await;
                        let v = cpu.read(shared).await;
                        cpu.work(100).await;
                        cpu.write(shared, v + 1).await;
                        wlock.release(&cpu, p).await;
                    }
                });
                let rcpu = m.cpu(p);
                let rlock = lock.clone();
                m.on_recovery(p, move || {
                    let cpu = rcpu.clone();
                    let lock = rlock.clone();
                    Box::pin(async move {
                        lock.recover(&cpu, p).await;
                    })
                });
            }
            let t = m.run();
            (
                t,
                m.read_word(shared),
                m.fault_log(),
                m.stats().rmr_cc_total(),
            )
        };
        assert_eq!(run(), run());
    }
}
