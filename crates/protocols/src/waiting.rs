//! Waiting strategies: how a thread waits for a synchronization
//! condition (Chapter 4).
//!
//! The [`WaitStrategy`] trait abstracts the *waiting mechanism* choice so
//! the synchronization constructs in this crate ([`crate::barrier`],
//! [`crate::pc`]) can be run under always-spin, always-block, or the
//! two-phase algorithm from `reactive-core`. Only the baselines live
//! here; two-phase waiting is the paper's contribution.

use alewife_sim::{Addr, Cpu, FullEmpty, WaitQueueId};

/// Read-poll `addr` until `pred` holds (polling waiting mechanism).
///
/// This is the building block for all spin-style waiting: it charges a
/// fresh read per invalidation of the watched line, reproducing the
/// coherence behaviour of spinning on a cached copy.
pub async fn spin_wait_until(cpu: &Cpu, addr: Addr, pred: impl Fn(u64) -> bool + Unpin) -> u64 {
    cpu.poll_until(addr, pred).await
}

/// How a thread waits on a word-valued condition.
///
/// Implementations decide the mix of polling and signaling. The
/// synchronization object supplies a [`WaitQueueId`] that its *setters*
/// signal after updating the word, so blocking implementations are safe.
pub trait WaitStrategy: Clone + 'static {
    /// Wait until `pred(word)` holds; returns the satisfying value.
    fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> impl std::future::Future<Output = u64>;

    /// Wait until the word's full/empty bit is set; returns the value.
    fn wait_full(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
    ) -> impl std::future::Future<Output = u64>;
}

/// Always poll (spin). Zero fixed cost; waiting cost grows with the
/// waiting time, and on a multithreaded node it starves ready peers
/// (non-preemptive scheduling).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysSpin;

impl WaitStrategy for AlwaysSpin {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        _q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        spin_wait_until(cpu, addr, pred).await
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, _q: WaitQueueId) -> u64 {
        cpu.poll_until_full(addr).await
    }
}

/// Always block (signal). Fixed cost `B` ≈ 465 cycles regardless of the
/// waiting time; frees the processor for other threads.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysBlock;

impl WaitStrategy for AlwaysBlock {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        loop {
            // The check and the enqueue happen at the same virtual
            // instant (no await between them), so no wakeup can be lost.
            let v = cpu.read(addr).await;
            if pred(v) {
                return v;
            }
            cpu.block_on(q).await;
        }
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, q: WaitQueueId) -> u64 {
        loop {
            if let FullEmpty::Full(v) = cpu.read_full(addr).await {
                return v;
            }
            cpu.block_on(q).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::{Config, Machine};

    fn producer_consumer<W: WaitStrategy>(w: W, produce_delay: u64) -> (u64, u64) {
        let m = Machine::new(Config::default().nodes(2));
        let slot = m.alloc_on(0, 1);
        let q = m.new_wait_queue();
        let out = m.alloc_on(1, 1);
        let c0 = m.cpu(0);
        let c1 = m.cpu(1);
        m.spawn(0, async move {
            let v = w.wait_full(&c0, slot, q).await;
            c0.write(out, v).await;
        });
        m.spawn(1, async move {
            c1.work(produce_delay).await;
            c1.write_fill(slot, 7).await;
            c1.signal_all(q).await;
        });
        let t = m.run();
        assert_eq!(m.live_tasks(), 0);
        (m.read_word(out), t)
    }

    #[test]
    fn spin_sees_value() {
        assert_eq!(producer_consumer(AlwaysSpin, 1_000).0, 7);
    }

    #[test]
    fn block_sees_value() {
        assert_eq!(producer_consumer(AlwaysBlock, 1_000).0, 7);
    }

    #[test]
    fn spin_faster_for_short_waits_block_frees_processor() {
        // For a short wait, spinning resumes sooner than blocking.
        let (_, t_spin) = producer_consumer(AlwaysSpin, 100);
        let (_, t_block) = producer_consumer(AlwaysBlock, 100);
        assert!(t_spin < t_block, "spin {t_spin} vs block {t_block}");
    }

    #[test]
    fn block_immediate_value_no_block() {
        // If the value is already there, AlwaysBlock never blocks.
        let m = Machine::new(Config::default().nodes(1));
        let slot = m.alloc_on(0, 1);
        m.write_word(slot, 9);
        m.set_full(slot, true);
        let q = m.new_wait_queue();
        let out = m.alloc_on(0, 1);
        let c = m.cpu(0);
        m.spawn(0, async move {
            let v = AlwaysBlock.wait_full(&c, slot, q).await;
            c.write(out, v).await;
        });
        m.run();
        assert_eq!(m.read_word(out), 9);
    }

    #[test]
    fn wait_word_with_predicate() {
        let m = Machine::new(Config::default().nodes(2));
        let word = m.alloc_on(0, 1);
        let q = m.new_wait_queue();
        let out = m.alloc_on(1, 1);
        let c0 = m.cpu(0);
        let c1 = m.cpu(1);
        m.spawn(0, async move {
            let v = AlwaysBlock.wait_word(&c0, word, q, |v| v >= 3).await;
            c0.write(out, v).await;
        });
        m.spawn(1, async move {
            for i in 1..=3u64 {
                c1.work(500).await;
                c1.write(word, i).await;
                c1.signal_all(q).await;
            }
        });
        m.run();
        assert_eq!(m.read_word(out), 3);
        assert_eq!(m.live_tasks(), 0);
    }
}
