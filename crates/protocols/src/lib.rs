//! # sync-protocols — passive synchronization algorithms
//!
//! The *passive* (fixed-protocol) synchronization algorithms the paper
//! compares its reactive algorithms against (Chapter 3, §3.1), running on
//! the [`alewife_sim`] substrate:
//!
//! * **Spin locks** — [`spin::TestAndSetLock`] (test&set with randomized
//!   exponential backoff), [`spin::TtsLock`] (test-and-test-and-set with
//!   backoff), and [`spin::McsLock`] (the Mellor-Crummey & Scott queue
//!   lock, in the `fetch&store`-only variant Alewife used).
//! * **Fetch-and-op** — [`fetch_op::LockFetchOp`] (a counter protected by
//!   any lock) and [`fetch_op::CombiningTree`] (the Goodman, Vernon &
//!   Woest software combining tree, §3.1.2 / Appendix C).
//! * **Message-passing protocols** (§3.6) — [`mp::MpQueueLock`],
//!   [`mp::MpCounter`], and [`mp::MpCombiningTree`], built on atomic
//!   active-message handlers.
//! * **Barriers** — [`barrier::SenseBarrier`], a sense-reversing
//!   centralized barrier with a pluggable waiting strategy.
//! * **Producer-consumer structures** — [`pc::JStructure`] and
//!   [`pc::FutureCell`], full/empty-bit based (§4.6.1).
//! * **Waiting strategies** — the [`waiting::WaitStrategy`] trait plus
//!   the always-spin and always-block baselines; the two-phase waiting
//!   algorithm itself lives in `reactive-core` (it is the contribution).
//! * **Robust locks** — [`recover::RecoverableMutex`] (a Golab–Ramaraju
//!   style recoverable mutex whose per-process progress words live in
//!   NVM and survive crashes injected by `alewife_sim::FaultPlan`) and
//!   [`abortable::AbortableMcsLock`] (an abandonable queue lock with
//!   constant amortized RMR cost per passage or abort).

#![deny(missing_docs)]

pub mod abortable;
pub mod barrier;
pub mod fetch_op;
pub mod mp;
pub mod pc;
pub mod recover;
pub mod spin;
pub mod waiting;

/// Re-exported substrate types used throughout this crate's API.
pub use alewife_sim::{Addr, Cpu, Machine};
