//! Property tests for the abortable queue lock's amortized RMR bound:
//! over *random* abort/acquire schedules — random process counts, hold
//! times, deadline tightness, think times, and fault-plan abort storms —
//! the total remote memory references stay within `c · (passages +
//! aborts)` for a fixed constant `c`, under both the CC cost model
//! (coherence misses) and the DSM cost model (remotely-homed accesses).
//!
//! Every attempt must also terminate as exactly one of {granted,
//! aborted}, with no update lost or duplicated — the conservation law
//! the amortization argument rests on.

use alewife_sim::{Config, FaultPlan, Machine};
use proptest::prelude::*;
use sync_protocols::abortable::{AbortableMcsLock, Acquired};

/// The amortized constant gated here. Each passage is a bounded number
/// of protocol accesses (enqueue, link, grant CAS, tail CAS, recycle
/// writes) and each abort adds one CAS plus one skip step in a later
/// release walk; `c = 16` leaves headroom over the observed ~10 without
/// letting a linear-in-waiters regression through.
const C: u64 = 16;
/// Additive slack for startup effects (cold caches, first-touch
/// directory traffic) that don't scale with the schedule length.
const SLACK: u64 = 300;

/// Run a random schedule; return (passages, aborts, rmr_cc, rmr_dsm).
fn run_schedule(
    procs: usize,
    iters: u64,
    hold: u64,
    deadline_gap: u64,
    think: u64,
    storm: Option<(u64, usize)>,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let mut cfg = Config::default().nodes(procs.max(2)).seed(seed);
    if let Some((storm_seed, aborts)) = storm {
        cfg = cfg.faults(FaultPlan::abort_storm(storm_seed, procs, aborts, 80_000));
    }
    let m = Machine::new(cfg);
    let lock = AbortableMcsLock::new(&m, 0, procs);
    let shared = m.alloc_on(0, 1);
    let aborted = m.alloc_on(1, 1);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let deadline = if deadline_gap == 0 {
                    u64::MAX
                } else {
                    cpu.now() + deadline_gap
                };
                match lock.acquire(&cpu, p, deadline).await {
                    Acquired::Granted(q) => {
                        let v = cpu.read(shared).await;
                        cpu.work(hold).await;
                        cpu.write(shared, v + 1).await;
                        lock.release(&cpu, q).await;
                    }
                    Acquired::Aborted => {
                        cpu.fetch_and_add(aborted, 1).await;
                    }
                }
                if think > 0 {
                    cpu.work(cpu.rand_below(think)).await;
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0, "schedule deadlocked");
    let s = m.stats();
    let passages = m.read_word(shared);
    let aborts = m.read_word(aborted);
    assert_eq!(
        passages + aborts,
        iters * procs as u64,
        "attempt not conserved: {passages} grants + {aborts} aborts != {} attempts",
        iters * procs as u64
    );
    (passages, aborts, s.rmr_cc_total(), s.rmr_dsm_total())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random deadline-driven schedules: RMRs linear in passages+aborts
    /// under both cost models, whatever mix of grants and timeouts the
    /// schedule produces.
    #[test]
    fn rmr_amortized_constant_over_random_schedules(
        procs in 2usize..10,
        iters in 5u64..25,
        hold in 10u64..400,
        // Below 150 cycles a deadline can't outlive the enqueue itself;
        // fold that band into "no deadline" so both regimes are drawn.
        raw_gap in 0u64..2_000,
        think in 0u64..150,
        seed in 0u64..1_000_000,
    ) {
        let deadline_gap = if raw_gap < 150 { 0 } else { raw_gap };
        let (v, a, cc, dsm) =
            run_schedule(procs, iters, hold, deadline_gap, think, None, seed);
        let budget = C * (v + a) + SLACK;
        prop_assert!(
            cc <= budget,
            "CC RMR {cc} > {C}*({v}+{a})+{SLACK} for procs={procs} hold={hold} gap={deadline_gap}"
        );
        prop_assert!(
            dsm <= budget,
            "DSM RMR {dsm} > {C}*({v}+{a})+{SLACK} for procs={procs} hold={hold} gap={deadline_gap}"
        );
    }

    /// Abort-storm schedules: externally injected abort signals (the
    /// fault plan) instead of deadlines; the bound must hold with the
    /// storm's aborts counted on the right-hand side too.
    #[test]
    fn rmr_amortized_constant_under_abort_storms(
        procs in 2usize..8,
        iters in 5u64..20,
        hold in 50u64..500,
        storm_seed in 1u64..1_000_000,
        storm_aborts in 4usize..24,
        seed in 0u64..1_000_000,
    ) {
        let (v, a, cc, dsm) = run_schedule(
            procs, iters, hold, 0, 80, Some((storm_seed, storm_aborts)), seed,
        );
        let budget = C * (v + a) + SLACK;
        prop_assert!(cc <= budget, "CC RMR {cc} > budget {budget} ({v} grants, {a} aborts)");
        prop_assert!(dsm <= budget, "DSM RMR {dsm} > budget {budget} ({v} grants, {a} aborts)");
    }
}

/// The bound is not vacuous: a contended no-abort schedule actually
/// spends a nontrivial fraction of the budget.
#[test]
fn rmr_budget_is_tight_enough_to_mean_something() {
    let (v, a, cc, _) = run_schedule(8, 30, 100, 0, 50, None, 42);
    assert_eq!(a, 0);
    assert!(
        cc >= 4 * v,
        "contended schedule only cost {cc} RMRs over {v} passages; \
         the c={C} gate would never bind"
    );
}
