//! Measurement harnesses for the RMR (remote-memory-reference) and
//! crash-robustness scenario family.
//!
//! Three workloads, all deterministic (fixed seeds, fixed fault
//! plans), each returning the raw quantities the scenario claims are
//! stated over:
//!
//! * [`recoverable_rmr`] — the crash-recoverable mutex under a periodic
//!   kill schedule; RMRs per passage in the CC model (the
//!   Golab–Ramaraju sub-logarithmic regime — the DSM cost of a Peterson
//!   tree is unbounded and deliberately not claimed).
//! * [`abortable_rmr`] — the abortable MCS lock under deadline pressure
//!   plus an abort storm; RMRs per *operation* (passages + aborts) in
//!   **both** cost models (the O(1)-amortized claim).
//! * [`crash_storm`] — the recoverable mutex under
//!   [`FaultPlan::crash_storm`], with the full lock-event history fed
//!   to the crash-aware §3.2 oracle: waiter conservation, abort
//!   safety, no double grant, plus a measured worst recovery lag.
//!
//! Event recording happens at the workload level (the protocols don't
//! know they are being watched), so the oracle checks the *observable*
//! history — the same trust boundary the conformance suite uses.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Config, FaultEvent, FaultPlan, Machine};
use reactive_api::oracle::{check_crash_lock_history, lock_event, LockEvent, LockOpKind};
use sync_protocols::abortable::{AbortableMcsLock, Acquired};
use sync_protocols::recover::RecoverableMutex;

/// What one RMR workload measured.
#[derive(Clone, Copy, Debug)]
pub struct RmrSample {
    /// Completed passages (critical sections executed).
    pub passages: u64,
    /// Abandoned acquires (abortable lock only; 0 for the mutex).
    pub aborts: u64,
    /// Total coherence-model RMRs across all nodes.
    pub rmr_cc: u64,
    /// Total DSM-model RMRs across all nodes.
    pub rmr_dsm: u64,
    /// Node kills injected by the fault plan.
    pub kills: u64,
}

/// Run the recoverable mutex on `procs` single-task nodes for `iters`
/// passages each, killing node `procs - 1` every `period` cycles for
/// `outage` cycles (`kills` times). The victim's recovery routine
/// repairs the tree and finishes the victim's remaining passages.
pub fn recoverable_rmr(
    procs: usize,
    iters: u64,
    kills: u32,
    period: u64,
    outage: u64,
) -> RmrSample {
    let mut plan = FaultPlan::new();
    let victim = procs - 1;
    for k in 0..kills {
        plan = plan.kill_for(period * (k as u64 + 1), victim, outage);
    }
    let m = Machine::new(Config::default().nodes(procs).faults(plan));
    let lock = RecoverableMutex::new(&m, procs);
    // NVM tally: one word per process, so passages survive kills.
    let tally = m.alloc_on(0, procs as u64);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                lock.acquire(&cpu, p).await;
                let t = tally.plus(p as u64);
                let v = cpu.read(t).await;
                cpu.write(t, v + 1).await;
                lock.release(&cpu, p).await;
                cpu.work(cpu.rand_below(60)).await;
            }
        });
    }
    let rcpu = m.cpu(victim);
    let rlock = lock.clone();
    m.on_recovery(victim, move || {
        let cpu = rcpu.clone();
        let lock = rlock.clone();
        Box::pin(async move {
            lock.recover(&cpu, victim).await;
            // Resume the victim's share of the workload: up to `iters`
            // total passages, counted against its NVM tally.
            loop {
                let t = tally.plus(victim as u64);
                if cpu.read(t).await >= iters {
                    break;
                }
                lock.acquire(&cpu, victim).await;
                let v = cpu.read(t).await;
                cpu.write(t, v + 1).await;
                lock.release(&cpu, victim).await;
                cpu.work(cpu.rand_below(60)).await;
            }
        })
    });
    m.run();
    assert_eq!(m.live_tasks(), 0, "a waiter wedged under the kill schedule");
    let passages: u64 = (0..procs).map(|p| m.read_word(tally.plus(p as u64))).sum();
    let st = m.stats();
    RmrSample {
        passages,
        aborts: 0,
        rmr_cc: st.rmr_cc_total(),
        rmr_dsm: st.rmr_dsm_total(),
        kills: count_kills(&m),
    }
}

/// Run the abortable MCS lock on `procs` nodes for `iters` attempts
/// each under deadline pressure (every attempt carries a deadline of
/// `now + deadline_gap`) plus a seeded abort storm. Every attempt
/// resolves to exactly one passage or one abort (asserted).
pub fn abortable_rmr(
    procs: usize,
    iters: u64,
    deadline_gap: u64,
    storm_aborts: usize,
) -> RmrSample {
    let m = Machine::new(
        Config::default()
            .nodes(procs)
            .faults(FaultPlan::abort_storm(11, procs, storm_aborts, 50_000)),
    );
    let lock = AbortableMcsLock::new(&m, 0, procs);
    let tally = m.alloc_on(0, 2); // [passages, aborts]
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let deadline = cpu.now() + deadline_gap;
                match lock.acquire(&cpu, p, deadline).await {
                    Acquired::Granted(q) => {
                        cpu.work(40).await;
                        cpu.fetch_and_add(tally, 1).await;
                        lock.release(&cpu, q).await;
                    }
                    Acquired::Aborted => {
                        cpu.fetch_and_add(tally.plus(1), 1).await;
                        cpu.work(cpu.rand_below(120)).await;
                    }
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    let passages = m.read_word(tally);
    let aborts = m.read_word(tally.plus(1));
    assert_eq!(
        passages + aborts,
        iters * procs as u64,
        "an attempt resolved to neither a passage nor an abort"
    );
    let st = m.stats();
    RmrSample {
        passages,
        aborts,
        rmr_cc: st.rmr_cc_total(),
        rmr_dsm: st.rmr_dsm_total(),
        kills: 0,
    }
}

/// What the crash-storm workload measured.
#[derive(Clone, Debug)]
pub struct StormOutcome {
    /// Completed passages across all nodes (from the NVM tally).
    pub passages: u64,
    /// Kills the storm actually delivered.
    pub kills: u64,
    /// Oracle verdict over the full observable lock-event history:
    /// `None` = every checker passed; `Some(why)` = a violation.
    pub violation: Option<String>,
    /// Worst observed lag (cycles) from a node's kill to its recovery
    /// routine completing — the storm's outage plus tree repair.
    pub recovery_worst: u64,
    /// Recorded lock events (for debugging; already oracle-checked).
    pub events: usize,
}

/// Run the recoverable mutex through a [`FaultPlan::crash_storm`] and
/// feed the observable history to the crash-aware oracle. Every node
/// gets a recovery routine that repairs the tree and resumes its share
/// of the workload, so the storm tests repair-under-contention, not
/// just survival.
pub fn crash_storm(
    procs: usize,
    iters: u64,
    kills: usize,
    window: u64,
    outage: u64,
) -> StormOutcome {
    let m = Machine::new(
        Config::default()
            .nodes(procs)
            .faults(FaultPlan::crash_storm(7, procs, kills, window, outage)),
    );
    let lock = RecoverableMutex::new(&m, procs);
    let tally = m.alloc_on(0, procs as u64);
    let events: Rc<RefCell<Vec<LockEvent>>> = Rc::new(RefCell::new(Vec::new()));

    fn log(ev: &Rc<RefCell<Vec<LockEvent>>>, t: u64, p: usize, k: LockOpKind) {
        ev.borrow_mut().push(lock_event(t, p, k));
    }

    async fn share(
        cpu: &alewife_sim::Cpu,
        lock: &RecoverableMutex,
        ev: &Rc<RefCell<Vec<LockEvent>>>,
        tally: alewife_sim::Addr,
        p: usize,
        iters: u64,
    ) {
        loop {
            let t = tally.plus(p as u64);
            if cpu.read(t).await >= iters {
                break;
            }
            log(ev, cpu.now(), p, LockOpKind::Request);
            lock.acquire(cpu, p).await;
            log(ev, cpu.now(), p, LockOpKind::Grant);
            let v = cpu.read(t).await;
            cpu.work(30).await;
            cpu.write(t, v + 1).await;
            // Log the release *before* running it: the successor can be
            // granted (and log its Grant) the instant the hand-off word
            // flips, before this task resumes — logging afterwards would
            // order that Grant inside our hold and trip the
            // double-grant checker on a correct execution.
            log(ev, cpu.now(), p, LockOpKind::Release);
            lock.release(cpu, p).await;
            cpu.work(cpu.rand_below(80)).await;
        }
    }

    for p in 0..procs {
        let (cpu, l2, e2) = (m.cpu(p), lock.clone(), events.clone());
        m.spawn(p, async move {
            share(&cpu, &l2, &e2, tally, p, iters).await;
        });
    }
    for node in 0..procs {
        let (cpu, l2, e2) = (m.cpu(node), lock.clone(), events.clone());
        m.on_recovery(node, move || {
            let (cpu, l3, e3) = (cpu.clone(), l2.clone(), e2.clone());
            Box::pin(async move {
                l3.recover(&cpu, node).await;
                log(&e3, cpu.now(), node, LockOpKind::Recover);
                share(&cpu, &l3, &e3, tally, node, iters).await;
            })
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0, "a waiter was lost in the storm");

    // Fold the machine's fault log into the history (Crash events) and
    // measure the worst kill-to-repaired lag.
    let mut history = events.borrow().clone();
    let mut kill_q: Vec<Vec<u64>> = vec![Vec::new(); procs];
    let mut kills_seen = 0u64;
    for f in m.fault_log() {
        if let FaultEvent::Kill { at, node, .. } = f {
            history.push(lock_event(at, node, LockOpKind::Crash));
            kill_q[node].push(at);
            kills_seen += 1;
        }
    }
    // Pair each node's kills with its Recover events in time order:
    // the lag is kill-to-repair-complete (outage + tree repair).
    let mut recovery_worst = 0u64;
    let mut next_kill = vec![0usize; procs];
    for e in events.borrow().iter() {
        if e.kind == LockOpKind::Recover {
            let q = &kill_q[e.proc_id];
            let i = next_kill[e.proc_id];
            if i < q.len() {
                recovery_worst = recovery_worst.max(e.time.saturating_sub(q[i]));
                next_kill[e.proc_id] = i + 1;
            }
        }
    }
    let violation = check_crash_lock_history(&history).err();
    let passages: u64 = (0..procs).map(|p| m.read_word(tally.plus(p as u64))).sum();
    StormOutcome {
        passages,
        kills: kills_seen,
        violation,
        recovery_worst,
        events: history.len(),
    }
}

fn count_kills(m: &Machine) -> u64 {
    m.fault_log()
        .iter()
        .filter(|f| matches!(f, FaultEvent::Kill { .. }))
        .count() as u64
}
