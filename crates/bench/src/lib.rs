//! # repro-bench — the paper's evaluation harness
//!
//! One bench target (`harness = false`) per table/figure of the paper;
//! this library holds the shared experiment runners and table printers.
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record each target regenerates.

#![deny(missing_docs)]

pub mod experiments;
pub mod rmr;
pub mod scenario;
pub mod service;
pub mod service_native;
pub mod table;
