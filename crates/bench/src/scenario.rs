//! Machine-checked reproductions of the paper's figures and tables.
//!
//! Every `fig_*`/`table_*` row of `EXPERIMENTS.md` is a [`Scenario`]: a
//! description of the figure's sweep (machine shape, workload, protocol
//! set, contention schedule) plus a set of [`Claim`]s encoding the
//! "Paper says" column as assertable predicates — the checkable-claim
//! framing of the competitive-analysis literature, where a result like
//! "3-competitive" is an inequality, not a prose row.
//!
//! A scenario runs at two [`Scale`]s:
//!
//! * [`Scale::Full`] — the figure reproduction the bench targets print
//!   (`cargo bench --bench fig_3_15_baseline`), with the paper's sweeps.
//! * [`Scale::Quick`] — a scaled-down deterministic variant cheap enough
//!   for `cargo test -q`; the tier-1 suite
//!   (`crates/bench/tests/scenario_claims.rs`) checks every claim of
//!   every scenario at this scale, so a regression in any paper result
//!   fails CI.
//!
//! Claim bounds are calibrated to hold at *both* scales (the simulator
//! is deterministic, so quick runs are bit-stable); where a quantity is
//! scale-dependent, the scenario exports a scale-invariant ratio or an
//! extreme over the sweep instead.
//!
//! The `experiments` bench target runs all scenarios in `EXPERIMENTS.md`
//! table order and writes `BENCH_experiments.json` (stable keys, stable
//! order) with the measured headline and claim verdicts per row.

use alewife_sim::CostModel;
use lock_service::ArenaMode;
use sim_apps::alg::{FetchOpAlg, LockAlg, WaitAlg};
use sim_apps::{aq, cgrad, cholesky, countnet, fib, fibheap, gamteb, jacobi, mp3d, mutex_app, tsp};
use waiting_theory::expected::{worst_case_factor, Family};
use waiting_theory::optimal::optimal_alpha;
use waiting_theory::task_system::{
    worst_case_sequence, AlwaysSwitch, Competitive3, Hysteresis, NeverSwitch, TaskSystem,
};

use crate::experiments as exp;
use crate::table;

/// How big a reproduction to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The figure-scale sweep printed by the bench targets.
    Full,
    /// The scaled-down deterministic variant run by the tier-1 tests.
    Quick,
}

impl Scale {
    /// Pick `f` at full scale, `q` at quick scale.
    pub fn pick<T>(self, f: T, q: T) -> T {
        match self {
            Scale::Full => f,
            Scale::Quick => q,
        }
    }
}

/// One measured sweep: a labelled curve over the scenario's x-axis.
#[derive(Clone, Debug)]
pub struct Series {
    /// Label claims refer to (stable across scales).
    pub label: &'static str,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

/// The measured result of running a scenario at some scale.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// What the x-axis means (for table printing).
    pub sweep: &'static str,
    /// Measured curves.
    pub series: Vec<Series>,
    /// Named scalar measurements (extremes, endpoint ratios, constants).
    pub scalars: Vec<(&'static str, f64)>,
    /// One-line measured headline for the EXPERIMENTS.md row.
    pub headline: String,
}

impl Outcome {
    fn push(&mut self, label: &'static str, points: Vec<(f64, f64)>) {
        self.series.push(Series { label, points });
    }

    fn scalar(&mut self, name: &'static str, v: f64) {
        self.scalars.push((name, v));
    }

    /// Look a name up: scalars first, then a series' y-values.
    fn values(&self, name: &str) -> Option<Vec<f64>> {
        if let Some(&(_, v)) = self.scalars.iter().find(|(n, _)| *n == name) {
            return Some(vec![v]);
        }
        self.series
            .iter()
            .find(|s| s.label == name)
            .map(|s| s.points.iter().map(|&(_, y)| y).collect())
    }

    fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == name)
    }
}

/// A machine-checkable predicate encoding one "Paper says" statement.
#[derive(Clone, Copy, Debug)]
pub enum Claim {
    /// `cheap` wins at the sweep's low end, `scalable` at the high end
    /// (the paper's protocol-crossover shape: TTS vs MCS, lock-based vs
    /// combining fetch-and-op, shared-memory vs message-passing).
    Crossover {
        /// Series that must win at the first sweep point.
        cheap: &'static str,
        /// Series that must win at the last sweep point.
        scalable: &'static str,
    },
    /// Every value of `num` (divided pointwise by `den` if given) lies
    /// in `[min, max]`. `num`/`den` may name a series or a scalar; a
    /// scalar broadcasts against a series.
    BoundedRatio {
        /// Numerator series/scalar.
        num: &'static str,
        /// Optional denominator series/scalar.
        den: Option<&'static str>,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Over sweep points with `x >= from_x`, the series' max/min stays
    /// below `factor` (no meltdown — the paper's "flat" curves).
    FlatScaling {
        /// Series that must stay flat.
        series: &'static str,
        /// Ignore the sweep below this x (uncontended points are cheap
        /// for everyone and would understate the min).
        from_x: f64,
        /// Maximum allowed max/min spread.
        factor: f64,
    },
    /// At every sweep point, `series <= slack * min(over...)` — the
    /// reactive/two-phase algorithm tracks the best static choice.
    TracksBest {
        /// The adaptive series.
        series: &'static str,
        /// The static alternatives it must track.
        over: &'static [&'static str],
        /// Allowed multiplicative slack over the pointwise best.
        slack: f64,
    },
    /// Scalar `value` is within `factor` of scalar `optimal`
    /// (`value <= factor * optimal` and `value >= optimal / factor`).
    WithinFactorOfOptimal {
        /// Measured scalar.
        value: &'static str,
        /// The optimum it must approach.
        optimal: &'static str,
        /// Allowed multiplicative distance.
        factor: f64,
    },
}

impl Claim {
    /// Short human-readable form (stable: used as the JSON key).
    pub fn describe(&self) -> String {
        match self {
            Claim::Crossover { cheap, scalable } => {
                format!("crossover: {cheap} wins low end, {scalable} wins high end")
            }
            Claim::BoundedRatio { num, den, min, max } => match den {
                Some(d) => format!("bounded: {min} <= {num}/{d} <= {max}"),
                None => format!("bounded: {min} <= {num} <= {max}"),
            },
            Claim::FlatScaling {
                series,
                from_x,
                factor,
            } => {
                format!("flat: {series} spread <= {factor}x for x >= {from_x}")
            }
            Claim::TracksBest {
                series,
                over,
                slack,
            } => {
                format!("tracks-best: {series} <= {slack}x min{over:?}")
            }
            Claim::WithinFactorOfOptimal {
                value,
                optimal,
                factor,
            } => {
                format!("within-optimal: {value} within {factor}x of {optimal}")
            }
        }
    }

    /// Evaluate against an outcome. `Ok` carries the witnessing detail,
    /// `Err` the violation.
    pub fn check(&self, o: &Outcome) -> Result<String, String> {
        match *self {
            Claim::Crossover { cheap, scalable } => {
                let c = o
                    .series_named(cheap)
                    .ok_or_else(|| format!("series {cheap} missing"))?;
                let s = o
                    .series_named(scalable)
                    .ok_or_else(|| format!("series {scalable} missing"))?;
                let (c0, cn) = (c.points[0].1, c.points[c.points.len() - 1].1);
                let (s0, sn) = (s.points[0].1, s.points[s.points.len() - 1].1);
                if c0 > s0 {
                    return Err(format!(
                        "{cheap} ({c0:.1}) loses to {scalable} ({s0:.1}) at low end"
                    ));
                }
                if sn > cn {
                    return Err(format!(
                        "{scalable} ({sn:.1}) loses to {cheap} ({cn:.1}) at high end"
                    ));
                }
                Ok(format!(
                    "{cheap} {c0:.1} <= {s0:.1} low; {scalable} {sn:.1} <= {cn:.1} high"
                ))
            }
            Claim::BoundedRatio { num, den, min, max } => {
                let n = o.values(num).ok_or_else(|| format!("{num} missing"))?;
                let d = match den {
                    Some(d) => o.values(d).ok_or_else(|| format!("{d} missing"))?,
                    None => vec![1.0],
                };
                let len = n.len().max(d.len());
                if n.len() != len && n.len() != 1 || d.len() != len && d.len() != 1 {
                    return Err(format!("{num}/{den:?} length mismatch"));
                }
                let mut worst_lo = f64::INFINITY;
                let mut worst_hi = f64::NEG_INFINITY;
                for i in 0..len {
                    let nv = n[i.min(n.len() - 1)];
                    let dv = d[i.min(d.len() - 1)];
                    let r = nv / dv;
                    worst_lo = worst_lo.min(r);
                    worst_hi = worst_hi.max(r);
                    if !(min..=max).contains(&r) {
                        return Err(format!(
                            "point {i}: {nv:.3}/{dv:.3} = {r:.3} outside [{min}, {max}]"
                        ));
                    }
                }
                Ok(format!(
                    "in [{worst_lo:.3}, {worst_hi:.3}] ⊆ [{min}, {max}]"
                ))
            }
            Claim::FlatScaling {
                series,
                from_x,
                factor,
            } => {
                let s = o
                    .series_named(series)
                    .ok_or_else(|| format!("series {series} missing"))?;
                let ys: Vec<f64> = s
                    .points
                    .iter()
                    .filter(|&&(x, _)| x >= from_x)
                    .map(|&(_, y)| y)
                    .collect();
                if ys.len() < 2 {
                    return Err(format!("{series}: fewer than 2 points at x >= {from_x}"));
                }
                let (lo, hi) = ys
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| {
                        (l.min(y), h.max(y))
                    });
                let spread = hi / lo;
                if spread > factor {
                    Err(format!(
                        "{series} spread {spread:.2}x > {factor}x ({lo:.1}..{hi:.1})"
                    ))
                } else {
                    Ok(format!("{series} spread {spread:.2}x <= {factor}x"))
                }
            }
            Claim::TracksBest {
                series,
                over,
                slack,
            } => {
                let s = o
                    .series_named(series)
                    .ok_or_else(|| format!("series {series} missing"))?;
                let mut worst = 0f64;
                for (i, &(x, y)) in s.points.iter().enumerate() {
                    let mut best = f64::INFINITY;
                    for &other in over {
                        let os = o
                            .series_named(other)
                            .ok_or_else(|| format!("series {other} missing"))?;
                        if os.points.len() != s.points.len() {
                            return Err(format!(
                                "series {other} has {} points but {series} has {}",
                                os.points.len(),
                                s.points.len()
                            ));
                        }
                        best = best.min(os.points[i].1);
                    }
                    let r = y / best;
                    worst = worst.max(r);
                    if r > slack {
                        return Err(format!(
                            "at x = {x}: {series} {y:.1} is {r:.2}x best static {best:.1} (> {slack}x)"
                        ));
                    }
                }
                Ok(format!(
                    "{series} <= {worst:.2}x best static (allowed {slack}x)"
                ))
            }
            Claim::WithinFactorOfOptimal {
                value,
                optimal,
                factor,
            } => {
                let v = o.values(value).ok_or_else(|| format!("{value} missing"))?[0];
                let opt = o
                    .values(optimal)
                    .ok_or_else(|| format!("{optimal} missing"))?[0];
                if v > factor * opt || v < opt / factor {
                    Err(format!(
                        "{value} = {v:.4} not within {factor}x of {optimal} = {opt:.4}"
                    ))
                } else {
                    Ok(format!(
                        "{value} = {v:.4} within {factor}x of {optimal} = {opt:.4}"
                    ))
                }
            }
        }
    }
}

/// One claim's verdict, as reported by the runners.
#[derive(Clone, Debug)]
pub struct ClaimResult {
    /// [`Claim::describe`] of the claim checked.
    pub claim: String,
    /// Whether the outcome satisfied it.
    pub pass: bool,
    /// Witness (pass) or violation (fail) detail.
    pub detail: String,
}

/// A figure/table reproduction with machine-checkable claims.
pub struct Scenario {
    /// Bench-target name; the stable row key of `EXPERIMENTS.md` and
    /// `BENCH_experiments.json`.
    pub name: &'static str,
    /// Paper figure/table the row reproduces.
    pub figure: &'static str,
    /// The qualitative result the claims encode.
    pub paper_says: &'static str,
    /// The machine-checkable encoding of `paper_says`.
    pub claims: &'static [Claim],
    run: fn(Scale) -> Outcome,
}

impl Scenario {
    /// Run the sweep at the given scale.
    pub fn run(&self, scale: Scale) -> Outcome {
        (self.run)(scale)
    }

    /// Evaluate every claim against an outcome.
    pub fn check(&self, o: &Outcome) -> Vec<ClaimResult> {
        self.claims
            .iter()
            .map(|c| match c.check(o) {
                Ok(detail) => ClaimResult {
                    claim: c.describe(),
                    pass: true,
                    detail,
                },
                Err(detail) => ClaimResult {
                    claim: c.describe(),
                    pass: false,
                    detail,
                },
            })
            .collect()
    }

    /// Run, print the measured series/scalars and claim verdicts, and
    /// return the outcome with its claim results (the bench targets'
    /// entry point).
    pub fn report(&self, scale: Scale) -> (Outcome, Vec<ClaimResult>) {
        let o = self.run(scale);
        let results = self.check(&o);
        table::title(&format!("{} — {}", self.name, self.figure));
        println!("paper says: {}", self.paper_says);
        if !o.series.is_empty() {
            let xs: Vec<String> = o.series[0]
                .points
                .iter()
                .map(|&(x, _)| {
                    if x == x.trunc() {
                        format!("{x:.0}")
                    } else {
                        format!("{x}")
                    }
                })
                .collect();
            println!();
            table::header(o.sweep, &xs);
            for s in &o.series {
                let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
                table::row_f64(s.label, &ys);
            }
        }
        if !o.scalars.is_empty() {
            println!();
            for (n, v) in &o.scalars {
                println!("  {n:<38}{v:>12.4}");
            }
        }
        println!();
        for r in &results {
            let mark = if r.pass { "PASS" } else { "FAIL" };
            println!("  [{mark}] {} — {}", r.claim, r.detail);
        }
        println!("\nmeasured: {}", o.headline);
        (o, results)
    }
}

/// All 29 scenarios, in `EXPERIMENTS.md` table order (Chapter 3 rows,
/// then Chapter 4, then the beyond-the-paper rows).
/// `BENCH_experiments.json` rows follow this order.
pub fn all() -> Vec<Scenario> {
    vec![
        fig_3_14(),
        fig_3_15(),
        fig_3_16(),
        fig_3_17(),
        fig_3_21(),
        fig_3_22(),
        fig_3_23(),
        fig_3_24(),
        fig_3_25(),
        fig_3_26(),
        table_4_1(),
        fig_4_4(),
        fig_4_5(),
        fig_4_6(),
        fig_4_12(),
        fig_4_13(),
        fig_4_14(),
        table_4_6(),
        barrier_reactive(),
        rmr_recoverable(),
        rmr_abortable(),
        storm_robustness(),
        service_tail_latency(),
        service_bytes_per_object(),
        service_stampede(),
        service_tracks_best(),
        service_native_tail(),
        service_native_deflation(),
        sim_parallel_scale(),
    ]
}

/// Look a scenario up by its bench-target name.
///
/// # Panics
/// If no scenario has that name.
pub fn by_name(name: &str) -> Scenario {
    all()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"))
}

/// One application benchmark configuration, timed under an algorithm.
type Case<A> = Box<dyn Fn(A) -> f64>;

/// Run the (benchmark case × algorithm) timing matrix shared by the
/// application scenarios (Figs. 3.24/3.25/4.12/4.13/4.14): pushes one
/// series per algorithm (x = case index) into `o` and returns the
/// per-case ratio of the **last** algorithm — the adaptive one, by
/// convention — to the best of the preceding static ones.
fn adaptive_matrix<A: Copy>(
    o: &mut Outcome,
    algs: &[(&'static str, A)],
    cases: &[Case<A>],
) -> Vec<f64> {
    let mut cols: Vec<Vec<(f64, f64)>> = vec![Vec::new(); algs.len()];
    let mut ratios = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let times: Vec<f64> = algs.iter().map(|&(_, a)| case(a)).collect();
        let best_static = times[..times.len() - 1]
            .iter()
            .fold(f64::INFINITY, |m, &t| m.min(t));
        ratios.push(times[times.len() - 1] / best_static);
        for (c, &t) in cols.iter_mut().zip(&times) {
            c.push((i as f64, t));
        }
    }
    for (&(label, _), pts) in algs.iter().zip(cols) {
        o.push(label, pts);
    }
    ratios
}

// ---------------------------------------------------------------------
// Chapter 3 — protocol selection
// ---------------------------------------------------------------------

fn fig_3_14() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let ts = TaskSystem::two_protocol(8_000.0, 800.0, 150.0, 15.0);
        let cycles: &[usize] = scale.pick(&[1, 5, 20, 50], &[1, 5, 20]);
        let mut comp = Vec::new();
        let mut always = Vec::new();
        let mut never = Vec::new();
        let mut hyst = Vec::new();
        for &c in cycles {
            let reqs = worst_case_sequence(&ts, c);
            let opt = ts.offline_opt(&reqs);
            let x = c as f64;
            comp.push((x, ts.run_online(&mut Competitive3::default(), &reqs) / opt));
            always.push((x, ts.run_online(&mut AlwaysSwitch, &reqs) / opt));
            never.push((x, ts.run_online(&mut NeverSwitch, &reqs) / opt));
            hyst.push((x, ts.run_online(&mut Hysteresis::new(20, 55), &reqs) / opt));
        }
        let worst = comp.iter().fold(0f64, |m, &(_, r)| m.max(r));
        // The thrash side of the figure: an adversary alternating every
        // request makes switch-immediately pay a transition per request
        // while the 3-competitive policy stays put.
        let alt: Vec<usize> = (0..500).map(|i| i % 2).collect();
        let thrash = ts.run_online(&mut AlwaysSwitch, &alt)
            / ts.run_online(&mut Competitive3::default(), &alt);
        let mut o = Outcome {
            sweep: "policy \\ adversary cycles",
            headline: format!(
                "competitive3 worst case {worst:.2}x vs offline opt (bound 3.00); \
                 always-switch pays {thrash:.1}x competitive3 on the alternating adversary"
            ),
            ..Outcome::default()
        };
        o.push("ratio/competitive3", comp);
        o.push("ratio/always", always);
        o.push("ratio/never", never);
        o.push("ratio/hysteresis", hyst);
        o.scalar("comp3_worst", worst);
        o.scalar("always_thrash_vs_comp3", thrash);
        o
    }
    Scenario {
        name: "fig_3_14_policy_bound",
        figure: "Fig. 3.14",
        paper_says: "3-competitive policy's worst case: online cost approaches 3x optimum \
                     on the adversarial sequence",
        claims: &[
            Claim::BoundedRatio {
                num: "ratio/competitive3",
                den: None,
                min: 1.0,
                max: 3.0,
            },
            Claim::BoundedRatio {
                num: "comp3_worst",
                den: None,
                min: 2.5,
                max: 3.0,
            },
            Claim::BoundedRatio {
                num: "always_thrash_vs_comp3",
                den: None,
                min: 1.5,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

fn fig_3_15() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&exp::BASELINE_PROCS, &[1, 2, 16]);
        let ops = scale.pick(exp::BASELINE_OPS, 256);
        let nwo = CostModel::nwo;
        let lock_algs: [(&'static str, LockAlg, bool); 5] = [
            ("lock/test&set", LockAlg::TestAndSet, false),
            ("lock/tts", LockAlg::Tts, false),
            ("lock/tts-dirnb", LockAlg::Tts, true),
            ("lock/mcs", LockAlg::Mcs, false),
            ("lock/reactive", LockAlg::Reactive, false),
        ];
        let fo_algs: [(&'static str, FetchOpAlg); 4] = [
            ("fo/tts-lock", FetchOpAlg::TtsLock),
            ("fo/queue-lock", FetchOpAlg::QueueLock),
            ("fo/combining", FetchOpAlg::Combining),
            ("fo/reactive", FetchOpAlg::Reactive),
        ];
        let mut o = Outcome {
            sweep: "series \\ procs",
            ..Outcome::default()
        };
        for (label, alg, fm) in lock_algs {
            let pts = procs
                .iter()
                .map(|&p| (p as f64, exp::lock_overhead_n(alg, p, nwo(), fm, ops)))
                .collect();
            o.push(label, pts);
        }
        for (label, alg) in fo_algs {
            let pts = procs
                .iter()
                .map(|&p| (p as f64, exp::fetchop_overhead_n(alg, p, nwo(), ops)))
                .collect();
            o.push(label, pts);
        }
        let hi = procs.len() - 1;
        let headline = {
            let at = |l: &str, i: usize| o.series_named(l).unwrap().points[i].1;
            format!(
                "TTS {:.0} -> {:.0} cyc/CS (meltdown), MCS {:.0} -> {:.0} (flat), reactive \
                 {:.2}x best at {} procs; combining beats lock-based fetch-op {:.0} vs {:.0}",
                at("lock/tts", 0),
                at("lock/tts", hi),
                at("lock/mcs", 0),
                at("lock/mcs", hi),
                at("lock/reactive", hi) / at("lock/tts", hi).min(at("lock/mcs", hi)),
                procs[hi],
                at("fo/combining", hi),
                at("fo/tts-lock", hi),
            )
        };
        o.headline = headline;
        o
    }
    Scenario {
        name: "fig_3_15_baseline",
        figure: "Figs. 1.1/3.2/3.15",
        paper_says: "TTS best <= 4 procs then melts down; MCS flat; combining tree wins at \
                     high contention; reactive tracks the best everywhere",
        claims: &[
            Claim::Crossover {
                cheap: "lock/tts",
                scalable: "lock/mcs",
            },
            Claim::FlatScaling {
                series: "lock/mcs",
                from_x: 2.0,
                factor: 2.5,
            },
            Claim::TracksBest {
                series: "lock/reactive",
                over: &["lock/tts", "lock/mcs"],
                slack: 1.8,
            },
            Claim::Crossover {
                cheap: "fo/tts-lock",
                scalable: "fo/combining",
            },
            Claim::TracksBest {
                series: "fo/reactive",
                over: &["fo/tts-lock", "fo/queue-lock", "fo/combining"],
                slack: 2.5,
            },
        ],
        run,
    }
}

fn fig_3_16() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        // The prototype machine is 16 nodes; stop the sweep there.
        let procs: &[usize] = scale.pick(&[1, 2, 4, 8, 16], &[1, 2, 16]);
        let ops = scale.pick(exp::BASELINE_OPS, 256);
        let proto = CostModel::prototype;
        let algs: [(&'static str, LockAlg, bool); 5] = [
            ("lock/test&set", LockAlg::TestAndSet, false),
            ("lock/tts", LockAlg::Tts, false),
            ("lock/tts-dirnb", LockAlg::Tts, true),
            ("lock/mcs", LockAlg::Mcs, false),
            ("lock/reactive", LockAlg::Reactive, false),
        ];
        let mut o = Outcome {
            sweep: "series \\ procs",
            ..Outcome::default()
        };
        for (label, alg, fm) in algs {
            let pts = procs
                .iter()
                .map(|&p| (p as f64, exp::lock_overhead_n(alg, p, proto(), fm, ops)))
                .collect();
            o.push(label, pts);
        }
        let hi = procs.len() - 1;
        let (tts, dirnb, mcs) = {
            let at = |l: &str| o.series_named(l).unwrap().points[hi].1;
            (at("lock/tts"), at("lock/tts-dirnb"), at("lock/mcs"))
        };
        o.scalar("tts_hi", tts);
        o.scalar("dirnb_hi", dirnb);
        o.scalar("mcs_hi", mcs);
        o.headline = format!(
            "prototype model at {} procs: TTS {tts:.0} cyc/CS, Dir_NB full-map {dirnb:.0} \
             (softens, {:.2}x TTS) but still {:.1}x MCS ({mcs:.0})",
            procs[hi],
            dirnb / tts,
            dirnb / mcs,
        );
        o
    }
    Scenario {
        name: "fig_3_16_hardware",
        figure: "Fig. 3.16",
        paper_says: "Dir_NB full-map directory softens but does not cure TTS meltdown; \
                     limited pointers + software traps worsen it",
        claims: &[
            Claim::Crossover {
                cheap: "lock/tts",
                scalable: "lock/mcs",
            },
            // Softens: the full-map directory serves the invalidate
            // storm without LimitLESS traps...
            Claim::BoundedRatio {
                num: "dirnb_hi",
                den: Some("tts_hi"),
                min: 0.0,
                max: 0.9,
            },
            // ...but does not cure: still far off the queue lock.
            Claim::BoundedRatio {
                num: "dirnb_hi",
                den: Some("mcs_hi"),
                min: 1.5,
                max: f64::INFINITY,
            },
            Claim::TracksBest {
                series: "lock/reactive",
                over: &["lock/tts", "lock/mcs"],
                slack: 1.8,
            },
        ],
        run,
    }
}

fn fig_3_17() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let all = exp::patterns();
        let (ids, acq): (&[usize], u64) = scale.pick((&[1, 5, 9, 12][..], 12), (&[1, 12][..], 8));
        let mut ts = Vec::new();
        let mut mcs = Vec::new();
        let mut re = Vec::new();
        for &id in ids {
            let p = &all[id - 1];
            let opt = exp::multi_object(p, None, acq) as f64;
            let x = id as f64;
            ts.push((
                x,
                exp::multi_object(p, Some(LockAlg::TestAndSet), acq) as f64 / opt,
            ));
            mcs.push((
                x,
                exp::multi_object(p, Some(LockAlg::Mcs), acq) as f64 / opt,
            ));
            re.push((
                x,
                exp::multi_object(p, Some(LockAlg::Reactive), acq) as f64 / opt,
            ));
        }
        let re_worst = re.iter().fold(0f64, |m, &(_, r)| m.max(r));
        let ts_worst = ts.iter().fold(0f64, |m, &(_, r)| m.max(r));
        let mut o = Outcome {
            sweep: "norm. time \\ pattern",
            headline: format!(
                "reactive <= {re_worst:.2}x the per-lock-optimal static choice across \
                 patterns {ids:?}; test&set up to {ts_worst:.1}x"
            ),
            ..Outcome::default()
        };
        o.push("norm/test&set", ts);
        o.push("norm/mcs", mcs);
        o.push("norm/reactive", re);
        o.scalar("reactive_worst", re_worst);
        o.scalar("testandset_worst", ts_worst);
        o
    }
    Scenario {
        name: "fig_3_17_multi_object",
        figure: "Figs. 3.17-3.19",
        paper_says: "with many objects and skewed access, reactive ~= best static \
                     per-object choice",
        claims: &[
            Claim::BoundedRatio {
                num: "norm/reactive",
                den: None,
                min: 0.5,
                max: 1.6,
            },
            // The skewed patterns punish the wrong static choice hard;
            // reactive avoids that cliff.
            Claim::BoundedRatio {
                num: "testandset_worst",
                den: Some("reactive_worst"),
                min: 2.0,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

/// Shared sweep for the time-varying scenarios (Figures 3.21-3.23):
/// returns `(lengths, periods)` for the scale.
fn tv_scale(scale: Scale) -> (&'static [u64], u64) {
    scale.pick((&[256, 512, 1024, 2048][..], 4), (&[128, 512][..], 2))
}

fn fig_3_21() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let (lengths, periods) = tv_scale(scale);
        let mut o = Outcome {
            sweep: "series \\ period length",
            ..Outcome::default()
        };
        let mut last_first = (1.0, 1.0);
        for &pct in &[10u64, 90] {
            let mut ratio = Vec::new();
            let mut switches = Vec::new();
            for &l in lengths {
                let mcs = exp::time_varying(LockAlg::Mcs, l, pct, periods) as f64;
                let (t, s) = exp::time_varying_counted(LockAlg::Reactive, l, pct, periods);
                ratio.push((l as f64, t as f64 / mcs));
                switches.push((l as f64, s as f64));
            }
            if pct == 90 {
                last_first = (ratio[ratio.len() - 1].1, ratio[0].1);
            }
            o.push(
                if pct == 10 {
                    "re/mcs@10%"
                } else {
                    "re/mcs@90%"
                },
                ratio,
            );
            o.push(
                if pct == 10 {
                    "switches@10%"
                } else {
                    "switches@90%"
                },
                switches,
            );
        }
        // One committed protocol change per contention-phase boundary:
        // `periods` repetitions of (low, high) give 2*periods phases and
        // 2*periods - 1 boundaries.
        o.scalar("switches_expected", (2 * periods - 1) as f64);
        o.scalar("re_mcs_90_last", last_first.0);
        o.scalar("re_mcs_90_first", last_first.1);
        o.headline = format!(
            "reactive/MCS {:.2} -> {:.2} (90% contention) as the period grows {} -> {}; \
             exactly {} switches per run (one per phase boundary, from SwitchLog)",
            last_first.1,
            last_first.0,
            lengths[0],
            lengths[lengths.len() - 1],
            2 * periods - 1,
        );
        o
    }
    Scenario {
        name: "fig_3_21_time_varying",
        figure: "Fig. 3.21",
        paper_says: "under phase-changing contention the reactive lock re-converges within \
                     a bounded lag",
        claims: &[
            // Bounded lag: at long periods the switching transient
            // amortizes to within 15% of the best static protocol.
            Claim::BoundedRatio {
                num: "re_mcs_90_last",
                den: None,
                min: 0.85,
                max: 1.15,
            },
            // Re-convergence: the penalty shrinks as periods grow.
            Claim::BoundedRatio {
                num: "re_mcs_90_last",
                den: Some("re_mcs_90_first"),
                min: 0.0,
                max: 0.92,
            },
            // Adaptation is exact: one switch per phase boundary at
            // every sweep point, read from the shared API's SwitchLog.
            Claim::BoundedRatio {
                num: "switches@90%",
                den: Some("switches_expected"),
                min: 1.0,
                max: 1.0,
            },
            Claim::BoundedRatio {
                num: "switches@10%",
                den: Some("switches_expected"),
                min: 1.0,
                max: 1.0,
            },
        ],
        run,
    }
}

fn fig_3_22() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let (lengths, periods) = tv_scale(scale);
        let pct = 50;
        let mut o = Outcome {
            sweep: "series \\ period length",
            ..Outcome::default()
        };
        let mut comp = Vec::new();
        let mut always = Vec::new();
        let mut comp_sw = Vec::new();
        let mut always_sw = Vec::new();
        for &l in lengths {
            let mcs = exp::time_varying(LockAlg::Mcs, l, pct, periods) as f64;
            let (ta, sa) = exp::time_varying_counted(LockAlg::Reactive, l, pct, periods);
            let (tc, sc) = exp::time_varying_counted(LockAlg::ReactiveCompetitive, l, pct, periods);
            always.push((l as f64, ta as f64 / mcs));
            comp.push((l as f64, tc as f64 / mcs));
            always_sw.push((l as f64, sa as f64));
            comp_sw.push((l as f64, sc as f64));
        }
        let (c0, a0) = (comp[0].1, always[0].1);
        let (csw, asw) = (
            comp_sw.iter().map(|&(_, s)| s).sum::<f64>(),
            always_sw.iter().map(|&(_, s)| s).sum::<f64>(),
        );
        o.push("comp3/mcs", comp);
        o.push("always/mcs", always);
        o.push("switches/comp3", comp_sw);
        o.push("switches/always", always_sw);
        o.scalar("comp3_shortest", c0);
        o.scalar("always_shortest", a0);
        o.scalar("comp3_switch_total", csw);
        o.scalar("always_switch_total", asw);
        o.headline = format!(
            "oscillating load, shortest period: comp3 {c0:.2}x MCS vs always-switch {a0:.2}x; \
             {csw:.0} vs {asw:.0} total switches — the 3-competitive policy bounds the \
             worst case with a fraction of the changes"
        );
        o
    }
    Scenario {
        name: "fig_3_22_competitive",
        figure: "Fig. 3.22",
        paper_says: "3-competitive policy bounds worst-case cost vs switch-immediately \
                     under oscillating load",
        claims: &[
            // Bounded worst case: close to switch-immediately even on
            // the shortest (most adversarial) period. At quick scale
            // the 8800-cycle switch threshold is large relative to a
            // phase, so the lag is visible but bounded; a policy
            // regression to never-adapting would sit at hysteresis'
            // ~3.4-4x and blow both bounds.
            Claim::BoundedRatio {
                num: "comp3_shortest",
                den: Some("always_shortest"),
                min: 0.5,
                max: 1.3,
            },
            Claim::BoundedRatio {
                num: "comp3/mcs",
                den: None,
                min: 0.8,
                max: 2.2,
            },
            // ...while committing far fewer protocol changes.
            Claim::BoundedRatio {
                num: "comp3_switch_total",
                den: Some("always_switch_total"),
                min: 0.0,
                max: 0.6,
            },
        ],
        run,
    }
}

fn fig_3_23() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let (lengths, periods) = tv_scale(scale);
        let pct = 50;
        let mut o = Outcome {
            sweep: "series \\ period length",
            ..Outcome::default()
        };
        struct Row {
            label: &'static str,
            alg: LockAlg,
            ratio: Vec<(f64, f64)>,
            switches: Vec<(f64, f64)>,
        }
        let row = |label, alg| Row {
            label,
            alg,
            ratio: Vec::new(),
            switches: Vec::new(),
        };
        let mut rows = vec![
            row("hyst(4,500)/mcs", LockAlg::ReactiveHysteresis(4, 500)),
            row("hyst(20,55)/mcs", LockAlg::ReactiveHysteresis(20, 55)),
            row("always/mcs", LockAlg::Reactive),
        ];
        for &l in lengths {
            let mcs = exp::time_varying(LockAlg::Mcs, l, pct, periods) as f64;
            for r in rows.iter_mut() {
                let (t, s) = exp::time_varying_counted(r.alg, l, pct, periods);
                r.ratio.push((l as f64, t as f64 / mcs));
                r.switches.push((l as f64, s as f64));
            }
        }
        let tally = |sw: &[(f64, f64)]| sw.iter().map(|&(_, s)| s).sum::<f64>();
        let h45_sw = tally(&rows[0].switches);
        let h2055_sw = tally(&rows[1].switches);
        let always_sw = tally(&rows[2].switches);
        let h45_worst = rows[0].ratio.iter().fold(0f64, |m, &(_, r)| m.max(r));
        for r in rows {
            o.push(r.label, r.ratio);
        }
        o.scalar("hyst4500_switch_total", h45_sw);
        o.scalar("hyst2055_switch_total", h2055_sw);
        o.scalar("always_switch_total", always_sw);
        o.scalar("hyst4500_worst", h45_worst);
        o.headline = format!(
            "hysteresis damps switching: hyst(20,55) commits {h2055_sw:.0} and hyst(4,500) \
             {h45_sw:.0} changes vs always-switch's {always_sw:.0}; hyst(4,500) stays \
             <= {h45_worst:.2}x MCS"
        );
        o
    }
    Scenario {
        name: "fig_3_23_hysteresis",
        figure: "Fig. 3.23",
        paper_says: "hysteresis damps protocol thrashing at switch-boundary contention",
        claims: &[
            // Strong damping: the deep-hysteresis pair never switches on
            // this schedule.
            Claim::BoundedRatio {
                num: "hyst2055_switch_total",
                den: Some("always_switch_total"),
                min: 0.0,
                max: 0.34,
            },
            // The asymmetric pair still adapts upward promptly but
            // switches less than switch-immediately...
            Claim::BoundedRatio {
                num: "hyst4500_switch_total",
                den: Some("always_switch_total"),
                min: 0.0,
                max: 1.0,
            },
            // ...at competitive cost (the never-adapting hyst(20,55)
            // pair sits at ~3.4-4x MCS on this schedule; 2.0 separates
            // "adapts with a lag" from "stuck in TTS").
            Claim::BoundedRatio {
                num: "hyst4500_worst",
                den: None,
                min: 0.8,
                max: 2.0,
            },
        ],
        run,
    }
}

fn fig_3_24() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let mut names = vec!["gamteb", "aq"];
        let mut cases: Vec<Case<FetchOpAlg>> = vec![
            Box::new(|a| gamteb::run(&gamteb::GamtebConfig::small(8, a)).elapsed as f64),
            Box::new(|a| aq::run_queue(&aq::AqConfig::small(4, a, WaitAlg::Spin)).elapsed as f64),
        ];
        if scale == Scale::Full {
            names.push("tsp");
            cases.push(Box::new(|a| {
                tsp::run(&tsp::TspConfig::small(4, a)).elapsed as f64
            }));
        }
        let algs = [
            ("app/queue-lock", FetchOpAlg::QueueLock),
            ("app/combining", FetchOpAlg::Combining),
            ("app/reactive", FetchOpAlg::Reactive),
        ];
        let mut o = Outcome {
            sweep: "cycles \\ app index",
            ..Outcome::default()
        };
        let ratios = adaptive_matrix(&mut o, &algs, &cases);
        let worst = ratios.iter().fold(0f64, |m, &r| m.max(r));
        o.scalar("reactive_worst_ratio", worst);
        o.headline = format!(
            "reactive fetch-and-op within {worst:.2}x of the best static protocol \
             across {names:?} (small problem sizes amplify switch transients)"
        );
        o
    }
    Scenario {
        name: "fig_3_24_apps_fetchop",
        figure: "Fig. 3.24",
        paper_says: "app throughput with reactive fetch-and-op within a few % of best \
                     static protocol",
        claims: &[Claim::TracksBest {
            series: "app/reactive",
            over: &["app/queue-lock", "app/combining"],
            slack: 1.45,
        }],
        run,
    }
}

fn fig_3_25() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&[4, 8, 16], &[4, 8]);
        let mut cases: Vec<Case<LockAlg>> = Vec::new();
        for &p in procs {
            cases.push(Box::new(move |a| {
                let mut cfg = mp3d::Mp3dConfig::small(p, a);
                cfg.particles_per_proc = 8;
                mp3d::run(&cfg).elapsed as f64
            }));
        }
        for &p in scale.pick(&[4, 8, 16][..], &[4][..]) {
            cases.push(Box::new(move |a| {
                cholesky::run(&cholesky::CholeskyConfig::small(p, a)).elapsed as f64
            }));
        }
        let algs = [
            ("app/test&set", LockAlg::TestAndSet),
            ("app/mcs", LockAlg::Mcs),
            ("app/reactive", LockAlg::Reactive),
        ];
        let mut o = Outcome {
            sweep: "cycles \\ app index",
            ..Outcome::default()
        };
        let ratios = adaptive_matrix(&mut o, &algs, &cases);
        let worst = ratios.iter().fold(0f64, |m, &r| m.max(r));
        o.scalar("reactive_worst_ratio", worst);
        o.headline = format!(
            "reactive locks within {worst:.2}x of the best static protocol across \
             MP3D/Cholesky at P = {procs:?}"
        );
        o
    }
    Scenario {
        name: "fig_3_25_apps_locks",
        figure: "Fig. 3.25",
        paper_says: "app throughput with reactive locks within a few % of best static \
                     protocol",
        claims: &[Claim::TracksBest {
            series: "app/reactive",
            over: &["app/test&set", "app/mcs"],
            slack: 1.35,
        }],
        run,
    }
}

fn fig_3_26() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&exp::BASELINE_PROCS, &[1, 16]);
        let ops = scale.pick(exp::BASELINE_OPS, 256);
        let mut o = Outcome {
            sweep: "series \\ procs",
            ..Outcome::default()
        };
        let lock_algs: [(&'static str, LockAlg); 3] = [
            ("lock/tts", LockAlg::Tts),
            ("lock/mcs", LockAlg::Mcs),
            ("lock/mp-queue", LockAlg::MpQueue),
        ];
        for (label, alg) in lock_algs {
            let pts = procs
                .iter()
                .map(|&p| {
                    (
                        p as f64,
                        exp::lock_overhead_n(alg, p, CostModel::nwo(), false, ops),
                    )
                })
                .collect();
            o.push(label, pts);
        }
        o.push(
            "lock/reactive-smmp",
            procs
                .iter()
                .map(|&p| (p as f64, exp::mp_reactive_lock_overhead_n(p, ops)))
                .collect(),
        );
        let fo_algs: [(&'static str, FetchOpAlg); 3] = [
            ("fo/tts-lock", FetchOpAlg::TtsLock),
            ("fo/mp-central", FetchOpAlg::MpCentral),
            ("fo/mp-combining", FetchOpAlg::MpCombining),
        ];
        for (label, alg) in fo_algs {
            let pts = procs
                .iter()
                .map(|&p| {
                    (
                        p as f64,
                        exp::fetchop_overhead_n(alg, p, CostModel::nwo(), ops),
                    )
                })
                .collect();
            o.push(label, pts);
        }
        o.push(
            "fo/reactive-smmp",
            procs
                .iter()
                .map(|&p| (p as f64, exp::mp_reactive_fetchop_overhead_n(p, ops)))
                .collect(),
        );
        let hi = procs.len() - 1;
        let at = |o: &Outcome, l: &str| o.series_named(l).unwrap().points[hi].1;
        let fo_re = at(&o, "fo/reactive-smmp");
        let fo_tts = at(&o, "fo/tts-lock");
        o.scalar("fo_reactive_hi", fo_re);
        o.scalar("fo_tts_hi", fo_tts);
        let headline = format!(
            "SM->MP lock crossover tracked: reactive {:.0} cyc/CS at {} procs vs TTS {:.0} / \
             MP queue {:.0}; reactive fetch-op leaves SM ({fo_re:.0} vs TTS-lock {fo_tts:.0}) \
             but lags the MP-combining optimum ({:.0})",
            at(&o, "lock/reactive-smmp"),
            procs[hi],
            at(&o, "lock/tts"),
            at(&o, "lock/mp-queue"),
            at(&o, "fo/mp-combining"),
        );
        o.headline = headline;
        o
    }
    Scenario {
        name: "fig_3_26_message_passing",
        figure: "Fig. 3.26",
        paper_says: "reactive shared-memory <-> message-passing selection tracks the \
                     crossover",
        claims: &[
            Claim::Crossover {
                cheap: "lock/tts",
                scalable: "lock/mp-queue",
            },
            Claim::Crossover {
                cheap: "fo/tts-lock",
                scalable: "fo/mp-combining",
            },
            Claim::TracksBest {
                series: "lock/reactive-smmp",
                over: &["lock/tts", "lock/mp-queue"],
                slack: 3.5,
            },
            // The reactive fetch-op leaves the melting SM protocol
            // (switches to MP) even though it lags the MP optimum —
            // pinned so a regression back to pure-SM behaviour fails.
            Claim::BoundedRatio {
                num: "fo_reactive_hi",
                den: Some("fo_tts_hi"),
                min: 0.0,
                max: 0.85,
            },
        ],
        run,
    }
}

// ---------------------------------------------------------------------
// Chapter 4 — waiting algorithms
// ---------------------------------------------------------------------

fn table_4_1() -> Scenario {
    fn run(_scale: Scale) -> Outcome {
        let c = CostModel::nwo();
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "model B = {} cycles ({}/{}/{} unload/reenable/reload), following the \
                 paper's ~500-cycle measured split",
                c.block_cost(),
                c.unload,
                c.reenable,
                c.reload
            ),
            ..Outcome::default()
        };
        o.scalar("unload", c.unload as f64);
        o.scalar("reenable", c.reenable as f64);
        o.scalar("reload", c.reload as f64);
        o.scalar("block_cost", c.block_cost() as f64);
        o
    }
    Scenario {
        name: "table_4_1_blocking_cost",
        figure: "Table 4.1",
        paper_says: "blocking ~= 500 cycles split unload ~300 / reenable ~100 / reload ~65",
        claims: &[
            Claim::BoundedRatio {
                num: "block_cost",
                den: None,
                min: 465.0,
                max: 465.0,
            },
            Claim::BoundedRatio {
                num: "unload",
                den: None,
                min: 300.0,
                max: 300.0,
            },
            Claim::BoundedRatio {
                num: "reenable",
                den: None,
                min: 100.0,
                max: 100.0,
            },
            Claim::BoundedRatio {
                num: "reload",
                den: None,
                min: 65.0,
                max: 65.0,
            },
        ],
        run,
    }
}

const B: f64 = 465.0;

fn fig_4_4() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let scales: &[f64] = scale.pick(&[0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0], &[0.25, 1.0, 4.0]);
        let mut o = Outcome {
            sweep: "E[C]/E[C_opt] \\ mean wait (xB)",
            ..Outcome::default()
        };
        for (label, alpha) in [
            ("2phase a=0.54", 0.5413f64),
            ("2phase a=1.0", 1.0),
            ("2phase a=0.25", 0.25),
        ] {
            let pts = scales
                .iter()
                .map(|&s| {
                    let d = waiting_theory::WaitDist::exponential_with_mean(s * B);
                    (s, waiting_theory::competitive_factor(&d, alpha, B, 1.0))
                })
                .collect();
            o.push(label, pts);
        }
        let rho_054 = worst_case_factor(Family::Exponential, 0.5413, B);
        let rho_100 = worst_case_factor(Family::Exponential, 1.0, B);
        let (a_star, rho_star) = optimal_alpha(Family::Exponential, B);
        o.scalar("rho_054", rho_054);
        o.scalar("rho_100", rho_100);
        o.scalar("alpha_star", a_star);
        o.scalar("rho_star", rho_star);
        o.headline = format!(
            "Lpoll = 0.54B is {rho_054:.4}-competitive in expectation (paper: e/(e-1) = 1.5820); \
             search recovers a* = {a_star:.4}, rho* = {rho_star:.4}"
        );
        o
    }
    Scenario {
        name: "fig_4_4_exponential",
        figure: "Fig. 4.4",
        paper_says: "exponential waits: two-phase with Lpoll = 0.54*B within 1.58x of optimal",
        claims: &[
            Claim::BoundedRatio {
                num: "rho_054",
                den: None,
                min: 1.5,
                max: 1.585,
            },
            Claim::WithinFactorOfOptimal {
                value: "rho_054",
                optimal: "rho_star",
                factor: 1.002,
            },
            Claim::BoundedRatio {
                num: "alpha_star",
                den: None,
                min: 0.52,
                max: 0.56,
            },
            // The classic Lpoll = B choice is exactly 2-competitive in
            // the adversary's limit.
            Claim::BoundedRatio {
                num: "rho_100",
                den: None,
                min: 1.9,
                max: 2.0,
            },
        ],
        run,
    }
}

fn fig_4_5() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let scales: &[f64] = scale.pick(&[0.25, 0.5, 1.0, 2.0, 4.0, 10.0], &[0.5, 2.0]);
        let mut o = Outcome {
            sweep: "E[C]/E[C_opt] \\ bound (xB)",
            ..Outcome::default()
        };
        for (label, alpha) in [("2phase a=0.62", 0.62f64), ("2phase a=1.0", 1.0)] {
            let pts = scales
                .iter()
                .map(|&s| {
                    let d = waiting_theory::WaitDist::uniform(s * B);
                    (s, waiting_theory::competitive_factor(&d, alpha, B, 1.0))
                })
                .collect();
            o.push(label, pts);
        }
        let rho_062 = worst_case_factor(Family::Uniform, 0.62, B);
        let (a_star, rho_star) = optimal_alpha(Family::Uniform, B);
        o.scalar("rho_062", rho_062);
        o.scalar("alpha_star", a_star);
        o.scalar("rho_star", rho_star);
        o.headline = format!(
            "Lpoll = 0.62B is {rho_062:.4}-competitive under uniform waits (paper: 1.62); \
             search recovers a* = {a_star:.4}, rho* = {rho_star:.4}"
        );
        o
    }
    Scenario {
        name: "fig_4_5_uniform",
        figure: "Fig. 4.5",
        paper_says: "uniform waits: a* ~= 0.62, 1.62-competitive",
        claims: &[
            Claim::BoundedRatio {
                num: "rho_062",
                den: None,
                min: 1.55,
                max: 1.63,
            },
            Claim::WithinFactorOfOptimal {
                value: "rho_062",
                optimal: "rho_star",
                factor: 1.005,
            },
            Claim::BoundedRatio {
                num: "alpha_star",
                den: None,
                min: 0.60,
                max: 0.64,
            },
        ],
        run,
    }
}

fn fig_4_6() -> Scenario {
    fn run(_scale: Scale) -> Outcome {
        // Profiles are cheap (P = 8 small configs); both scales run the
        // same deterministic workloads.
        let fib = fib::run(&fib::FibConfig::small(8, WaitAlg::Spin));
        let aqr = aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, WaitAlg::Spin));
        let cg = cgrad::run(&cgrad::CgradConfig::small(8, WaitAlg::Spin));
        let jb = jacobi::run_barrier(&jacobi::JacobiConfig::small(8, WaitAlg::Spin));
        let fh = fibheap::run(&fibheap::FibHeapConfig::small(8, WaitAlg::Spin));
        let mx = mutex_app::run(&mutex_app::MutexConfig::small(8, WaitAlg::Spin));
        // A missing or empty histogram yields NaN, which fails every
        // BoundedRatio range check as a clean claim FAIL instead of a
        // panic (the pre-scenario bench printed "(no waits recorded)").
        let ratio = |stats: &alewife_sim::Stats, key: &str| match stats.waits.get(key) {
            Some(h) if h.count > 0 => (
                h.percentile(50.0) as f64 / h.mean(),
                h.max as f64 / h.mean(),
            ),
            _ => (f64::NAN, f64::NAN),
        };
        let (fib_p50, fib_tail) = ratio(&fib.stats, "future");
        let (aq_p50, _) = ratio(&aqr.stats, "future");
        let (cg_p50, cg_tail) = ratio(&cg.stats, "barrier");
        let (jb_p50, _) = ratio(&jb.stats, "barrier");
        let (fh_p50, _) = ratio(&fh.stats, "mutex");
        let (mx_p50, _) = ratio(&mx.stats, "mutex");
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "p50/mean: futures {fib_p50:.2}/{aq_p50:.2} (right-skewed, exponential-like), \
                 barriers {cg_p50:.2}/{jb_p50:.2} (median ~= mean, uniform-like), mutexes \
                 {fh_p50:.2}/{mx_p50:.2} (heavy-tailed); barrier max/mean {cg_tail:.1} vs \
                 futures {fib_tail:.1}"
            ),
            ..Outcome::default()
        };
        o.scalar("fib_p50_over_mean", fib_p50);
        o.scalar("aq_p50_over_mean", aq_p50);
        o.scalar("cgrad_p50_over_mean", cg_p50);
        o.scalar("jbar_p50_over_mean", jb_p50);
        o.scalar("fibheap_p50_over_mean", fh_p50);
        o.scalar("mutex_p50_over_mean", mx_p50);
        o.scalar("fib_max_over_mean", fib_tail);
        o.scalar("cgrad_max_over_mean", cg_tail);
        o
    }
    Scenario {
        name: "fig_4_6_wait_profiles",
        figure: "Figs. 4.6-4.11",
        paper_says: "measured waiting-time distributions match the assumed families \
                     (exponential producer-consumer/mutex, uniform barriers)",
        claims: &[
            // Exponential-like: median well below the mean (ln 2 ~= 0.69
            // for a true exponential).
            Claim::BoundedRatio {
                num: "fib_p50_over_mean",
                den: None,
                min: 0.35,
                max: 0.95,
            },
            Claim::BoundedRatio {
                num: "aq_p50_over_mean",
                den: None,
                min: 0.35,
                max: 0.95,
            },
            // Uniform-like: median tracks the mean.
            Claim::BoundedRatio {
                num: "cgrad_p50_over_mean",
                den: None,
                min: 0.7,
                max: 1.3,
            },
            Claim::BoundedRatio {
                num: "jbar_p50_over_mean",
                den: None,
                min: 0.7,
                max: 1.3,
            },
            // Mutex waits: strongly right-skewed.
            Claim::BoundedRatio {
                num: "fibheap_p50_over_mean",
                den: None,
                min: 0.05,
                max: 0.6,
            },
            Claim::BoundedRatio {
                num: "mutex_p50_over_mean",
                den: None,
                min: 0.05,
                max: 0.6,
            },
            // The barrier family's bounded support shows in the tail.
            Claim::BoundedRatio {
                num: "cgrad_max_over_mean",
                den: Some("fib_max_over_mean"),
                min: 0.0,
                max: 0.95,
            },
        ],
        run,
    }
}

fn fig_4_12() -> Scenario {
    fn run(_scale: Scale) -> Outcome {
        let b = CostModel::nwo().block_cost();
        let algs = [
            ("wait/spin", WaitAlg::Spin),
            ("wait/block", WaitAlg::Block),
            ("wait/2phase", WaitAlg::TwoPhase((b as f64 * 0.5413) as u64)),
        ];
        let cases: [Case<WaitAlg>; 3] = [
            Box::new(|w| {
                jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, w)).elapsed as f64
            }),
            Box::new(|w| fib::run(&fib::FibConfig::small(8, w)).elapsed as f64),
            Box::new(|w| {
                aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, w)).elapsed as f64
            }),
        ];
        let mut o = Outcome {
            sweep: "cycles \\ app index",
            ..Outcome::default()
        };
        let ratios = adaptive_matrix(&mut o, &algs, &cases);
        o.scalar("jacobi_ratio", ratios[0]);
        o.scalar("fib_ratio", ratios[1]);
        o.scalar("aq_ratio", ratios[2]);
        o.headline = format!(
            "2phase(0.54B) vs best static: Jacobi {:.2}x, AQ {:.2}x; Fib {:.2}x — at these \
             miniature sizes blocking's unload/reload dominates Fib's short futures, a \
             known small-scale artifact pinned by the claim bounds",
            ratios[0], ratios[2], ratios[1]
        );
        o
    }
    Scenario {
        name: "fig_4_12_producer_consumer",
        figure: "Fig. 4.12",
        paper_says: "two-phase waiting ~= best static poll/block choice for \
                     J-structures/futures",
        claims: &[
            Claim::BoundedRatio {
                num: "jacobi_ratio",
                den: None,
                min: 0.8,
                max: 1.2,
            },
            Claim::BoundedRatio {
                num: "aq_ratio",
                den: None,
                min: 0.8,
                max: 2.1,
            },
            // Regression pin for the Fib small-scale anomaly: two-phase
            // pays poll+block on most of Fib's sub-B waits. If this
            // drifts further from the paper's ~= 1, investigate.
            Claim::BoundedRatio {
                num: "fib_ratio",
                den: None,
                min: 0.8,
                max: 3.6,
            },
        ],
        run,
    }
}

fn fig_4_13() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let b = CostModel::nwo().block_cost();
        let procs: &[usize] = scale.pick(&[4, 8, 16], &[8]);
        let algs = [
            ("wait/spin", WaitAlg::Spin),
            ("wait/block", WaitAlg::Block),
            ("wait/2phase", WaitAlg::TwoPhase(b)),
        ];
        let mut cases: Vec<Case<WaitAlg>> = Vec::new();
        for &p in procs {
            cases.push(Box::new(move |w| {
                cgrad::run(&cgrad::CgradConfig::small(p, w)).elapsed as f64
            }));
            cases.push(Box::new(move |w| {
                jacobi::run_barrier(&jacobi::JacobiConfig::small(p, w)).elapsed as f64
            }));
        }
        let mut o = Outcome {
            sweep: "cycles \\ app index",
            ..Outcome::default()
        };
        let ratios = adaptive_matrix(&mut o, &algs, &cases);
        let worst = ratios.iter().fold(0f64, |m, &r| m.max(r));
        o.scalar("two_phase_worst_ratio", worst);
        o.headline = format!(
            "2phase(L=B) within {worst:.2}x of the best static choice across CGrad and \
             Jacobi-Bar at P = {procs:?} despite uniform barrier waits"
        );
        o
    }
    Scenario {
        name: "fig_4_13_barriers",
        figure: "Fig. 4.13",
        paper_says: "two-phase waiting competitive at barriers despite uniform waits",
        claims: &[Claim::TracksBest {
            series: "wait/2phase",
            over: &["wait/spin", "wait/block"],
            slack: 1.25,
        }],
        run,
    }
}

fn fig_4_14() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let b = CostModel::nwo().block_cost();
        let procs: &[usize] = scale.pick(&[4, 8, 16], &[8]);
        let algs = [
            ("wait/spin", WaitAlg::Spin),
            ("wait/block", WaitAlg::Block),
            ("wait/2phase", WaitAlg::TwoPhase((b as f64 * 0.5413) as u64)),
        ];
        let mut cases: Vec<Case<WaitAlg>> = Vec::new();
        for &p in procs {
            cases.push(Box::new(move |w| {
                fibheap::run(&fibheap::FibHeapConfig::small(p, w)).elapsed as f64
            }));
            cases.push(Box::new(move |w| {
                countnet::run(&countnet::CountNetConfig::small(p, w)).elapsed as f64
            }));
            cases.push(Box::new(move |w| {
                mutex_app::run(&mutex_app::MutexConfig::small(p, w)).elapsed as f64
            }));
        }
        let mut o = Outcome {
            sweep: "cycles \\ app index",
            ..Outcome::default()
        };
        let ratios = adaptive_matrix(&mut o, &algs, &cases);
        let worst = ratios.iter().fold(0f64, |m, &r| m.max(r));
        // The meltdown scalar compares the spin and two-phase series
        // pointwise (both pushed by adaptive_matrix just above).
        let spin_over_2p = {
            let spin = o.series_named("wait/spin").unwrap();
            let two = o.series_named("wait/2phase").unwrap();
            spin.points
                .iter()
                .zip(&two.points)
                .fold(0f64, |m, (&(_, s), &(_, t))| m.max(s / t))
        };
        o.scalar("two_phase_worst_ratio", worst);
        o.scalar("spin_meltdown_vs_two_phase", spin_over_2p);
        o.headline = format!(
            "2phase(0.54B) within {worst:.2}x of best static across \
             FibHeap/CountNet/Mutex at P = {procs:?}; always-spin melts to \
             {spin_over_2p:.1}x two-phase under load"
        );
        o
    }
    Scenario {
        name: "fig_4_14_mutex",
        figure: "Fig. 4.14",
        paper_says: "two-phase waiting competitive for mutexes under varied load",
        claims: &[
            Claim::TracksBest {
                series: "wait/2phase",
                over: &["wait/spin", "wait/block"],
                slack: 1.35,
            },
            Claim::BoundedRatio {
                num: "spin_meltdown_vs_two_phase",
                den: None,
                min: 1.3,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

fn table_4_6() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let b = CostModel::nwo().block_cost();
        let half = WaitAlg::TwoPhase(b / 2);
        let full = WaitAlg::TwoPhase(b);
        type Runner = Box<dyn Fn(WaitAlg) -> f64>;
        let mut apps: Vec<(&'static str, Runner)> = vec![
            (
                "jacobi",
                Box::new(|w| {
                    jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, w)).elapsed as f64
                }),
            ),
            (
                "fib",
                Box::new(|w| fib::run(&fib::FibConfig::small(8, w)).elapsed as f64),
            ),
            (
                "cgrad",
                Box::new(|w| cgrad::run(&cgrad::CgradConfig::small(8, w)).elapsed as f64),
            ),
            (
                "mutex",
                Box::new(|w| mutex_app::run(&mutex_app::MutexConfig::small(8, w)).elapsed as f64),
            ),
        ];
        if scale == Scale::Full {
            apps.push((
                "aq",
                Box::new(|w| {
                    aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, w)).elapsed as f64
                }),
            ));
            apps.push((
                "jacobi-bar",
                Box::new(|w| {
                    jacobi::run_barrier(&jacobi::JacobiConfig::small(8, w)).elapsed as f64
                }),
            ));
            apps.push((
                "fibheap",
                Box::new(|w| fibheap::run(&fibheap::FibHeapConfig::small(8, w)).elapsed as f64),
            ));
            apps.push((
                "countnet",
                Box::new(|w| countnet::run(&countnet::CountNetConfig::small(8, w)).elapsed as f64),
            ));
        }
        let mut ratio = Vec::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, (_, runner)) in apps.iter().enumerate() {
            let r = runner(half) / runner(full);
            lo = lo.min(r);
            hi = hi.max(r);
            ratio.push((i as f64, r));
        }
        let names: Vec<&str> = apps.iter().map(|&(n, _)| n).collect();
        let mut o = Outcome {
            sweep: "L=0.5B / L=B \\ app index",
            headline: format!(
                "elapsed(Lpoll = B/2) / elapsed(Lpoll = B) in [{lo:.2}, {hi:.2}] across \
                 {names:?} — the rule of thumb costs at most a few % either way"
            ),
            ..Outcome::default()
        };
        o.push("ratio/halfB_over_B", ratio);
        o
    }
    Scenario {
        name: "table_4_6_lpoll_half",
        figure: "Table 4.6",
        paper_says: "Lpoll = B/2 rule of thumb within a few % of optimal across apps",
        claims: &[Claim::BoundedRatio {
            num: "ratio/halfB_over_B",
            den: None,
            min: 0.8,
            max: 1.2,
        }],
        run,
    }
}

// ---------------------------------------------------------------------
// Beyond the paper — kernel-built objects
// ---------------------------------------------------------------------

fn barrier_reactive() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&[2, 4, 8, 16, 32], &[2, 32]);
        let rounds = scale.pick(24, 12);
        let mut central = Vec::new();
        let mut tree = Vec::new();
        let mut reactive = Vec::new();
        let mut switches_hi = 0u64;
        for &p in procs {
            let x = p as f64;
            central.push((
                x,
                exp::barrier_overhead_n(exp::BarrierAlg::Central, p, rounds),
            ));
            tree.push((x, exp::barrier_overhead_n(exp::BarrierAlg::Tree, p, rounds)));
            let (r, s) = exp::barrier_overhead_counted(exp::BarrierAlg::Reactive, p, rounds);
            reactive.push((x, r));
            switches_hi = s;
        }
        let hi = procs.len() - 1;
        let worst = reactive
            .iter()
            .zip(central.iter().zip(&tree))
            .fold(0f64, |m, (&(_, r), (&(_, c), &(_, t)))| m.max(r / c.min(t)));
        let mut o = Outcome {
            sweep: "cycles/round \\ procs",
            headline: format!(
                "reactive barrier within {worst:.2}x of the best static arrival protocol \
                 across P = {}..{}; tree beats central {:.0} vs {:.0} cycles/round at P = {} \
                 ({} switch(es), via the switching kernel)",
                procs[0], procs[hi], tree[hi].1, central[hi].1, procs[hi], switches_hi,
            ),
            ..Outcome::default()
        };
        o.push("bar/central", central);
        o.push("bar/tree", tree);
        o.push("bar/reactive", reactive);
        o.scalar("reactive_switches_hi", switches_hi as f64);
        o.scalar("reactive_worst_ratio", worst);
        o
    }
    Scenario {
        name: "barrier_reactive",
        figure: "— (beyond the paper)",
        paper_says: "the kernel-built reactive barrier tracks the best static arrival \
                     protocol: central sense-reversing at low P, combining tree at high P",
        claims: &[
            Claim::Crossover {
                cheap: "bar/central",
                scalable: "bar/tree",
            },
            Claim::TracksBest {
                series: "bar/reactive",
                over: &["bar/central", "bar/tree"],
                slack: 1.25,
            },
            // The tree's scalability edge at the high end is real, and
            // the reactive barrier reached it by switching (count read
            // from the kernel).
            Claim::BoundedRatio {
                num: "reactive_switches_hi",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

// ---------------------------------------------------------------------
// Beyond the paper — crash/abort robustness and RMR accounting
// ---------------------------------------------------------------------

fn rmr_recoverable() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&[2, 4, 8, 16], &[2, 8]);
        let iters = scale.pick(40, 16);
        let kills = scale.pick(3, 2);
        let mut per_passage = Vec::new();
        let mut per_log = Vec::new();
        let mut conserved = Vec::new();
        let mut kills_total = 0.0;
        for &p in procs {
            let s = crate::rmr::recoverable_rmr(p, iters, kills, 6_000, 1_500);
            let x = p as f64;
            let per = s.rmr_cc as f64 / s.passages as f64;
            per_passage.push((x, per));
            // log2(n), floored at 1 so the n = 2 point divides by the
            // tree's single level.
            per_log.push((x, per / (p as f64).log2().max(1.0)));
            conserved.push((x, s.passages as f64 / (iters * p as u64) as f64));
            kills_total += s.kills as f64;
        }
        let worst = per_log.iter().fold(0f64, |m, &(_, v)| m.max(v));
        let mut o = Outcome {
            sweep: "RMR \\ procs",
            headline: format!(
                "recoverable mutex: <= {worst:.1} CC RMR per passage per log2(n) across \
                 crash schedules ({kills_total:.0} kills injected); every passage conserved"
            ),
            ..Outcome::default()
        };
        o.push("rmr/cc_per_passage", per_passage);
        o.push("rmr/cc_per_passage_per_log", per_log);
        o.push("rmr/passages_conserved", conserved);
        o.scalar("kills_total", kills_total);
        o
    }
    Scenario {
        name: "rmr_recoverable",
        figure: "— (beyond the paper; Golab–Ramaraju RME bound)",
        paper_says: "the crash-recoverable mutex costs O(log n) CC-model RMRs per passage \
                     even across crash/recovery schedules, and no passage is lost",
        claims: &[
            // The sub-logarithmic regime: RMRs per passage grow no
            // faster than c * log2(n) (c calibrated with headroom over
            // the deterministic measurement).
            Claim::BoundedRatio {
                num: "rmr/cc_per_passage_per_log",
                den: None,
                min: 0.0,
                max: 12.0,
            },
            // Conservation: every scheduled passage completed despite
            // the kills (the NVM tally reaches iters on every node).
            Claim::BoundedRatio {
                num: "rmr/passages_conserved",
                den: None,
                min: 1.0,
                max: 1.0,
            },
            // The schedule actually crashed nodes.
            Claim::BoundedRatio {
                num: "kills_total",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

fn rmr_abortable() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs: &[usize] = scale.pick(&[2, 4, 8, 16], &[2, 8]);
        let iters = scale.pick(60, 24);
        let mut cc_per_op = Vec::new();
        let mut dsm_per_op = Vec::new();
        let mut abort_share = Vec::new();
        for &p in procs {
            let s = crate::rmr::abortable_rmr(p, iters, 400, 10);
            let x = p as f64;
            let ops = (s.passages + s.aborts) as f64;
            cc_per_op.push((x, s.rmr_cc as f64 / ops));
            dsm_per_op.push((x, s.rmr_dsm as f64 / ops));
            abort_share.push((x, s.aborts as f64 / ops));
        }
        let cc_worst = cc_per_op.iter().fold(0f64, |m, &(_, v)| m.max(v));
        let dsm_worst = dsm_per_op.iter().fold(0f64, |m, &(_, v)| m.max(v));
        let aborted: f64 = abort_share.iter().map(|&(_, v)| v).sum::<f64>();
        let mut o = Outcome {
            sweep: "RMR \\ procs",
            headline: format!(
                "abortable MCS: amortized RMR per operation stays flat — \
                 <= {cc_worst:.1} (CC) and <= {dsm_worst:.1} (DSM) per passage-or-abort \
                 from P = {} to {}, aborts included",
                procs[0],
                procs[procs.len() - 1],
            ),
            ..Outcome::default()
        };
        o.push("rmr/cc_per_op", cc_per_op);
        o.push("rmr/dsm_per_op", dsm_per_op);
        o.push("rmr/abort_share", abort_share);
        o.scalar("aborts_happened", aborted);
        o
    }
    Scenario {
        name: "rmr_abortable",
        figure: "— (beyond the paper; O(1)-amortized abortable lock)",
        paper_says: "the abortable MCS lock costs O(1) amortized RMRs per operation \
                     (passage or abort) in both the CC and DSM cost models",
        claims: &[
            // O(1) amortized, CC model: a constant independent of P.
            Claim::BoundedRatio {
                num: "rmr/cc_per_op",
                den: None,
                min: 0.0,
                max: 16.0,
            },
            // ...and DSM model (qnodes are homed locally, so the walk
            // stays constant-cost there too).
            Claim::BoundedRatio {
                num: "rmr/dsm_per_op",
                den: None,
                min: 0.0,
                max: 16.0,
            },
            // The deadline/storm schedule actually exercised aborts.
            Claim::BoundedRatio {
                num: "aborts_happened",
                den: None,
                min: 0.01,
                max: f64::INFINITY,
            },
            // Flat: per-op cost does not grow with P (the amortized
            // constant, restated as a scaling shape).
            Claim::FlatScaling {
                series: "rmr/cc_per_op",
                from_x: 2.0,
                factor: 4.0,
            },
        ],
        run,
    }
}

fn storm_robustness() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let procs = scale.pick(12, 6);
        let iters = scale.pick(30, 12);
        let kills = scale.pick(10, 4);
        let outage = 1_200u64;
        let s = crate::rmr::crash_storm(procs, iters, kills, 40_000, outage);
        let violations = if s.violation.is_some() { 1.0 } else { 0.0 };
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "crash storm ({} kills over {} nodes): {} passages all conserved, \
                 oracle clean over {} events, worst kill-to-repaired lag {} cycles \
                 (outage {}){}",
                s.kills,
                procs,
                s.passages,
                s.events,
                s.recovery_worst,
                outage,
                match &s.violation {
                    Some(v) => format!("; VIOLATION: {v}"),
                    None => String::new(),
                },
            ),
            ..Outcome::default()
        };
        o.scalar("storm/oracle_violations", violations);
        o.scalar(
            "storm/passages_conserved",
            s.passages as f64 / (iters * procs as u64) as f64,
        );
        o.scalar("storm/kills", s.kills as f64);
        o.scalar("storm/recovery_worst", s.recovery_worst as f64);
        o.scalar("storm/outage", outage as f64);
        o
    }
    Scenario {
        name: "storm_robustness",
        figure: "— (beyond the paper; crash-storm robustness)",
        paper_says: "under a randomized crash storm the recoverable mutex loses no waiter, \
                     never double-grants, and every node is repaired within a bounded lag \
                     of its outage",
        claims: &[
            // The crash-aware §3.2 oracle (waiter conservation, abort
            // safety, no double grant) over the full observable history.
            Claim::BoundedRatio {
                num: "storm/oracle_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
            // No lost passages: every node's NVM tally reaches its quota.
            Claim::BoundedRatio {
                num: "storm/passages_conserved",
                den: None,
                min: 1.0,
                max: 1.0,
            },
            // The storm actually delivered kills.
            Claim::BoundedRatio {
                num: "storm/kills",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            // Bounded recovery: kill-to-repaired lag is the outage plus
            // a bounded repair tail (tree unwind + re-entry), not an
            // unbounded stall.
            Claim::BoundedRatio {
                num: "storm/recovery_worst",
                den: Some("storm/outage"),
                min: 0.0,
                max: 3.0,
            },
        ],
        run,
    }
}

fn service_tail_latency() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let ad = crate::service::run_mixed(scale, true, ArenaMode::Adaptive);
        let tts = crate::service::run_mixed(scale, true, ArenaMode::StaticTts);
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "hot mixed tenancy over {} objects: adaptive p50/p99/p999 = {}/{}/{} ns \
                 ({} acquires, {} switches, abort rate {:.4}) vs static-TTS p999 {} ns \
                 (abort rate {:.4}); limiter oracle clean",
                ad.objects,
                ad.p50_ns(),
                ad.p99_ns(),
                ad.p999_ns(),
                ad.acquires,
                ad.switches,
                ad.abort_rate(),
                tts.p999_ns(),
                tts.abort_rate(),
            ),
            ..Outcome::default()
        };
        o.scalar("service/p50_ns", ad.p50_ns() as f64);
        o.scalar("service/p99_ns", ad.p99_ns() as f64);
        o.scalar("service/p999_ns", ad.p999_ns() as f64);
        o.scalar("service/static_tts_p999_ns", tts.p999_ns() as f64);
        o.scalar("service/abort_rate", ad.abort_rate());
        o.scalar("service/static_tts_abort_rate", tts.abort_rate());
        o.scalar("service/switches", ad.switches as f64);
        o.scalar(
            "service/tail_oracle_violations",
            ad.stampedes().len() as f64,
        );
        o
    }
    Scenario {
        name: "service_tail_latency",
        figure: "— (beyond the paper; lock-service tail latency)",
        paper_says: "a multi-tenant arena of adaptive objects keeps p999 acquire latency \
                     under the tenant deadline and below static TTS, without shedding load: \
                     reactive switching is what bounds the tail",
        claims: &[
            // The CI-gated tail bound: p999 stays under the hot
            // tenant's 60 µs deadline with real headroom.
            Claim::BoundedRatio {
                num: "service/p999_ns",
                den: None,
                min: 100.0,
                max: 40_000.0,
            },
            // Adaptive tail beats the static-TTS tail outright.
            Claim::BoundedRatio {
                num: "service/p999_ns",
                den: Some("service/static_tts_p999_ns"),
                min: 0.0,
                max: 0.95,
            },
            // …and does so while serving everything (static TTS sheds
            // >1% of requests at their deadline; adaptive sheds none).
            Claim::BoundedRatio {
                num: "service/abort_rate",
                den: None,
                min: 0.0,
                max: 0.005,
            },
            Claim::BoundedRatio {
                num: "service/static_tts_abort_rate",
                den: None,
                min: 0.01,
                max: 1.0,
            },
            // The adaptation was real (objects actually switched) and
            // stampede-free under the default limiter.
            Claim::BoundedRatio {
                num: "service/switches",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            Claim::BoundedRatio {
                num: "service/tail_oracle_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
        ],
        run,
    }
}

fn service_bytes_per_object() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let sweep = crate::service::residency_sweep(scale);
        let mut at_rest = Vec::new();
        let mut total = Vec::new();
        let mut hot_frac = Vec::new();
        for &objects in &sweep {
            let r = crate::service::run_residency(scale, objects);
            let x = objects as f64;
            at_rest.push((x, r.footprint.at_rest_bytes_per_object()));
            total.push((x, r.footprint.total_bytes_per_object()));
            hot_frac.push((x, r.footprint.hot_objects as f64 / objects as f64));
        }
        let mut o = Outcome {
            sweep: "arena objects",
            headline: format!(
                "{} -> {} objects: at-rest {:.2} -> {:.2} bytes/object \
                 ({:.2} -> {:.2} including hot side state); working-set fraction \
                 {:.2e} -> {:.2e}",
                sweep[0],
                sweep[1],
                at_rest[0].1,
                at_rest[1].1,
                total[0].1,
                total[1].1,
                hot_frac[0].1,
                hot_frac[1].1,
            ),
            ..Outcome::default()
        };
        o.push("service/at_rest_bytes_per_object", at_rest);
        o.push("service/total_bytes_per_object", total);
        o.push("service/hot_fraction", hot_frac);
        o
    }
    Scenario {
        name: "service_bytes_per_object",
        figure: "— (beyond the paper; lock-service memory bound)",
        paper_says: "per-object state is memory-bounded: one packed word per object at \
                     rest, journals and instrumentation lazily allocated for hot objects \
                     only, so bytes/object stays flat (≈8, budget 64) as the arena grows \
                     an order of magnitude",
        claims: &[
            // The 64-byte budget, with the slot word's ~8 bytes as the
            // real floor — measured, not asserted.
            Claim::BoundedRatio {
                num: "service/at_rest_bytes_per_object",
                den: None,
                min: 8.0,
                max: 64.0,
            },
            Claim::BoundedRatio {
                num: "service/total_bytes_per_object",
                den: None,
                min: 8.0,
                max: 64.0,
            },
            // Flat scaling: growing the arena 10x must not move
            // bytes/object (fixed costs amortise; nothing per-object
            // grows).
            Claim::FlatScaling {
                series: "service/at_rest_bytes_per_object",
                from_x: 0.0,
                factor: 1.05,
            },
            // Side state tracks the working set, not the arena.
            Claim::BoundedRatio {
                num: "service/hot_fraction",
                den: None,
                min: 0.0,
                max: 1e-3,
            },
        ],
        run,
    }
}

fn service_stampede() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let limited = crate::service::run_burst(scale, true);
        let control = crate::service::run_burst(scale, false);
        let cfg = crate::service::BURST_LIMITER;
        let limited_viol = limited.stampedes().len();
        let control_viol = lock_service::check_no_stampede(&control.switch_log, cfg).len();
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "spiking load over {} objects: limited run committed {} switches \
                 ({} denied, oracle clean); unlimited control stampeded {} switches \
                 with {} window violations of the same bound",
                limited.objects,
                limited.switches,
                limited.switch_denials,
                control.switches,
                control_viol,
            ),
            ..Outcome::default()
        };
        o.scalar("service/stampede_violations", limited_viol as f64);
        o.scalar("service/control_violations", control_viol as f64);
        o.scalar("service/limited_switches", limited.switches as f64);
        o.scalar("service/switch_denials", limited.switch_denials as f64);
        o
    }
    Scenario {
        name: "service_stampede",
        figure: "— (beyond the paper; switch-rate limiting under bursts)",
        paper_says: "a per-shard token bucket keeps synchronized switch demand from \
                     stampeding: every window obeys burst + W/period + 1, checked by an \
                     offline oracle that provably rejects the unthrottled control run",
        claims: &[
            // The limited run satisfies the no-stampede invariant…
            Claim::BoundedRatio {
                num: "service/stampede_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
            // …while the unthrottled control violates the same bound,
            // so the oracle demonstrably has teeth on real logs.
            Claim::BoundedRatio {
                num: "service/control_violations",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            // The limiter throttled without freezing: switches still
            // happened, and denials prove the spike actually pressed
            // against the cap.
            Claim::BoundedRatio {
                num: "service/limited_switches",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            Claim::BoundedRatio {
                num: "service/switch_denials",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
        ],
        run,
    }
}

fn service_tracks_best() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let deadline = crate::service::MIXED_DEADLINE_NS;
        type ModeSeries = (&'static str, ArenaMode, Vec<(f64, f64)>);
        let mut series: Vec<ModeSeries> = vec![
            ("service/adaptive", ArenaMode::Adaptive, Vec::new()),
            ("service/static_tts", ArenaMode::StaticTts, Vec::new()),
            ("service/static_queue", ArenaMode::StaticQueue, Vec::new()),
        ];
        for (x, hot) in [(0.0, false), (1.0, true)] {
            for (_, mode, points) in series.iter_mut() {
                let r = crate::service::run_mixed(scale, hot, *mode);
                points.push((x, crate::service::adjusted_mean_ns(&r, deadline)));
            }
        }
        let fmt = |p: &Vec<(f64, f64)>| format!("{:.0}/{:.0}", p[0].1, p[1].1);
        let mut o = Outcome {
            sweep: "contention regime (0 = calm, 1 = hot)",
            headline: format!(
                "deadline-adjusted mean acquire ns (calm/hot): adaptive {}, \
                 static TTS {}, static queue {} — the arena tracks the best static \
                 protocol in both regimes",
                fmt(&series[0].2),
                fmt(&series[1].2),
                fmt(&series[2].2),
            ),
            ..Outcome::default()
        };
        for (label, _, points) in series {
            o.push(label, points);
        }
        o
    }
    Scenario {
        name: "service_tracks_best",
        figure: "— (beyond the paper; Fig. 3.15's shape at service scale)",
        paper_says: "across contention regimes the adaptive arena stays within 1.5x of \
                     the best static protocol choice, while each static choice loses a \
                     regime (TTS cheap when calm, queue the only survivor when hot)",
        claims: &[
            Claim::TracksBest {
                series: "service/adaptive",
                over: &["service/static_tts", "service/static_queue"],
                slack: 1.5,
            },
            // The regimes genuinely disagree about the best static
            // protocol — otherwise tracking the best would be vacuous.
            Claim::Crossover {
                cheap: "service/static_tts",
                scalable: "service/static_queue",
            },
        ],
        run,
    }
}

fn service_native_tail() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let ad = crate::service_native::run_tail(scale, ArenaMode::Adaptive);
        let tts = crate::service_native::run_tail(scale, ArenaMode::StaticTts);
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "{} host threads, wall clock: adaptive hot-tenant adjusted p999 {} ns \
                 ({} grants, {} shed, {} inflations) vs static-TTS flat-spin adjusted \
                 p999 {} ns ({} grants, {} shed at their 50 ms deadline); adaptive \
                 merged p50/p99/p999 = {}/{}/{} ns, abort rate {:.4}; limiter oracle \
                 clean",
                ad.threads,
                ad.tenant_adjusted_p999_ns(0),
                ad.tenant_wait[0].count,
                ad.aborts_by_tenant[0],
                ad.inflations,
                tts.tenant_adjusted_p999_ns(0),
                tts.tenant_wait[0].count,
                tts.aborts_by_tenant[0],
                ad.p50_ns(),
                ad.p99_ns(),
                ad.p999_ns(),
                ad.abort_rate(),
            ),
            ..Outcome::default()
        };
        o.scalar("service_native/p50_ns", ad.p50_ns() as f64);
        o.scalar("service_native/p99_ns", ad.p99_ns() as f64);
        o.scalar("service_native/p999_ns", ad.p999_ns() as f64);
        // The gated comparison runs on the *hot tenant's own
        // deadline-adjusted* histogram, for two reasons. First, the
        // merged histogram folds in the open tenant's
        // scheduled-arrival backlog — a measure of CPU saturation
        // that drowns the policy signal on small hosts. Second, a
        // completed-only percentile is survivorship-biased: flat TTS
        // starves a descheduled waiter so thoroughly that its acquire
        // never finishes and never lands a sample, so the *worse* the
        // flat lock behaves the *better* its completed tail looks.
        // The adjusted histogram charges every shed request its full
        // 50 ms deadline, which is a lower bound on the truth.
        o.scalar(
            "service_native/hot_adjusted_p999_ns",
            ad.tenant_adjusted_p999_ns(0) as f64,
        );
        o.scalar(
            "service_native/static_tts_hot_adjusted_p999_ns",
            tts.tenant_adjusted_p999_ns(0) as f64,
        );
        o.scalar("service_native/hot_grants", ad.tenant_wait[0].count as f64);
        o.scalar(
            "service_native/static_tts_hot_grants",
            tts.tenant_wait[0].count as f64,
        );
        o.scalar(
            "service_native/static_tts_hot_shed",
            tts.aborts_by_tenant[0] as f64,
        );
        o.scalar("service_native/inflations", ad.inflations as f64);
        o.scalar("service_native/abort_rate", ad.abort_rate());
        o.scalar("service_native/switches_per_sec", ad.switches_per_sec());
        o.scalar(
            "service_native/tail_oracle_violations",
            ad.stampedes().len() as f64,
        );
        o
    }
    Scenario {
        name: "service_native_tail",
        figure: "— (beyond the paper; the service tail row on real threads)",
        paper_says: "the adaptive arena's tail advantage survives the move from virtual \
                     time to real preempted threads: inflating hot objects to FIFO \
                     kernel-backed locks beats a static flat-TTS pin at the \
                     deadline-adjusted p999 (shed requests charged their full deadline) \
                     under mixed tenancy, because an unfair flat spin lock lets a \
                     zero-think captor starve its waiters to the deadline",
        claims: &[
            // The CI-gated native sanity claim: the hot tenant's
            // adaptive deadline-adjusted p999 beats its static-TTS
            // one outright. Under flat TTS the running captor starves
            // whichever worker is descheduled until the 50 ms
            // deadline sheds it (charged in full); once inflated, the
            // kernel lock's FIFO queue grants everyone at handoff
            // scale (calibrated: adjusted p999 ~0.1-1.6 ms vs the
            // 50 ms shed plateau, ratio <= 0.032 across reps).
            // Real-thread numbers are noisy, so the bound is
            // deliberately far looser than the measurements.
            Claim::BoundedRatio {
                num: "service_native/hot_adjusted_p999_ns",
                den: Some("service_native/static_tts_hot_adjusted_p999_ns"),
                min: 0.0,
                max: 0.9,
            },
            // The adaptation was real: hot objects actually inflated.
            Claim::BoundedRatio {
                num: "service_native/inflations",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            // The calm tenant's 60 µs deadline sheds almost nothing on
            // the adaptive arm.
            Claim::BoundedRatio {
                num: "service_native/abort_rate",
                den: None,
                min: 0.0,
                max: 0.05,
            },
            // The switch log stays stampede-free under the default
            // limiter even with real racing threads writing it.
            Claim::BoundedRatio {
                num: "service_native/tail_oracle_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
        ],
        run,
    }
}

fn service_native_deflation() -> Scenario {
    fn run(scale: Scale) -> Outcome {
        let d = crate::service_native::run_deflation(scale);
        let footprint_ratio = d.hot_bytes_calm as f64 / d.hot_bytes_storm as f64;
        let mut o = Outcome {
            sweep: "",
            headline: format!(
                "storm -> calm -> storm on one object: {} inflations / {} deflations, \
                 {} live after calm, hot footprint {} -> {} bytes ({:.2}x), slab holds \
                 {} entry after re-inflation; {} mutual-exclusion violations",
                d.inflations,
                d.deflations,
                d.live_after_calm,
                d.hot_bytes_storm,
                d.hot_bytes_calm,
                footprint_ratio,
                d.slab_entries,
                d.violations,
            ),
            ..Outcome::default()
        };
        o.scalar("service_native/roundtrip_inflations", d.inflations as f64);
        o.scalar("service_native/deflations", d.deflations as f64);
        o.scalar("service_native/live_after_calm", d.live_after_calm as f64);
        o.scalar("service_native/footprint_ratio", footprint_ratio);
        o.scalar("service_native/slab_entries", d.slab_entries as f64);
        o.scalar("service_native/mutex_violations", d.violations as f64);
        o
    }
    Scenario {
        name: "service_native_deflation",
        figure: "— (beyond the paper; lock deflation reclaims the hot set)",
        paper_says: "a durably calm inflated object demotes back to a flat slot word: \
                     the slab entry is reclaimed (footprint shrinks when a hot phase \
                     cools), a later storm re-inflates through the free list without \
                     growing the slab, and mutual exclusion holds across both \
                     promotion boundaries",
        claims: &[
            // The round trip really happened: inflate, deflate, and
            // inflate again (>= 2 cumulative inflations).
            Claim::BoundedRatio {
                num: "service_native/roundtrip_inflations",
                den: None,
                min: 2.0,
                max: f64::INFINITY,
            },
            Claim::BoundedRatio {
                num: "service_native/deflations",
                den: None,
                min: 1.0,
                max: f64::INFINITY,
            },
            // Deflation fully drained the live hot set…
            Claim::BoundedRatio {
                num: "service_native/live_after_calm",
                den: None,
                min: 0.0,
                max: 0.0,
            },
            // …and gave the bytes back.
            Claim::BoundedRatio {
                num: "service_native/footprint_ratio",
                den: None,
                min: 0.0,
                max: 0.95,
            },
            // Re-inflation reused the retired slab entry instead of
            // growing the slab.
            Claim::BoundedRatio {
                num: "service_native/slab_entries",
                den: None,
                min: 1.0,
                max: 1.0,
            },
            // The in-CS overlap counter saw exclusive holds across the
            // flat path, the inflated path, and both transitions.
            Claim::BoundedRatio {
                num: "service_native/mutex_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
        ],
        run,
    }
}

fn sim_parallel_scale() -> Scenario {
    use alewife_sim::parallel::{Cluster, ClusterReport, ParallelConfig, ShardCtx};
    use alewife_sim::{Config, Port};

    /// Per-shard lock hammer with a cross-shard heartbeat ring — the
    /// paper's contended-lock workload, tiled once per shard.
    fn tile_setup(ctx: &ShardCtx<'_>, alg: LockAlg, cs: u64, think: u64, iters: u64) {
        let m = ctx.machine;
        let n = ctx.shard_nodes;
        let lock = sim_apps::alg::AnyLock::make(m, 0, alg, n);
        m.register_handler(0, Port(61), |hctx, _| hctx.bump("ring_hops", 1));
        for p in 0..n {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            let mail = ctx.mail();
            let (base, total) = (ctx.node_base, ctx.total_nodes);
            m.spawn(p, async move {
                for i in 0..iters {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(cs).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(think)).await;
                    if p == 0 && i % 4 == 0 {
                        mail.post(cpu.now(), base, (base + n) % total, Port(61), [i, 0, 0, 0]);
                    }
                }
            });
        }
    }

    fn cluster(nodes: usize, workers: usize, epoch_window: u64) -> Cluster {
        Cluster::new(
            nodes,
            Config::default().cost(CostModel::nwo()).seed(0x5CA1E),
            ParallelConfig {
                workers,
                epoch_window,
            },
        )
    }

    /// The mode-observable digest: if any of these differ between the
    /// serial and threaded executions, conformance is broken.
    fn digest(r: &ClusterReport) -> (u64, u64, u64, u64, u64, u64) {
        (
            r.stats.sim_events,
            r.stats.net_msgs,
            r.stats.active_msgs,
            r.stats.counter("ring_hops"),
            r.elapsed,
            r.stats.rmr_cc.iter().sum(),
        )
    }

    fn run(scale: Scale) -> Outcome {
        // 16x the single-machine headline shape at full scale: 1024
        // nodes as sixteen 64-node tiles. Quick keeps the same tiling
        // rule at debug-affordable size, with the epoch window scaled
        // down alongside the run length so the schedule still spans
        // enough epochs for the balance (speedup) measurement to be
        // meaningful.
        let (nodes, workers, iters, window) =
            scale.pick((1024, 16, 60, 20_000), (64, 4, 12, 1_500));

        // Cross-mode conformance + causality on the contended reactive
        // cluster (the workload BENCH_sim.json's parallel rows run).
        let serial = cluster(nodes, workers, window)
            .run_serial(|c| tile_setup(c, LockAlg::Reactive, 5, 1, iters));
        let threaded = cluster(nodes, workers, window)
            .run_parallel(|c| tile_setup(c, LockAlg::Reactive, 5, 1, iters));
        let conforms = digest(&serial) == digest(&threaded)
            && serial.live_tasks == 0
            && threaded.live_tasks == 0;
        let violations = serial.causality_violations + threaded.causality_violations;
        // Epoch-schedule speedup in *events*: total events over the
        // per-epoch-max critical path. Deterministic and
        // build-independent, so it gates identically at both scales;
        // W perfectly balanced shards would score W.
        let speedup = serial.stats.sim_events as f64 / serial.critical_path_events as f64;

        // The paper's reactive-tracks-best claim, re-run at tile scale
        // in the fig 3.15 regime (CS = 100 cycles, bounded random
        // think, 16 lock acquisitions per processor) and scored the
        // same way: per-CS overhead above the ideal test-loop latency,
        // at two think-time bounds. The cluster's elapsed time is the
        // max over its (identically loaded, differently seeded) tiles,
        // so per-CS cost divides by one tile's acquisition count.
        let (tb_cs, tb_iters) = (100u64, 16u64);
        let tile_procs = nodes / workers;
        let thinks: [u64; 2] = [500, 1_000];
        let algs = [
            ("par/reactive", LockAlg::Reactive),
            ("par/tts", LockAlg::Tts),
            ("par/queue", LockAlg::Mcs),
        ];
        let mut curves: Vec<(&'static str, Vec<(f64, f64)>)> =
            algs.iter().map(|&(l, _)| (l, Vec::new())).collect();
        for &think in &thinks {
            for (ci, &(_, alg)) in algs.iter().enumerate() {
                let r = cluster(nodes, workers, window)
                    .run_serial(|c| tile_setup(c, alg, tb_cs, think, tb_iters));
                assert_eq!(r.live_tasks, 0, "tile workload deadlocked");
                let per_cs = r.elapsed as f64 / (tile_procs as u64 * tb_iters) as f64;
                let ideal =
                    ((tb_cs as f64 + think as f64 / 2.0) / tile_procs as f64).max(tb_cs as f64);
                curves[ci].1.push((think as f64, (per_cs - ideal).max(0.0)));
            }
        }

        let mut o = Outcome {
            sweep: "overhead cyc/CS \\ think bound",
            headline: format!(
                "{nodes}-node cluster as {workers} tiles: cross-mode conformance {}, \
                 {} causality violations, epoch critical-path speedup {speedup:.1}x over \
                 {} epochs (lookahead {} cycles); per-tile reactive tracks best static",
                if conforms { "exact" } else { "BROKEN" },
                violations,
                serial.epochs,
                serial.lookahead,
            ),
            ..Outcome::default()
        };
        for (label, pts) in curves {
            o.push(label, pts);
        }
        o.scalar("parallel/conformance_equal", f64::from(u8::from(conforms)));
        o.scalar("parallel/causality_violations", violations as f64);
        o.scalar("parallel/critical_path_speedup", speedup);
        o.scalar("parallel/epochs", serial.epochs as f64);
        o
    }
    Scenario {
        name: "sim_parallel_scale",
        figure: "— (beyond the paper; conservative parallel simulation)",
        paper_says: "sharding the machine into per-tile simulators under a conservative \
                     epoch scheme loses nothing: the threaded execution is bit-identical \
                     to the serial reference, no event ever runs ahead of an undelivered \
                     cross-tile message, the epoch schedule exposes real parallelism \
                     (critical path well under total work), and the paper's \
                     reactive-tracks-best result survives at 16x machine scale",
        claims: &[
            Claim::BoundedRatio {
                num: "parallel/conformance_equal",
                den: None,
                min: 1.0,
                max: 1.0,
            },
            Claim::BoundedRatio {
                num: "parallel/causality_violations",
                den: None,
                min: 0.0,
                max: 0.0,
            },
            // The epoch schedule must expose real parallelism, not
            // degenerate to lockstep serialization.
            Claim::BoundedRatio {
                num: "parallel/critical_path_speedup",
                den: None,
                min: 2.0,
                max: f64::INFINITY,
            },
            // Same slack as fig_3_15_baseline: reactive pays its probe
            // overhead but stays within 1.8x of the best static choice.
            Claim::TracksBest {
                series: "par/reactive",
                over: &["par/tts", "par/queue"],
                slack: 1.8,
            },
        ],
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_have_unique_names_and_claims() {
        let s = all();
        assert_eq!(s.len(), 29, "EXPERIMENTS.md has 29 figure/table rows");
        for sc in &s {
            assert!(!sc.claims.is_empty(), "{} has no claims", sc.name);
        }
        let mut names: Vec<&str> = s.iter().map(|sc| sc.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29, "duplicate scenario names");
    }

    #[test]
    fn by_name_finds_every_row() {
        for sc in all() {
            assert_eq!(by_name(sc.name).name, sc.name);
        }
    }

    #[test]
    #[should_panic(expected = "no scenario named")]
    fn by_name_rejects_unknown() {
        by_name("fig_9_99_nonsense");
    }

    #[test]
    fn claim_checks_catch_violations() {
        let mut o = Outcome::default();
        o.push("a", vec![(1.0, 1.0), (2.0, 10.0)]);
        o.push("b", vec![(1.0, 2.0), (2.0, 3.0)]);
        o.scalar("s", 5.0);
        // Crossover holds: a wins at x=1, b wins at x=2.
        assert!(Claim::Crossover {
            cheap: "a",
            scalable: "b"
        }
        .check(&o)
        .is_ok());
        // ...and fails when reversed.
        assert!(Claim::Crossover {
            cheap: "b",
            scalable: "a"
        }
        .check(&o)
        .is_err());
        assert!(Claim::BoundedRatio {
            num: "s",
            den: None,
            min: 4.0,
            max: 6.0
        }
        .check(&o)
        .is_ok());
        assert!(Claim::BoundedRatio {
            num: "a",
            den: Some("b"),
            min: 0.0,
            max: 1.0
        }
        .check(&o)
        .is_err());
        assert!(Claim::FlatScaling {
            series: "b",
            from_x: 1.0,
            factor: 2.0
        }
        .check(&o)
        .is_ok());
        assert!(Claim::FlatScaling {
            series: "a",
            from_x: 1.0,
            factor: 2.0
        }
        .check(&o)
        .is_err());
        assert!(Claim::TracksBest {
            series: "a",
            over: &["b"],
            slack: 4.0
        }
        .check(&o)
        .is_ok());
        assert!(Claim::TracksBest {
            series: "a",
            over: &["b"],
            slack: 2.0
        }
        .check(&o)
        .is_err());
        assert!(Claim::WithinFactorOfOptimal {
            value: "s",
            optimal: "s",
            factor: 1.0
        }
        .check(&o)
        .is_ok());
        // Missing names are errors, not panics.
        assert!(Claim::BoundedRatio {
            num: "zzz",
            den: None,
            min: 0.0,
            max: 1.0
        }
        .check(&o)
        .is_err());
    }
}
