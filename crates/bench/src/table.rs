//! Minimal fixed-width table printing for the experiment reports.

/// Print a table title with a rule.
pub fn title(t: &str) {
    println!();
    println!("== {t}");
    println!("{}", "-".repeat(72));
}

/// Print a header row (right-aligned, 12-wide columns after the first).
pub fn header(first: &str, cols: &[String]) {
    print!("{first:<28}");
    for c in cols {
        print!("{c:>12}");
    }
    println!();
}

/// Print a data row of f64 values with one decimal.
pub fn row_f64(label: &str, vals: &[f64]) {
    print!("{label:<28}");
    for v in vals {
        print!("{v:>12.1}");
    }
    println!();
}

/// Print a data row of u64 values.
pub fn row_u64(label: &str, vals: &[u64]) {
    print!("{label:<28}");
    for v in vals {
        print!("{v:>12}");
    }
    println!();
}

/// Print a data row of ratio values with two decimals.
pub fn row_ratio(label: &str, vals: &[f64]) {
    print!("{label:<28}");
    for v in vals {
        print!("{v:>12.2}");
    }
    println!();
}
