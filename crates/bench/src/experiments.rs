//! Shared experiment runners for the paper's tables and figures.

use std::rc::Rc;

use alewife_sim::{Config, CostModel, Machine};
use reactive_core::mp::{ReactiveMpFetchOp, ReactiveMpLock};
use reactive_core::policy::{Instrument, SwitchLog};
use reactive_core::ReactiveBarrier;
use sim_apps::alg::{AnyFetchOp, AnyLock, FetchOpAlg, LockAlg};
use sync_protocols::barrier::{BarrierCtx, SenseBarrier, TreeBarrier};
use sync_protocols::waiting::AlwaysSpin;

/// Processor counts swept by the baseline experiments.
pub const BASELINE_PROCS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Total acquisitions per baseline data point (split across procs).
pub const BASELINE_OPS: u64 = 1024;

/// Critical-section length in the lock baseline (paper: 100).
const CS: u64 = 100;
/// Mean think time in the baselines (paper: U(0,500), mean 250).
const THINK_BOUND: u64 = 500;

/// Average overhead (cycles) added per critical section by `alg` with
/// `procs` contenders — the baseline test of §3.5.1 / Figure 3.15 left.
pub fn lock_overhead(alg: LockAlg, procs: usize, cost: CostModel, full_map: bool) -> f64 {
    lock_overhead_n(alg, procs, cost, full_map, BASELINE_OPS)
}

/// [`lock_overhead`] with an explicit total-acquisition budget, so the
/// scenario layer can run scaled-down deterministic variants.
pub fn lock_overhead_n(
    alg: LockAlg,
    procs: usize,
    cost: CostModel,
    full_map: bool,
    total_ops: u64,
) -> f64 {
    let m = Machine::new(
        Config::default()
            .nodes(procs.max(2))
            .cost(cost)
            .full_map(full_map),
    );
    let lock = AnyLock::make(&m, 0, alg, procs);
    let iters = (total_ops / procs as u64).max(8);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(CS).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(THINK_BOUND)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked at {procs} procs");
    let total_cs = iters * procs as u64;
    let per_cs = elapsed as f64 / total_cs as f64;
    // Test-loop latency per critical section (§3.5.1): the think time
    // overlaps across processors; the CS itself serializes.
    let ideal = ((CS + THINK_BOUND / 2) as f64 / procs as f64).max(CS as f64);
    (per_cs - ideal).max(0.0)
}

/// Average overhead per fetch-and-increment (Figure 3.15 right).
pub fn fetchop_overhead(alg: FetchOpAlg, procs: usize, cost: CostModel) -> f64 {
    fetchop_overhead_n(alg, procs, cost, BASELINE_OPS)
}

/// [`fetchop_overhead`] with an explicit total-operation budget.
pub fn fetchop_overhead_n(alg: FetchOpAlg, procs: usize, cost: CostModel, total_ops: u64) -> f64 {
    let m = Machine::new(Config::default().nodes(procs.max(2)).cost(cost));
    let f = AnyFetchOp::make(&m, 0, alg, procs);
    let iters = (total_ops / procs as u64).max(8);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let f = f.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                f.fetch_add(&cpu, 1).await;
                cpu.work(cpu.rand_below(THINK_BOUND)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked at {procs} procs");
    let ops = iters * procs as u64;
    let per_op = elapsed as f64 / ops as f64;
    let ideal = (THINK_BOUND / 2) as f64 / procs as f64;
    (per_op - ideal).max(0.0)
}

/// Reactive shared-memory-vs-message-passing lock baseline (Fig 3.26).
pub fn mp_reactive_lock_overhead(procs: usize) -> f64 {
    mp_reactive_lock_overhead_n(procs, BASELINE_OPS)
}

/// [`mp_reactive_lock_overhead`] with an explicit acquisition budget.
pub fn mp_reactive_lock_overhead_n(procs: usize, total_ops: u64) -> f64 {
    let m = Machine::new(Config::default().nodes(procs.max(2)));
    let lock = ReactiveMpLock::new(&m, 0, 0, procs);
    let iters = (total_ops / procs as u64).max(8);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(CS).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(THINK_BOUND)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "reactive MP lock deadlocked");
    let total_cs = iters * procs as u64;
    let ideal = ((CS + THINK_BOUND / 2) as f64 / procs as f64).max(CS as f64);
    (elapsed as f64 / total_cs as f64 - ideal).max(0.0)
}

/// Reactive shared-memory-vs-message-passing fetch-op baseline.
pub fn mp_reactive_fetchop_overhead(procs: usize) -> f64 {
    mp_reactive_fetchop_overhead_n(procs, BASELINE_OPS)
}

/// [`mp_reactive_fetchop_overhead`] with an explicit operation budget.
pub fn mp_reactive_fetchop_overhead_n(procs: usize, total_ops: u64) -> f64 {
    let m = Machine::new(Config::default().nodes(procs.max(2)));
    let f = ReactiveMpFetchOp::new(&m, 0, 0, procs);
    let iters = (total_ops / procs as u64).max(8);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let f = f.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                f.fetch_add(&cpu, 1).await;
                cpu.work(cpu.rand_below(THINK_BOUND)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "reactive MP fetch-op deadlocked");
    let ops = iters * procs as u64;
    let ideal = (THINK_BOUND / 2) as f64 / procs as f64;
    (elapsed as f64 / ops as f64 - ideal).max(0.0)
}

/// One multiple-lock contention pattern (Figures 3.17-3.19): a list of
/// lock groups, each `(locks_in_group, procs_per_lock)`.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// Pattern number as in the paper.
    pub id: usize,
    /// `(number_of_locks, contending_procs_each)` groups.
    pub groups: Vec<(usize, usize)>,
}

/// The twelve contention patterns of §3.5.3. Patterns 1-8 follow the
/// paper's text exactly (one or more high-contention locks plus 32
/// single- or double-proc locks); 9-12 are uniform mixes covering the
/// same axis (the thesis figures do not tabulate them numerically).
pub fn patterns() -> Vec<Pattern> {
    let mut v = Vec::new();
    // Patterns 1-4: k locks with 32/k procs, plus 32 locks with 1 proc.
    for (i, &(n, c)) in [(1, 32), (2, 16), (4, 8), (8, 4)].iter().enumerate() {
        v.push(Pattern {
            id: i + 1,
            groups: vec![(n, c), (32, 1)],
        });
    }
    // Patterns 5-8: low-contention locks have 2 procs each.
    for (i, &(n, c)) in [(1, 32), (2, 16), (4, 8), (8, 4)].iter().enumerate() {
        v.push(Pattern {
            id: i + 5,
            groups: vec![(n, c), (16, 2)],
        });
    }
    // Patterns 9-12: uniform contention levels.
    for (i, &(n, c)) in [(32, 2), (16, 4), (64, 1), (1, 64)].iter().enumerate() {
        v.push(Pattern {
            id: i + 9,
            groups: vec![(n, c)],
        });
    }
    v
}

/// Elapsed time for the multiple-lock test under one pattern.
/// `alg = None` runs the *simulated optimal*: per-lock static choice
/// (TTS below 4 contenders, MCS at 4 or more), as in §3.5.3.
pub fn multi_object(pattern: &Pattern, alg: Option<LockAlg>, acq_per_proc: u64) -> u64 {
    let procs: usize = pattern.groups.iter().map(|(n, c)| n * c).sum();
    let m = Machine::new(Config::default().nodes(procs));
    let mut assignments: Vec<(AnyLock, alewife_sim::Addr)> = Vec::new();
    let mut lock_of_proc: Vec<usize> = Vec::new();
    for &(n, c) in &pattern.groups {
        for _ in 0..n {
            let home = assignments.len() % procs;
            let chosen = match alg {
                Some(a) => a,
                None => {
                    if c < 4 {
                        LockAlg::Tts
                    } else {
                        LockAlg::Mcs
                    }
                }
            };
            let lock = AnyLock::make(&m, home, chosen, c);
            let val = m.alloc_on(home, 1);
            assignments.push((lock, val));
            for _ in 0..c {
                lock_of_proc.push(assignments.len() - 1);
            }
        }
    }
    for p in 0..procs {
        let cpu = m.cpu(p);
        let (lock, val) = assignments[lock_of_proc[p]].clone();
        m.spawn(p, async move {
            for _ in 0..acq_per_proc {
                let t = lock.acquire(&cpu).await;
                // "Increment a double-precision value": read + fp work +
                // write.
                let v = cpu.read(val).await;
                cpu.work(20).await;
                cpu.write(val, v + 1).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(THINK_BOUND)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "multi-object deadlock");
    elapsed
}

/// The time-varying contention test of §3.5.4 (Figures 3.20-3.23):
/// alternating low-contention (1 proc, 10-cycle CS, 20-cycle think) and
/// high-contention (16 procs, 100-cycle CS, 250-cycle think) phases.
/// `period_len` = locks acquired per period, `contention_pct` = fraction
/// acquired in the high phase, `periods` repetitions. Runs on the
/// 16-node prototype cost model. Returns elapsed cycles.
pub fn time_varying(alg: LockAlg, period_len: u64, contention_pct: u64, periods: u64) -> u64 {
    time_varying_with(alg, period_len, contention_pct, periods, None)
}

/// [`time_varying`] with a switch-event sink attached to the lock, so
/// figure reproductions read protocol-change counts from the reactive
/// API instead of poking object internals.
pub fn time_varying_with(
    alg: LockAlg,
    period_len: u64,
    contention_pct: u64,
    periods: u64,
    sink: Option<Rc<dyn Instrument>>,
) -> u64 {
    let procs = 16usize;
    let m = Machine::new(Config::default().nodes(procs).cost(CostModel::prototype()));
    let lock = AnyLock::make_instrumented(&m, 0, alg, procs, sink);
    let bar = SenseBarrier::new(&m, 0, procs as u64);
    let high_total = period_len * contention_pct / 100;
    let high_each = (high_total / procs as u64).max(1);
    let low_total = period_len - high_total;
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            let mut bctx = BarrierCtx::default();
            for _ in 0..periods {
                // Low phase: only proc 0 uses the lock.
                if p == 0 {
                    for _ in 0..low_total {
                        let t = lock.acquire(&cpu).await;
                        cpu.work(10).await;
                        lock.release(&cpu, t).await;
                        cpu.work(20).await;
                    }
                }
                bar.wait(&cpu, &mut bctx, &AlwaysSpin).await;
                // High phase: everyone contends.
                for _ in 0..high_each {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(100).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(500)).await;
                }
                bar.wait(&cpu, &mut bctx, &AlwaysSpin).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "time-varying deadlock");
    elapsed
}

/// [`time_varying_with`] with a fresh [`SwitchLog`] attached: returns
/// `(elapsed_cycles, protocol_switches)` so scenarios can claim both
/// the cost and the adaptation behaviour of a reactive variant.
pub fn time_varying_counted(
    alg: LockAlg,
    period_len: u64,
    contention_pct: u64,
    periods: u64,
) -> (u64, u64) {
    let log = Rc::new(SwitchLog::new());
    let t = time_varying_with(
        alg,
        period_len,
        contention_pct,
        periods,
        Some(log.clone() as Rc<dyn Instrument>),
    );
    (t, log.count() as u64)
}

/// Barrier arrival protocols compared by the `barrier_reactive`
/// scenario (beyond the paper: the kernel-built fifth reactive object).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierAlg {
    /// Centralized sense-reversing barrier (one counter line).
    Central,
    /// Software combining arrival tree (fanout-bounded sharing).
    Tree,
    /// The kernel-built [`ReactiveBarrier`] selecting between them.
    Reactive,
}

/// Arrival-tree fanout used by the barrier experiments.
pub const BARRIER_FANOUT: usize = 4;

/// Cycles per barrier round for `procs` participants.
pub fn barrier_overhead_n(alg: BarrierAlg, procs: usize, rounds: u64) -> f64 {
    barrier_overhead_counted(alg, procs, rounds).0
}

/// [`barrier_overhead_n`] plus the reactive barrier's protocol-switch
/// count (0 for the static protocols).
pub fn barrier_overhead_counted(alg: BarrierAlg, procs: usize, rounds: u64) -> (f64, u64) {
    #[derive(Clone)]
    enum AnyBar {
        Central(SenseBarrier),
        Tree(TreeBarrier),
        Reactive(ReactiveBarrier),
    }
    let m = Machine::new(Config::default().nodes(procs));
    let bar = match alg {
        BarrierAlg::Central => AnyBar::Central(SenseBarrier::new(&m, 0, procs as u64)),
        BarrierAlg::Tree => AnyBar::Tree(TreeBarrier::new(&m, 0, procs, BARRIER_FANOUT)),
        BarrierAlg::Reactive => AnyBar::Reactive(
            ReactiveBarrier::builder(&m, 0, procs)
                .fanout(BARRIER_FANOUT)
                .build(),
        ),
    };
    for p in 0..procs {
        let cpu = m.cpu(p);
        let bar = bar.clone();
        m.spawn(p, async move {
            let mut ctx = BarrierCtx::default();
            for _ in 0..rounds {
                cpu.work(cpu.rand_below(200)).await;
                match &bar {
                    AnyBar::Central(b) => b.wait(&cpu, &mut ctx, &AlwaysSpin).await,
                    AnyBar::Tree(b) => b.wait(&cpu, &mut ctx, &AlwaysSpin).await,
                    AnyBar::Reactive(b) => b.wait(&cpu, &mut ctx, &AlwaysSpin).await,
                }
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "barrier experiment deadlock");
    let switches = match &bar {
        AnyBar::Reactive(b) => b.switches(),
        _ => 0,
    };
    (elapsed as f64 / rounds as f64, switches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shapes_hold() {
        // The headline tradeoff (Figure 1.1): TTS beats MCS alone, MCS
        // beats test&set at 16 procs, and the reactive lock is near the
        // better protocol at both ends.
        let nwo = CostModel::nwo;
        let tts1 = lock_overhead(LockAlg::Tts, 1, nwo(), false);
        let mcs1 = lock_overhead(LockAlg::Mcs, 1, nwo(), false);
        let re1 = lock_overhead(LockAlg::Reactive, 1, nwo(), false);
        assert!(tts1 < mcs1, "uncontended: TTS {tts1} !< MCS {mcs1}");
        assert!(re1 < 1.6 * tts1.max(8.0), "reactive {re1} vs TTS {tts1}");

        let ts16 = lock_overhead(LockAlg::TestAndSet, 16, nwo(), false);
        let mcs16 = lock_overhead(LockAlg::Mcs, 16, nwo(), false);
        let re16 = lock_overhead(LockAlg::Reactive, 16, nwo(), false);
        assert!(mcs16 < ts16, "contended: MCS {mcs16} !< TS {ts16}");
        assert!(re16 < 1.6 * mcs16, "reactive {re16} vs MCS {mcs16}");
    }

    #[test]
    fn fetchop_crossover_holds() {
        let tree1 = fetchop_overhead(FetchOpAlg::Combining, 1, CostModel::nwo());
        let lock1 = fetchop_overhead(FetchOpAlg::TtsLock, 1, CostModel::nwo());
        assert!(lock1 < tree1, "uncontended: lock {lock1} !< tree {tree1}");
        let tree32 = fetchop_overhead(FetchOpAlg::Combining, 32, CostModel::nwo());
        let tts32 = fetchop_overhead(FetchOpAlg::TtsLock, 32, CostModel::nwo());
        assert!(
            tree32 < tts32,
            "contended: tree {tree32} !< TTS-lock {tts32}"
        );
    }

    #[test]
    fn multi_object_runs_all_patterns_small() {
        for p in patterns().iter().take(2) {
            let t = multi_object(p, Some(LockAlg::Reactive), 4);
            assert!(t > 0);
        }
    }

    #[test]
    fn time_varying_runs() {
        let t = time_varying(LockAlg::Reactive, 64, 50, 2);
        assert!(t > 0);
    }
}
