//! Workload glue for the lock-service scenarios: canonical
//! [`ServiceConfig`]s shared by the `service` bench target and the four
//! `service_*` rows of `EXPERIMENTS.md`, so the JSON artifact and the
//! CI claim suite measure exactly the same runs.

use lock_service::{
    run_service, ArenaMode, ArrivalCurve, LimiterConfig, Load, ServiceConfig, ServiceReport,
    TenantConfig,
};

use crate::scenario::Scale;

/// The canonical mixed multi-tenant workload behind the tail-latency
/// and tracks-best rows: tenant 0 is hot (closed-loop, Zipf 0.95,
/// deadline-bounded), tenant 1 is broad and calm (open-loop, near
/// uniform). `hot` scales tenant 0's client herd; the same builder
/// serves both the calm and the contended regime so the two are
/// comparable point-for-point.
pub fn mixed_config(scale: Scale, objects: u64, hot: bool, mode: ArenaMode) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(objects, 16, 0xC0FF_EE00);
    cfg.mode = mode;
    cfg.limiter = Some(LimiterConfig::default());
    cfg.horizon_ns = scale.pick(4_000_000, 400_000);
    cfg.reservoir = scale.pick(65_536, 8_192);
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: objects / 2,
        theta: 0.95,
        load: Load::Closed {
            clients: if hot { 32 } else { 2 },
            think_ns: if hot { 200 } else { 4_000 },
        },
        hold_ns: 250,
        deadline_ns: MIXED_DEADLINE_NS,
    });
    cfg.tenants.push(TenantConfig {
        first_object: objects / 2,
        objects: objects / 2,
        theta: 0.2,
        load: Load::Open {
            curve: ArrivalCurve::Constant {
                rate_per_sec: scale.pick(2e6, 1e6),
            },
        },
        hold_ns: 100,
        deadline_ns: 0,
    });
    cfg
}

/// Limiter for the burst scenario: looser than the default (the spike
/// legitimately needs hundreds of switches) but still a hard ceiling
/// the stampeding control run exceeds.
pub const BURST_LIMITER: LimiterConfig = LimiterConfig {
    burst: 32,
    period_ns: 5_000,
};

/// The bursty stampede workload: a diurnal background tenant over most
/// of the arena, plus a spiking tenant whose load lands *uniformly* on
/// a small hot range — during a spike every object in the range builds
/// a contended streak and crosses the switch threshold within the same
/// few microseconds. That synchronized switch demand is exactly the
/// stampede the per-shard limiter ([`BURST_LIMITER`]) exists to spread
/// out; `limited = false` is the stampeding control arm whose switch
/// log the oracle must *reject*.
pub fn burst_config(scale: Scale, limited: bool) -> ServiceConfig {
    let objects = scale.pick(100_000, 10_000);
    let hot_range = scale.pick(512, 256);
    let mut cfg = ServiceConfig::new(objects, 8, 0xB00);
    cfg.mode = ArenaMode::Adaptive;
    cfg.limiter = limited.then_some(BURST_LIMITER);
    cfg.horizon_ns = scale.pick(1_200_000, 400_000);
    cfg.reservoir = scale.pick(65_536, 8_192);
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: hot_range,
        theta: 0.0,
        load: Load::Open {
            curve: ArrivalCurve::Burst {
                base_per_sec: 2e5,
                // ~2e6/s per hot object during a spike: past each
                // object's service rate, so queues and streaks build.
                spike_per_sec: scale.pick(1e9, 5e8),
                duty_ns: 50_000,
                period_ns: 200_000,
            },
        },
        hold_ns: 200,
        deadline_ns: 80_000,
    });
    cfg.tenants.push(TenantConfig {
        first_object: hot_range,
        objects: objects - hot_range,
        theta: 0.5,
        load: Load::Open {
            curve: ArrivalCurve::Diurnal {
                low_per_sec: 1e5,
                high_per_sec: 1e6,
                period_ns: 1_000_000,
            },
        },
        hold_ns: 150,
        deadline_ns: 0,
    });
    cfg
}

/// The residency workload behind the bytes/object row: a thin uniform
/// trickle over a huge arena, so the working set stays tiny while the
/// at-rest population scales 10⁵ → 10⁶ (10⁴ → 10⁵ at quick scale).
pub fn residency_config(scale: Scale, objects: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(objects, 32, 0x51D);
    cfg.mode = ArenaMode::Adaptive;
    cfg.limiter = Some(LimiterConfig::default());
    cfg.horizon_ns = scale.pick(1_000_000, 200_000);
    cfg.reservoir = 4_096;
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects,
        theta: 0.6,
        load: Load::Open {
            curve: ArrivalCurve::Constant { rate_per_sec: 1e6 },
        },
        hold_ns: 120,
        deadline_ns: 0,
    });
    cfg
}

/// Arena sizes for the bytes/object sweep at each scale.
pub fn residency_sweep(scale: Scale) -> [u64; 2] {
    match scale {
        Scale::Full => [100_000, 1_000_000],
        Scale::Quick => [10_000, 100_000],
    }
}

/// Acquire deadline of the mixed workload's hot tenant (ns).
pub const MIXED_DEADLINE_NS: u64 = 60_000;

/// Deadline-adjusted mean acquire latency: every abort is charged its
/// full deadline, so a protocol cannot "win" on mean latency by
/// shedding the requests it failed to serve (static TTS does exactly
/// that under contention).
pub fn adjusted_mean_ns(r: &ServiceReport, deadline_ns: u64) -> f64 {
    let total = r.acquires + r.aborts;
    if total == 0 {
        return 0.0;
    }
    (r.wait.sum as f64 + r.aborts as f64 * deadline_ns as f64) / total as f64
}

/// Run one canonical mixed workload.
pub fn run_mixed(scale: Scale, hot: bool, mode: ArenaMode) -> ServiceReport {
    let objects = scale.pick(100_000, 10_000);
    run_service(mixed_config(scale, objects, hot, mode))
}

/// Run the burst workload with the limiter on or off.
pub fn run_burst(scale: Scale, limited: bool) -> ServiceReport {
    run_service(burst_config(scale, limited))
}

/// Run the residency workload at a given arena size.
pub fn run_residency(scale: Scale, objects: u64) -> ServiceReport {
    run_service(residency_config(scale, objects))
}
