//! Workload glue for the native lock-service scenarios: canonical
//! [`NativeRunConfig`]s shared by the `service_native` bench target and
//! the `service_native_*` rows of `EXPERIMENTS.md`, so
//! `BENCH_service_native.json` and the CI claim suite measure exactly
//! the same runs.
//!
//! Unlike every other scenario family, these rows run *real threads on
//! the host* — wall-clock time, real preemption, cores-scaled. The
//! claims are therefore calibrated with far more headroom than the
//! deterministic virtual-time rows: they gate the *shape* of the result
//! (adaptive inflation beats a static-TTS pin at the tail; deflation
//! reclaims the slab) rather than exact numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lock_service::{
    run_native, ArenaMode, ArrivalCurve, LimiterConfig, Load, NativeReport, NativeRunConfig,
    NativeService, TenantConfig,
};

use crate::scenario::Scale;

/// Worker threads for the native rows: twice the cores (at least two),
/// so the run is *deliberately oversubscribed* on every host. The
/// pathologies these rows gate — a preempted flat-lock holder, a
/// waiter descheduled for a whole scheduling quantum, capture by
/// whichever thread happens to be running — only exist when threads
/// outnumber cores, and pinning the ratio keeps a 1-core dev box and
/// a 4-core CI runner in the same regime.
/// `REPRO_NATIVE_THREADS` overrides for calibration sweeps.
pub fn native_threads() -> usize {
    if let Some(n) = std::env::var("REPRO_NATIVE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(2);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (2 * cores).max(2)
}

/// The native mixed-tenancy workload behind the tail row: a hot
/// closed-loop tenant monopolising a single object with zero think
/// time and a *long* hold — long enough that the lock is held for
/// most of each worker's loop, so every worker's next hot dispatch
/// genuinely races the others (the capture-effect regime where an
/// unfair flat spin lock starves whichever worker is descheduled for
/// a whole scheduling quantum, while the inflated FIFO lock's yield
/// loop bounds the same wait at handoff scale) — plus a calm
/// open-loop tenant spread over the rest of the arena with a short
/// deadline (exercising the native abort path).
///
/// The hot tenant's deadline is *generous* (50 ms, quanta-scale) and
/// exists for measurement honesty, not shedding: under flat TTS a
/// starved waiter can simply never win, and an acquire that never
/// completes leaves no latency sample — the worse the lock behaves,
/// the better its completed-only tail looks. The deadline forces
/// every starved request to eventually resolve (grant or shed), and
/// the driver charges each shed request its full deadline in the
/// adjusted histogram the claims gate on.
pub fn tail_config(scale: Scale, mode: ArenaMode) -> NativeRunConfig {
    let threads = native_threads();
    let mut cfg = NativeRunConfig::new(4_096, 16, 0xA11CE);
    cfg.mode = mode;
    cfg.limiter = Some(LimiterConfig::default());
    cfg.threads = threads;
    cfg.run_ns = scale.pick(1_500_000_000, 300_000_000);
    cfg.reservoir = scale.pick(65_536, 16_384);
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: 1,
        theta: 0.95,
        load: Load::Closed {
            clients: (2 * threads) as u32,
            think_ns: 0,
        },
        hold_ns: 30_000,
        deadline_ns: 50_000_000,
    });
    cfg.tenants.push(TenantConfig {
        first_object: 1,
        objects: 4_095,
        theta: 0.2,
        load: Load::Open {
            curve: ArrivalCurve::Constant {
                rate_per_sec: 20_000.0,
            },
        },
        hold_ns: 300,
        deadline_ns: 60_000,
    });
    cfg
}

/// Run one arm of the native tail comparison.
pub fn run_tail(scale: Scale, mode: ArenaMode) -> NativeReport {
    run_native(&tail_config(scale, mode))
}

/// What the three-phase deflation driver measured.
#[derive(Debug)]
pub struct DeflationOutcome {
    /// Cumulative inflations after the second storm (>= 2 proves
    /// re-inflation).
    pub inflations: u64,
    /// Cumulative deflations (>= 1 proves the demotion path ran).
    pub deflations: u64,
    /// Live inflated locks right after the calm phase (0 proves the
    /// hot set was fully reclaimed).
    pub live_after_calm: u64,
    /// Hot-side footprint bytes after the first storm.
    pub hot_bytes_storm: u64,
    /// Hot-side footprint bytes after the calm phase — strictly below
    /// [`Self::hot_bytes_storm`] is the "footprint shrinks when a hot
    /// phase cools" claim.
    pub hot_bytes_calm: u64,
    /// Physical slab entries after the second storm; staying at the
    /// first storm's peak proves free-list reuse.
    pub slab_entries: u64,
    /// Mutual-exclusion overlaps observed by the in-CS counter (must
    /// be 0 across both promotion boundaries).
    pub violations: u64,
}

/// Drive one object through hot → calm → hot again with real racing
/// threads, checking mutual exclusion throughout: the inflate →
/// deflate → re-inflate round trip behind the deflation row.
pub fn run_deflation(scale: Scale) -> DeflationOutcome {
    let threads = native_threads();
    let iters = scale.pick(6_000, 1_500);
    let svc = Arc::new(NativeService::new(64, 4, Some(LimiterConfig::default())));
    let in_cs = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));

    let storm = |until_inflations: u64| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let in_cs = Arc::clone(&in_cs);
                let violations = Arc::clone(&violations);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let g = svc.acquire(0, None).expect("no deadline, must acquire");
                        // order: SeqCst — cross-thread overlap counter.
                        if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                            // order: SeqCst — see above.
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        // Yield mid-hold so waiters run (and register)
                        // during the hold even on one core.
                        std::thread::yield_now();
                        // order: SeqCst — see above.
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                        if svc.inflations() >= until_inflations {
                            break;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread panicked");
        }
    };

    // Phase 1: contention inflates.
    storm(1);
    let hot_bytes_storm = svc.footprint().hot_bytes;

    // Phase 2: polite solo traffic — the kernel settles back to TTS
    // and the calm streak walks the object down to a flat word.
    for _ in 0..400 {
        drop(svc.acquire(0, None).expect("uncontended"));
        if svc.deflations() >= 1 {
            break;
        }
    }
    let live_after_calm = svc.live_inflated();
    let hot_bytes_calm = svc.footprint().hot_bytes;

    // Phase 3: a second storm re-inflates through the free list.
    storm(svc.inflations() + 1);

    DeflationOutcome {
        inflations: svc.inflations(),
        deflations: svc.deflations(),
        live_after_calm,
        hot_bytes_storm,
        hot_bytes_calm,
        slab_entries: svc.slab_entries(),
        // order: SeqCst — final read after joins.
        violations: violations.load(Ordering::SeqCst),
    }
}
