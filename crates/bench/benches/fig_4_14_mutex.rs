//! Figure 4.14 / Table 4.5: execution times of the mutual-exclusion
//! benchmarks (FibHeap, CountNet, Mutex) under each waiting algorithm.

use alewife_sim::CostModel;
use repro_bench::table;
use sim_apps::alg::WaitAlg;
use sim_apps::{countnet, fibheap, mutex_app};

fn main() {
    let b = CostModel::nwo().block_cost();
    let algs = [
        ("always-spin", WaitAlg::Spin),
        ("always-block", WaitAlg::Block),
        ("2phase L=B", WaitAlg::TwoPhase(b)),
        (
            "2phase L=.54B",
            WaitAlg::TwoPhase((b as f64 * 0.5413) as u64),
        ),
    ];
    let cols: Vec<String> = algs.iter().map(|(l, _)| l.to_string()).collect();

    table::title("Fig 4.14 / Table 4.5: mutual-exclusion benchmarks (cycles)");
    table::header("benchmark", &cols);
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, w)| fibheap::run(&fibheap::FibHeapConfig::small(procs, w)).elapsed as f64)
            .collect();
        table::row_f64(&format!("FibHeap P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, w)| countnet::run(&countnet::CountNetConfig::small(procs, w)).elapsed as f64)
            .collect();
        table::row_f64(&format!("CountNet P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, w)| mutex_app::run(&mutex_app::MutexConfig::small(procs, w)).elapsed as f64)
            .collect();
        table::row_f64(&format!("Mutex P={procs}"), &vals);
    }
}
