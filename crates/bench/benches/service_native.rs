//! Native lock-service scenario family runner: executes the real-thread
//! rows (`service_native_tail`, `service_native_deflation`), checks
//! their claims, and writes `BENCH_service_native.json` at the
//! repository root.
//!
//! These are the only rows measured on host threads and a wall clock —
//! cores-scaled, preemption and all — so their numbers sit next to the
//! virtual-time `BENCH_service.json` rows rather than replacing them.
//! Rows are emitted in `EXPERIMENTS.md` table order with the scenario
//! name as the stable row key, enforced by the `crates/check` lint
//! (`service-native-keys` rule).
//!
//! ```sh
//! cargo bench --bench service_native             # full-scale runs
//! cargo bench --bench service_native -- --quick  # scaled-down (CI)
//! ```
//!
//! Exits nonzero if any claim fails.

use repro_bench::scenario::{by_name, Scale};

/// The native lock-service family, in `EXPERIMENTS.md` table order.
const ROWS: [&str; 2] = ["service_native_tail", "service_native_deflation"];

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let mut json = String::from("{\n  \"bench\": \"service_native\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"rows\": [\n"));
    let mut failed_rows = 0usize;
    for (i, name) in ROWS.iter().enumerate() {
        let sc = by_name(name);
        let (outcome, results) = sc.report(scale);
        let pass = results.iter().all(|r| r.pass);
        if !pass {
            failed_rows += 1;
        }
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"figure\": \"{}\", \"status\": \"{}\", \
             \"headline\": \"{}\",\n     \"claims\": [\n",
            esc(sc.name),
            esc(sc.figure),
            if pass { "pass" } else { "FAIL" },
            esc(&outcome.headline),
        ));
        for (j, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"claim\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}{}\n",
                esc(&r.claim),
                r.pass,
                esc(&r.detail),
                if j + 1 < results.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < ROWS.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_service_native.json"
    );
    std::fs::write(path, json).expect("write BENCH_service_native.json");

    println!("\n{}", "=".repeat(72));
    println!(
        "{}/{} native lock-service rows pass all claims ({} scale); \
         wrote BENCH_service_native.json",
        ROWS.len() - failed_rows,
        ROWS.len(),
        if quick { "quick" } else { "full" },
    );
    if failed_rows > 0 {
        std::process::exit(1);
    }
}
