//! Figure 3.14 / §3.4.1: the 3-competitive switching policy on its
//! worst-case adversary, versus the exact off-line optimum, plus the
//! thrashing behaviour of always-switch (task-system model).

use repro_bench::table;
use waiting_theory::task_system::{
    worst_case_sequence, AlwaysSwitch, Competitive3, Hysteresis, NeverSwitch, TaskSystem,
};

fn main() {
    // §3.5.5 empirical parameters: switch costs 8000/800 cycles,
    // residuals 150 (TTS@high) and 15 (MCS@low) per request.
    let ts = TaskSystem::two_protocol(8_000.0, 800.0, 150.0, 15.0);

    table::title("Figure 3.14: policies on the worst-case adversary (cost ratio vs opt)");
    table::header(
        "cycles",
        &[
            "opt".into(),
            "competitive3".into(),
            "always".into(),
            "never".into(),
            "hyst(20,55)".into(),
        ],
    );
    for cycles in [1usize, 5, 20, 50] {
        let reqs = worst_case_sequence(&ts, cycles);
        let opt = ts.offline_opt(&reqs);
        let comp = ts.run_online(&mut Competitive3::default(), &reqs);
        let always = ts.run_online(&mut AlwaysSwitch, &reqs);
        let never = ts.run_online(&mut NeverSwitch, &reqs);
        let hyst = ts.run_online(&mut Hysteresis::new(20, 55), &reqs);
        table::row_ratio(
            &format!("{cycles} adversary cycles"),
            &[1.0, comp / opt, always / opt, never / opt, hyst / opt],
        );
    }
    println!("\n(3-competitive bound: the competitive3 column must stay <= 3.00)");
}
