//! Figure 3.14 / §3.4.1: the 3-competitive switching policy on its
//! worst-case adversary versus the exact off-line optimum (task-system
//! model), plus the thrashing cost of switch-immediately.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_14_policy_bound").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
