//! Figure 3.15 (also Figures 1.1 and 3.2): baseline overhead per
//! operation vs. contending processors, for spin locks (left) and
//! fetch-and-op (right), including the `Dir_NB` full-map variant.

use alewife_sim::CostModel;
use repro_bench::experiments::{fetchop_overhead, lock_overhead, BASELINE_PROCS};
use repro_bench::table;
use sim_apps::alg::{FetchOpAlg, LockAlg};

fn main() {
    let procs: Vec<String> = BASELINE_PROCS.iter().map(|p| p.to_string()).collect();

    table::title("Figure 3.15 (left): spin lock overhead (cycles per critical section)");
    table::header("algorithm \\ procs", &procs);
    for (label, alg, full_map) in [
        ("test&set (backoff)", LockAlg::TestAndSet, false),
        ("test&test&set (backoff)", LockAlg::Tts, false),
        ("test&test&set Dir_NB", LockAlg::Tts, true),
        ("MCS queue", LockAlg::Mcs, false),
        ("reactive", LockAlg::Reactive, false),
    ] {
        let vals: Vec<f64> = BASELINE_PROCS
            .iter()
            .map(|&p| lock_overhead(alg, p, CostModel::nwo(), full_map))
            .collect();
        table::row_f64(label, &vals);
    }

    table::title("Figure 3.15 (right): fetch-and-op overhead (cycles per op)");
    table::header("algorithm \\ procs", &procs);
    for (label, alg) in [
        ("tts-lock based", FetchOpAlg::TtsLock),
        ("queue-lock based", FetchOpAlg::QueueLock),
        ("combining tree", FetchOpAlg::Combining),
        ("reactive", FetchOpAlg::Reactive),
    ] {
        let vals: Vec<f64> = BASELINE_PROCS
            .iter()
            .map(|&p| fetchop_overhead(alg, p, CostModel::nwo()))
            .collect();
        table::row_f64(label, &vals);
    }
}
