//! Figure 3.15 (also Figures 1.1 and 3.2): baseline overhead per
//! operation vs. contending processors for spin locks and fetch-and-op,
//! including the `Dir_NB` full-map variant.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_15_baseline").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
