//! Figure 3.24: execution times of the fetch-and-op applications
//! (Gamteb, TSP, AQ) under queue-lock-based, combining-tree, and
//! reactive fetch-and-op.

use repro_bench::table;
use sim_apps::alg::{FetchOpAlg, WaitAlg};
use sim_apps::{aq, gamteb, tsp};

fn main() {
    let algs = [
        ("queue-lock", FetchOpAlg::QueueLock),
        ("combining", FetchOpAlg::Combining),
        ("reactive", FetchOpAlg::Reactive),
    ];
    let cols: Vec<String> = algs.iter().map(|(l, _)| l.to_string()).collect();

    table::title("Figure 3.24: fetch-and-op application execution times (cycles)");
    table::header("app / procs", &cols);
    for procs in [8usize, 16, 32] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| gamteb::run(&gamteb::GamtebConfig::small(procs, a)).elapsed as f64)
            .collect();
        table::row_f64(&format!("Gamteb  P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| tsp::run(&tsp::TspConfig::small(procs, a)).elapsed as f64)
            .collect();
        table::row_f64(&format!("TSP     P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| {
                aq::run_queue(&aq::AqConfig::small(procs, a, WaitAlg::Spin)).elapsed as f64
            })
            .collect();
        table::row_f64(&format!("AQ      P={procs}"), &vals);
    }
}
