//! Figures 4.6-4.11: measured waiting-time profiles per synchronization
//! type — J-structure readers (Jacobi), futures (Fib, AQ), barriers
//! (CGrad, Jacobi-Bar), and mutexes (FibHeap, Mutex, CountNet). The
//! paper reads these to justify the exponential/uniform restricted-
//! adversary models; `B ≈ 465` marks the spin/block breakeven.

use alewife_sim::{CostModel, WaitHistogram};
use repro_bench::table;
use sim_apps::alg::WaitAlg;
use sim_apps::{aq, cgrad, countnet, fib, fibheap, jacobi, mutex_app};

fn profile(name: &str, hist_key: &str, stats: &alewife_sim::Stats) {
    let b = CostModel::nwo().block_cost();
    let h: &WaitHistogram = match stats.waits.get(hist_key) {
        Some(h) => h,
        None => {
            println!("{name:<22} (no waits recorded)");
            return;
        }
    };
    println!(
        "{name:<22}{:>8}{:>10.0}{:>10}{:>10}{:>10}{:>10}{:>9.1}%",
        h.count,
        h.mean(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.max,
        100.0 * h.frac_below(b),
    );
}

fn main() {
    table::title("Figures 4.6-4.11: waiting-time profiles (cycles; B = 465)");
    println!(
        "{:<22}{:>8}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "benchmark", "waits", "mean", "p50", "p90", "p99", "max", "<B"
    );
    println!("{}", "-".repeat(90));

    let r = jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, WaitAlg::Spin));
    profile("Jacobi (J-structs)", "jstruct", &r.stats);

    let r = fib::run(&fib::FibConfig::small(8, WaitAlg::Spin));
    profile("Fib (futures)", "future", &r.stats);

    let r = aq::run_futures(&aq::AqConfig::small(
        8,
        sim_apps::alg::FetchOpAlg::TtsLock,
        WaitAlg::Spin,
    ));
    profile("AQ (futures)", "future", &r.stats);

    let r = cgrad::run(&cgrad::CgradConfig::small(8, WaitAlg::Spin));
    profile("CGrad (barrier)", "barrier", &r.stats);

    let r = jacobi::run_barrier(&jacobi::JacobiConfig::small(8, WaitAlg::Spin));
    profile("Jacobi-Bar (barrier)", "barrier", &r.stats);

    let r = fibheap::run(&fibheap::FibHeapConfig::small(8, WaitAlg::Spin));
    profile("FibHeap (mutex)", "mutex", &r.stats);

    let r = mutex_app::run(&mutex_app::MutexConfig::small(8, WaitAlg::Spin));
    profile("Mutex (mutex)", "mutex", &r.stats);

    let r = countnet::run(&countnet::CountNetConfig::small(8, WaitAlg::Spin));
    profile("CountNet (mutex)", "mutex", &r.stats);
}
