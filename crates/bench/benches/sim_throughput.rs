//! Simulator hot-path throughput: events/sec and simulated cycles/sec
//! on fixed reactive-lock workloads across machine shapes (1/16/64
//! nodes) and two contention regimes. This is the perf trajectory for
//! the `alewife-sim` event loop itself — every figure reproduction is
//! bottlenecked by it. Writes `BENCH_sim.json` at the repository root.
//!
//! The tracked headline is the **64-node contended** row: a short
//! critical section with near-zero think time keeps all 64 processors
//! hammering one reactive lock, the §3.1.1 invalidate-and-refetch storm
//! that stresses the directory, watcher, and event-queue hot paths.
//!
//! ```sh
//! cargo bench --bench sim_throughput             # full run (3 reps/row)
//! cargo bench --bench sim_throughput -- --quick  # bounded run for CI
//! ```

use std::time::Instant;

use alewife_sim::{Config, CostModel, Machine};
use repro_bench::table;
use sim_apps::alg::{AnyLock, LockAlg};

/// Machine shapes swept.
const SHAPES: [usize; 3] = [1, 16, 64];

/// Contention regimes: (label, critical-section cycles, think bound).
/// "contended" is the headline regime tracked in EXPERIMENTS.md.
const REGIMES: [(&str, u64, u64); 2] = [("moderate", 50, 50), ("contended", 5, 1)];

struct Sample {
    nodes: usize,
    regime: &'static str,
    events: u64,
    cycles: u64,
    wall_secs: f64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs
    }
}

/// One measured run: every node hammers a single reactive lock.
fn run_shape(nodes: usize, regime: &'static str, cs: u64, think: u64, iters: u64) -> Sample {
    let m = Machine::new(
        Config::default()
            .nodes(nodes.max(2))
            .cost(CostModel::nwo())
            .seed(0xBEEF + nodes as u64),
    );
    let lock = AnyLock::make(&m, 0, LockAlg::Reactive, nodes);
    for p in 0..nodes {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(cs).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(think)).await;
            }
        });
    }
    let t0 = Instant::now();
    let cycles = m.run();
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(m.live_tasks(), 0, "throughput workload deadlocked");
    Sample {
        nodes,
        regime,
        events: m.stats().sim_events,
        cycles,
        wall_secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Keep total simulated work roughly constant across shapes so each
    // row runs long enough to time reliably.
    let (per_proc, reps) = if quick { (1_500u64, 1) } else { (6_000u64, 3) };

    table::title("sim_throughput: event-loop throughput (reactive lock)");
    table::header(
        "nodes/regime",
        &[
            "events".into(),
            "cycles".into(),
            "Mev/s".into(),
            "Mcyc/s".into(),
        ],
    );

    let mut best: Vec<Sample> = Vec::new();
    for &(regime, cs, think) in &REGIMES {
        for &nodes in &SHAPES {
            let iters = (per_proc * 16 / nodes as u64).max(64);
            // Warm-up run (not timed) so allocator state is steady.
            if !quick {
                run_shape(nodes, regime, cs, think, iters / 4);
            }
            let mut row_best: Option<Sample> = None;
            for _ in 0..reps {
                let s = run_shape(nodes, regime, cs, think, iters);
                if row_best.as_ref().is_none_or(|b| s.wall_secs < b.wall_secs) {
                    row_best = Some(s);
                }
            }
            let s = row_best.expect("at least one rep ran");
            print!("{:<28}", format!("{} {}", s.nodes, s.regime));
            print!("{:>12}", s.events);
            print!("{:>12}", s.cycles);
            print!("{:>12.3}", s.events_per_sec() / 1e6);
            print!("{:>12.3}", s.cycles_per_sec() / 1e6);
            println!();
            best.push(s);
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"rows\": [\n"));
    for (i, s) in best.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"regime\": \"{}\", \"events\": {}, \"cycles\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}}}{}\n",
            s.nodes,
            s.regime,
            s.events,
            s.cycles,
            s.wall_secs,
            s.events_per_sec(),
            s.cycles_per_sec(),
            if i + 1 < best.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");
}
