//! Simulator hot-path throughput: events/sec and simulated cycles/sec
//! on fixed reactive-lock workloads. Two sections:
//!
//! * **serial** — the single-machine event loop across machine shapes
//!   (1/16/64 nodes) and two contention regimes, as tracked since PR 2.
//!   The headline is the 64-node contended row.
//! * **parallel** — the sharded [`Cluster`] at 256-4096 nodes under the
//!   contended regime, one reactive lock per 64-node shard plus a
//!   cross-shard message ring. Each shape reports two rates:
//!   `events_per_sec` is the real threaded wall rate on this host, and
//!   `aggregate_events_per_sec` is `events / critical_path_secs` where
//!   the critical path sums each epoch's *maximum* per-shard busy time,
//!   measured in the serial reference execution (uncontaminated by core
//!   oversubscription) — the rate a host with `workers` idle cores
//!   sustains. `host_cores` is recorded beside both so neither number
//!   can masquerade as the other.
//!
//! Writes `BENCH_sim.json` at the repository root.
//!
//! ```sh
//! cargo bench --bench sim_throughput                  # full run (3 reps/row)
//! cargo bench --bench sim_throughput -- --quick       # bounded run for CI
//! cargo bench --bench sim_throughput -- --workers 8   # override shard count
//! ```

use std::time::Instant;

use alewife_sim::parallel::{Cluster, ParallelConfig, ShardCtx};
use alewife_sim::{Config, CostModel, Machine, Port};
use repro_bench::table;
use sim_apps::alg::{AnyLock, LockAlg};

/// Machine shapes swept by the serial section.
const SHAPES: [usize; 3] = [1, 16, 64];

/// Contention regimes: (label, critical-section cycles, think bound).
/// "contended" is the headline regime tracked in EXPERIMENTS.md.
const REGIMES: [(&str, u64, u64); 2] = [("moderate", 50, 50), ("contended", 5, 1)];

/// Parallel-section shapes: (total nodes, shards). 64 nodes per shard
/// everywhere, the headline serial shape, so per-shard behaviour is the
/// known quantity and the sweep varies only the shard count.
const CLUSTER_SHAPES: [(usize, usize); 3] = [(256, 4), (1024, 16), (4096, 64)];

/// Epoch window for the cluster rows (cycles). Coarsens the lookahead so
/// an epoch covers tens of thousands of simulated cycles instead of one
/// mesh hop's worth — the barrier/bookkeeping cost per epoch stays
/// invisible next to event execution (and on an oversubscribed host,
/// each barrier costs scheduler handoffs, so fewer is strictly better).
/// The ring traffic tolerates the latency.
const EPOCH_WINDOW: u64 = 60_000;

struct Sample {
    nodes: usize,
    regime: &'static str,
    events: u64,
    cycles: u64,
    wall_secs: f64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs
    }
}

/// One measured serial run: every node hammers a single reactive lock.
fn run_shape(nodes: usize, regime: &'static str, cs: u64, think: u64, iters: u64) -> Sample {
    let m = Machine::new(
        Config::default()
            .nodes(nodes.max(2))
            .cost(CostModel::nwo())
            .seed(0xBEEF + nodes as u64),
    );
    let lock = AnyLock::make(&m, 0, LockAlg::Reactive, nodes);
    for p in 0..nodes {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(cs).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(think)).await;
            }
        });
    }
    let t0 = Instant::now();
    let cycles = m.run();
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(m.live_tasks(), 0, "throughput workload deadlocked");
    Sample {
        nodes,
        regime,
        events: m.stats().sim_events,
        cycles,
        wall_secs,
    }
}

/// The cluster workload: each shard's nodes hammer a shard-local
/// reactive lock (the contended regime), and shard node 0 posts a
/// heartbeat around the shard ring every few acquisitions.
fn cluster_setup(ctx: &ShardCtx<'_>, iters: u64) {
    let m = ctx.machine;
    let n = ctx.shard_nodes;
    let lock = AnyLock::make(m, 0, LockAlg::Reactive, n);
    m.register_handler(0, Port(60), |hctx, _| {
        hctx.bump("ring_hops", 1);
    });
    for p in 0..n {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        let mail = ctx.mail();
        let (base, total) = (ctx.node_base, ctx.total_nodes);
        m.spawn(p, async move {
            for i in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(5).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(1)).await;
                if p == 0 && i % 16 == 0 {
                    mail.post(cpu.now(), base, (base + n) % total, Port(60), [i, 0, 0, 0]);
                }
            }
        });
    }
}

struct ClusterSample {
    nodes: usize,
    workers: usize,
    events: u64,
    cycles: u64,
    epochs: u64,
    /// Threaded-run wall time (real host rate).
    wall_secs: f64,
    /// Per-epoch max shard busy summed, from the serial reference run.
    critical_path_secs: f64,
    /// Total shard busy time in the reference run; `busy / (W * cp)` is
    /// the load-balance factor (1.0 = perfectly even epochs).
    busy_secs_sum: f64,
}

impl ClusterSample {
    fn wall_rate(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn aggregate_rate(&self) -> f64 {
        self.events as f64 / self.critical_path_secs
    }
}

/// One cluster shape, measured twice: the serial reference supplies the
/// event totals and the epoch critical path; the threaded run supplies
/// the real wall rate on this host.
fn run_cluster(nodes: usize, workers: usize, iters: u64) -> ClusterSample {
    let mk = || {
        Cluster::new(
            nodes,
            Config::default()
                .cost(CostModel::nwo())
                .seed(0xBEEF + nodes as u64),
            ParallelConfig {
                workers,
                epoch_window: EPOCH_WINDOW,
            },
        )
    };
    let reference = mk().run_serial(|ctx| cluster_setup(ctx, iters));
    assert_eq!(reference.live_tasks, 0, "cluster workload deadlocked");
    assert_eq!(reference.causality_violations, 0, "lookahead bound broken");
    let threaded = mk().run_parallel(|ctx| cluster_setup(ctx, iters));
    assert_eq!(
        threaded.stats.sim_events, reference.stats.sim_events,
        "cross-mode event-count mismatch"
    );
    ClusterSample {
        nodes,
        workers,
        events: reference.stats.sim_events,
        cycles: reference.elapsed,
        epochs: reference.epochs,
        wall_secs: threaded.wall_secs,
        critical_path_secs: reference.critical_path_secs,
        busy_secs_sum: reference.busy_secs.iter().sum(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let workers_override: Option<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    // Keep total simulated work roughly constant across shapes so each
    // row runs long enough to time reliably.
    let (per_proc, reps) = if quick { (1_500u64, 1) } else { (6_000u64, 3) };

    table::title("sim_throughput: event-loop throughput (reactive lock)");
    table::header(
        "nodes/regime",
        &[
            "events".into(),
            "cycles".into(),
            "Mev/s".into(),
            "Mcyc/s".into(),
        ],
    );

    let mut best: Vec<Sample> = Vec::new();
    for &(regime, cs, think) in &REGIMES {
        for &nodes in &SHAPES {
            let iters = (per_proc * 16 / nodes as u64).max(64);
            // Warm-up run (not timed) so allocator state is steady.
            if !quick {
                run_shape(nodes, regime, cs, think, iters / 4);
            }
            let mut row_best: Option<Sample> = None;
            for _ in 0..reps {
                let s = run_shape(nodes, regime, cs, think, iters);
                if row_best.as_ref().is_none_or(|b| s.wall_secs < b.wall_secs) {
                    row_best = Some(s);
                }
            }
            let s = row_best.expect("at least one rep ran");
            print!("{:<28}", format!("{} {}", s.nodes, s.regime));
            print!("{:>12}", s.events);
            print!("{:>12}", s.cycles);
            print!("{:>12.3}", s.events_per_sec() / 1e6);
            print!("{:>12.3}", s.cycles_per_sec() / 1e6);
            println!();
            best.push(s);
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    table::title("sim_throughput: sharded cluster (contended, 64 nodes/shard)");
    table::header(
        "nodes/shards",
        &[
            "events".into(),
            "epochs".into(),
            "wall Mev/s".into(),
            "agg Mev/s".into(),
            "balance".into(),
        ],
    );
    let cluster_shapes: Vec<(usize, usize)> = if quick {
        vec![(256, workers_override.unwrap_or(4))]
    } else {
        CLUSTER_SHAPES
            .iter()
            .map(|&(n, w)| (n, workers_override.unwrap_or(w)))
            .collect()
    };
    let mut clusters: Vec<ClusterSample> = Vec::new();
    for &(nodes, workers) in &cluster_shapes {
        // Per-proc iterations scaled down with node count so every
        // shape simulates a comparable event total (the contended
        // 64-node shard emits ~180 events per lock iteration, so these
        // totals land in the millions — long enough to time, short
        // enough that the threaded run stays affordable on a small
        // host). The floor keeps the run well past the reactive locks'
        // adaptation transient: the early epochs where shards diverge
        // (some still spinning, some already queueing) are the
        // imbalanced ones, so a too-short run understates the epoch
        // balance and with it the aggregate rate.
        let iters = if quick {
            (12_000 / nodes as u64).max(12)
        } else {
            (96_000 / nodes as u64).max(24)
        };
        let c = run_cluster(nodes, workers, iters);
        print!("{:<28}", format!("{} / {}", c.nodes, c.workers));
        print!("{:>12}", c.events);
        print!("{:>12}", c.epochs);
        print!("{:>12.3}", c.wall_rate() / 1e6);
        print!("{:>12.3}", c.aggregate_rate() / 1e6);
        print!(
            "{:>12.3}",
            c.busy_secs_sum / (c.workers as f64 * c.critical_path_secs)
        );
        println!();
        clusters.push(c);
    }
    println!("(host cores: {host_cores}; agg = events / epoch critical path)");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"host_cores\": {host_cores},\n  \"rows\": [\n"
    ));
    for (i, s) in best.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"serial\", \"nodes\": {}, \"regime\": \"{}\", \"events\": {}, \
             \"cycles\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \
             \"cycles_per_sec\": {:.1}}}{}\n",
            s.nodes,
            s.regime,
            s.events,
            s.cycles,
            s.wall_secs,
            s.events_per_sec(),
            s.cycles_per_sec(),
            if i + 1 < best.len() || !clusters.is_empty() {
                ","
            } else {
                ""
            },
        ));
    }
    for (i, c) in clusters.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"parallel\", \"nodes\": {}, \"workers\": {}, \"regime\": \
             \"contended\", \"events\": {}, \"cycles\": {}, \"epochs\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"critical_path_secs\": {:.6}, \
             \"aggregate_events_per_sec\": {:.1}}}{}\n",
            c.nodes,
            c.workers,
            c.events,
            c.cycles,
            c.epochs,
            c.wall_secs,
            c.wall_rate(),
            c.critical_path_secs,
            c.aggregate_rate(),
            if i + 1 < clusters.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");
}
