//! Figure 4.12 / Table 4.3: execution times of the producer-consumer
//! benchmarks (Jacobi with J-structures, Fib and AQ with futures) under
//! each waiting algorithm, normalized to the best static choice.

use alewife_sim::CostModel;
use repro_bench::table;
use sim_apps::alg::{FetchOpAlg, WaitAlg};
use sim_apps::{aq, fib, jacobi};

fn main() {
    let b = CostModel::nwo().block_cost();
    let algs = [
        ("always-spin", WaitAlg::Spin),
        ("always-block", WaitAlg::Block),
        ("2phase L=B", WaitAlg::TwoPhase(b)),
        (
            "2phase L=.54B",
            WaitAlg::TwoPhase((b as f64 * 0.5413) as u64),
        ),
    ];
    let cols: Vec<String> = algs.iter().map(|(l, _)| l.to_string()).collect();

    table::title("Fig 4.12 / Table 4.3: producer-consumer benchmarks (cycles)");
    table::header("benchmark", &cols);

    let vals: Vec<f64> = algs
        .iter()
        .map(|&(_, w)| jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, w)).elapsed as f64)
        .collect();
    table::row_f64("Jacobi (J-structs) P=8", &vals);

    let vals: Vec<f64> = algs
        .iter()
        .map(|&(_, w)| fib::run(&fib::FibConfig::small(8, w)).elapsed as f64)
        .collect();
    table::row_f64("Fib (futures) P=8", &vals);

    let vals: Vec<f64> = algs
        .iter()
        .map(|&(_, w)| {
            aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, w)).elapsed as f64
        })
        .collect();
    table::row_f64("AQ (futures) P=8", &vals);
}
