//! Figure 3.23: the time-varying contention test under hysteresis
//! switching policies (§3.5.5): Hysteresis(20,55), (500,4), (4,500).

#[path = "fig_3_21_time_varying.rs"]
mod driver;

use sim_apps::alg::LockAlg;

fn main() {
    driver::run_with(LockAlg::ReactiveHysteresis(20, 55), "hysteresis(20,55)");
    driver::run_with(LockAlg::ReactiveHysteresis(500, 4), "hysteresis(500,4)");
    driver::run_with(LockAlg::ReactiveHysteresis(4, 500), "hysteresis(4,500)");
}
