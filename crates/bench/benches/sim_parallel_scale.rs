//! Beyond the paper: the sharded conservative-parallel simulator at 16x
//! machine scale — cross-mode conformance, the safe-horizon invariant,
//! the epoch critical-path speedup, and the paper's reactive
//! tracks-best result re-run per tile on a 1024-node cluster.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! are evaluated against the full-scale sweep and the measured headline
//! is printed. The same scenario runs scaled-down in
//! `tests/scenario_claims.rs`, and `sim_throughput` records the
//! cluster's wall/aggregate event rates in `BENCH_sim.json`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("sim_parallel_scale").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
