//! Table 4.6: sensitivity of two-phase waiting to `Lpoll` — `0.5B`
//! versus `B` across the Chapter 4 benchmarks.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("table_4_6_lpoll_half").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
