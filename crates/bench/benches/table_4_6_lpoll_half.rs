//! Table 4.6: sensitivity of two-phase waiting to Lpoll — performance
//! with Lpoll = 0.5B versus Lpoll = B across the Chapter 4 benchmarks
//! (the paper's point: the choice barely matters, two-phase is robust).

use alewife_sim::CostModel;
use repro_bench::table;
use sim_apps::alg::{FetchOpAlg, WaitAlg};
use sim_apps::{aq, cgrad, countnet, fib, fibheap, jacobi, mutex_app};

fn main() {
    let b = CostModel::nwo().block_cost();
    let half = WaitAlg::TwoPhase(b / 2);
    let full = WaitAlg::TwoPhase(b);

    table::title("Table 4.6: two-phase waiting with Lpoll = 0.5B vs Lpoll = B");
    table::header(
        "benchmark (P=8)",
        &["L=0.5B".into(), "L=B".into(), "ratio".into()],
    );

    let rows: Vec<(&str, u64, u64)> = vec![
        (
            "Jacobi (J-structs)",
            jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, half)).elapsed,
            jacobi::run_jstructures(&jacobi::JacobiConfig::small(8, full)).elapsed,
        ),
        (
            "Fib (futures)",
            fib::run(&fib::FibConfig::small(8, half)).elapsed,
            fib::run(&fib::FibConfig::small(8, full)).elapsed,
        ),
        (
            "AQ (futures)",
            aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, half)).elapsed,
            aq::run_futures(&aq::AqConfig::small(8, FetchOpAlg::TtsLock, full)).elapsed,
        ),
        (
            "CGrad (barrier)",
            cgrad::run(&cgrad::CgradConfig::small(8, half)).elapsed,
            cgrad::run(&cgrad::CgradConfig::small(8, full)).elapsed,
        ),
        (
            "Jacobi-Bar (barrier)",
            jacobi::run_barrier(&jacobi::JacobiConfig::small(8, half)).elapsed,
            jacobi::run_barrier(&jacobi::JacobiConfig::small(8, full)).elapsed,
        ),
        (
            "FibHeap (mutex)",
            fibheap::run(&fibheap::FibHeapConfig::small(8, half)).elapsed,
            fibheap::run(&fibheap::FibHeapConfig::small(8, full)).elapsed,
        ),
        (
            "CountNet (mutex)",
            countnet::run(&countnet::CountNetConfig::small(8, half)).elapsed,
            countnet::run(&countnet::CountNetConfig::small(8, full)).elapsed,
        ),
        (
            "Mutex (mutex)",
            mutex_app::run(&mutex_app::MutexConfig::small(8, half)).elapsed,
            mutex_app::run(&mutex_app::MutexConfig::small(8, full)).elapsed,
        ),
    ];
    for (name, h, f) in rows {
        println!("{name:<28}{h:>12}{f:>12}{:>12.3}", h as f64 / f as f64);
    }
}
