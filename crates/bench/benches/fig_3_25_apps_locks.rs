//! Figure 3.25: execution times of the spin-lock applications (MP3D at
//! two problem sizes, Cholesky) under test&set, MCS, and reactive locks.

use repro_bench::table;
use sim_apps::alg::LockAlg;
use sim_apps::{cholesky, mp3d};

fn main() {
    let algs = [
        ("test&set", LockAlg::TestAndSet),
        ("MCS queue", LockAlg::Mcs),
        ("reactive", LockAlg::Reactive),
    ];
    let cols: Vec<String> = algs.iter().map(|(l, _)| l.to_string()).collect();

    table::title("Figure 3.25: spin-lock application execution times (cycles)");
    table::header("app / procs", &cols);
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| {
                let mut cfg = mp3d::Mp3dConfig::small(procs, a);
                cfg.particles_per_proc = 8;
                mp3d::run(&cfg).elapsed as f64
            })
            .collect();
        table::row_f64(&format!("MP3D-3k  P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| {
                let mut cfg = mp3d::Mp3dConfig::small(procs, a);
                cfg.particles_per_proc = 24;
                mp3d::run(&cfg).elapsed as f64
            })
            .collect();
        table::row_f64(&format!("MP3D-10k P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, a)| cholesky::run(&cholesky::CholeskyConfig::small(procs, a)).elapsed as f64)
            .collect();
        table::row_f64(&format!("Cholesky P={procs}"), &vals);
    }
}
