//! Figure 3.25: execution times of the spin-lock applications (MP3D,
//! Cholesky) under static and reactive locks.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_25_apps_locks").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
