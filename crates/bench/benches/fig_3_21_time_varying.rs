//! Figure 3.21: the time-varying contention test — reactive lock
//! cost normalized to MCS across period lengths, with switch counts read
//! from the shared API's `SwitchLog`.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_21_time_varying").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
