//! Figure 3.21: the time-varying contention test — elapsed times
//! normalized to the MCS queue lock, across period lengths and
//! contention percentages (default always-switch policy).

use repro_bench::experiments::time_varying;
use repro_bench::table;
use sim_apps::alg::LockAlg;

#[allow(dead_code)] // this file is also included as a module by figs 3.22/3.23
fn main() {
    run_with(LockAlg::Reactive, "reactive (always-switch)");
}

/// Shared driver used by Figures 3.21-3.23.
pub fn run_with(reactive: LockAlg, label: &str) {
    let periods = 4;
    let lengths = [256u64, 512, 1024, 2048];
    let cols: Vec<String> = lengths.iter().map(|l| l.to_string()).collect();
    for pct in [10u64, 30, 50, 70, 90] {
        table::title(&format!(
            "time-varying contention ({pct}% contention), normalized to MCS [{label}]"
        ));
        table::header("algorithm \\ period len", &cols);
        let mcs: Vec<f64> = lengths
            .iter()
            .map(|&l| time_varying(LockAlg::Mcs, l, pct, periods) as f64)
            .collect();
        for (lab, alg) in [
            ("test&set (backoff)", LockAlg::TestAndSet),
            ("MCS queue", LockAlg::Mcs),
            (label, reactive),
        ] {
            let vals: Vec<f64> = lengths
                .iter()
                .zip(&mcs)
                .map(|(&l, &m)| time_varying(alg, l, pct, periods) as f64 / m)
                .collect();
            table::row_ratio(lab, &vals);
        }
    }
}
