//! Figure 3.21: the time-varying contention test — elapsed times
//! normalized to the MCS queue lock, across period lengths and
//! contention percentages (default always-switch policy). The reactive
//! row also reports its protocol-change count per data point, read from
//! the shared API's [`SwitchLog`] instrumentation.

use std::rc::Rc;

use reactive_core::policy::{Instrument, SwitchLog};
use repro_bench::experiments::{time_varying, time_varying_with};
use repro_bench::table;
use sim_apps::alg::LockAlg;

#[allow(dead_code)] // this file is also included as a module by figs 3.22/3.23
fn main() {
    run_with(LockAlg::Reactive, "reactive (always-switch)");
}

/// Shared driver used by Figures 3.21-3.23.
pub fn run_with(reactive: LockAlg, label: &str) {
    let periods = 4;
    let lengths = [256u64, 512, 1024, 2048];
    let cols: Vec<String> = lengths.iter().map(|l| l.to_string()).collect();
    for pct in [10u64, 30, 50, 70, 90] {
        table::title(&format!(
            "time-varying contention ({pct}% contention), normalized to MCS [{label}]"
        ));
        table::header("algorithm \\ period len", &cols);
        let mcs: Vec<f64> = lengths
            .iter()
            .map(|&l| time_varying(LockAlg::Mcs, l, pct, periods) as f64)
            .collect();
        for (lab, alg) in [
            ("test&set (backoff)", LockAlg::TestAndSet),
            ("MCS queue", LockAlg::Mcs),
        ] {
            let vals: Vec<f64> = lengths
                .iter()
                .zip(&mcs)
                .map(|(&l, &m)| time_varying(alg, l, pct, periods) as f64 / m)
                .collect();
            table::row_ratio(lab, &vals);
        }
        // The reactive algorithm runs instrumented: one SwitchLog per
        // data point, so the switch counts line up with the ratios.
        let mut ratios = Vec::new();
        let mut switches = Vec::new();
        for (&l, &m) in lengths.iter().zip(&mcs) {
            let log = Rc::new(SwitchLog::new());
            let t = time_varying_with(
                reactive,
                l,
                pct,
                periods,
                Some(log.clone() as Rc<dyn Instrument>),
            );
            ratios.push(t as f64 / m);
            switches.push(log.count() as u64);
        }
        table::row_ratio(label, &ratios);
        table::row_u64("  switches (from API)", &switches);
    }
}
