//! Figure 3.16: spin-lock baseline on the 16-processor Alewife hardware
//! prototype (20 MHz cost model: network cheaper in processor cycles).

use alewife_sim::CostModel;
use repro_bench::experiments::lock_overhead;
use repro_bench::table;
use sim_apps::alg::LockAlg;

fn main() {
    let procs = [1usize, 2, 4, 8, 16];
    let cols: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    table::title("Figure 3.16: spin locks on the 16-node prototype (cycles per CS)");
    table::header("algorithm \\ procs", &cols);
    for (label, alg) in [
        ("test&set (backoff)", LockAlg::TestAndSet),
        ("test&test&set (backoff)", LockAlg::Tts),
        ("MCS queue", LockAlg::Mcs),
        ("reactive", LockAlg::Reactive),
    ] {
        let vals: Vec<f64> = procs
            .iter()
            .map(|&p| lock_overhead(alg, p, CostModel::prototype(), false))
            .collect();
        table::row_f64(label, &vals);
    }
}
