//! Figure 3.16: spin-lock baseline on the 16-processor Alewife
//! prototype cost model, with the `Dir_NB` full-map comparison.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_16_hardware").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
