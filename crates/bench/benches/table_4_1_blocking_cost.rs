//! Table 4.1: breakdown of the cost of blocking a thread — the paper's
//! Alewife measurements next to this simulator's cost model.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("table_4_1_blocking_cost").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
