//! Table 4.1: breakdown of the cost of blocking a thread — the paper's
//! Alewife measurements next to this simulator's cost model.

use alewife_sim::CostModel;
use repro_bench::table;

fn main() {
    let c = CostModel::nwo();
    table::title("Table 4.1: breakdown of the cost of blocking");
    println!(
        "{:<34}{:>14}{:>14}",
        "action", "paper(base)", "model(cycles)"
    );
    println!("{}", "-".repeat(62));
    println!(
        "{:<34}{:>14}{:>14}",
        "unloading (regs+enqueue+bookkeep)", 106, c.unload
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "reenabling (lock+ready queue)", 52, c.reenable
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "reloading (regs+state+bookkeep)", 61, c.reload
    );
    println!("{}", "-".repeat(62));
    println!("{:<34}{:>14}{:>14}", "total B", 219, c.block_cost());
    println!(
        "\n(paper: 219 base cycles, ~500 measured with cache misses; the model\n\
         charges measured-flavoured costs directly — B = {} cycles; the paper's\n\
         breakdown of the ~500 measured cycles is ~300 unload / ~100 reenable /\n\
         ~65 reload, which the model follows)",
        c.block_cost()
    );
}
