//! Figures 3.17-3.19: the multiple-lock test over contention patterns
//! 1-12, normalized to the simulated per-lock-optimal static choice.

use repro_bench::experiments::{multi_object, patterns};
use repro_bench::table;
use sim_apps::alg::LockAlg;

fn main() {
    table::title("Figures 3.17-3.19: multiple-lock test (normalized elapsed time)");
    table::header(
        "pattern",
        &[
            "optimal".into(),
            "test&set".into(),
            "MCS".into(),
            "reactive".into(),
        ],
    );
    let acq = 12; // per-processor acquisitions (scaled down from 16384 total)
    for p in patterns() {
        let opt = multi_object(&p, None, acq) as f64;
        let ts = multi_object(&p, Some(LockAlg::TestAndSet), acq) as f64;
        let mcs = multi_object(&p, Some(LockAlg::Mcs), acq) as f64;
        let re = multi_object(&p, Some(LockAlg::Reactive), acq) as f64;
        table::row_ratio(
            &format!("pattern {:>2} {:?}", p.id, p.groups),
            &[1.0, ts / opt, mcs / opt, re / opt],
        );
    }
}
