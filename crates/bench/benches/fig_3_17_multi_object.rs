//! Figures 3.17-3.19: the multiple-lock test over the §3.5.3
//! contention patterns, normalized to the per-lock-optimal static choice.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_17_multi_object").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
