//! All-rows experiment runner: executes every `EXPERIMENTS.md` scenario
//! in table order, checks its claims, and writes
//! `BENCH_experiments.json` at the repository root.
//!
//! Rows are emitted in `scenario::all()` order — exactly the
//! `EXPERIMENTS.md` table order — with the scenario name as the stable
//! row key, so diffs of the JSON across commits line up row-for-row.
//!
//! ```sh
//! cargo bench --bench experiments             # full-scale sweeps
//! cargo bench --bench experiments -- --quick  # scaled-down variants (CI)
//! ```
//!
//! Exits nonzero if any claim fails, so a CI run of this target is a
//! second claim gate on top of `tests/scenario_claims.rs`.

use repro_bench::scenario::{self, Scale};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let mut json = String::from("{\n  \"bench\": \"experiments\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"rows\": [\n"));
    let scenarios = scenario::all();
    let total = scenarios.len();
    let mut failed_rows = 0usize;
    for (i, sc) in scenarios.iter().enumerate() {
        let (outcome, results) = sc.report(scale);
        let pass = results.iter().all(|r| r.pass);
        if !pass {
            failed_rows += 1;
        }
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"figure\": \"{}\", \"status\": \"{}\", \
             \"headline\": \"{}\",\n     \"claims\": [\n",
            esc(sc.name),
            esc(sc.figure),
            if pass { "pass" } else { "FAIL" },
            esc(&outcome.headline),
        ));
        for (j, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"claim\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}{}\n",
                esc(&r.claim),
                r.pass,
                esc(&r.detail),
                if j + 1 < results.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < total { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiments.json");
    std::fs::write(path, json).expect("write BENCH_experiments.json");

    println!("\n{}", "=".repeat(72));
    println!(
        "{}/{} rows pass all claims ({} scale); wrote BENCH_experiments.json",
        total - failed_rows,
        total,
        if quick { "quick" } else { "full" },
    );
    if failed_rows > 0 {
        std::process::exit(1);
    }
}
