//! Figure 4.4: expected competitive factors of waiting algorithms under
//! exponentially distributed waiting times; `Lpoll = 0.54·B` is
//! `e/(e-1) ≈ 1.58`-competitive.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_4_4_exponential").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
