//! Figure 4.4: expected competitive factors of waiting algorithms under
//! exponentially distributed waiting times, as a function of the mean
//! wait (the restricted adversary's λ), for several static Lpoll
//! choices; plus the worst case over λ and the optimal α.

use repro_bench::table;
use waiting_theory::dist::WaitDist;
use waiting_theory::expected::{competitive_factor, worst_case_factor, Family};
use waiting_theory::optimal::optimal_alpha;

const B: f64 = 465.0;

fn main() {
    let scales = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0];
    let cols: Vec<String> = scales.iter().map(|s| format!("{s}B")).collect();

    table::title("Figure 4.4: E[C]/E[C_opt] under exponential waits (mean wait below)");
    table::header("algorithm \\ mean", &cols);
    for (label, alpha) in [
        ("2phase a=0.54 (opt)", 0.5413),
        ("2phase a=1.0", 1.0),
        ("2phase a=0.25", 0.25),
        ("2phase a=2.0", 2.0),
    ] {
        let vals: Vec<f64> = scales
            .iter()
            .map(|&s| {
                let d = WaitDist::exponential_with_mean(s * B);
                competitive_factor(&d, alpha, B, 1.0)
            })
            .collect();
        table::row_ratio(label, &vals);
    }
    // always-poll / always-signal for reference.
    let poll: Vec<f64> = scales
        .iter()
        .map(|&s| {
            let d = WaitDist::exponential_with_mean(s * B);
            (s * B) / waiting_theory::expected::expected_opt(&d, B, 1.0)
        })
        .collect();
    table::row_ratio("always-poll", &poll);
    let signal: Vec<f64> = scales
        .iter()
        .map(|&s| {
            let d = WaitDist::exponential_with_mean(s * B);
            B / waiting_theory::expected::expected_opt(&d, B, 1.0)
        })
        .collect();
    table::row_ratio("always-signal", &signal);

    println!();
    println!(
        "worst case over the adversary:  a=0.54 -> {:.4} (paper: e/(e-1) = 1.5820)",
        worst_case_factor(Family::Exponential, 0.5413, B)
    );
    println!(
        "                                a=1.00 -> {:.4} (classic 2-competitive bound)",
        worst_case_factor(Family::Exponential, 1.0, B)
    );
    let (a, rho) = optimal_alpha(Family::Exponential, B);
    println!(
        "optimal static alpha by search: a* = {a:.4}, rho* = {rho:.4} (paper: ln(e-1) = 0.5413)"
    );
}
