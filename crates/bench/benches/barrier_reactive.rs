//! Beyond the paper: the kernel-built reactive barrier vs the static
//! central and combining-tree arrival protocols across P.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! (central/tree crossover, reactive tracks-best, at least one kernel
//! switch at the contended end) are evaluated against the full-scale
//! sweep and the measured headline is printed. The same scenario runs
//! scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("barrier_reactive").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
