//! Figure 3.26: shared-memory vs. message-passing protocol baselines,
//! plus the reactive algorithms that select between them (§3.6).

use alewife_sim::CostModel;
use repro_bench::experiments::{
    fetchop_overhead, lock_overhead, mp_reactive_fetchop_overhead, mp_reactive_lock_overhead,
    BASELINE_PROCS,
};
use repro_bench::table;
use sim_apps::alg::{FetchOpAlg, LockAlg};

fn main() {
    let procs: Vec<String> = BASELINE_PROCS.iter().map(|p| p.to_string()).collect();

    table::title("Figure 3.26 (left): SM vs MP spin locks (cycles per CS)");
    table::header("algorithm \\ procs", &procs);
    for (label, alg) in [
        ("test&test&set (SM)", LockAlg::Tts),
        ("MCS queue (SM)", LockAlg::Mcs),
        ("MP queue lock", LockAlg::MpQueue),
    ] {
        let vals: Vec<f64> = BASELINE_PROCS
            .iter()
            .map(|&p| lock_overhead(alg, p, CostModel::nwo(), false))
            .collect();
        table::row_f64(label, &vals);
    }
    let re: Vec<f64> = BASELINE_PROCS
        .iter()
        .map(|&p| mp_reactive_lock_overhead(p))
        .collect();
    table::row_f64("reactive (SM<->MP)", &re);

    table::title("Figure 3.26 (right): SM vs MP fetch-and-op (cycles per op)");
    table::header("algorithm \\ procs", &procs);
    for (label, alg) in [
        ("tts-lock based (SM)", FetchOpAlg::TtsLock),
        ("combining tree (SM)", FetchOpAlg::Combining),
        ("MP centralized", FetchOpAlg::MpCentral),
        ("MP combining tree", FetchOpAlg::MpCombining),
    ] {
        let vals: Vec<f64> = BASELINE_PROCS
            .iter()
            .map(|&p| fetchop_overhead(alg, p, CostModel::nwo()))
            .collect();
        table::row_f64(label, &vals);
    }
    let re: Vec<f64> = BASELINE_PROCS
        .iter()
        .map(|&p| mp_reactive_fetchop_overhead(p))
        .collect();
    table::row_f64("reactive (SM<->MP)", &re);
}
