//! `switch_cost`: round-trip protocol-switch cost of the reactive lock
//! (§3.5.5).
//!
//! The paper measures a protocol change TTS → queue at ≈ 8000 cycles
//! and queue → TTS at ≈ 800 (round trip ≈ 8800) on Alewife — the
//! `d_AB + d_BA` constant the 3-competitive policy takes. This
//! bench measures the same quantity on the simulated machine (cycles)
//! and on host hardware (nanoseconds), by driving a lock with a policy
//! that switches on every acquisition and subtracting the plain
//! (non-switching) release cost in the same mode.
//!
//! Writes `BENCH_switch.json` at the repository root; `--quick` runs
//! the scaled-down variant CI uses.

use std::cell::Cell;
use std::rc::Rc;

use alewife_sim::{Config, Machine};
use reactive_core::policy::{Decision, Observation, Policy};
use reactive_core::ReactiveLock;

/// Always propose the other protocol of a 2-way object.
#[derive(Clone, Copy)]
struct FlipFlop;

impl Policy for FlipFlop {
    fn decide(&mut self, obs: &Observation) -> Decision {
        Decision::SwitchTo(reactive_core::policy::ProtocolId(1 - obs.current.0))
    }
}

/// Never switch (baseline releases).
#[derive(Clone, Copy)]
struct Stay;

impl Policy for Stay {
    fn decide(&mut self, _obs: &Observation) -> Decision {
        Decision::Stay
    }
}

/// Mean release-path cycles per [`ReleaseMode`] bucket under a
/// `procs`-way contended workload (the paper measures protocol-change
/// cost under contention: invalidating a populated queue and handing a
/// line around are the dominant terms). Returns
/// `[tts_plain, queue_plain, tts_to_queue, queue_to_tts]` means (NaN
/// for an empty bucket).
fn sim_release_cycles(
    procs: usize,
    iters: u64,
    policy: impl Policy + Clone + 'static,
    start_in_queue: bool,
) -> [f64; 4] {
    use reactive_core::lock::ReleaseMode;
    let m = Machine::new(Config::default().nodes(procs));
    let mut b = ReactiveLock::builder(&m, 0).max_procs(procs).policy(policy);
    if start_in_queue {
        b = b.initial_protocol(reactive_core::lock::PROTO_QUEUE);
    }
    let lock = b.build();
    let sums = Rc::new(Cell::new([0u64; 4]));
    let counts = Rc::new(Cell::new([0u64; 4]));
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        let sums = sums.clone();
        let counts = counts.clone();
        m.spawn(p, async move {
            for _ in 0..iters {
                let t = lock.acquire(&cpu).await;
                cpu.work(10).await;
                let bucket = match t {
                    ReleaseMode::Tts => 0,
                    ReleaseMode::Queue(_) => 1,
                    ReleaseMode::TtsToQueue => 2,
                    ReleaseMode::QueueToTts(_) => 3,
                };
                let t0 = cpu.now();
                lock.release(&cpu, t).await;
                let dt = cpu.now() - t0;
                let mut s = sums.get();
                let mut c = counts.get();
                s[bucket] += dt;
                c[bucket] += 1;
                sums.set(s);
                counts.set(c);
                cpu.work(cpu.rand_below(100)).await;
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    let s = sums.get();
    let c = counts.get();
    std::array::from_fn(|i| s[i] as f64 / c[i] as f64)
}

/// Mean native release nanoseconds for a single thread with the given
/// policy (every release switches under [`FlipFlop`], none under
/// [`Stay`]).
fn native_release_ns(iters: u64, flip: bool) -> f64 {
    let lock = if flip {
        reactive_native::ReactiveLock::builder()
            .policy(FlipFlop)
            .build()
    } else {
        reactive_native::ReactiveLock::builder()
            .policy(Stay)
            .build()
    };
    // Warm up.
    for _ in 0..64 {
        let h = lock.acquire();
        lock.release(h);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let h = lock.acquire();
        lock.release(h);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Per-processor acquisitions on the 16-node simulated machine.
    let sim_iters: u64 = if quick { 30 } else { 300 };
    let native_iters: u64 = if quick { 20_000 } else { 400_000 };

    const PROCS: usize = 16;
    // FlipFlop under contention: every release performs a protocol
    // change, with populated queues to invalidate and contended lines
    // to hand around — the regime the paper's §3.5.5 figure measures.
    let flip = sim_release_cycles(PROCS, sim_iters, FlipFlop, false);
    // Baselines: plain releases in each mode under the same contention.
    let tts_base = sim_release_cycles(PROCS, sim_iters, Stay, false)[0];
    let queue_base = sim_release_cycles(PROCS, sim_iters, Stay, true)[1];
    let to_queue = (flip[2] - tts_base).max(0.0);
    let to_tts = (flip[3] - queue_base).max(0.0);
    let round_trip = to_queue + to_tts;

    let native_flip = native_release_ns(native_iters, true);
    let native_base = native_release_ns(native_iters, false);
    // Two switching releases per protocol round trip.
    let native_round_trip = (2.0 * (native_flip - native_base)).max(0.0);

    println!("switch_cost: reactive-lock protocol-change round trip");
    println!("  sim TTS -> queue           {to_queue:10.1} cycles (paper ~ 8000)");
    println!("  sim queue -> TTS           {to_tts:10.1} cycles (paper ~  800)");
    println!("  sim round trip             {round_trip:10.1} cycles (paper ~ 8800)");
    println!("  native round trip          {native_round_trip:10.1} ns");

    let json = format!(
        "{{\n  \"bench\": \"switch_cost\",\n  \"quick\": {quick},\n  \"sim\": {{\n    \
         \"to_queue_cycles\": {to_queue:.1},\n    \"to_tts_cycles\": {to_tts:.1},\n    \
         \"round_trip_cycles\": {round_trip:.1},\n    \"paper_round_trip_cycles\": 8800\n  \
         }},\n  \"native\": {{\n    \"round_trip_ns\": {native_round_trip:.1}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_switch.json");
    std::fs::write(path, json).expect("write BENCH_switch.json");

    // Sanity gate (simulator only — it is deterministic, so this can
    // be a hard failure): a switching release must cost more than a
    // plain one. The native number is wall-clock on a shared host and
    // may legitimately dip into the noise, so it is reported and
    // warned about but not gated.
    if native_round_trip <= 0.0 {
        eprintln!(
            "switch_cost: WARNING native switching releases measured no dearer than plain \
             ones (noise, or the native switch path regressed)"
        );
    }
    if round_trip <= 0.0 {
        eprintln!("switch_cost: simulated round trip collapsed to zero");
        std::process::exit(1);
    }
}
