//! Figure 4.13 / Table 4.4: execution times of the barrier benchmarks
//! (CGrad, Jacobi-Bar) under each waiting algorithm.

use alewife_sim::CostModel;
use repro_bench::table;
use sim_apps::alg::WaitAlg;
use sim_apps::{cgrad, jacobi};

fn main() {
    let b = CostModel::nwo().block_cost();
    let algs = [
        ("always-spin", WaitAlg::Spin),
        ("always-block", WaitAlg::Block),
        ("2phase L=B", WaitAlg::TwoPhase(b)),
        ("2phase L=.62B", WaitAlg::TwoPhase((b as f64 * 0.62) as u64)),
    ];
    let cols: Vec<String> = algs.iter().map(|(l, _)| l.to_string()).collect();

    table::title("Fig 4.13 / Table 4.4: barrier benchmarks (cycles)");
    table::header("benchmark", &cols);
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, w)| cgrad::run(&cgrad::CgradConfig::small(procs, w)).elapsed as f64)
            .collect();
        table::row_f64(&format!("CGrad P={procs}"), &vals);
    }
    for procs in [4usize, 8, 16] {
        let vals: Vec<f64> = algs
            .iter()
            .map(|&(_, w)| {
                jacobi::run_barrier(&jacobi::JacobiConfig::small(procs, w)).elapsed as f64
            })
            .collect();
        table::row_f64(&format!("Jacobi-Bar P={procs}"), &vals);
    }
}
