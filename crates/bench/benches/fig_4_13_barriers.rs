//! Figure 4.13 / Table 4.4: the barrier benchmarks (CGrad, Jacobi-Bar)
//! under each waiting algorithm.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_4_13_barriers").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
