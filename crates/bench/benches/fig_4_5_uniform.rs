//! Figure 4.5: expected competitive factors under uniformly distributed
//! waiting times, plus the optimal static α (§4.5.2: α* ≈ 0.62, 1.62-
//! competitive).

use repro_bench::table;
use waiting_theory::dist::WaitDist;
use waiting_theory::expected::{competitive_factor, worst_case_factor, Family};
use waiting_theory::optimal::optimal_alpha;

const B: f64 = 465.0;

fn main() {
    let scales = [0.25, 0.5, 1.0, 2.0, 4.0, 10.0];
    let cols: Vec<String> = scales.iter().map(|s| format!("{s}B")).collect();

    table::title("Figure 4.5: E[C]/E[C_opt] under uniform waits (upper bound below)");
    table::header("algorithm \\ bound", &cols);
    for (label, alpha) in [
        ("2phase a=0.62 (opt)", 0.62),
        ("2phase a=1.0", 1.0),
        ("2phase a=0.25", 0.25),
        ("2phase a=2.0", 2.0),
    ] {
        let vals: Vec<f64> = scales
            .iter()
            .map(|&s| {
                let d = WaitDist::uniform(s * B);
                competitive_factor(&d, alpha, B, 1.0)
            })
            .collect();
        table::row_ratio(label, &vals);
    }
    println!();
    println!(
        "worst case over the adversary:  a=0.62 -> {:.4} (paper: 1.62)",
        worst_case_factor(Family::Uniform, 0.62, B)
    );
    let (a, rho) = optimal_alpha(Family::Uniform, B);
    println!("optimal static alpha by search: a* = {a:.4}, rho* = {rho:.4} (paper: 0.62)");
}
