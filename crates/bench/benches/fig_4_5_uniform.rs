//! Figure 4.5: expected competitive factors under uniformly distributed
//! waiting times; `α* ≈ 0.62`, 1.62-competitive.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_4_5_uniform").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
