//! Figure 3.22: the time-varying contention test under the
//! 3-competitive protocol-switching policy (§3.4.1).

#[path = "fig_3_21_time_varying.rs"]
mod driver;

use sim_apps::alg::LockAlg;

fn main() {
    driver::run_with(LockAlg::ReactiveCompetitive, "reactive (3-competitive)");
}
