//! Figure 3.22: the time-varying contention test under the
//! 3-competitive protocol-switching policy (§3.4.1) versus
//! switch-immediately.
//!
//! Reproduced through the scenario layer: the machine-checkable claims
//! encoding this row's "Paper says" column are evaluated against the
//! full-scale sweep and the measured headline is printed. The same
//! scenario runs scaled-down in `tests/scenario_claims.rs`.

use repro_bench::scenario::{by_name, Scale};

fn main() {
    let (_, results) = by_name("fig_3_22_competitive").report(Scale::Full);
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
