//! Tier-1 claim gate: every `EXPERIMENTS.md` row's scenario runs at
//! [`Scale::Quick`] and every one of its machine-checkable claims must
//! hold. A regression in any paper result — the TTS meltdown shape, the
//! 3-competitive bound, two-phase waiting's competitiveness, the
//! `Lpoll = B/2` rule — fails the corresponding test here.
//!
//! The quick variants are deterministic (fixed simulator seeds, fixed
//! closed-form sweeps), so these tests are bit-stable run to run — with
//! one deliberate exception: the `service_native_*` rows run real host
//! threads on a wall clock, so their claims gate the *shape* of the
//! result with wide margins rather than exact numbers.

use repro_bench::scenario::{by_name, Scale};

fn assert_claims(name: &str) {
    let sc = by_name(name);
    let outcome = sc.run(Scale::Quick);
    let results = sc.check(&outcome);
    assert!(!results.is_empty(), "{name} checked no claims");
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("  {} — {}", r.claim, r.detail))
        .collect();
    assert!(
        failures.is_empty(),
        "{name} ({}) violated {} claim(s):\n{}\nheadline: {}",
        sc.figure,
        failures.len(),
        failures.join("\n"),
        outcome.headline,
    );
}

macro_rules! claim_test {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            assert_claims(stringify!($name));
        }
    )*};
}

claim_test!(
    fig_3_14_policy_bound,
    fig_3_15_baseline,
    fig_3_16_hardware,
    fig_3_17_multi_object,
    fig_3_21_time_varying,
    fig_3_22_competitive,
    fig_3_23_hysteresis,
    fig_3_24_apps_fetchop,
    fig_3_25_apps_locks,
    fig_3_26_message_passing,
    table_4_1_blocking_cost,
    fig_4_4_exponential,
    fig_4_5_uniform,
    fig_4_6_wait_profiles,
    fig_4_12_producer_consumer,
    fig_4_13_barriers,
    fig_4_14_mutex,
    table_4_6_lpoll_half,
    barrier_reactive,
    rmr_recoverable,
    rmr_abortable,
    storm_robustness,
    service_tail_latency,
    service_bytes_per_object,
    service_stampede,
    service_tracks_best,
    service_native_tail,
    service_native_deflation,
    sim_parallel_scale,
);

/// Every scenario in the registry is covered by a test above (guards
/// against adding a row without a claim gate).
#[test]
fn registry_matches_test_list() {
    let expected = [
        "fig_3_14_policy_bound",
        "fig_3_15_baseline",
        "fig_3_16_hardware",
        "fig_3_17_multi_object",
        "fig_3_21_time_varying",
        "fig_3_22_competitive",
        "fig_3_23_hysteresis",
        "fig_3_24_apps_fetchop",
        "fig_3_25_apps_locks",
        "fig_3_26_message_passing",
        "table_4_1_blocking_cost",
        "fig_4_4_exponential",
        "fig_4_5_uniform",
        "fig_4_6_wait_profiles",
        "fig_4_12_producer_consumer",
        "fig_4_13_barriers",
        "fig_4_14_mutex",
        "table_4_6_lpoll_half",
        "barrier_reactive",
        "rmr_recoverable",
        "rmr_abortable",
        "storm_robustness",
        "service_tail_latency",
        "service_bytes_per_object",
        "service_stampede",
        "service_tracks_best",
        "service_native_tail",
        "service_native_deflation",
        "sim_parallel_scale",
    ];
    let names: Vec<&str> = repro_bench::scenario::all()
        .iter()
        .map(|s| s.name)
        .collect();
    assert_eq!(
        names, expected,
        "scenario registry drifted from the test list"
    );
}
