//! The master simulation state shared (via `Rc<RefCell<_>>`) between the
//! executor, the coherence engine, the message engine, and the thread
//! runtime.
//!
//! Hot-path layout: everything keyed by cache line is stored in dense
//! `Vec` arenas indexed by [`LineId`] (lines are interned at allocation
//! time, so ids are contiguous from 0), and the event queue is a
//! bucketed calendar queue ([`crate::queue::EventQueue`]). No `HashMap`
//! sits on the per-event or per-memory-op path.

use std::collections::VecDeque;

use crate::coherence::{CacheState, CohReq, DirEntry};
use crate::cost::CostModel;
use crate::exec::{BoxFut, Completion, Ev, EventEntry, TaskId};
use crate::fault::FaultEvent;
use crate::msg::{ActiveMsg, HandlerFn};
use crate::queue::EventQueue;
use crate::stats::Stats;
use crate::thread::NodeSched;

/// A word address in simulated globally-shared memory.
///
/// Addresses are word-granular; the unit of coherence is the *line*
/// (`Config::line_words` consecutive words). Use [`Addr::plus`] to address
/// into an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `words` words past `self`.
    pub fn plus(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }
}

/// Dense identifier of a cache line. Allocation hands out lines
/// contiguously from 0, so a `LineId` indexes the per-line arenas
/// (`line_ver`, `dir`, `watchers`, each node's cache map) directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct LineId(pub u32);

impl LineId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Per-thread bookkeeping attached to scheduler-managed tasks.
#[derive(Debug)]
pub(crate) struct ThreadInfo {
    pub node: usize,
    /// Completion the thread awaits while it is off the processor.
    pub resume: Option<Completion>,
    /// Whether the thread's registers are resident in a hardware context.
    pub loaded: bool,
}

/// Task table entry: the pollable future lives in the parallel
/// `State::futs` vector so the per-event poll touches only that row.
pub(crate) struct TaskSlot {
    pub thread: Option<ThreadInfo>,
}

/// One node's serially-occupied engine (directory or message handler):
/// its input queue, the time it is busy until, and whether a service
/// event is pending. One struct per node keeps all three on the same
/// cache line.
#[derive(Default)]
pub(crate) struct Engine {
    pub q: VecDeque<u32>,
    pub busy: u64,
    pub scheduled: bool,
}

/// Cap on pooled [`Completion`] allocations (see
/// [`State::recycle_completion`]).
const COMP_POOL_CAP: usize = 256;

/// Slab of RPCs awaiting replies, keyed by generation-tagged tokens so
/// the reply path is a bounds-checked index instead of a `HashMap`
/// probe (the PR 2 arena invariant: no hash maps on the per-message
/// path).
///
/// A token packs `(generation << 32) | (slot + 1)`; the `+ 1` keeps the
/// raw value nonzero so `ReplyToken(0)` stays the "no token" sentinel.
/// The generation is bumped on every removal, so a stale token (already
/// replied) misses rather than aliasing a recycled slot.
#[derive(Default)]
pub(crate) struct RpcSlab {
    slots: Vec<(u32, Option<(Completion, usize)>)>,
    free: Vec<u32>,
}

impl RpcSlab {
    /// Register a pending RPC; returns its raw (nonzero) token value.
    pub fn insert(&mut self, val: (Completion, usize)) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push((0, None));
                (self.slots.len() - 1) as u32
            }
        };
        let entry = &mut self.slots[slot as usize];
        debug_assert!(entry.1.is_none());
        entry.1 = Some(val);
        ((entry.0 as u64) << 32) | (slot as u64 + 1)
    }

    /// Complete the RPC for `token`; `None` if unknown or already
    /// replied.
    pub fn remove(&mut self, token: u64) -> Option<(Completion, usize)> {
        let slot = ((token & 0xffff_ffff) as u32).checked_sub(1)?;
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.0 as u64 != token >> 32 {
            return None;
        }
        let val = entry.1.take()?;
        entry.0 = entry.0.wrapping_add(1);
        self.free.push(slot);
        Some(val)
    }
}

pub(crate) struct State {
    // --- configuration ---
    pub nodes_n: usize,
    pub contexts: usize,
    pub cost: CostModel,
    pub line_words: u64,
    /// `log2(line_words)` when it is a power of two (the common case),
    /// letting [`State::line_of`] shift instead of divide.
    pub line_shift: Option<u32>,
    pub hw_ptrs: usize,
    pub full_map: bool,
    /// Mesh side length (coordinates are precomputed in `coords`; kept
    /// for inspection and tests).
    #[allow(dead_code)]
    pub mesh_dim: usize,
    /// Per-node mesh coordinates, precomputed so the network-latency
    /// hot path never divides.
    pub coords: Vec<(u16, u16)>,

    // --- executor ---
    pub now: u64,
    pub seq: u64,
    pub events: EventQueue,
    pub tasks: Vec<Option<TaskSlot>>,
    /// `futs[tid]` is the task's future, taken out while it runs.
    pub futs: Vec<Option<BoxFut>>,
    pub free_tasks: Vec<usize>,
    pub current_task: Option<TaskId>,
    pub live_tasks: usize,
    /// Recycled one-shot completions (cuts per-operation `Rc` churn).
    pub comp_pool: Vec<Completion>,
    /// In-flight coherence requests; `Ev::DirArrive` carries an index
    /// here so events stay 16 bytes.
    pub coh_slab: Vec<Option<CohReq>>,
    pub coh_free: Vec<u32>,
    /// In-flight active messages; `Ev::MsgArrive` carries an index here.
    pub msg_slab: Vec<Option<ActiveMsg>>,
    pub msg_free: Vec<u32>,

    // --- shared memory & coherence (dense per-line arenas) ---
    pub mem: Vec<u64>,
    pub full_bits: Vec<bool>,
    pub next_word: u64,
    pub line_home: Vec<usize>,
    pub line_ver: Vec<u64>,
    pub dir: Vec<DirEntry>,
    /// Flattened cache-state table, line-major: line `l` on node `n`
    /// is `cache[l * nodes_n + n]`, so one line's states across all
    /// nodes share a cache line — a directory's sequential-invalidation
    /// sweep is a contiguous scan.
    pub cache: Vec<Option<CacheState>>,
    pub dirs: Vec<Engine>,
    pub watchers: Vec<Vec<TaskId>>,

    // --- active messages ---
    /// `handlers[node][port]` — flat per-node dispatch table.
    pub handlers: Vec<Vec<Option<HandlerFn>>>,
    pub msgs: Vec<Engine>,
    pub rpc_pending: RpcSlab,

    // --- thread runtime ---
    pub scheds: Vec<NodeSched>,
    pub wait_queues: Vec<VecDeque<TaskId>>,

    // --- fault injection ---
    /// Per-node liveness; killed nodes stay dead until a recovery.
    pub alive: Vec<bool>,
    /// Per-node abort epoch, bumped by abort signals; abortable waits
    /// snapshot it and give up when it moves.
    pub abort_epoch: Vec<u64>,
    /// Per-node recovery thread factories (see `Machine::on_recovery`).
    pub recovery: Vec<Option<RecoveryFn>>,
    /// Log of fault actions that actually fired, in order.
    pub fault_log: Vec<FaultEvent>,

    // --- misc ---
    pub rng: u64,
    pub stats: Stats,
}

/// Factory producing a fresh recovery future each time its node
/// recovers from a kill.
pub(crate) type RecoveryFn = Box<dyn Fn() -> BoxFut>;

impl State {
    pub fn new(
        nodes: usize,
        contexts: usize,
        cost: CostModel,
        line_words: u64,
        hw_ptrs: usize,
        full_map: bool,
        seed: u64,
    ) -> State {
        let mesh_dim = crate::net::mesh_dim(nodes);
        State {
            nodes_n: nodes,
            contexts,
            cost,
            line_words,
            line_shift: line_words
                .is_power_of_two()
                .then(|| line_words.trailing_zeros()),
            hw_ptrs,
            full_map,
            mesh_dim,
            coords: crate::net::coords_for(nodes),
            now: 0,
            seq: 0,
            events: EventQueue::new(),
            tasks: Vec::new(),
            futs: Vec::new(),
            free_tasks: Vec::new(),
            current_task: None,
            live_tasks: 0,
            comp_pool: Vec::new(),
            coh_slab: Vec::new(),
            coh_free: Vec::new(),
            msg_slab: Vec::new(),
            msg_free: Vec::new(),
            mem: Vec::new(),
            full_bits: Vec::new(),
            next_word: 0,
            line_home: Vec::new(),
            line_ver: Vec::new(),
            dir: Vec::new(),
            cache: Vec::new(),
            dirs: (0..nodes).map(|_| Engine::default()).collect(),
            watchers: Vec::new(),
            handlers: (0..nodes).map(|_| Vec::new()).collect(),
            msgs: (0..nodes).map(|_| Engine::default()).collect(),
            rpc_pending: RpcSlab::default(),
            scheds: (0..nodes).map(|_| NodeSched::new(contexts)).collect(),
            wait_queues: Vec::new(),
            alive: vec![true; nodes],
            abort_epoch: vec![0; nodes],
            recovery: (0..nodes).map(|_| None).collect(),
            fault_log: Vec::new(),
            rng: if seed == 0 { 1 } else { seed },
            stats: Stats::new(nodes),
        }
    }

    /// Enqueue `ev` to fire at absolute virtual time `at` (>= now).
    #[inline]
    pub fn schedule(&mut self, at: u64, ev: Ev) {
        let at = at.max(self.now);
        self.seq += 1;
        self.events.push(EventEntry {
            time: at,
            seq: self.seq,
            ev,
        });
    }

    /// Schedule a completion event: the result value is stashed in the
    /// completion now; the event merely sets the done flag at `at` and
    /// polls the waiter.
    #[inline]
    pub fn schedule_complete(&mut self, at: u64, c: Completion, v: [u64; 2]) {
        c.set_value(v);
        self.schedule(at, Ev::Complete(c));
    }

    /// Park an in-flight coherence request; the returned index rides in
    /// the `DirArrive` event.
    #[inline]
    pub fn put_coh(&mut self, req: CohReq) -> u32 {
        match self.coh_free.pop() {
            Some(i) => {
                self.coh_slab[i as usize] = Some(req);
                i
            }
            None => {
                self.coh_slab.push(Some(req));
                (self.coh_slab.len() - 1) as u32
            }
        }
    }

    /// Reclaim an in-flight coherence request.
    pub fn take_coh(&mut self, idx: u32) -> CohReq {
        let req = self.coh_slab[idx as usize]
            .take()
            .expect("coherence slab index taken twice");
        self.coh_free.push(idx);
        req
    }

    /// Park an in-flight active message (see [`State::put_coh`]).
    pub fn put_msg(&mut self, msg: ActiveMsg) -> u32 {
        match self.msg_free.pop() {
            Some(i) => {
                self.msg_slab[i as usize] = Some(msg);
                i
            }
            None => {
                self.msg_slab.push(Some(msg));
                (self.msg_slab.len() - 1) as u32
            }
        }
    }

    /// Reclaim an in-flight active message.
    pub fn take_msg(&mut self, idx: u32) -> ActiveMsg {
        let msg = self.msg_slab[idx as usize]
            .take()
            .expect("message slab index taken twice");
        self.msg_free.push(idx);
        msg
    }

    /// Pop a pooled completion (or allocate one). Pair with
    /// [`State::recycle_completion`] at the completion's single-owner
    /// point to avoid a fresh `Rc` per operation.
    pub fn new_completion(&mut self) -> Completion {
        match self.comp_pool.pop() {
            Some(c) => {
                c.reset();
                c
            }
            None => Completion::new(),
        }
    }

    /// Return a completion to the pool if nothing else still holds it.
    pub fn recycle_completion(&mut self, c: Completion) {
        if c.is_unique() && self.comp_pool.len() < COMP_POOL_CAP {
            self.comp_pool.push(c);
        }
    }

    #[inline]
    pub fn line_of(&self, addr: Addr) -> LineId {
        let l = match self.line_shift {
            Some(s) => addr.0 >> s,
            None => addr.0 / self.line_words,
        };
        LineId(l as u32)
    }

    pub fn home_of(&self, line: LineId) -> usize {
        self.line_home
            .get(line.idx())
            .copied()
            .unwrap_or(line.idx() % self.nodes_n)
    }

    /// Allocate `words` words of shared memory whose lines are homed on
    /// `node`. Always starts on a fresh line so distinct allocations never
    /// exhibit false sharing with each other. Interns the new lines:
    /// every per-line arena is grown to cover them.
    #[cold]
    pub fn alloc_on(&mut self, node: usize, words: u64) -> Addr {
        assert!(node < self.nodes_n, "alloc_on: node out of range");
        assert!(words > 0, "alloc_on: zero-sized allocation");
        // Round up to a line boundary.
        let lw = self.line_words;
        if !self.next_word.is_multiple_of(lw) {
            self.next_word += lw - self.next_word % lw;
        }
        let base = self.next_word;
        let lines = words.div_ceil(lw);
        self.next_word += lines * lw;
        self.mem.resize(self.next_word as usize, 0);
        self.full_bits.resize(self.next_word as usize, false);
        let first_line = base / lw;
        let lines_total = (first_line + lines) as usize;
        self.line_home.resize(lines_total, 0);
        for l in first_line..first_line + lines {
            self.line_home[l as usize] = node;
        }
        self.line_ver.resize(lines_total, 0);
        self.dir.resize_with(lines_total, DirEntry::default);
        self.watchers.resize_with(lines_total, Vec::new);
        self.cache.resize(lines_total * self.nodes_n, None);
        Addr(base)
    }

    /// Bump the line version (invalidation epoch) and wake all watchers.
    /// Watchers are woken at `wake_at` (e.g. when the invalidation would
    /// reach them) and re-check whatever condition they were watching.
    pub fn touch_line(&mut self, line: LineId, wake_at: u64) {
        self.line_ver[line.idx()] += 1;
        if !self.watchers[line.idx()].is_empty() {
            // Take the list out to appease the borrow checker, then put
            // the drained Vec back so its capacity is reused. The whole
            // burst lands at one instant, so the queue appends it to a
            // single bucket in one go.
            let mut ws = std::mem::take(&mut self.watchers[line.idx()]);
            let at = wake_at.max(self.now);
            let base = self.seq;
            self.seq += ws.len() as u64;
            self.events.push_wakes(at, base, &ws);
            ws.clear();
            self.watchers[line.idx()] = ws;
        }
    }

    /// Cache-state slot for (`node`, `line`) in the flattened table.
    #[inline]
    pub fn cache_slot(&self, node: usize, line: LineId) -> usize {
        line.idx() * self.nodes_n + node
    }

    pub fn rand_below(&mut self, bound: u64) -> u64 {
        crate::rng::below(&mut self.rng, bound)
    }
}
