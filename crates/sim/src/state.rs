//! The master simulation state shared (via `Rc<RefCell<_>>`) between the
//! executor, the coherence engine, the message engine, and the thread
//! runtime.

use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::coherence::{CacheState, CohReq, DirEntry};
use crate::cost::CostModel;
use crate::exec::{BoxFut, Completion, Ev, EventEntry, TaskId};
use crate::msg::{ActiveMsg, HandlerFn};
use crate::stats::Stats;
use crate::thread::NodeSched;

/// A word address in simulated globally-shared memory.
///
/// Addresses are word-granular; the unit of coherence is the *line*
/// (`Config::line_words` consecutive words). Use [`Addr::plus`] to address
/// into an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `words` words past `self`.
    pub fn plus(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }
}

pub(crate) type Line = u64;

/// Per-thread bookkeeping attached to scheduler-managed tasks.
#[derive(Debug)]
pub(crate) struct ThreadInfo {
    pub node: usize,
    /// Completion the thread awaits while it is off the processor.
    pub resume: Option<Completion>,
    /// Whether the thread's registers are resident in a hardware context.
    pub loaded: bool,
}

pub(crate) struct TaskSlot {
    pub fut: Option<BoxFut>,
    pub thread: Option<ThreadInfo>,
}

pub(crate) struct State {
    // --- configuration ---
    pub nodes_n: usize,
    pub contexts: usize,
    pub cost: CostModel,
    pub line_words: u64,
    pub hw_ptrs: usize,
    pub full_map: bool,
    pub mesh_dim: usize,

    // --- executor ---
    pub now: u64,
    pub seq: u64,
    pub events: BinaryHeap<EventEntry>,
    pub tasks: Vec<Option<TaskSlot>>,
    pub free_tasks: Vec<usize>,
    pub current_task: Option<TaskId>,
    pub live_tasks: usize,

    // --- shared memory & coherence ---
    pub mem: Vec<u64>,
    pub full_bits: Vec<bool>,
    pub next_word: u64,
    pub line_home: Vec<usize>,
    pub line_ver: HashMap<Line, u64>,
    pub dir: HashMap<Line, DirEntry>,
    pub caches: Vec<HashMap<Line, CacheState>>,
    pub dir_q: Vec<VecDeque<CohReq>>,
    pub dir_busy: Vec<u64>,
    pub dir_scheduled: Vec<bool>,
    pub watchers: HashMap<Line, Vec<TaskId>>,

    // --- active messages ---
    pub handlers: HashMap<(usize, u32), Option<HandlerFn>>,
    pub msg_q: Vec<VecDeque<ActiveMsg>>,
    pub msg_busy: Vec<u64>,
    pub msg_scheduled: Vec<bool>,
    pub rpc_pending: HashMap<u64, (Completion, usize)>,
    pub next_rpc_token: u64,

    // --- thread runtime ---
    pub scheds: Vec<NodeSched>,
    pub wait_queues: Vec<VecDeque<TaskId>>,

    // --- misc ---
    pub rng: u64,
    pub stats: Stats,
}

impl State {
    pub fn new(
        nodes: usize,
        contexts: usize,
        cost: CostModel,
        line_words: u64,
        hw_ptrs: usize,
        full_map: bool,
        seed: u64,
    ) -> State {
        let mesh_dim = (1..).find(|d| d * d >= nodes).unwrap_or(1);
        State {
            nodes_n: nodes,
            contexts,
            cost,
            line_words,
            hw_ptrs,
            full_map,
            mesh_dim,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            tasks: Vec::new(),
            free_tasks: Vec::new(),
            current_task: None,
            live_tasks: 0,
            mem: Vec::new(),
            full_bits: Vec::new(),
            next_word: 0,
            line_home: Vec::new(),
            line_ver: HashMap::new(),
            dir: HashMap::new(),
            caches: vec![HashMap::new(); nodes],
            dir_q: (0..nodes).map(|_| VecDeque::new()).collect(),
            dir_busy: vec![0; nodes],
            dir_scheduled: vec![false; nodes],
            watchers: HashMap::new(),
            handlers: HashMap::new(),
            msg_q: (0..nodes).map(|_| VecDeque::new()).collect(),
            msg_busy: vec![0; nodes],
            msg_scheduled: vec![false; nodes],
            rpc_pending: HashMap::new(),
            next_rpc_token: 1,
            scheds: (0..nodes).map(|_| NodeSched::new(contexts)).collect(),
            wait_queues: Vec::new(),
            rng: if seed == 0 { 1 } else { seed },
            stats: Stats::new(),
        }
    }

    /// Enqueue `ev` to fire at absolute virtual time `at` (>= now).
    pub fn schedule(&mut self, at: u64, ev: Ev) {
        let at = at.max(self.now);
        self.seq += 1;
        self.events.push(EventEntry {
            time: at,
            seq: self.seq,
            ev,
        });
    }

    pub fn line_of(&self, addr: Addr) -> Line {
        addr.0 / self.line_words
    }

    pub fn home_of(&self, line: Line) -> usize {
        self.line_home
            .get(line as usize)
            .copied()
            .unwrap_or((line as usize) % self.nodes_n)
    }

    /// Allocate `words` words of shared memory whose lines are homed on
    /// `node`. Always starts on a fresh line so distinct allocations never
    /// exhibit false sharing with each other.
    pub fn alloc_on(&mut self, node: usize, words: u64) -> Addr {
        assert!(node < self.nodes_n, "alloc_on: node out of range");
        assert!(words > 0, "alloc_on: zero-sized allocation");
        // Round up to a line boundary.
        let lw = self.line_words;
        if self.next_word % lw != 0 {
            self.next_word += lw - self.next_word % lw;
        }
        let base = self.next_word;
        let lines = words.div_ceil(lw);
        self.next_word += lines * lw;
        self.mem.resize(self.next_word as usize, 0);
        self.full_bits.resize(self.next_word as usize, false);
        let first_line = base / lw;
        self.line_home.resize((first_line + lines) as usize, 0);
        for l in first_line..first_line + lines {
            self.line_home[l as usize] = node;
        }
        Addr(base)
    }

    /// Bump the line version (invalidation epoch) and wake all watchers.
    /// Watchers are woken at `wake_at` (e.g. when the invalidation would
    /// reach them) and re-check whatever condition they were watching.
    pub fn touch_line(&mut self, line: Line, wake_at: u64) {
        *self.line_ver.entry(line).or_insert(0) += 1;
        if let Some(ws) = self.watchers.remove(&line) {
            for t in ws {
                self.schedule(wake_at, Ev::Wake(t));
            }
        }
    }

    pub fn rand_below(&mut self, bound: u64) -> u64 {
        crate::rng::below(&mut self.rng, bound)
    }
}
