//! Directory-based cache coherence with LimitLESS-style limited pointers.
//!
//! Each line has a home node whose directory serially services coherence
//! requests (occupancy = `dir_service` cycles plus work). The protocol is
//! a standard invalidate MSI protocol with the two Alewife-specific
//! behaviours the paper's results hinge on:
//!
//! * invalidations are issued **sequentially** (`inval_issue` apart), so a
//!   write to a widely-shared line (e.g. a released test-and-test-and-set
//!   lock) occupies the directory for O(sharers) cycles; and
//! * once a line's sharer count exceeds the hardware pointer count, the
//!   directory is **software-extended** and every subsequent operation on
//!   the line pays a `limitless_trap` penalty, unless the machine is
//!   configured as a full-map directory (`Dir_NB` in Figure 3.2).
//!
//! Values live in a single authoritative word array mutated at directory
//! service time (or at local exclusive hits); because a processor stalls
//! on each of its own memory operations and transactions serialize at the
//! home directory, the resulting value history is linearizable.

use crate::exec::{Completion, Ev};
use crate::net;
use crate::state::{Addr, LineId, State};

/// State of a line in a node's local cache (absence means invalid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheState {
    /// Read-cached; other nodes may also hold copies.
    Shared,
    /// Exclusively owned (read/write hits, possibly dirty).
    Exclusive,
}

/// Sentinel for "no exclusive owner" in a directory entry.
pub(crate) const NO_OWNER: u32 = u32::MAX;

/// Directory entry for one line (compact: node ids are `u32`, owner is
/// a sentinel-coded field — the entry is shuffled on every request).
#[derive(Clone, Debug)]
pub(crate) struct DirEntry {
    pub owner: u32,
    pub sharers: Vec<u32>,
    pub extended: bool,
}

impl Default for DirEntry {
    fn default() -> Self {
        DirEntry {
            owner: NO_OWNER,
            sharers: Vec::new(),
            extended: false,
        }
    }
}

/// An atomic read-modify-write applied at the home directory (or at a
/// local exclusive hit).
#[derive(Clone, Copy, Debug)]
pub(crate) enum RmwOp {
    Write(u64),
    TestAndSet,
    FetchAndStore(u64),
    CompareAndSwap(u64, u64),
    FetchAndAdd(u64),
    /// Store a value and set the full bit; returns the previous full bit.
    WriteFill(u64),
    /// If full: return the value, clear the bit (I-structure take).
    TakeIfFull,
    /// Clear the full bit (J-structure reset).
    ResetEmpty,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum ReqKind {
    /// Read for shared access; second result word is the full bit.
    Read,
    /// Read-modify-write for exclusive access.
    Own(RmwOp),
}

/// A coherence request in flight to a home directory (kept compact:
/// it crosses the in-flight slab twice per miss).
pub(crate) struct CohReq {
    pub addr: Addr,
    pub line: LineId,
    pub from: u32,
    pub kind: ReqKind,
    pub comp: Completion,
}

/// Apply an RMW to the authoritative arrays; returns `[primary, aux]`
/// result words (op-specific).
fn apply(st: &mut State, addr: Addr, op: RmwOp) -> [u64; 2] {
    let i = addr.0 as usize;
    let old = st.mem[i];
    match op {
        RmwOp::Write(v) => {
            st.mem[i] = v;
            [old, 0]
        }
        RmwOp::TestAndSet => {
            st.mem[i] = 1;
            [old, 0]
        }
        RmwOp::FetchAndStore(v) => {
            st.mem[i] = v;
            [old, 0]
        }
        RmwOp::CompareAndSwap(expect, new) => {
            if old == expect {
                st.mem[i] = new;
                [1, old]
            } else {
                [0, old]
            }
        }
        RmwOp::FetchAndAdd(d) => {
            st.mem[i] = old.wrapping_add(d);
            [old, 0]
        }
        RmwOp::WriteFill(v) => {
            let was = st.full_bits[i];
            st.mem[i] = v;
            st.full_bits[i] = true;
            [was as u64, 0]
        }
        RmwOp::TakeIfFull => {
            if st.full_bits[i] {
                st.full_bits[i] = false;
                [old, 1]
            } else {
                [0, 0]
            }
        }
        RmwOp::ResetEmpty => {
            st.full_bits[i] = false;
            [old, 0]
        }
    }
}

/// Issue a read from `node`; fulfills `comp` with `[value, full_bit]`.
pub(crate) fn issue_read(st: &mut State, node: usize, addr: Addr, comp: Completion) {
    let line = st.line_of(addr);
    // DSM cost model: no caching, so every access to a remotely-homed
    // word is a remote memory reference, hit or miss.
    if st.home_of(line) != node {
        st.stats.rmr_dsm[node] += 1;
    }
    if st.cache[st.cache_slot(node, line)].is_some() {
        // Local hit: our copy is valid, so the authoritative arrays agree
        // with it (any remote write would have invalidated us first).
        let v = st.mem[addr.0 as usize];
        let f = st.full_bits[addr.0 as usize] as u64;
        let t = st.now + st.cost.cache_hit;
        st.schedule_complete(t, comp, [v, f]);
        return;
    }
    st.stats.remote_misses += 1;
    // CC cost model: a coherence miss crosses the interconnect.
    st.stats.rmr_cc[node] += 1;
    let home = st.home_of(line);
    let arrive = st.now + net::latency(st, node, home);
    let idx = st.put_coh(CohReq {
        addr,
        line,
        from: node as u32,
        kind: ReqKind::Read,
        comp,
    });
    st.schedule(arrive, Ev::DirArrive(home as u32, idx));
}

/// Issue a read-modify-write from `node`; fulfills `comp` with the
/// op-specific result pair.
pub(crate) fn issue_own(st: &mut State, node: usize, addr: Addr, op: RmwOp, comp: Completion) {
    let line = st.line_of(addr);
    // DSM model: see `issue_read`.
    if st.home_of(line) != node {
        st.stats.rmr_dsm[node] += 1;
    }
    if st.cache[st.cache_slot(node, line)] == Some(CacheState::Exclusive) {
        // Exclusive hit: mutate in place. No other node can hold a valid
        // copy, but bump the version anyway so any in-flight watcher
        // re-checks rather than sleeping on a stale epoch.
        let res = apply(st, addr, op);
        let t = st.now + st.cost.cache_hit;
        st.touch_line(line, t);
        st.schedule_complete(t, comp, res);
        return;
    }
    st.stats.remote_misses += 1;
    // CC model: see `issue_read`.
    st.stats.rmr_cc[node] += 1;
    let home = st.home_of(line);
    let arrive = st.now + net::latency(st, node, home);
    let idx = st.put_coh(CohReq {
        addr,
        line,
        from: node as u32,
        kind: ReqKind::Own(op),
        comp,
    });
    st.schedule(arrive, Ev::DirArrive(home as u32, idx));
}

/// The in-flight request `coh_slab[idx]` arrived at `node`'s
/// directory queue.
pub(crate) fn dir_arrive(st: &mut State, node: usize, idx: u32) {
    let d = &mut st.dirs[node];
    d.q.push_back(idx);
    if !d.scheduled {
        d.scheduled = true;
        let at = st.now.max(d.busy);
        st.schedule(at, Ev::DirService(node as u32));
    }
}

/// Service the next queued request at `node`'s directory.
pub(crate) fn dir_service(st: &mut State, node: usize) {
    st.dirs[node].scheduled = false;
    let Some(idx) = st.dirs[node].q.pop_front() else {
        return;
    };
    let req = st.take_coh(idx);
    let from = req.from as usize;
    st.stats.dir_requests += 1;
    let t0 = st.now;
    let li = req.line.idx();
    // Take the entry's fields out of the arena (the sharer list by
    // value, so its capacity survives the round trip); the directory is
    // serially occupied, so nothing else reads the entry meanwhile.
    let mut extended = st.dir[li].extended;
    let mut owner = st.dir[li].owner;
    let mut sharers = std::mem::take(&mut st.dir[li].sharers);
    debug_assert!(from != NO_OWNER as usize);
    let from32 = req.from;

    let grant_t;
    let result;
    match req.kind {
        ReqKind::Read => {
            let mut t = t0 + st.cost.dir_service;
            if owner != NO_OWNER {
                let o = owner as usize;
                if o != from {
                    // Fetch/downgrade the remote owner to shared.
                    t += st.cost.owner_fetch + 2 * net::latency(st, node, o);
                    let slot = st.cache_slot(o, req.line);
                    // Sharer-list membership is mirrored by the cache
                    // table (`Shared` ⟺ on the list), so the duplicate
                    // check is O(1) instead of a list scan.
                    if st.cache[slot] != Some(CacheState::Shared) {
                        sharers.push(owner);
                    }
                    st.cache[slot] = Some(CacheState::Shared);
                    owner = NO_OWNER;
                } else {
                    // Reading node already owns it (raced with itself);
                    // just grant.
                }
            }
            if owner != from32 {
                let slot = st.cache_slot(from, req.line);
                if st.cache[slot] != Some(CacheState::Shared) {
                    sharers.push(from32);
                }
            }
            if !st.full_map && sharers.len() > st.hw_ptrs {
                if !extended {
                    extended = true;
                }
                st.stats.limitless_traps += 1;
                t += st.cost.limitless_trap;
            }
            let v = st.mem[req.addr.0 as usize];
            let f = st.full_bits[req.addr.0 as usize] as u64;
            result = [v, f];
            grant_t = t;
            if owner != from32 {
                let slot = st.cache_slot(from, req.line);
                st.cache[slot] = Some(CacheState::Shared);
            }
        }
        ReqKind::Own(op) => {
            let mut t = t0 + st.cost.dir_service;
            if extended && !st.full_map {
                st.stats.limitless_traps += 1;
                t += st.cost.limitless_trap;
            }
            if owner != NO_OWNER {
                let o = owner as usize;
                if o != from {
                    // Invalidate the remote exclusive owner.
                    t += st.cost.owner_fetch + 2 * net::latency(st, node, o);
                    let slot = st.cache_slot(o, req.line);
                    st.cache[slot] = None;
                    st.stats.invalidations += 1;
                }
            }
            // Sequentially invalidate every other sharer; the grant waits
            // for the last acknowledgement.
            sharers.retain(|&s| s != from32);
            let mut last_ack = t;
            for (i, &s) in sharers.iter().enumerate() {
                let issue_at = t + (i as u64 + 1) * st.cost.inval_issue;
                let ack_at = issue_at + 2 * net::latency(st, node, s as usize);
                last_ack = last_ack.max(ack_at);
                let slot = st.cache_slot(s as usize, req.line);
                st.cache[slot] = None;
                st.stats.invalidations += 1;
            }
            t += sharers.len() as u64 * st.cost.inval_issue;
            grant_t = t.max(last_ack);
            result = apply(st, req.addr, op);
            owner = from32;
            sharers.clear();
            extended = false;
            let slot = st.cache_slot(from, req.line);
            st.cache[slot] = Some(CacheState::Exclusive);
            // Wake read-pollers once the line has settled: they will
            // re-read (missing, since their copies were just invalidated)
            // and serialize at this directory, reproducing the
            // invalidate-and-refetch storm of §3.1.1.
            st.touch_line(req.line, grant_t);
        }
    }

    let entry = &mut st.dir[li];
    entry.owner = owner;
    entry.sharers = sharers;
    entry.extended = extended;
    let reply_at = grant_t + net::latency(st, node, from);
    st.stats.net_msgs += 2;
    let d = &mut st.dirs[node];
    d.busy = grant_t;
    let more = !d.q.is_empty();
    if more {
        d.scheduled = true;
    }
    st.schedule_complete(reply_at, req.comp, result);
    if more {
        st.schedule(grant_t, Ev::DirService(node as u32));
    }
}
