//! Directory-based cache coherence with LimitLESS-style limited pointers.
//!
//! Each line has a home node whose directory serially services coherence
//! requests (occupancy = `dir_service` cycles plus work). The protocol is
//! a standard invalidate MSI protocol with the two Alewife-specific
//! behaviours the paper's results hinge on:
//!
//! * invalidations are issued **sequentially** (`inval_issue` apart), so a
//!   write to a widely-shared line (e.g. a released test-and-test-and-set
//!   lock) occupies the directory for O(sharers) cycles; and
//! * once a line's sharer count exceeds the hardware pointer count, the
//!   directory is **software-extended** and every subsequent operation on
//!   the line pays a `limitless_trap` penalty, unless the machine is
//!   configured as a full-map directory (`Dir_NB` in Figure 3.2).
//!
//! Values live in a single authoritative word array mutated at directory
//! service time (or at local exclusive hits); because a processor stalls
//! on each of its own memory operations and transactions serialize at the
//! home directory, the resulting value history is linearizable.

use crate::exec::{Completion, Ev};
use crate::net;
use crate::state::{Addr, Line, State};

/// State of a line in a node's local cache (absence means invalid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheState {
    /// Read-cached; other nodes may also hold copies.
    Shared,
    /// Exclusively owned (read/write hits, possibly dirty).
    Exclusive,
}

/// Directory entry for one line.
#[derive(Clone, Debug, Default)]
pub(crate) struct DirEntry {
    pub owner: Option<usize>,
    pub sharers: Vec<usize>,
    pub extended: bool,
}

/// An atomic read-modify-write applied at the home directory (or at a
/// local exclusive hit).
#[derive(Clone, Copy, Debug)]
pub(crate) enum RmwOp {
    Write(u64),
    TestAndSet,
    FetchAndStore(u64),
    CompareAndSwap(u64, u64),
    FetchAndAdd(u64),
    /// Store a value and set the full bit; returns the previous full bit.
    WriteFill(u64),
    /// If full: return the value, clear the bit (I-structure take).
    TakeIfFull,
    /// Clear the full bit (J-structure reset).
    ResetEmpty,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum ReqKind {
    /// Read for shared access; second result word is the full bit.
    Read,
    /// Read-modify-write for exclusive access.
    Own(RmwOp),
}

/// A coherence request in flight to a home directory.
pub(crate) struct CohReq {
    pub addr: Addr,
    pub line: Line,
    pub from: usize,
    pub kind: ReqKind,
    pub comp: Completion,
}

/// Apply an RMW to the authoritative arrays; returns `[primary, aux]`
/// result words (op-specific).
fn apply(st: &mut State, addr: Addr, op: RmwOp) -> [u64; 2] {
    let i = addr.0 as usize;
    let old = st.mem[i];
    match op {
        RmwOp::Write(v) => {
            st.mem[i] = v;
            [old, 0]
        }
        RmwOp::TestAndSet => {
            st.mem[i] = 1;
            [old, 0]
        }
        RmwOp::FetchAndStore(v) => {
            st.mem[i] = v;
            [old, 0]
        }
        RmwOp::CompareAndSwap(expect, new) => {
            if old == expect {
                st.mem[i] = new;
                [1, old]
            } else {
                [0, old]
            }
        }
        RmwOp::FetchAndAdd(d) => {
            st.mem[i] = old.wrapping_add(d);
            [old, 0]
        }
        RmwOp::WriteFill(v) => {
            let was = st.full_bits[i];
            st.mem[i] = v;
            st.full_bits[i] = true;
            [was as u64, 0]
        }
        RmwOp::TakeIfFull => {
            if st.full_bits[i] {
                st.full_bits[i] = false;
                [old, 1]
            } else {
                [0, 0]
            }
        }
        RmwOp::ResetEmpty => {
            st.full_bits[i] = false;
            [old, 0]
        }
    }
}

/// Issue a read from `node`; fulfills `comp` with `[value, full_bit]`.
pub(crate) fn issue_read(st: &mut State, node: usize, addr: Addr, comp: Completion) {
    let line = st.line_of(addr);
    if st.caches[node].contains_key(&line) {
        // Local hit: our copy is valid, so the authoritative arrays agree
        // with it (any remote write would have invalidated us first).
        let v = st.mem[addr.0 as usize];
        let f = st.full_bits[addr.0 as usize] as u64;
        let t = st.now + st.cost.cache_hit;
        st.schedule(t, Ev::Complete(comp, [v, f]));
        return;
    }
    st.stats.remote_misses += 1;
    let home = st.home_of(line);
    let arrive = st.now + net::latency(st, node, home);
    st.schedule(
        arrive,
        Ev::DirArrive(
            home,
            CohReq {
                addr,
                line,
                from: node,
                kind: ReqKind::Read,
                comp,
            },
        ),
    );
}

/// Issue a read-modify-write from `node`; fulfills `comp` with the
/// op-specific result pair.
pub(crate) fn issue_own(st: &mut State, node: usize, addr: Addr, op: RmwOp, comp: Completion) {
    let line = st.line_of(addr);
    if st.caches[node].get(&line) == Some(&CacheState::Exclusive) {
        // Exclusive hit: mutate in place. No other node can hold a valid
        // copy, but bump the version anyway so any in-flight watcher
        // re-checks rather than sleeping on a stale epoch.
        let res = apply(st, addr, op);
        let t = st.now + st.cost.cache_hit;
        st.touch_line(line, t);
        st.schedule(t, Ev::Complete(comp, res));
        return;
    }
    st.stats.remote_misses += 1;
    let home = st.home_of(line);
    let arrive = st.now + net::latency(st, node, home);
    st.schedule(
        arrive,
        Ev::DirArrive(
            home,
            CohReq {
                addr,
                line,
                from: node,
                kind: ReqKind::Own(op),
                comp,
            },
        ),
    );
}

/// A coherence request arrived at `node`'s directory queue.
pub(crate) fn dir_arrive(st: &mut State, node: usize, req: CohReq) {
    st.dir_q[node].push_back(req);
    if !st.dir_scheduled[node] {
        st.dir_scheduled[node] = true;
        let at = st.now.max(st.dir_busy[node]);
        st.schedule(at, Ev::DirService(node));
    }
}

/// Service the next queued request at `node`'s directory.
pub(crate) fn dir_service(st: &mut State, node: usize) {
    st.dir_scheduled[node] = false;
    let Some(req) = st.dir_q[node].pop_front() else {
        return;
    };
    st.stats.dir_requests += 1;
    let t0 = st.now;
    let cost = st.cost.clone();
    let entry = st.dir.entry(req.line).or_default().clone();
    let mut busy = cost.dir_service;
    let mut extended = entry.extended;
    let mut owner = entry.owner;
    let mut sharers = entry.sharers.clone();

    let grant_t;
    let result;
    match req.kind {
        ReqKind::Read => {
            let mut t = t0 + busy;
            if let Some(o) = owner {
                if o != req.from {
                    // Fetch/downgrade the remote owner to shared.
                    t += cost.owner_fetch + 2 * net::latency(st, node, o);
                    st.caches[o].insert(req.line, CacheState::Shared);
                    if !sharers.contains(&o) {
                        sharers.push(o);
                    }
                    owner = None;
                } else {
                    // Reading node already owns it (raced with itself);
                    // just grant.
                }
            }
            if owner != Some(req.from) && !sharers.contains(&req.from) {
                sharers.push(req.from);
            }
            if !st.full_map && sharers.len() > st.hw_ptrs {
                if !extended {
                    extended = true;
                }
                st.stats.limitless_traps += 1;
                t += cost.limitless_trap;
            }
            let v = st.mem[req.addr.0 as usize];
            let f = st.full_bits[req.addr.0 as usize] as u64;
            result = [v, f];
            grant_t = t;
            if owner != Some(req.from) {
                st.caches[req.from].insert(req.line, CacheState::Shared);
            }
        }
        ReqKind::Own(op) => {
            let mut t = t0 + busy;
            if extended && !st.full_map {
                st.stats.limitless_traps += 1;
                t += cost.limitless_trap;
            }
            if let Some(o) = owner {
                if o != req.from {
                    // Invalidate the remote exclusive owner.
                    t += cost.owner_fetch + 2 * net::latency(st, node, o);
                    st.caches[o].remove(&req.line);
                    st.stats.invalidations += 1;
                }
            }
            // Sequentially invalidate every other sharer; the grant waits
            // for the last acknowledgement.
            sharers.retain(|&s| s != req.from);
            let mut last_ack = t;
            for (i, &s) in sharers.iter().enumerate() {
                let issue_at = t + (i as u64 + 1) * cost.inval_issue;
                let ack_at = issue_at + 2 * net::latency(st, node, s);
                last_ack = last_ack.max(ack_at);
                st.caches[s].remove(&req.line);
                st.stats.invalidations += 1;
            }
            t += sharers.len() as u64 * cost.inval_issue;
            grant_t = t.max(last_ack);
            result = apply(st, req.addr, op);
            owner = Some(req.from);
            sharers.clear();
            extended = false;
            st.caches[req.from].insert(req.line, CacheState::Exclusive);
            busy = grant_t - t0;
            let _ = busy;
            // Wake read-pollers once the line has settled: they will
            // re-read (missing, since their copies were just invalidated)
            // and serialize at this directory, reproducing the
            // invalidate-and-refetch storm of §3.1.1.
            st.touch_line(req.line, grant_t);
        }
    }

    st.dir.insert(
        req.line,
        DirEntry {
            owner,
            sharers,
            extended,
        },
    );
    st.dir_busy[node] = grant_t;
    let reply_at = grant_t + net::latency(st, node, req.from);
    st.stats.net_msgs += 2;
    st.schedule(reply_at, Ev::Complete(req.comp, result));

    if !st.dir_q[node].is_empty() {
        st.dir_scheduled[node] = true;
        st.schedule(grant_t, Ev::DirService(node));
    }
}
