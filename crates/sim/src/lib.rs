//! # alewife-sim — a deterministic multiprocessor simulator
//!
//! This crate is the experimental substrate for the reproduction of
//! *Reactive Synchronization Algorithms for Multiprocessors* (Lim, 1994).
//! The paper ran its experiments on NWO, a cycle-accurate simulator of the
//! MIT Alewife machine. This crate provides the equivalent substrate: a
//! deterministic, event-driven simulation of a distributed-memory
//! multiprocessor that supports the shared-memory abstraction through a
//! directory-based cache-coherence protocol, plus an active-message layer
//! and a non-preemptive multithreaded node runtime.
//!
//! The mechanisms the paper's results depend on are modelled explicitly:
//!
//! * **Directory coherence with sequential invalidations** — a write to a
//!   line with *k* read-cached copies occupies the home directory while it
//!   issues *k* invalidations one after the other, which is what makes
//!   test-and-test-and-set locks melt down under contention (§3.1.3).
//! * **Limited hardware directory pointers (LimitLESS)** — once a line has
//!   more readers than hardware pointers, every directory operation on it
//!   pays a software-trap penalty, reproducing the `Dir_NB` comparison of
//!   Figure 3.2.
//! * **Directory occupancy** — each home node services coherence requests
//!   serially, so hot synchronization objects serialize requesters.
//! * **Atomic active messages** — handlers run atomically at the
//!   destination node, enabling the message-passing protocols of §3.6.
//! * **Multithreaded nodes with Alewife cost structure** — context switch
//!   14 cycles, blocking ≈ 500 cycles split into unload / reenable /
//!   reload as in Table 4.1, non-preemptive scheduling (§2.2.4), which is
//!   what Chapter 4's two-phase waiting experiments need.
//!
//! Everything is single-threaded and deterministic: events are ordered by
//! `(virtual time, sequence number)` and all randomness comes from a
//! seeded xorshift generator, so every experiment is exactly reproducible.
//!
//! ## Quick start
//!
//! ```
//! use alewife_sim::{Machine, Config};
//!
//! let m = Machine::new(Config::default().nodes(4));
//! let counter = m.alloc_on(0, 1);
//! for p in 0..4 {
//!     let cpu = m.cpu(p);
//!     m.spawn(p, async move {
//!         for _ in 0..10 {
//!             cpu.fetch_and_add(counter, 1).await;
//!             cpu.work(50).await;
//!         }
//!     });
//! }
//! let elapsed = m.run();
//! assert_eq!(m.read_word(counter), 40);
//! assert!(elapsed > 0);
//! ```

#![deny(missing_docs)]
#![allow(clippy::new_without_default)]

mod coherence;
mod cost;
mod cpu;
mod exec;
mod fault;
mod machine;
mod msg;
mod net;
pub mod parallel;
mod queue;
mod rng;
mod state;
pub mod stats;
mod thread;

pub use coherence::CacheState;
pub use cost::CostModel;
pub use cpu::Cpu;
pub use exec::TaskId;
pub use fault::{FaultEvent, FaultPlan};
pub use machine::{Config, Machine};
pub use msg::{HandlerCtx, Port, PrivAddr, ReplyToken};
pub use parallel::{Cluster, ClusterReport, ParallelConfig, RemoteMail, ShardCtx};
pub use state::Addr;
pub use stats::{Stats, WaitHistogram};
pub use thread::WaitQueueId;

/// Result of a full/empty-bit tagged read (see [`Cpu::read_full`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullEmpty {
    /// The word was full; the payload is its value.
    Full(u64),
    /// The word was empty.
    Empty,
}
