//! Active messages (§3.6): atomic handlers at the destination node.
//!
//! A handler is an arbitrary closure registered for a `(node, port)`
//! pair. Handlers run *atomically* with respect to other handlers on the
//! same node (the per-node handler engine services one message at a
//! time), exactly the property message-passing protocols exploit to get
//! atomicity without locks. Handlers may capture their own state (the
//! simulator is single-threaded), send further messages, and reply to
//! RPCs — including *deferred* replies, which is how a message-passing
//! lock manager grants a queued lock long after the request arrived.

use crate::exec::{Completion, Ev};
use crate::net;
use crate::state::State;

/// A message port number; handlers are registered per `(node, Port)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Port(pub u32);

/// Opaque token identifying a pending RPC awaiting a reply.
///
/// The raw value is exposed so handlers can store tokens (e.g. in a queue
/// of lock waiters) and reply later via [`HandlerCtx::reply_to`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReplyToken(pub u64);

/// Placeholder address type for node-private memory. Handlers normally
/// capture their state directly; this exists for symmetry with the paper
/// text and is currently a plain index newtype.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrivAddr(pub usize);

pub(crate) struct ActiveMsg {
    pub port: u32,
    pub from: usize,
    pub args: [u64; 4],
    /// 0 when the message is not an RPC.
    pub token: u64,
}

pub(crate) type HandlerFn = Box<dyn FnMut(&mut HandlerCtx<'_>, [u64; 4])>;

/// Execution context passed to an active-message handler.
///
/// All side effects are stamped at the handler's completion time, keeping
/// the handler logically atomic.
pub struct HandlerCtx<'a> {
    pub(crate) st: &'a mut State,
    pub(crate) node: usize,
    pub(crate) from: usize,
    pub(crate) token: u64,
    pub(crate) t_end: u64,
}

impl HandlerCtx<'_> {
    /// Node the handler runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Node that sent the message.
    pub fn sender(&self) -> usize {
        self.from
    }

    /// Virtual time at which the handler's effects become visible.
    pub fn now(&self) -> u64 {
        self.t_end
    }

    /// The RPC token of this message, if the sender used
    /// [`crate::Cpu::rpc`]; `ReplyToken(0)` otherwise.
    pub fn token(&self) -> ReplyToken {
        ReplyToken(self.token)
    }

    /// Extend this handler's occupancy by `cycles` (models handler work).
    pub fn consume(&mut self, cycles: u64) {
        self.t_end += cycles;
    }

    /// Fire-and-forget message to another node's handler.
    pub fn send(&mut self, dest: usize, port: Port, args: [u64; 4]) {
        self.send_with_token(dest, port, args, ReplyToken(0));
    }

    /// Send a message carrying an RPC token (e.g. forwarding a request up
    /// a combining tree so a later handler can reply to the originator).
    pub fn send_with_token(&mut self, dest: usize, port: Port, args: [u64; 4], tok: ReplyToken) {
        let at = self.t_end + net::latency(self.st, self.node, dest);
        self.st.stats.net_msgs += 1;
        let idx = self.st.put_msg(ActiveMsg {
            port: port.0,
            from: self.node,
            args,
            token: tok.0,
        });
        self.st.schedule(at, Ev::MsgArrive(dest as u32, idx));
    }

    /// Send a message to this node's own handler engine after `delay`
    /// cycles (used e.g. for combining windows).
    pub fn send_self_delayed(&mut self, port: Port, args: [u64; 4], delay: u64) {
        let at = self.t_end + delay;
        let idx = self.st.put_msg(ActiveMsg {
            port: port.0,
            from: self.node,
            args,
            token: 0,
        });
        self.st.schedule(at, Ev::MsgArrive(self.node as u32, idx));
    }

    /// Complete the RPC identified by `tok` with `value`. The reply
    /// travels from this node to the original requester.
    ///
    /// # Panics
    /// Panics if the token is unknown (already replied or never issued).
    pub fn reply_to(&mut self, tok: ReplyToken, value: u64) {
        let (comp, requester) = self
            .st
            .rpc_pending
            .remove(tok.0)
            .expect("reply_to: unknown RPC token");
        let at = self.t_end + net::latency(self.st, self.node, requester);
        self.st.stats.net_msgs += 1;
        self.st.schedule_complete(at, comp, [value, 0]);
    }

    /// Increment a named statistics counter.
    pub fn bump(&mut self, name: &str, n: u64) {
        self.st.stats.bump(name, n);
    }

    /// Record a waiting time into a named histogram.
    pub fn record_wait(&mut self, name: &str, t: u64) {
        self.st.stats.record_wait(name, t);
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.st.rand_below(bound)
    }
}

/// The in-flight message `msg_slab[idx]` arrived at `node`; queue it
/// for the handler engine.
pub(crate) fn msg_arrive(st: &mut State, node: usize, idx: u32) {
    st.stats.active_msgs += 1;
    let e = &mut st.msgs[node];
    e.q.push_back(idx);
    if !e.scheduled {
        e.scheduled = true;
        let at = st.now.max(e.busy);
        st.schedule(at, Ev::MsgService(node as u32));
    }
}

/// Run the next queued handler at `node`.
pub(crate) fn msg_service(st: &mut State, node: usize) {
    st.msgs[node].scheduled = false;
    let Some(idx) = st.msgs[node].q.pop_front() else {
        return;
    };
    let msg = st.take_msg(idx);
    let mut handler = match st.handlers[node]
        .get_mut(msg.port as usize)
        .and_then(|h| h.take())
    {
        Some(h) => h,
        None => panic!("no handler registered for node {} port {}", node, msg.port),
    };
    let t_end = st.now + st.cost.msg_handler;
    let mut ctx = HandlerCtx {
        st,
        node,
        from: msg.from,
        token: msg.token,
        t_end,
    };
    handler(&mut ctx, msg.args);
    let t_end = ctx.t_end;
    // Re-install the handler (it was taken to avoid aliasing).
    if let Some(slot) = st.handlers[node].get_mut(msg.port as usize) {
        *slot = Some(handler);
    }
    st.msgs[node].busy = t_end;
    if !st.msgs[node].q.is_empty() {
        st.msgs[node].scheduled = true;
        st.schedule(t_end, Ev::MsgService(node as u32));
    }
}

/// Issue an RPC from a processor: register the pending completion and
/// launch the request message. Returns the arrival-scheduling time.
pub(crate) fn issue_rpc(
    st: &mut State,
    from: usize,
    dest: usize,
    port: Port,
    args: [u64; 4],
    comp: Completion,
) {
    let token = st.rpc_pending.insert((comp, from));
    let at = st.now + st.cost.msg_send + net::latency(st, from, dest);
    st.stats.net_msgs += 1;
    let idx = st.put_msg(ActiveMsg {
        port: port.0,
        from,
        args,
        token,
    });
    st.schedule(at, Ev::MsgArrive(dest as u32, idx));
}

/// Inject an externally-routed active message (a cross-shard delivery
/// from the parallel scheduler) arriving at `node` at absolute time
/// `at`. `from` is the *global* sender id — it is surfaced through
/// [`HandlerCtx::sender`] but takes part in no local latency math, and
/// the message carries no RPC token (cross-shard replies travel back as
/// ordinary posted messages). Counted as one network message, exactly
/// as both execution modes must agree on.
pub(crate) fn inject(
    st: &mut State,
    node: usize,
    from: usize,
    port: Port,
    args: [u64; 4],
    at: u64,
) {
    st.stats.net_msgs += 1;
    let idx = st.put_msg(ActiveMsg {
        port: port.0,
        from,
        args,
        token: 0,
    });
    st.schedule(at, Ev::MsgArrive(node as u32, idx));
}

/// Fire-and-forget send from a processor.
pub(crate) fn issue_send(st: &mut State, from: usize, dest: usize, port: Port, args: [u64; 4]) {
    let at = st.now + st.cost.msg_send + net::latency(st, from, dest);
    st.stats.net_msgs += 1;
    let idx = st.put_msg(ActiveMsg {
        port: port.0,
        from,
        args,
        token: 0,
    });
    st.schedule(at, Ev::MsgArrive(dest as u32, idx));
}
