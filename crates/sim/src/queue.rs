//! The bucketed calendar event queue.
//!
//! The executor pops every simulation event in `(time, seq)` order. A
//! `BinaryHeap` gives that order at O(log n) per operation with poor
//! locality; this queue exploits the structure of simulator schedules —
//! almost every event lands within a few hundred cycles of `now` — with
//! two levels:
//!
//! * **near**: a ring of [`WINDOW`] one-cycle buckets covering
//!   `[window_start, window_start + WINDOW)`, plus an occupancy bitmap
//!   (one bit per bucket) so finding the next pending time is a
//!   find-first-set scan instead of a cycle-by-cycle slide. Push and
//!   pop are O(1). Within a bucket all events share the same time, and
//!   both live pushes (monotonically increasing `seq`) and overflow
//!   spills (heap order) arrive in ascending `seq`, so FIFO order *is*
//!   `seq` order.
//! * **far**: a `BinaryHeap` fallback for events at or beyond the
//!   window's end. As the window advances, events whose time comes into
//!   range spill into their buckets before any live push can target
//!   them, preserving the total `(time, seq)` order exactly.
//!
//! Invariants:
//! 1. no event exists with `time < window_start` (schedules clamp to
//!    `now`, and `window_start` trails the last popped time);
//! 2. `overflow` holds only events with `time >= window_start + WINDOW`;
//! 3. every bucket holds events of exactly one time value, in ascending
//!    `seq` order;
//! 4. `occ` bit `i` is set iff `buckets[i]` is non-empty.

use std::collections::BinaryHeap;

use crate::exec::{Ev, EventEntry};

/// Width of the near window in cycles. Sized for cache residency of the
/// bucket head/tail tables (2 KiB each): the bulk of simulator events
/// land within a few dozen cycles of `now`, and the occasional long
/// delay (blocking ≈ 465 cycles, think loops ≈ 500) rides the heap
/// fallback instead.
pub(crate) const WINDOW: u64 = 256;
const WORDS: usize = (WINDOW as usize) / 64;
/// Null link in the bucket lists.
const NIL: u32 = u32::MAX;

/// One near-window event, linked into its bucket's list. Nodes live in
/// a recycled slab so the hot set stays small and cache-resident.
struct Node {
    seq: u64,
    ev: Option<Ev>,
    next: u32,
}

/// Two-level bucketed event queue; see the module docs.
pub(crate) struct EventQueue {
    /// Slab backing every bucket list (and the free list).
    nodes: Vec<Node>,
    /// Head of the free list through `nodes[..].next`.
    free: u32,
    /// `ends[t % WINDOW]` is the `(head, tail)` of the bucket list for
    /// time `t`, for any `t` inside the current window, in ascending
    /// `seq` order. Fixed-size so masked indexing needs no bounds check.
    ends: Box<[(u32, u32); WINDOW as usize]>,
    /// Occupancy bitmap over the buckets.
    occ: [u64; WORDS],
    /// Earliest time any pending event may have.
    window_start: u64,
    /// Events currently in buckets.
    near: usize,
    /// Far-future events (`time >= window_start + WINDOW`).
    overflow: BinaryHeap<EventEntry>,
    /// `overflow`'s minimum time (`u64::MAX` when empty), cached so the
    /// per-pop spill check is a register compare.
    overflow_min: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue {
            nodes: Vec::new(),
            free: NIL,
            ends: Box::new([(NIL, NIL); WINDOW as usize]),
            occ: [0; WORDS],
            window_start: 0,
            near: 0,
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.near + self.overflow.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1 << (slot % 64);
    }

    /// Take a slab node off the free list (or grow) for `(seq, ev)`.
    #[inline]
    fn alloc_node(&mut self, seq: u64, ev: Ev) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let n = &mut self.nodes[i as usize];
            self.free = n.next;
            n.seq = seq;
            n.ev = Some(ev);
            n.next = NIL;
            i
        } else {
            Self::grow_slab(&mut self.nodes, seq, ev)
        }
    }

    /// Append to the tail of `time`'s bucket list.
    #[inline]
    fn place(&mut self, time: u64, seq: u64, ev: Ev) {
        let slot = (time as usize) & (WINDOW as usize - 1);
        let i = self.alloc_node(seq, ev);
        let (h, t) = self.ends[slot];
        if h == NIL {
            self.ends[slot] = (i, i);
            self.mark(slot);
        } else {
            self.nodes[t as usize].next = i;
            self.ends[slot] = (h, i);
        }
        self.near += 1;
    }

    #[cold]
    fn grow_slab(nodes: &mut Vec<Node>, seq: u64, ev: Ev) -> u32 {
        nodes.push(Node {
            seq,
            ev: Some(ev),
            next: NIL,
        });
        (nodes.len() - 1) as u32
    }

    #[inline]
    pub fn push(&mut self, e: EventEntry) {
        debug_assert!(
            e.time >= self.window_start,
            "event scheduled in the past ({} < {})",
            e.time,
            self.window_start
        );
        if e.time < self.window_start + WINDOW {
            self.place(e.time, e.seq, e.ev);
        } else {
            self.overflow_min = self.overflow_min.min(e.time);
            self.overflow.push(e);
        }
    }

    /// Bulk-append watcher wakes for `tasks` at `time`, with sequence
    /// numbers `base_seq + 1 ..= base_seq + tasks.len()` (the caller has
    /// already advanced the global counter). Equivalent to pushing the
    /// `Ev::Wake`s one by one, but the bucket is located and its
    /// tail/occupancy updated once per burst — invalidation storms wake
    /// dozens of watchers at a single instant.
    pub fn push_wakes(&mut self, time: u64, base_seq: u64, tasks: &[crate::exec::TaskId]) {
        debug_assert!(time >= self.window_start);
        if time >= self.window_start + WINDOW {
            for (j, &t) in tasks.iter().enumerate() {
                self.overflow_min = self.overflow_min.min(time);
                self.overflow.push(EventEntry {
                    time,
                    seq: base_seq + 1 + j as u64,
                    ev: Ev::Wake(t),
                });
            }
            return;
        }
        let slot = (time as usize) & (WINDOW as usize - 1);
        let mut first = NIL;
        let mut prev = NIL;
        for (j, &t) in tasks.iter().enumerate() {
            let seq = base_seq + 1 + j as u64;
            let i = self.alloc_node(seq, Ev::Wake(t));
            if prev == NIL {
                first = i;
            } else {
                self.nodes[prev as usize].next = i;
            }
            prev = i;
        }
        if first == NIL {
            return;
        }
        let (h, t) = self.ends[slot];
        if h == NIL {
            self.ends[slot] = (first, prev);
            self.mark(slot);
        } else {
            self.nodes[t as usize].next = first;
            self.ends[slot] = (h, prev);
        }
        self.near += tasks.len();
    }

    /// Time of the next pending event, **without** committing any
    /// window movement (pure with respect to event order). Public
    /// within the crate: the parallel conservative scheduler reads
    /// every shard's next-event time to compute the global safe
    /// horizon.
    #[inline]
    pub fn peek_time(&self) -> Option<u64> {
        // Fast path: an event is pending at the window's current head
        // (the overwhelmingly common case right after a same-time push).
        if self.ends[(self.window_start as usize) & (WINDOW as usize - 1)].0 != NIL {
            Some(self.window_start)
        } else if self.near > 0 {
            Some(self.scan_from(self.window_start))
        } else if self.overflow_min != u64::MAX {
            // Nothing near: the earliest far event is next.
            Some(self.overflow_min)
        } else {
            None
        }
    }

    /// Commit the window to `t` (the next pending time). Advancing
    /// exposes the times `[old_start + WINDOW, t + WINDOW)`; any
    /// overflow event in that range must spill before a live push can
    /// target it. (Spilled times all exceed `t`, and land in buckets
    /// that were empty — the scan skipped them — so per-bucket seq
    /// order is preserved.)
    #[inline]
    fn advance_to(&mut self, t: u64) {
        self.window_start = t;
        if self.overflow_min < t + WINDOW {
            self.spill_below(t + WINDOW);
        }
    }

    /// Time of the next event, advancing the window up to it. After
    /// `Some(t)`, the bucket at `t` is non-empty and [`EventQueue::pop`]
    /// is O(1).
    #[cfg(test)]
    pub fn next_time(&mut self) -> Option<u64> {
        let t = self.peek_time()?;
        self.advance_to(t);
        Some(t)
    }

    /// Absolute time of the first occupied bucket at or after `from`
    /// (which must exist: `near > 0` and no event precedes `from`).
    #[inline]
    fn scan_from(&self, from: u64) -> u64 {
        let base = from - from % WINDOW;
        let start = (from % WINDOW) as usize;
        let start_w = start / 64;
        let mut w = start_w;
        // Mask off bits below `start` in the first word.
        let mut word = self.occ[w] & !((1u64 << (start % 64)) - 1);
        let mut wrapped = false;
        loop {
            if word != 0 {
                let slot = w as u64 * 64 + word.trailing_zeros() as u64;
                // Slots before `start` hold times in the *next* lap.
                return if slot >= start as u64 {
                    base + slot
                } else {
                    base + WINDOW + slot
                };
            }
            debug_assert!(
                !(wrapped && w == start_w),
                "near > 0 but occupancy bitmap empty"
            );
            w += 1;
            if w == WORDS {
                w = 0;
                wrapped = true;
            }
            word = self.occ[w];
            if wrapped && w == start_w {
                // Back at the start word: only bits below `start` remain.
                word &= (1u64 << (start % 64)) - 1;
            }
        }
    }

    /// Pop the next event in `(time, seq)` order.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<EventEntry> {
        self.pop_at_most(u64::MAX)
    }

    /// Pop the next event only if its time is `<= limit` (the executor's
    /// fused peek-then-pop; one window scan per event). A rejected pop
    /// commits nothing: the window stays put, so events may still be
    /// scheduled at any `time >= now`, e.g. after a bounded
    /// `run_until` stops short of a far-future event.
    pub fn pop_at_most(&mut self, limit: u64) -> Option<EventEntry> {
        let time = self.peek_time()?;
        if time > limit {
            return None;
        }
        self.advance_to(time);
        Some(self.pop_bucket(time))
    }

    #[inline]
    fn pop_bucket(&mut self, time: u64) -> EventEntry {
        let slot = (time as usize) & (WINDOW as usize - 1);
        let (i, t) = self.ends[slot];
        debug_assert_ne!(i, NIL, "next_time returned an empty bucket");
        let n = &mut self.nodes[i as usize];
        let seq = n.seq;
        let ev = n.ev.take().expect("bucket node without an event");
        let next = n.next;
        n.next = self.free;
        self.free = i;
        self.ends[slot] = (next, t);
        if next == NIL {
            self.occ[slot / 64] &= !(1 << (slot % 64));
        }
        self.near -= 1;
        EventEntry { time, seq, ev }
    }

    /// Move every overflow event with `time < end` into its bucket
    /// (heap order keeps per-bucket `seq` ascending).
    fn spill_below(&mut self, end: u64) {
        while self.overflow.peek().is_some_and(|e| e.time < end) {
            let e = self.overflow.pop().expect("peeked event vanished");
            self.place(e.time, e.seq, e.ev);
        }
        self.overflow_min = self.overflow.peek().map_or(u64::MAX, |e| e.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TaskId;
    use proptest::prelude::*;
    use std::cmp::Reverse;

    /// Reference model: a plain binary heap on `(time, seq)`.
    #[derive(Default)]
    struct RefModel {
        heap: BinaryHeap<Reverse<(u64, u64)>>,
    }

    fn payload(seq: u64) -> Ev {
        // Encode seq into the payload so pops can be cross-checked.
        Ev::Wake(TaskId(seq as usize))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Any interleaving of schedule/pop matches the heap model
        /// event-for-event, including far-future times that exercise the
        /// overflow heap and window jumps.
        #[test]
        fn matches_heap_reference(
            ops in prop::collection::vec(0u64..u64::MAX, 1..400),
        ) {
            let mut q = EventQueue::new();
            let mut model = RefModel::default();
            let mut now = 0u64;
            let mut seq = 0u64;
            for op in ops {
                // ~1 in 4 ops is a pop; the rest push at now + delta,
                // with deltas spanning well past the near window.
                if op % 4 == 0 {
                    let got = q.pop();
                    let want = model.heap.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some(Reverse((t, s)))) => {
                            prop_assert_eq!(e.time, t);
                            prop_assert_eq!(e.seq, s);
                            match e.ev {
                                Ev::Wake(TaskId(p)) => prop_assert_eq!(p as u64, s),
                                _ => prop_assert!(false, "wrong payload variant"),
                            }
                            now = t;
                        }
                        (g, w) => {
                            let g = g.map(|e| (e.time, e.seq));
                            prop_assert_eq!(g, w.map(|r| r.0), "pop mismatch");
                        }
                    }
                } else {
                    // Mix of near (0..WINDOW) and far (up to 4*WINDOW)
                    // deltas, biased near like real schedules.
                    let delta = match op % 16 {
                        0..=11 => (op / 16) % 200,
                        12..=14 => (op / 16) % WINDOW,
                        _ => (op / 16) % (4 * WINDOW),
                    };
                    seq += 1;
                    let t = now + delta;
                    q.push(EventEntry { time: t, seq, ev: payload(seq) });
                    model.heap.push(Reverse((t, seq)));
                }
                prop_assert_eq!(q.len(), model.heap.len());
            }
            // Drain both; tails must agree too.
            while let Some(e) = q.pop() {
                let Reverse((t, s)) = model.heap.pop().expect("model drained early");
                prop_assert_eq!((e.time, e.seq), (t, s));
            }
            prop_assert!(model.heap.is_empty());
            prop_assert!(q.is_empty());
        }

        /// Ties on time pop in seq order even when they arrive via
        /// different paths (live push vs overflow spill).
        #[test]
        fn ties_break_by_seq(start in 0u64..100_000, n in 1usize..60) {
            let mut q = EventQueue::new();
            let t = start + 3 * WINDOW; // force everything through overflow
            for seq in 1..=n as u64 {
                q.push(EventEntry { time: t, seq, ev: payload(seq) });
            }
            for want in 1..=n as u64 {
                let e = q.pop().expect("missing event");
                prop_assert_eq!((e.time, e.seq), (t, want));
            }
            prop_assert!(q.is_empty());
        }
    }

    #[test]
    fn empty_pops_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.next_time().is_none());
        assert!(q.is_empty());
    }
}
