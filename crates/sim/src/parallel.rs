//! Conservative parallel discrete-event simulation: the machine sharded
//! by node.
//!
//! A [`Cluster`] partitions a large simulated machine into `workers`
//! contiguous node ranges (*shards*). Each shard is a complete
//! [`Machine`] — its own calendar queue, directory, handler tables, and
//! thread runtime — so all PR-2 hot-path structure carries over
//! unchanged. Shards interact only through **cross-shard active
//! messages** posted to a [`RemoteMail`] and routed by the scheduler.
//!
//! ## The conservative scheme
//!
//! Cross-shard delivery latency is bounded below by the *lookahead*
//!
//! ```text
//! L = msg_send + max(min cross-shard mesh latency, epoch_window)
//! ```
//!
//! where the mesh latency comes from the global topology (the smallest
//! square mesh over all nodes, the same `net.rs` rule every shard uses
//! internally) minimized over node pairs in different shards. Execution
//! proceeds in epochs: with `m` the minimum next-event time over all
//! shards, every event with `time < m + L` is *safe* — no message
//! posted at or after `m` can be delivered before `m + L` — so each
//! shard runs its local queue up to the horizon `m + L`, then all
//! shards exchange the messages posted during the epoch and the horizon
//! recomputes. This is the classic synchronization-window scheme of
//! conservative PDES with the lookahead derived from the mesh-hop
//! minimum latency.
//!
//! `epoch_window` (see [`ParallelConfig`]) trades cross-shard latency
//! fidelity for epoch length: raising it declares a larger minimum
//! cross-shard delivery latency, which admits proportionally more
//! events per barrier. Both execution modes honor the same declared
//! latency, so the trade is a *modeling* choice, never a divergence
//! between modes.
//!
//! ## Determinism and the two modes
//!
//! [`Cluster::run_serial`] executes the epoch algorithm on one thread —
//! shards in index order inside each epoch, messages routed in (sender
//! shard, post order) — and is bit-deterministic like the sequential
//! simulator. [`Cluster::run_parallel`] runs one OS thread per shard
//! with the *same* epoch structure: per-shard execution is sequential
//! and deterministic, message injection order is fixed by draining the
//! per-sender SPSC channels in sender order, and horizon choices depend
//! only on exchanged next-event times — so the parallel run produces
//! **identical** [`Stats`] to the serial run regardless of thread
//! interleaving (asserted by `tests/parallel_conformance.rs`).
//!
//! A causality detector guards the conservative invariant: every
//! delivery is checked against the receiving shard's executed-to
//! watermark. Debug builds panic on a violation; release builds count
//! it in [`ClusterReport::causality_violations`] (the safe-horizon
//! proptest drives random topologies through both modes and asserts the
//! count stays zero).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crate::cost::CostModel;
use crate::machine::{Config, Machine};
use crate::msg::Port;
use crate::net;
use crate::stats::Stats;

/// Parallel-execution knobs for a [`Cluster`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of shards — and, in [`Cluster::run_parallel`], worker
    /// threads. The serial mode shards the machine identically and
    /// executes the shards on one thread.
    pub workers: usize,
    /// Declared minimum cross-shard delivery latency in cycles (0 keeps
    /// the pure mesh-derived lookahead). Larger windows admit more
    /// events per epoch barrier at the price of coarser cross-shard
    /// latency; both modes apply the same declared latency.
    pub epoch_window: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            epoch_window: 0,
        }
    }
}

/// Per-channel bound on in-flight cross-shard messages per epoch. The
/// receiver drains only at epoch boundaries, so the bound must cover
/// one epoch's worth of posts per ordered shard pair. It must also stay
/// modest: `std::sync::mpsc::sync_channel` preallocates its whole slot
/// ring, and a cluster owns `workers * (workers - 1)` lanes, so the cap
/// multiplies quadratically into resident memory (64 workers at this
/// cap is ~80 bytes * 4096 * 4032 lanes ~ 1.3 GB; the previous 2^20
/// cap tried to reserve hundreds of GB). Overflow panics loudly at the
/// send site rather than blocking (blocking a worker mid-epoch would
/// deadlock the barrier), so an exotic workload that legitimately posts
/// more per epoch fails fast with instructions instead of corrupting
/// the schedule.
const CHANNEL_CAP: usize = 1 << 12;

/// A cross-shard active message in flight between two shards.
#[derive(Clone, Copy, Debug)]
struct RemoteMsg {
    /// Absolute delivery time (post time + declared latency).
    deliver_at: u64,
    /// Global sender node.
    from: usize,
    /// Global destination node.
    dest: usize,
    port: u32,
    args: [u64; 4],
}

/// Topology and pricing shared by every shard's [`RemoteMail`].
struct MailWorld {
    /// Global mesh coordinates for all nodes.
    coords: Vec<(u16, u16)>,
    cost: CostModel,
    epoch_window: u64,
}

/// A shard's outbox for cross-shard active messages. Cheap to clone;
/// workload futures and handlers capture it and post fire-and-forget
/// messages to nodes owned by other shards (a reply travels back as
/// another posted message from the destination's handler).
#[derive(Clone)]
pub struct RemoteMail {
    world: Arc<MailWorld>,
    /// This shard's global node range.
    base: usize,
    len: usize,
    buf: Rc<RefCell<Vec<RemoteMsg>>>,
}

impl RemoteMail {
    /// Post an active message from global node `from` (owned by this
    /// shard) to global node `dest` (owned by another shard), sent at
    /// virtual time `now` (the poster's current time, e.g.
    /// `cpu.now()` or `HandlerCtx::now`). Delivery is priced at
    /// `msg_send + max(mesh latency, epoch_window)` on the global
    /// topology.
    ///
    /// # Panics
    /// If `from` is outside this shard or `dest` is inside it (local
    /// communication goes through the shard machine, whose latencies
    /// may undercut the cross-shard lookahead).
    pub fn post(&self, now: u64, from: usize, dest: usize, port: Port, args: [u64; 4]) {
        assert!(
            from >= self.base && from < self.base + self.len,
            "RemoteMail::post: sender {from} not owned by this shard"
        );
        assert!(
            dest < self.world.coords.len(),
            "RemoteMail::post: destination {dest} out of range"
        );
        assert!(
            dest < self.base || dest >= self.base + self.len,
            "RemoteMail::post: {dest} is shard-local; use the machine's own messaging"
        );
        let w = &self.world;
        let hops = net::hops_between(w.coords[from], w.coords[dest]);
        let lat = net::latency_for_hops(&w.cost, hops).max(w.epoch_window);
        self.buf.borrow_mut().push(RemoteMsg {
            deliver_at: now + w.cost.msg_send + lat,
            from,
            dest,
            port: port.0,
            args,
        });
    }
}

/// The view of one shard handed to the setup closure: the shard-local
/// [`Machine`] plus the global/local node mapping and the cross-shard
/// mail.
pub struct ShardCtx<'a> {
    /// The shard-local machine (`shard_nodes` nodes, ids `0..len`).
    pub machine: &'a Machine,
    /// Shard index.
    pub shard: usize,
    /// First global node id owned by this shard.
    pub node_base: usize,
    /// Number of nodes in this shard.
    pub shard_nodes: usize,
    /// Total nodes across the cluster.
    pub total_nodes: usize,
    mail: RemoteMail,
}

impl ShardCtx<'_> {
    /// The shard's cross-shard outbox (clone it into futures/handlers).
    pub fn mail(&self) -> RemoteMail {
        self.mail.clone()
    }

    /// Global id of this shard's local node `local`.
    pub fn to_global(&self, local: usize) -> usize {
        assert!(local < self.shard_nodes);
        self.node_base + local
    }

    /// Local id of global node `global` if this shard owns it.
    pub fn to_local(&self, global: usize) -> Option<usize> {
        global
            .checked_sub(self.node_base)
            .filter(|&l| l < self.shard_nodes)
    }
}

/// The merged result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Shard stats folded in shard order: scalars/counters/histograms
    /// via [`Stats::absorb`], per-node RMR vectors concatenated so they
    /// are indexed by *global* node id.
    pub stats: Stats,
    /// Maximum final virtual time over the shards.
    pub elapsed: u64,
    /// Epoch barriers executed.
    pub epochs: u64,
    /// The lookahead `L` the horizons used (cycles).
    pub lookahead: u64,
    /// Cross-shard messages delivered.
    pub remote_msgs: u64,
    /// Unfinished tasks summed over shards (nonzero = deadlock).
    pub live_tasks: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Per-shard wall-clock seconds spent executing events (excludes
    /// barrier waits and routing).
    pub busy_secs: Vec<f64>,
    /// Sum over epochs of the *maximum* per-shard busy time — the
    /// critical path of the epoch schedule. `events / critical_path`
    /// is the aggregate event rate on a host with at least `workers`
    /// idle cores; meaningful in serial mode, where per-shard timing is
    /// not contaminated by core oversubscription.
    pub critical_path_secs: f64,
    /// The same critical path in *events*: sum over epochs of the
    /// maximum per-shard executed-event count. Deterministic and
    /// build-independent (unlike the wall-clock variant), so claims can
    /// gate on `stats.sim_events / critical_path_events` — the
    /// schedule's exposed parallelism. Measured by [`Cluster::run_serial`];
    /// the threaded mode reports 0 and defers to the serial reference.
    pub critical_path_events: u64,
    /// Deliveries that violated the safe-horizon invariant (always 0
    /// while the lookahead bound is sound; debug builds panic instead).
    pub causality_violations: u64,
}

impl ClusterReport {
    /// Total executor events over all shards.
    pub fn events(&self) -> u64 {
        self.stats.sim_events
    }
}

/// One shard's runtime while a cluster executes.
struct ShardRt {
    machine: Machine,
    mail: RemoteMail,
    /// Horizon watermark: every event up to and including this time has
    /// been executed (the causality detector's reference point).
    executed_to: u64,
    busy: Duration,
    delivered: u64,
    violations: u64,
}

impl ShardRt {
    /// Deliver one routed message into the shard queue, enforcing the
    /// safe-horizon invariant.
    fn inject(&mut self, m: &RemoteMsg, base: usize) {
        if m.deliver_at <= self.executed_to {
            debug_assert!(
                false,
                "causality violation: delivery at {} but shard executed through {}",
                m.deliver_at, self.executed_to
            );
            self.violations += 1;
        }
        self.delivered += 1;
        let local = m.dest - base;
        self.machine
            .inject_message(local, m.from, Port(m.port), m.args, m.deliver_at);
    }

    /// Take everything posted to the shard's outbox this epoch, in post
    /// order.
    fn take_outgoing(&self) -> Vec<RemoteMsg> {
        std::mem::take(&mut *self.mail.buf.borrow_mut())
    }
}

/// A sharded simulated machine executable serially (deterministic
/// reference) or on one thread per shard (same results, more cores).
/// See the module docs for the scheme.
pub struct Cluster {
    nodes: usize,
    base: Config,
    pcfg: ParallelConfig,
    /// `(base, len)` per shard: contiguous, covering `0..nodes`.
    ranges: Vec<(usize, usize)>,
    world: Arc<MailWorld>,
    lookahead: u64,
}

impl Cluster {
    /// Shard a `nodes`-node machine into `pcfg.workers` contiguous
    /// ranges (near-even: the first `nodes % workers` shards get one
    /// extra node). `base` is the per-shard machine template — its
    /// `nodes` is overridden per shard, its seed is offset by the shard
    /// index so shards draw distinct deterministic streams.
    ///
    /// # Panics
    /// If `workers` is 0 or exceeds `nodes`, or the template carries a
    /// fault plan (fault injection is single-machine-only for now).
    pub fn new(nodes: usize, base: Config, pcfg: ParallelConfig) -> Cluster {
        let w = pcfg.workers;
        assert!(w > 0, "a cluster needs at least one shard");
        assert!(w <= nodes, "more shards ({w}) than nodes ({nodes})");
        assert!(
            base.faults.entries.is_empty(),
            "fault plans are not supported in sharded mode yet"
        );
        let per = nodes / w;
        let extra = nodes % w;
        let mut ranges = Vec::with_capacity(w);
        let mut at = 0;
        for s in 0..w {
            let len = per + usize::from(s < extra);
            ranges.push((at, len));
            at += len;
        }
        debug_assert_eq!(at, nodes);
        let world = Arc::new(MailWorld {
            coords: net::coords_for(nodes),
            cost: base.cost.clone(),
            epoch_window: pcfg.epoch_window,
        });
        let lookahead = Self::compute_lookahead(&world, &ranges);
        Cluster {
            nodes,
            base,
            pcfg,
            ranges,
            world,
            lookahead,
        }
    }

    /// The epoch lookahead `L`: `msg_send` plus the declared minimum
    /// cross-shard latency (mesh-derived, floored by `epoch_window`).
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// The parallel configuration this cluster was built with.
    pub fn config(&self) -> &ParallelConfig {
        &self.pcfg
    }

    /// Total nodes across the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The global node range `(base, len)` of shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        self.ranges[s]
    }

    fn compute_lookahead(world: &MailWorld, ranges: &[(usize, usize)]) -> u64 {
        // Minimum mesh distance between nodes in different shards.
        // O(n^2) scan at setup only, with an early exit at the floor.
        let mut min_hops = u64::MAX;
        'outer: for (si, &(b1, l1)) in ranges.iter().enumerate() {
            for &(b2, l2) in &ranges[si + 1..] {
                for a in b1..b1 + l1 {
                    for b in b2..b2 + l2 {
                        let h = net::hops_between(world.coords[a], world.coords[b]);
                        min_hops = min_hops.min(h);
                        if min_hops <= 1 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        let mesh_min = if min_hops == u64::MAX {
            // Single shard: no cross-shard traffic; any positive value
            // works.
            1
        } else {
            net::latency_for_hops(&world.cost, min_hops)
        };
        let l = world.cost.msg_send + mesh_min.max(world.epoch_window);
        l.max(1)
    }

    /// Build shard `s`'s machine and hand it to the setup closure.
    fn build_shard(&self, s: usize, setup: &(impl Fn(&ShardCtx<'_>) + ?Sized)) -> ShardRt {
        let (base, len) = self.ranges[s];
        let cfg = self
            .base
            .clone()
            .nodes(len)
            .seed(self.base.seed.wrapping_add(s as u64));
        let machine = Machine::new(cfg);
        let mail = RemoteMail {
            world: self.world.clone(),
            base,
            len,
            buf: Rc::new(RefCell::new(Vec::new())),
        };
        setup(&ShardCtx {
            machine: &machine,
            shard: s,
            node_base: base,
            shard_nodes: len,
            total_nodes: self.nodes,
            mail: mail.clone(),
        });
        ShardRt {
            machine,
            mail,
            executed_to: 0,
            busy: Duration::ZERO,
            delivered: 0,
            violations: 0,
        }
    }

    /// Run the sharded machine to completion on one thread: the
    /// deterministic reference execution of the epoch algorithm (shards
    /// in index order within each epoch, messages routed in (sender,
    /// post-order)). Also measures the per-epoch critical path, which
    /// parallel-host throughput projections are read from.
    pub fn run_serial(&self, setup: impl Fn(&ShardCtx<'_>)) -> ClusterReport {
        let t_run = Instant::now();
        let w = self.ranges.len();
        let lookahead = self.lookahead;
        let mut shards: Vec<ShardRt> = (0..w).map(|s| self.build_shard(s, &setup)).collect();
        // inboxes[dest] holds this epoch's deliveries, already in
        // (sender shard, post order) — the canonical injection order.
        let mut inboxes: Vec<Vec<RemoteMsg>> = (0..w).map(|_| Vec::new()).collect();
        let mut epochs = 0u64;
        let mut critical_path = Duration::ZERO;
        let mut cp_events = 0u64;
        loop {
            for (s, rt) in shards.iter_mut().enumerate() {
                let (base, _) = self.ranges[s];
                for m in inboxes[s].drain(..) {
                    rt.inject(&m, base);
                }
            }
            let Some(m) = shards
                .iter()
                .filter_map(|rt| rt.machine.next_event_time())
                .min()
            else {
                break;
            };
            let horizon = m + lookahead;
            let mut epoch_max = Duration::ZERO;
            let mut epoch_max_ev = 0u64;
            for (s, rt) in shards.iter_mut().enumerate() {
                let ev0 = rt.machine.events_executed();
                let t0 = Instant::now();
                rt.machine.run_until(horizon - 1);
                rt.executed_to = horizon - 1;
                // Route in sender order: shard s's posts append to each
                // destination inbox before shard s+1's.
                for msg in rt.take_outgoing() {
                    let dest_shard = self.shard_of(msg.dest);
                    debug_assert_ne!(dest_shard, s);
                    inboxes[dest_shard].push(msg);
                }
                let dt = t0.elapsed();
                rt.busy += dt;
                epoch_max = epoch_max.max(dt);
                epoch_max_ev = epoch_max_ev.max(rt.machine.events_executed() - ev0);
            }
            critical_path += epoch_max;
            cp_events += epoch_max_ev;
            epochs += 1;
        }
        self.report(shards, epochs, critical_path, cp_events, t_run.elapsed())
    }

    /// Run the sharded machine with one OS thread per shard under the
    /// conservative epoch protocol. Produces [`Stats`] identical to
    /// [`Cluster::run_serial`] for the same setup (the cross-mode
    /// conformance contract); wall time reflects the host's real
    /// parallelism.
    pub fn run_parallel(&self, setup: impl Fn(&ShardCtx<'_>) + Send + Sync) -> ClusterReport {
        let t_run = Instant::now();
        let w = self.ranges.len();
        let lookahead = self.lookahead;
        // next_times[s]: shard s's published next-event time (u64::MAX
        // = drained). Workers read all slots between the two barriers.
        let next_times: Vec<AtomicU64> = (0..w).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(w);
        // One bounded SPSC channel per ordered shard pair. Worker s
        // keeps txs[s][d] (its lane to d) and rxs[s][src] (its lane
        // from src); the self lane is never used.
        let mut txs: Vec<Vec<Option<SyncSender<RemoteMsg>>>> =
            (0..w).map(|_| (0..w).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<RemoteMsg>>>> =
            (0..w).map(|_| (0..w).map(|_| None).collect()).collect();
        for src in 0..w {
            for dst in 0..w {
                if src != dst {
                    let (tx, rx) = std::sync::mpsc::sync_channel(CHANNEL_CAP);
                    txs[src][dst] = Some(tx);
                    rxs[dst][src] = Some(rx);
                }
            }
        }
        let mut results: Vec<Option<ShardDone>> = (0..w).map(|_| None).collect();
        std::thread::scope(|sc| {
            let mut handles = Vec::with_capacity(w);
            for (s, (tx_row, rx_row)) in txs.drain(..).zip(rxs.drain(..)).enumerate() {
                let next_times = &next_times;
                let barrier = &barrier;
                let setup = &setup;
                handles.push(sc.spawn(move || {
                    self.worker(s, setup, tx_row, rx_row, next_times, barrier, lookahead)
                }));
            }
            for (s, h) in handles.into_iter().enumerate() {
                results[s] = Some(h.join().expect("shard worker panicked"));
            }
        });
        let mut epochs = 0u64;
        let mut shards = Vec::with_capacity(w);
        for done in results.into_iter().flatten() {
            epochs = done.epochs; // identical across workers by construction
            shards.push(done);
        }
        // Critical-path accounting is measured by the serial reference.
        self.report_done(shards, epochs, Duration::ZERO, 0, t_run.elapsed())
    }

    /// One worker's epoch loop. Barrier discipline: publish → barrier →
    /// read-all → run+flush → barrier. A worker republishes only after
    /// the second barrier, which every peer reaches only after reading,
    /// so two barriers per epoch suffice; the exit decision is computed
    /// from identical published values, so all workers break together.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        s: usize,
        setup: &(impl Fn(&ShardCtx<'_>) + Send + Sync),
        txs: Vec<Option<SyncSender<RemoteMsg>>>,
        rxs: Vec<Option<Receiver<RemoteMsg>>>,
        next_times: &[AtomicU64],
        barrier: &Barrier,
        lookahead: u64,
    ) -> ShardDone {
        let (base, _) = self.ranges[s];
        let mut rt = self.build_shard(s, setup);
        let mut epochs = 0u64;
        loop {
            // Drain this epoch's deliveries in sender-shard order — the
            // same canonical injection order the serial mode uses.
            for rx in rxs.iter().flatten() {
                // horizon: messages in the lane were flushed before the
                // previous epoch's closing barrier, and each carries
                // deliver_at >= the horizon that epoch executed to, so
                // draining here can never deliver into this shard's
                // executed past (rt.inject re-checks the watermark).
                while let Ok(m) = rx.try_recv() {
                    rt.inject(&m, base);
                }
            }
            let next = rt.machine.next_event_time().unwrap_or(u64::MAX);
            // order: Release publish / Acquire read pairs with the
            // barrier; the barrier already synchronizes, the ordering
            // just keeps the slot handoff locally obvious.
            next_times[s].store(next, Ordering::Release);
            barrier.wait();
            let m = next_times
                .iter()
                .map(|t| t.load(Ordering::Acquire)) // order: see store above
                .min()
                .expect("at least one shard");
            if m == u64::MAX {
                // All queues drained and all lanes empty: every worker
                // computes this same minimum and exits together.
                break;
            }
            let horizon = m + lookahead;
            let t0 = Instant::now();
            rt.machine.run_until(horizon - 1);
            rt.executed_to = horizon - 1;
            for msg in rt.take_outgoing() {
                let dest_shard = self.shard_of(msg.dest);
                // horizon: posts from this epoch carry deliver_at >=
                // horizon (post time >= m, latency >= lookahead), and
                // the receiver drains only after the closing barrier
                // below, so the lane bound covers exactly one epoch.
                match txs[dest_shard]
                    .as_ref()
                    .expect("self lane is never posted to")
                    .try_send(msg)
                {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        panic!("cross-shard lane overflow: >{CHANNEL_CAP} messages in one epoch")
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        unreachable!("receiver outlives the scope")
                    }
                }
            }
            rt.busy += t0.elapsed();
            epochs += 1;
            barrier.wait();
        }
        ShardDone {
            stats: rt.machine.stats(),
            live_tasks: rt.machine.live_tasks(),
            elapsed: rt.machine.now(),
            busy: rt.busy,
            delivered: rt.delivered,
            violations: rt.violations,
            epochs,
        }
    }

    /// Shard owning global node `g` (ranges are contiguous).
    fn shard_of(&self, g: usize) -> usize {
        // Near-even split: direct computation instead of binary search.
        let w = self.ranges.len();
        let per = self.nodes / w;
        let extra = self.nodes % w;
        let boundary = extra * (per + 1);
        if g < boundary {
            g / (per + 1)
        } else {
            extra + (g - boundary) / per
        }
    }

    fn report(
        &self,
        shards: Vec<ShardRt>,
        epochs: u64,
        critical_path: Duration,
        cp_events: u64,
        wall: Duration,
    ) -> ClusterReport {
        let done: Vec<ShardDone> = shards
            .into_iter()
            .map(|rt| ShardDone {
                stats: rt.machine.stats(),
                live_tasks: rt.machine.live_tasks(),
                elapsed: rt.machine.now(),
                busy: rt.busy,
                delivered: rt.delivered,
                violations: rt.violations,
                epochs,
            })
            .collect();
        self.report_done(done, epochs, critical_path, cp_events, wall)
    }

    fn report_done(
        &self,
        shards: Vec<ShardDone>,
        epochs: u64,
        critical_path: Duration,
        cp_events: u64,
        wall: Duration,
    ) -> ClusterReport {
        let mut stats = Stats::default();
        let mut elapsed = 0;
        let mut live = 0;
        let mut remote = 0;
        let mut violations = 0;
        let mut busy_secs = Vec::with_capacity(shards.len());
        for mut d in shards {
            // Per-node vectors concatenate in shard order so the merged
            // stats index by global node id; everything else absorbs.
            stats.rmr_cc.append(&mut d.stats.rmr_cc);
            stats.rmr_dsm.append(&mut d.stats.rmr_dsm);
            stats.absorb(&d.stats);
            elapsed = elapsed.max(d.elapsed);
            live += d.live_tasks;
            remote += d.delivered;
            violations += d.violations;
            busy_secs.push(d.busy.as_secs_f64());
        }
        ClusterReport {
            stats,
            elapsed,
            epochs,
            lookahead: self.lookahead,
            remote_msgs: remote,
            live_tasks: live,
            wall_secs: wall.as_secs_f64(),
            busy_secs,
            critical_path_secs: critical_path.as_secs_f64(),
            critical_path_events: cp_events,
            causality_violations: violations,
        }
    }
}

/// One shard's final accounting, independent of execution mode.
struct ShardDone {
    stats: Stats,
    live_tasks: usize,
    elapsed: u64,
    busy: Duration,
    delivered: u64,
    violations: u64,
    epochs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter-ring workload: every node hammers a shard-local
    /// counter, and each shard's node 0 posts a message around the
    /// shard ring; the destination handler bumps a named counter.
    fn ring_setup(ctx: &ShardCtx<'_>) {
        let m = ctx.machine;
        let counter = m.alloc_on(0, 1);
        let mail = ctx.mail();
        let total = ctx.total_nodes;
        let base = ctx.node_base;
        let len = ctx.shard_nodes;
        m.register_handler(0, Port(9), |hctx, args| {
            hctx.bump("ring_hops", 1);
            let _ = args;
        });
        for p in 0..len {
            let cpu = m.cpu(p);
            let mail = mail.clone();
            m.spawn(p, async move {
                for i in 0..6u64 {
                    cpu.fetch_and_add(counter, 1).await;
                    cpu.work(cpu.rand_below(40)).await;
                    if p == 0 {
                        // Ring: shard s's node 0 posts to the next
                        // shard's base node.
                        let dest = (base + len) % total;
                        mail.post(cpu.now(), base, dest, Port(9), [i, 0, 0, 0]);
                    }
                }
            });
        }
    }

    fn digest(r: &ClusterReport) -> (u64, u64, u64, u64, Vec<u64>) {
        (
            r.stats.sim_events,
            r.stats.net_msgs,
            r.stats.counter("ring_hops"),
            r.elapsed,
            r.stats.rmr_cc.clone(),
        )
    }

    #[test]
    fn serial_and_parallel_agree_on_ring() {
        let mk = || {
            Cluster::new(
                16,
                Config::default().seed(77),
                ParallelConfig {
                    workers: 4,
                    epoch_window: 0,
                },
            )
        };
        let a = mk().run_serial(ring_setup);
        let b = mk().run_parallel(ring_setup);
        assert_eq!(a.live_tasks, 0);
        assert_eq!(b.live_tasks, 0);
        assert_eq!(a.causality_violations, 0);
        assert_eq!(b.causality_violations, 0);
        // 4 shards x 6 ring posts each, all delivered.
        assert_eq!(a.stats.counter("ring_hops"), 24);
        assert_eq!(digest(&a), digest(&b));
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn epoch_window_floors_the_lookahead() {
        let base = Config::default();
        let tight = Cluster::new(
            16,
            base.clone(),
            ParallelConfig {
                workers: 4,
                epoch_window: 0,
            },
        );
        let wide = Cluster::new(
            16,
            base,
            ParallelConfig {
                workers: 4,
                epoch_window: 5_000,
            },
        );
        assert!(tight.lookahead() < wide.lookahead());
        assert_eq!(
            wide.lookahead(),
            CostModel::nwo().msg_send + 5_000,
            "window floors the mesh latency"
        );
        // Fewer barriers with the wider window, same simulation.
        let a = tight.run_serial(ring_setup);
        let b = wide.run_serial(ring_setup);
        assert!(b.epochs < a.epochs);
        assert_eq!(a.stats.counter("ring_hops"), b.stats.counter("ring_hops"));
    }

    #[test]
    fn uneven_split_covers_all_nodes() {
        let c = Cluster::new(
            10,
            Config::default(),
            ParallelConfig {
                workers: 3,
                epoch_window: 0,
            },
        );
        assert_eq!(c.shard_range(0), (0, 4));
        assert_eq!(c.shard_range(1), (4, 3));
        assert_eq!(c.shard_range(2), (7, 3));
        for g in 0..10 {
            let s = c.shard_of(g);
            let (b, l) = c.shard_range(s);
            assert!(g >= b && g < b + l, "node {g} misrouted to shard {s}");
        }
    }

    #[test]
    #[should_panic(expected = "shard-local")]
    fn mail_rejects_local_destinations() {
        let c = Cluster::new(
            8,
            Config::default(),
            ParallelConfig {
                workers: 2,
                epoch_window: 0,
            },
        );
        c.run_serial(|ctx| {
            ctx.mail()
                .post(0, ctx.node_base, ctx.node_base, Port(1), [0; 4]);
        });
    }
}
