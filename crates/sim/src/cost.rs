//! The machine cost model, in processor cycles.
//!
//! Two presets are provided. [`CostModel::nwo`] mirrors the 33 MHz NWO
//! simulations the bulk of the thesis uses; [`CostModel::prototype`]
//! mirrors the 20 MHz 16-node hardware prototype of §3.5.2, on which
//! communication appears *cheaper in processor cycles* because the
//! asynchronous network did not slow down with the clock.

/// All tunable costs of the simulated machine, in processor cycles.
///
/// The constants are Alewife-flavoured: a remote miss lands in the ~40-55
/// cycle range the thesis quotes, blocking a thread costs ≈ 465 cycles
/// (the thesis says "less than 500"), and a context switch costs 14.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles for a load/store that hits in the local cache.
    pub cache_hit: u64,
    /// Base cycles of one-way network latency (wire + router entry).
    pub net_base: u64,
    /// Extra one-way cycles per mesh hop.
    pub net_per_hop: u64,
    /// Directory occupancy to service one coherence request.
    pub dir_service: u64,
    /// Directory occupancy to issue each (sequential) invalidation.
    pub inval_issue: u64,
    /// Extra cycles when the directory must fetch/downgrade a remote owner
    /// (charged on top of the round trips to the owner).
    pub owner_fetch: u64,
    /// Software-trap penalty per directory operation on a line whose
    /// sharer count exceeded the hardware pointers (LimitLESS, §2.2.1).
    pub limitless_trap: u64,
    /// Processor overhead to compose and launch an active message.
    pub msg_send: u64,
    /// Base occupancy of an active-message handler at the receiver.
    pub msg_handler: u64,
    /// Context switch between loaded hardware contexts (Sparcle: 14).
    pub ctx_switch: u64,
    /// Unloading a thread's registers and queueing it (Table 4.1).
    pub unload: u64,
    /// Reenabling a blocked thread, paid by the signaller (Table 4.1).
    pub reenable: u64,
    /// Reloading a thread's registers when rescheduled (Table 4.1).
    pub reload: u64,
    /// One-time cost to place a freshly spawned thread on a processor.
    pub thread_spawn: u64,
}

impl CostModel {
    /// The NWO-simulation-flavoured model used for most experiments.
    pub fn nwo() -> Self {
        CostModel {
            cache_hit: 2,
            net_base: 6,
            net_per_hop: 2,
            dir_service: 6,
            inval_issue: 4,
            owner_fetch: 6,
            limitless_trap: 48,
            msg_send: 16,
            msg_handler: 12,
            ctx_switch: 14,
            unload: 300,
            reenable: 100,
            reload: 65,
            thread_spawn: 80,
        }
    }

    /// The 16-node hardware-prototype-flavoured model of §3.5.2 (20 MHz:
    /// network latencies shrink when measured in processor cycles).
    pub fn prototype() -> Self {
        CostModel {
            net_base: 4,
            net_per_hop: 1,
            ..CostModel::nwo()
        }
    }

    /// Total cost of blocking (unload + reenable + reload); the `B` of
    /// Chapter 4's two-phase waiting analysis.
    pub fn block_cost(&self) -> u64 {
        self.unload + self.reenable + self.reload
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::nwo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_cost_is_under_500_cycles() {
        // The thesis: "the cost of blocking a thread in the current
        // implementation is less than 500 cycles".
        let c = CostModel::nwo();
        assert!(c.block_cost() <= 500);
        assert!(c.block_cost() >= 400);
    }

    #[test]
    fn prototype_has_cheaper_network() {
        let p = CostModel::prototype();
        let n = CostModel::nwo();
        assert!(p.net_base < n.net_base);
        assert!(p.net_per_hop < n.net_per_hop);
        assert_eq!(p.ctx_switch, n.ctx_switch);
    }
}
