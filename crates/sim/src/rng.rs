//! Deterministic pseudo-random number generation for the simulator.
//!
//! All nondeterminism in a simulation (think times, backoff jitter,
//! workload shapes) is drawn from a single seeded xorshift64* stream so
//! that runs are exactly reproducible.

/// xorshift64* step. Never returns 0 as the next state provided the seed
/// is non-zero; callers must not seed with 0 (we substitute a constant).
pub(crate) fn next(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform value in `[0, bound)`; `bound == 0` yields 0.
pub(crate) fn below(state: &mut u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    next(state) % bound
}

/// Uniform value in `[0, 1)` with 53 bits of precision (IEEE-exact, so
/// runs are reproducible across hosts).
pub(crate) fn unit(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = 42;
        let mut b = 42;
        let xs: Vec<u64> = (0..8).map(|_| next(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| next(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn zero_seed_recovers() {
        let mut s = 0;
        let v = next(&mut s);
        assert_ne!(v, 0);
        assert_ne!(s, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut s = 7;
        for bound in [1u64, 2, 3, 10, 501] {
            for _ in 0..100 {
                assert!(below(&mut s, bound) < bound);
            }
        }
        assert_eq!(below(&mut s, 0), 0);
    }
}
