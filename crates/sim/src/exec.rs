//! The deterministic event-driven executor.
//!
//! Simulated processors are ordinary Rust `async` tasks driven by a
//! single-threaded executor. Time never advances while a task is running;
//! every awaited operation (memory access, compute delay, message RPC,
//! scheduler interaction) registers a [`Completion`] that an event fires
//! at a computed future instant. Events are totally ordered by
//! `(time, sequence)`, so simulations are exactly reproducible.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::coherence::CohReq;
use crate::msg::ActiveMsg;
use crate::state::State;

/// Identifier of a simulated task (a processor's thread of control).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

pub(crate) type BoxFut = Pin<Box<dyn Future<Output = ()>>>;

/// A one-shot, two-word completion used to resume a task at a computed
/// virtual time. Cheap to clone (shared cell).
#[derive(Clone)]
pub(crate) struct Completion {
    inner: Rc<CompletionInner>,
}

struct CompletionInner {
    done: Cell<bool>,
    val: Cell<[u64; 2]>,
    waiter: Cell<Option<TaskId>>,
}

impl Completion {
    pub fn new() -> Completion {
        Completion {
            inner: Rc::new(CompletionInner {
                done: Cell::new(false),
                val: Cell::new([0, 0]),
                waiter: Cell::new(None),
            }),
        }
    }

    pub fn fulfill(&self, v: [u64; 2]) -> Option<TaskId> {
        debug_assert!(!self.inner.done.get(), "completion fulfilled twice");
        self.inner.val.set(v);
        self.inner.done.set(true);
        self.inner.waiter.take()
    }

    pub fn is_done(&self) -> bool {
        self.inner.done.get()
    }

    pub fn value(&self) -> [u64; 2] {
        self.inner.val.get()
    }

    fn set_waiter(&self, t: TaskId) {
        self.inner.waiter.set(Some(t));
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("done", &self.inner.done.get())
            .finish()
    }
}

/// Future resolving when a [`Completion`] is fulfilled.
pub(crate) struct CompFuture {
    st: Rc<RefCell<State>>,
    c: Completion,
}

impl CompFuture {
    pub fn new(st: Rc<RefCell<State>>, c: Completion) -> CompFuture {
        CompFuture { st, c }
    }
}

impl Future for CompFuture {
    type Output = [u64; 2];

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<[u64; 2]> {
        if self.c.is_done() {
            Poll::Ready(self.c.value())
        } else {
            let cur = self
                .st
                .borrow()
                .current_task
                .expect("sim future polled outside the sim executor");
            self.c.set_waiter(cur);
            Poll::Pending
        }
    }
}

/// Future resolving when a line's version changes past `seen`.
/// Used to implement efficient read-polling (§3.1.1) without simulating
/// every 2-cycle cache-hit poll as its own event.
pub(crate) struct LineChangeFuture {
    pub st: Rc<RefCell<State>>,
    pub line: u64,
    pub seen: u64,
}

impl Future for LineChangeFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.st.borrow_mut();
        let ver = st.line_ver.get(&self.line).copied().unwrap_or(0);
        if ver != self.seen {
            Poll::Ready(())
        } else {
            let cur = st
                .current_task
                .expect("sim future polled outside the sim executor");
            st.watchers.entry(self.line).or_default().push(cur);
            Poll::Pending
        }
    }
}

/// Future resolving when a line's version changes past `seen` *or* a
/// deadline passes — the primitive beneath bounded polling phases
/// (two-phase waiting, Chapter 4). Resolves to `true` if the line
/// changed before the deadline.
pub(crate) struct ChangeOrDeadlineFuture {
    pub st: Rc<RefCell<State>>,
    pub line: u64,
    pub seen: u64,
    pub deadline: u64,
    pub timer_armed: bool,
}

impl Future for ChangeOrDeadlineFuture {
    type Output = bool;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<bool> {
        let mut st = self.st.borrow_mut();
        let ver = st.line_ver.get(&self.line).copied().unwrap_or(0);
        if ver != self.seen {
            return Poll::Ready(true);
        }
        if st.now >= self.deadline {
            return Poll::Ready(false);
        }
        let cur = st
            .current_task
            .expect("sim future polled outside the sim executor");
        st.watchers.entry(self.line).or_default().push(cur);
        if !self.timer_armed {
            let deadline = self.deadline;
            st.schedule(deadline, Ev::Wake(cur));
            drop(st);
            self.timer_armed = true;
        }
        Poll::Pending
    }
}

/// A simulation event.
pub(crate) enum Ev {
    /// Poll the task (it will re-check whatever it is waiting on).
    Wake(TaskId),
    /// Fulfill a completion with a value and poll its waiter.
    Complete(Completion, [u64; 2]),
    /// A coherence request arrives at `node`'s directory input queue.
    DirArrive(usize, CohReq),
    /// The directory at `node` is free to service its next request.
    DirService(usize),
    /// An active message arrives at `node`'s handler input queue.
    MsgArrive(usize, ActiveMsg),
    /// The handler engine at `node` is free to run its next handler.
    MsgService(usize),
    /// The thread scheduler at `node` should start its next ready thread
    /// if the processor is idle.
    Dispatch(usize),
}

pub(crate) struct EventEntry {
    pub time: u64,
    pub seq: u64,
    pub ev: Ev,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first.
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for EventEntry {}

/// Poll one task to completion-or-pending. Takes the future out of the
/// slot so the task may freely re-borrow the state while running.
pub(crate) fn poll_task(st_rc: &Rc<RefCell<State>>, tid: TaskId) {
    let fut = {
        let mut st = st_rc.borrow_mut();
        match st.tasks.get_mut(tid.0).and_then(|s| s.as_mut()) {
            Some(slot) => match slot.fut.take() {
                Some(f) => f,
                None => return, // already running further up the stack
            },
            None => return, // task already finished; stale wake
        }
    };
    let mut fut = fut;
    st_rc.borrow_mut().current_task = Some(tid);
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let res = fut.as_mut().poll(&mut cx);
    {
        let mut st = st_rc.borrow_mut();
        st.current_task = None;
        match res {
            Poll::Pending => {
                if let Some(slot) = st.tasks.get_mut(tid.0).and_then(|s| s.as_mut()) {
                    slot.fut = Some(fut);
                }
            }
            Poll::Ready(()) => {
                let slot = st.tasks[tid.0].take();
                st.free_tasks.push(tid.0);
                st.live_tasks -= 1;
                if let Some(slot) = slot {
                    if let Some(thr) = slot.thread {
                        crate::thread::thread_exited(&mut st, thr.node);
                    }
                }
            }
        }
    }
}

/// Create a raw (scheduler-independent) task and schedule its first poll.
pub(crate) fn spawn_raw(
    st: &mut State,
    fut: impl Future<Output = ()> + 'static,
    start_at: u64,
) -> TaskId {
    let slot = TaskSlotInit { fut: Box::pin(fut) };
    let id = insert_task(st, slot.fut, None);
    st.schedule(start_at, Ev::Wake(id));
    id
}

pub(crate) struct TaskSlotInit {
    pub fut: BoxFut,
}

pub(crate) fn insert_task(
    st: &mut State,
    fut: BoxFut,
    thread: Option<crate::state::ThreadInfo>,
) -> TaskId {
    let slot = crate::state::TaskSlot {
        fut: Some(fut),
        thread,
    };
    st.live_tasks += 1;
    if let Some(i) = st.free_tasks.pop() {
        st.tasks[i] = Some(slot);
        TaskId(i)
    } else {
        st.tasks.push(Some(slot));
        TaskId(st.tasks.len() - 1)
    }
}
