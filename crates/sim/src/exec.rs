//! The deterministic event-driven executor.
//!
//! Simulated processors are ordinary Rust `async` tasks driven by a
//! single-threaded executor. Time never advances while a task is running;
//! every awaited operation (memory access, compute delay, message RPC,
//! scheduler interaction) registers a [`Completion`] that an event fires
//! at a computed future instant. Events are totally ordered by
//! `(time, sequence)`, so simulations are exactly reproducible.

use std::cell::Cell;
use std::cmp::Ordering;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::state::State;

/// Identifier of a simulated task (a processor's thread of control).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

pub(crate) type BoxFut = Pin<Box<dyn Future<Output = ()>>>;

/// A one-shot, two-word completion used to resume a task at a computed
/// virtual time. Cheap to clone (shared cell).
#[derive(Clone)]
pub(crate) struct Completion {
    inner: Rc<CompletionInner>,
}

struct CompletionInner {
    done: Cell<bool>,
    val: Cell<[u64; 2]>,
    waiter: Cell<Option<TaskId>>,
}

impl Completion {
    pub fn new() -> Completion {
        Completion {
            inner: Rc::new(CompletionInner {
                done: Cell::new(false),
                val: Cell::new([0, 0]),
                waiter: Cell::new(None),
            }),
        }
    }

    /// Stash the result value ahead of time (e.g. when the completion
    /// event is scheduled). Invisible until [`Completion::finish`] sets
    /// the done flag.
    pub fn set_value(&self, v: [u64; 2]) {
        self.inner.val.set(v);
    }

    /// Mark done and take the waiter to poll, if any.
    pub fn finish(&self) -> Option<TaskId> {
        debug_assert!(!self.inner.done.get(), "completion fulfilled twice");
        self.inner.done.set(true);
        self.inner.waiter.take()
    }

    pub fn is_done(&self) -> bool {
        self.inner.done.get()
    }

    /// Whether this handle is the only one left (safe to recycle).
    pub fn is_unique(&self) -> bool {
        Rc::strong_count(&self.inner) == 1
    }

    /// Clear the completion for reuse from the pool.
    pub fn reset(&self) {
        self.inner.done.set(false);
        self.inner.val.set([0, 0]);
        self.inner.waiter.set(None);
    }

    pub fn value(&self) -> [u64; 2] {
        self.inner.val.get()
    }

    pub(crate) fn set_waiter(&self, t: TaskId) {
        self.inner.waiter.set(Some(t));
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("done", &self.inner.done.get())
            .finish()
    }
}

/// Maps a [`CompFuture`]'s `[u64; 2]` result through a zero-size
/// closure — the await-side of every memory/compute operation, one
/// poll frame deep (no intermediate async-fn state machines).
pub(crate) struct MapFut<T, F: Fn([u64; 2]) -> T> {
    fut: CompFuture,
    map: F,
}

impl<T, F: Fn([u64; 2]) -> T> MapFut<T, F> {
    pub fn new(fut: CompFuture, map: F) -> Self {
        MapFut { fut, map }
    }
}

impl<T, F: Fn([u64; 2]) -> T + Unpin> Future for MapFut<T, F> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        match Pin::new(&mut this.fut).poll(cx) {
            Poll::Ready(v) => Poll::Ready((this.map)(v)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future resolving when a [`Completion`] is fulfilled. Carries the
/// awaiting task's id (captured at issue time, when the task is the
/// current one) so polling never has to re-borrow the state.
pub(crate) struct CompFuture {
    tid: TaskId,
    c: Completion,
}

impl CompFuture {
    pub fn new(tid: TaskId, c: Completion) -> CompFuture {
        CompFuture { tid, c }
    }
}

impl Future for CompFuture {
    type Output = [u64; 2];

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<[u64; 2]> {
        if self.c.is_done() {
            Poll::Ready(self.c.value())
        } else {
            self.c.set_waiter(self.tid);
            Poll::Pending
        }
    }
}

/// A simulation event. Kept small (16 bytes): bulky payloads live in
/// the state's in-flight slabs ([`crate::state::State::coh_slab`],
/// [`crate::state::State::msg_slab`]) and events carry their index;
/// completion events stash their value in the completion up front.
pub(crate) enum Ev {
    /// Poll the task (it will re-check whatever it is waiting on).
    Wake(TaskId),
    /// Finish a completion (value already stashed) and poll its waiter.
    Complete(Completion),
    /// The coherence request `coh_slab[idx]` arrives at node `n`'s
    /// directory input queue (`DirArrive(n, idx)`).
    DirArrive(u32, u32),
    /// The directory at `node` is free to service its next request.
    DirService(u32),
    /// The active message `msg_slab[idx]` arrives at node `n`'s
    /// handler input queue (`MsgArrive(n, idx)`).
    MsgArrive(u32, u32),
    /// The handler engine at `node` is free to run its next handler.
    MsgService(u32),
    /// The thread scheduler at `node` should start its next ready thread
    /// if the processor is idle.
    Dispatch(u32),
    /// Fault injection: kill the node (destroy its threads and volatile
    /// state; NVM survives).
    Kill(u32),
    /// Fault injection: recover the node (spawn its recovery thread).
    Recover(u32),
    /// Fault injection: deliver an abort signal to the node.
    Abort(u32),
}

// The 16-byte ceiling above is a load-bearing layout invariant (the
// calendar queue copies events densely); enforced at compile time and
// checked by the repo lint (`cargo run -p check --bin lint`).
const _: () = assert!(std::mem::size_of::<Ev>() <= 16);

pub(crate) struct EventEntry {
    pub time: u64,
    pub seq: u64,
    pub ev: Ev,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first.
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for EventEntry {}

/// A polled future together with its poll result, awaiting end-of-poll
/// bookkeeping.
pub(crate) type PolledFut = (BoxFut, Poll<()>);
/// Alias clarifying the deferred-recycle completion slot.
pub(crate) type SpentCompletion = Completion;

/// First half of a task poll, run under the event loop's borrow: take
/// the future out of its slot (so the task may freely re-borrow the
/// state while running) and mark the task current. Returns `None` for
/// stale wakes (task finished, or already running further up the
/// stack).
#[inline]
pub(crate) fn begin_poll(st: &mut State, tid: TaskId) -> Option<BoxFut> {
    let f = st.futs.get_mut(tid.0)?.take()?;
    st.current_task = Some(tid);
    Some(f)
}

/// Drive one poll of a task future (no state borrow held).
#[inline]
pub(crate) fn poll_once(fut: &mut BoxFut) -> Poll<()> {
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    fut.as_mut().poll(&mut cx)
}

/// Second half of a task poll: restore or retire the future and recycle
/// the completion that triggered the poll (by now the awaiting future
/// has dropped its handle). Runs under the caller's borrow so it can
/// share one with the next event pop.
pub(crate) fn end_poll(
    st: &mut State,
    tid: TaskId,
    fut: BoxFut,
    res: Poll<()>,
    spent: Option<Completion>,
) {
    st.current_task = None;
    if let Some(c) = spent {
        st.recycle_completion(c);
    }
    match res {
        Poll::Pending => {
            if st.tasks.get(tid.0).is_some_and(|s| s.is_some()) {
                st.futs[tid.0] = Some(fut);
            }
        }
        Poll::Ready(()) => {
            drop(fut);
            let slot = st.tasks[tid.0].take();
            st.free_tasks.push(tid.0);
            st.live_tasks -= 1;
            if let Some(slot) = slot {
                if let Some(thr) = slot.thread {
                    crate::thread::thread_exited(st, thr.node);
                }
            }
        }
    }
}

/// Create a raw (scheduler-independent) task and schedule its first poll.
pub(crate) fn spawn_raw(
    st: &mut State,
    fut: impl Future<Output = ()> + 'static,
    start_at: u64,
) -> TaskId {
    let slot = TaskSlotInit { fut: Box::pin(fut) };
    let id = insert_task(st, slot.fut, None);
    st.schedule(start_at, Ev::Wake(id));
    id
}

pub(crate) struct TaskSlotInit {
    pub fut: BoxFut,
}

pub(crate) fn insert_task(
    st: &mut State,
    fut: BoxFut,
    thread: Option<crate::state::ThreadInfo>,
) -> TaskId {
    let slot = crate::state::TaskSlot { thread };
    st.live_tasks += 1;
    if let Some(i) = st.free_tasks.pop() {
        st.tasks[i] = Some(slot);
        st.futs[i] = Some(fut);
        TaskId(i)
    } else {
        st.tasks.push(Some(slot));
        st.futs.push(Some(fut));
        TaskId(st.tasks.len() - 1)
    }
}
