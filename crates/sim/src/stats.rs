//! Simulation statistics: machine-level counters and waiting-time
//! histograms used by the Chapter 4 experiments (Figures 4.6-4.11) and
//! the lock-service percentile reporting (p50/p99/p999).

use std::cell::{Cell, Ref, RefCell};
use std::collections::BTreeMap;

/// A histogram of waiting times (cycles) with power-of-two buckets plus
/// exact moments. Keeps up to [`WaitHistogram::MAX_RAW`] raw samples for
/// percentile/profile plots; past the cap it switches to seeded
/// reservoir sampling (Algorithm R over a deterministic xorshift64*
/// stream), so percentiles of long runs stay a uniform — and, for a
/// fixed seed and input stream, bit-reproducible — sample instead of a
/// biased prefix.
#[derive(Clone, Debug, Default)]
pub struct WaitHistogram {
    /// bucket\[i\] counts samples in `[2^i, 2^(i+1))` (bucket 0 holds 0-1).
    pub buckets: Vec<u64>,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Retained samples (size capped; reservoir-sampled past the cap).
    pub raw: Vec<u64>,
    /// Lazily maintained sorted copy of `raw` for percentile queries;
    /// rebuilt only when `raw` has changed since the last query instead
    /// of clone-and-sort on every call.
    sorted: RefCell<Vec<u64>>,
    /// Dirty flag for `sorted` (reservoir replacement mutates `raw`
    /// without growing it, so a length check is not enough).
    stale: Cell<bool>,
    /// xorshift64* state for reservoir replacement. 0 (the default)
    /// lets the generator substitute its fixed non-zero constant, so a
    /// default-built histogram is already deterministically seeded.
    rng: u64,
    /// Raw-sample cap override; 0 means [`WaitHistogram::MAX_RAW`].
    cap: usize,
}

impl WaitHistogram {
    /// Cap on retained raw samples (default; see [`Self::with_sampling`]).
    pub const MAX_RAW: usize = 200_000;

    /// Reserve step for `raw` (chunked so long runs do not pay a
    /// doubling reallocation storm on the record path).
    const RAW_CHUNK: usize = 4_096;

    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty histogram with an explicit reservoir capacity
    /// and seed. Two histograms fed the same sample stream with the
    /// same `cap` and `seed` retain identical reservoirs, so reported
    /// percentiles are reproducible run-to-run.
    ///
    /// # Panics
    /// If `cap` is 0 (a percentile query needs at least one sample).
    pub fn with_sampling(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        WaitHistogram {
            rng: seed,
            cap,
            ..Self::default()
        }
    }

    /// The effective raw-sample cap.
    fn raw_cap(&self) -> usize {
        if self.cap == 0 {
            Self::MAX_RAW
        } else {
            self.cap
        }
    }

    /// Record one waiting time in cycles.
    pub fn record(&mut self, t: u64) {
        let b = (64 - t.leading_zeros()).saturating_sub(1) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += t;
        self.max = self.max.max(t);
        let cap = self.raw_cap();
        if self.raw.len() < cap {
            if self.raw.len() == self.raw.capacity() {
                // Pre-reserve growth toward the cap in fixed chunks.
                let grow = Self::RAW_CHUNK.min(cap - self.raw.len());
                self.raw.reserve_exact(grow);
            }
            self.raw.push(t);
            self.stale.set(true);
        } else {
            // Algorithm R: sample `count` (1-based index of this item)
            // replaces a uniformly random reservoir slot with
            // probability cap/count, keeping the reservoir a uniform
            // sample of everything seen so far.
            let j = crate::rng::below(&mut self.rng, self.count);
            if (j as usize) < cap {
                self.raw[j as usize] = t;
                self.stale.set(true);
            }
        }
    }

    /// Mean waiting time, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sorted view of the retained samples, rebuilt only when `record`
    /// has touched `raw` since the last query.
    fn sorted(&self) -> Ref<'_, Vec<u64>> {
        {
            let mut s = self.sorted.borrow_mut();
            if self.stale.get() || s.len() != self.raw.len() {
                s.clear();
                s.extend_from_slice(&self.raw);
                s.sort_unstable();
                self.stale.set(false);
            }
        }
        self.sorted.borrow()
    }

    /// `p`-th percentile (0-100) from retained raw samples.
    pub fn percentile(&self, p: f64) -> u64 {
        let v = self.sorted();
        if v.is_empty() {
            return 0;
        }
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile — the lock-service tail-latency gate. Like
    /// every percentile here it is computed over the retained reservoir,
    /// so past the cap it is an estimate from a uniform (seeded,
    /// reproducible) sample; `max` stays exact regardless.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merge `other` into `self` (parallel-mode stat collection: each
    /// worker records into its own histogram and the shards are folded
    /// at the end).
    ///
    /// Moments and buckets combine exactly. The raw reservoirs combine
    /// by a weighted Algorithm R merge: when the union still fits the
    /// cap it is kept whole; past the cap, elements are drawn without
    /// replacement from the two reservoirs with probabilities
    /// proportional to the population each remaining element represents
    /// (`count/len` per element), so the merged reservoir is again a
    /// uniform sample of the combined population. Draws come from
    /// `self`'s seeded stream, so a fixed merge order is reproducible.
    pub fn merge(&mut self, other: &WaitHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        let cap = self.raw_cap();
        if self.raw.len() + other.raw.len() <= cap {
            self.raw.extend_from_slice(&other.raw);
        } else {
            // Weighted draw: each remaining element of reservoir i
            // stands in for `count_i / len_i` of its population.
            let (n1, n2) = (self.count as f64, other.count as f64);
            let (l1, l2) = (self.raw.len() as f64, other.raw.len() as f64);
            let (w1, w2) = (n1 / l1.max(1.0), n2 / l2.max(1.0));
            let mut out = Vec::with_capacity(cap);
            let (mut i, mut j) = (0usize, 0usize);
            while out.len() < cap && (i < self.raw.len() || j < other.raw.len()) {
                let rem1 = w1 * (self.raw.len() - i) as f64;
                let rem2 = w2 * (other.raw.len() - j) as f64;
                let take_self = if j >= other.raw.len() {
                    true
                } else if i >= self.raw.len() {
                    false
                } else {
                    crate::rng::unit(&mut self.rng) * (rem1 + rem2) < rem1
                };
                if take_self {
                    out.push(self.raw[i]);
                    i += 1;
                } else {
                    out.push(other.raw[j]);
                    j += 1;
                }
            }
            self.raw = out;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.stale.set(true);
    }

    /// Fraction of samples strictly below `t`.
    pub fn frac_below(&self, t: u64) -> f64 {
        let v = self.sorted();
        if v.is_empty() {
            return 0.0;
        }
        let below = v.partition_point(|&x| x < t);
        below as f64 / v.len() as f64
    }
}

/// Machine-wide statistics, retrievable with `Machine::stats`.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Coherence/network messages (requests + replies).
    pub net_msgs: u64,
    /// Cache misses that went to a directory.
    pub remote_misses: u64,
    /// Invalidation messages issued by directories.
    pub invalidations: u64,
    /// LimitLESS software-extension traps taken by directories.
    pub limitless_traps: u64,
    /// Coherence requests serviced by directories.
    pub dir_requests: u64,
    /// Active messages delivered.
    pub active_msgs: u64,
    /// Events processed by the executor (the simulator's unit of work;
    /// `sim_throughput` divides this by wall time for events/sec).
    pub sim_events: u64,
    /// Per-node remote memory references under the **CC** (cache-
    /// coherent) cost model: one per coherence miss — an access that
    /// crossed the interconnect to a directory. Local-cache spins are
    /// free; each invalidation-triggered re-fetch counts.
    pub rmr_cc: Vec<u64>,
    /// Per-node remote memory references under the **DSM** (distributed
    /// shared memory, no-caching) cost model: one per access to a word
    /// whose home is another node, hit or miss.
    pub rmr_dsm: Vec<u64>,
    /// Named event counters incremented by protocol code.
    pub counters: BTreeMap<String, u64>,
    /// Named waiting-time histograms recorded by protocol code.
    pub waits: BTreeMap<String, WaitHistogram>,
}

impl Stats {
    pub(crate) fn new(nodes: usize) -> Self {
        Stats {
            rmr_cc: vec![0; nodes],
            rmr_dsm: vec![0; nodes],
            ..Self::default()
        }
    }

    /// Add `n` to the named counter.
    pub fn bump(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record a waiting time into the named histogram.
    pub fn record_wait(&mut self, name: &str, t: u64) {
        self.waits.entry(name.to_string()).or_default().record(t);
    }

    /// Read a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold `other`'s counts into `self` (parallel collection: one
    /// partial `Stats` per worker, absorbed in shard order at the end).
    /// Scalar counters and named counters sum; per-node RMR vectors sum
    /// elementwise (extending to the longer shape); wait histograms
    /// merge via [`WaitHistogram::merge`].
    pub fn absorb(&mut self, other: &Stats) {
        self.net_msgs += other.net_msgs;
        self.remote_misses += other.remote_misses;
        self.invalidations += other.invalidations;
        self.limitless_traps += other.limitless_traps;
        self.dir_requests += other.dir_requests;
        self.active_msgs += other.active_msgs;
        self.sim_events += other.sim_events;
        if self.rmr_cc.len() < other.rmr_cc.len() {
            self.rmr_cc.resize(other.rmr_cc.len(), 0);
        }
        for (a, &b) in self.rmr_cc.iter_mut().zip(&other.rmr_cc) {
            *a += b;
        }
        if self.rmr_dsm.len() < other.rmr_dsm.len() {
            self.rmr_dsm.resize(other.rmr_dsm.len(), 0);
        }
        for (a, &b) in self.rmr_dsm.iter_mut().zip(&other.rmr_dsm) {
            *a += b;
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, w) in &other.waits {
            self.waits.entry(name.clone()).or_default().merge(w);
        }
    }

    /// Machine-wide RMR total under the CC model.
    pub fn rmr_cc_total(&self) -> u64 {
        self.rmr_cc.iter().sum()
    }

    /// Machine-wide RMR total under the DSM model.
    pub fn rmr_dsm_total(&self) -> u64 {
        self.rmr_dsm.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_moments() {
        let mut h = WaitHistogram::new();
        for t in [1u64, 2, 3, 4, 10] {
            h.record(t);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 20);
        assert_eq!(h.max, 10);
        assert!((h.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = WaitHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn percentile_and_cdf() {
        let mut h = WaitHistogram::new();
        for t in 1..=100u64 {
            h.record(t);
        }
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        let med = h.percentile(50.0);
        assert!((45..=55).contains(&med));
        assert!((h.frac_below(51) - 0.5).abs() < 0.02);
    }

    #[test]
    fn counters() {
        let mut s = Stats::new(1);
        s.bump("x", 2);
        s.bump("x", 3);
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("y"), 0);
    }
}
