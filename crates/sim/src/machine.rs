//! The public machine facade: configuration, allocation, task spawning,
//! and the event loop.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use crate::cost::CostModel;
use crate::cpu::Cpu;
use crate::exec::{self, Ev, TaskId};
use crate::fault::{FaultAction, FaultEvent, FaultPlan};
use crate::msg::{HandlerCtx, Port};
use crate::state::{Addr, State};
use crate::stats::Stats;
use crate::thread::{self, WaitQueueId};
use crate::{coherence, fault, msg};

/// Machine configuration. Construct with [`Config::default`] and chain
/// the builder-style setters.
///
/// ```
/// use alewife_sim::{Config, CostModel};
/// let cfg = Config::default().nodes(16).cost(CostModel::prototype());
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    pub(crate) nodes: usize,
    pub(crate) contexts: usize,
    pub(crate) cost: CostModel,
    pub(crate) line_words: u64,
    pub(crate) hw_ptrs: usize,
    pub(crate) full_map: bool,
    pub(crate) seed: u64,
    pub(crate) faults: FaultPlan,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 1,
            contexts: 1,
            cost: CostModel::nwo(),
            line_words: 4,
            hw_ptrs: 5,
            full_map: false,
            seed: 0xA1EF_17E5,
            faults: FaultPlan::new(),
        }
    }
}

impl Config {
    /// Number of processing nodes.
    pub fn nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "a machine needs at least one node");
        self.nodes = n;
        self
    }

    /// Hardware contexts per node (Sparcle block multithreading).
    pub fn contexts(mut self, n: usize) -> Self {
        assert!(n > 0, "a node needs at least one context");
        self.contexts = n;
        self
    }

    /// Cycle cost model.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Words per cache line (default 4).
    pub fn line_words(mut self, w: u64) -> Self {
        assert!(w > 0);
        self.line_words = w;
        self
    }

    /// Hardware directory pointers before LimitLESS extension (default 5).
    pub fn hw_ptrs(mut self, n: usize) -> Self {
        self.hw_ptrs = n;
        self
    }

    /// Model a full-map directory (`Dir_NB`): no LimitLESS traps.
    pub fn full_map(mut self, b: bool) -> Self {
        self.full_map = b;
        self
    }

    /// Seed for the deterministic random stream.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Install a fault-injection plan. The empty (default) plan adds no
    /// events and leaves the simulation bit-identical to a machine
    /// without one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// A simulated multiprocessor. See the crate docs for an example.
pub struct Machine {
    st: Rc<RefCell<State>>,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: Config) -> Machine {
        let mut st = State::new(
            cfg.nodes,
            cfg.contexts,
            cfg.cost,
            cfg.line_words,
            cfg.hw_ptrs,
            cfg.full_map,
            cfg.seed,
        );
        // The fault plan becomes ordinary events up front; an empty
        // plan schedules nothing, so event sequence numbers (and hence
        // the determinism goldens) are untouched.
        for &(at, act) in &cfg.faults.entries {
            let (ev, n) = match act {
                FaultAction::Kill(n) => (Ev::Kill(n), n),
                FaultAction::Recover(n) => (Ev::Recover(n), n),
                FaultAction::Abort(n) => (Ev::Abort(n), n),
            };
            assert!(
                (n as usize) < cfg.nodes,
                "fault plan names a node out of range"
            );
            st.schedule(at, ev);
        }
        Machine {
            st: Rc::new(RefCell::new(st)),
        }
    }

    /// Handle for issuing operations as node `node`.
    pub fn cpu(&self, node: usize) -> Cpu {
        assert!(node < self.st.borrow().nodes_n, "cpu: node out of range");
        Cpu {
            st: self.st.clone(),
            node,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.st.borrow().nodes_n
    }

    /// Allocate `words` words of shared memory homed on `node`
    /// (line-aligned; never false-shares with other allocations).
    pub fn alloc_on(&self, node: usize, words: u64) -> Addr {
        self.st.borrow_mut().alloc_on(node, words)
    }

    /// Allocate a single word homed on `node`.
    pub fn alloc_var(&self, node: usize) -> Addr {
        self.alloc_on(node, 1)
    }

    /// Read a word directly (no cycles charged; for setup/inspection).
    pub fn read_word(&self, a: Addr) -> u64 {
        self.st.borrow().mem[a.0 as usize]
    }

    /// Write a word directly (no cycles charged; for setup only — do not
    /// call while the simulation is running).
    pub fn write_word(&self, a: Addr, v: u64) {
        self.st.borrow_mut().mem[a.0 as usize] = v;
    }

    /// Set a word's full/empty bit directly (setup only).
    pub fn set_full(&self, a: Addr, full: bool) {
        self.st.borrow_mut().full_bits[a.0 as usize] = full;
    }

    /// Spawn a scheduler-managed thread on `node`.
    pub fn spawn(&self, node: usize, fut: impl Future<Output = ()> + 'static) -> TaskId {
        assert!(node < self.st.borrow().nodes_n, "spawn: node out of range");
        thread::spawn_thread(&mut self.st.borrow_mut(), node, Box::pin(fut))
    }

    /// Spawn a raw task that bypasses the thread scheduler (for drivers
    /// and helpers that should not occupy a simulated processor).
    pub fn spawn_task(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut st = self.st.borrow_mut();
        let now = st.now;
        exec::spawn_raw(&mut st, fut, now)
    }

    /// Create a wait queue for blocking threads.
    pub fn new_wait_queue(&self) -> WaitQueueId {
        thread::new_wait_queue(&mut self.st.borrow_mut())
    }

    /// Register an active-message handler for `(node, port)`.
    pub fn register_handler(
        &self,
        node: usize,
        port: Port,
        f: impl FnMut(&mut HandlerCtx<'_>, [u64; 4]) + 'static,
    ) {
        let mut st = self.st.borrow_mut();
        assert!(node < st.nodes_n, "register_handler: node out of range");
        let table = &mut st.handlers[node];
        let slot = port.0 as usize;
        if table.len() <= slot {
            table.resize_with(slot + 1, || None);
        }
        table[slot] = Some(Box::new(f));
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Time of the earliest pending event, if any. The parallel
    /// scheduler reads every shard's next-event time to compute the
    /// global safe horizon; reading commits nothing (event order is
    /// untouched).
    pub fn next_event_time(&self) -> Option<u64> {
        self.st.borrow().events.peek_time()
    }

    /// Inject an externally-routed active message (cross-shard
    /// delivery) for `node` at absolute virtual time `at`, which must
    /// not precede any event this machine has already executed.
    pub(crate) fn inject_message(
        &self,
        node: usize,
        from: usize,
        port: Port,
        args: [u64; 4],
        at: u64,
    ) {
        let mut st = self.st.borrow_mut();
        assert!(node < st.nodes_n, "inject_message: node out of range");
        assert!(
            at >= st.now,
            "inject_message: delivery at {at} precedes shard time {}",
            st.now
        );
        msg::inject(&mut st, node, from, port, args, at);
    }

    /// Cumulative executor events, cheap to poll between `run_until`
    /// calls (the parallel scheduler differences this per epoch for its
    /// deterministic critical-path accounting).
    pub(crate) fn events_executed(&self) -> u64 {
        self.st.borrow().stats.sim_events
    }

    /// Number of live (unfinished) tasks — nonzero after [`Machine::run`]
    /// indicates deadlock (tasks waiting on conditions that never fire).
    pub fn live_tasks(&self) -> usize {
        self.st.borrow().live_tasks
    }

    /// Snapshot of machine statistics.
    pub fn stats(&self) -> Stats {
        self.st.borrow().stats.clone()
    }

    /// Register the recovery thread factory for `node`: each time the
    /// node recovers from a kill, `f()` is spawned as a fresh thread
    /// there (it should inspect NVM — shared memory — and repair).
    pub fn on_recovery(
        &self,
        node: usize,
        f: impl Fn() -> Pin<Box<dyn Future<Output = ()>>> + 'static,
    ) {
        let mut st = self.st.borrow_mut();
        assert!(node < st.nodes_n, "on_recovery: node out of range");
        st.recovery[node] = Some(Box::new(f));
    }

    /// Whether `node` is currently alive (not killed, or recovered).
    pub fn alive(&self, node: usize) -> bool {
        self.st.borrow().alive[node]
    }

    /// The fault actions that actually fired so far, in order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.st.borrow().fault_log.clone()
    }

    /// Run until no events remain; returns the final virtual time.
    pub fn run(&self) -> u64 {
        self.run_until(u64::MAX)
    }

    /// Run until no events remain or virtual time would exceed `limit`;
    /// returns the time reached.
    pub fn run_until(&self, limit: u64) -> u64 {
        // Processed-event count accumulates locally and is flushed to
        // `stats.sim_events` on exit (nothing reads it mid-run).
        let mut popped = 0u64;
        // A finished poll's bookkeeping is deferred into the next
        // iteration's borrow, so each task event costs one borrow.
        let mut finished: Option<(TaskId, exec::PolledFut, Option<exec::SpentCompletion>)> = None;
        loop {
            // Engine events (directory, message, dispatch) take `&mut
            // State` directly, so consecutive runs of them — the common
            // case under contention — drain beneath a single borrow.
            // Only an actual task poll needs the `Rc` released, because
            // the polled future re-borrows the state.
            let poll_next = {
                let mut st = self.st.borrow_mut();
                if let Some((tid, (fut, res), spent)) = finished.take() {
                    exec::end_poll(&mut st, tid, fut, res, spent);
                }
                loop {
                    let Some(e) = st.events.pop_at_most(limit) else {
                        break None;
                    };
                    st.now = e.time;
                    popped += 1;
                    match e.ev {
                        Ev::Wake(tid) => {
                            if let Some(fut) = exec::begin_poll(&mut st, tid) {
                                break Some((tid, fut, None));
                            }
                        }
                        Ev::Complete(c) => match c.finish() {
                            Some(tid) => match exec::begin_poll(&mut st, tid) {
                                // The poll's closing borrow recycles `c`.
                                Some(fut) => break Some((tid, fut, Some(c))),
                                None => st.recycle_completion(c),
                            },
                            None => st.recycle_completion(c),
                        },
                        Ev::DirArrive(n, idx) => coherence::dir_arrive(&mut st, n as usize, idx),
                        Ev::DirService(n) => coherence::dir_service(&mut st, n as usize),
                        Ev::MsgArrive(n, idx) => msg::msg_arrive(&mut st, n as usize, idx),
                        Ev::MsgService(n) => msg::msg_service(&mut st, n as usize),
                        Ev::Dispatch(n) => thread::dispatch(&mut st, n as usize),
                        Ev::Kill(n) => fault::kill_node(&mut st, n as usize),
                        Ev::Recover(n) => fault::recover_node(&mut st, n as usize),
                        Ev::Abort(n) => fault::abort_node(&mut st, n as usize),
                    }
                }
            };
            let Some((tid, mut fut, spent)) = poll_next else {
                break;
            };
            let res = exec::poll_once(&mut fut);
            finished = Some((tid, (fut, res), spent));
        }
        let mut st = self.st.borrow_mut();
        if let Some((tid, (fut, res), spent)) = finished.take() {
            exec::end_poll(&mut st, tid, fut, res, spent);
        }
        st.stats.sim_events += popped;
        st.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_counter() {
        let m = Machine::new(Config::default());
        let a = m.alloc_var(0);
        let cpu = m.cpu(0);
        m.spawn(0, async move {
            for _ in 0..100 {
                cpu.fetch_and_add(a, 1).await;
            }
        });
        m.run();
        assert_eq!(m.read_word(a), 100);
        assert_eq!(m.live_tasks(), 0);
    }

    #[test]
    fn concurrent_fetch_and_add_is_atomic() {
        let m = Machine::new(Config::default().nodes(8));
        let a = m.alloc_on(0, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..50 {
                    cpu.fetch_and_add(a, 1).await;
                    cpu.work(cpu.rand_below(40)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.read_word(a), 400);
    }

    #[test]
    fn test_and_set_grants_exactly_one_winner() {
        let m = Machine::new(Config::default().nodes(16));
        let flag = m.alloc_on(0, 1);
        let winners = m.alloc_on(0, 2).plus(1); // separate line not needed; distinct word
        let winners = {
            // Keep winners on its own line to avoid interference.
            let _ = winners;
            m.alloc_on(1, 1)
        };
        for p in 0..16 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                if cpu.test_and_set(flag).await == 0 {
                    cpu.fetch_and_add(winners, 1).await;
                }
            });
        }
        m.run();
        assert_eq!(m.read_word(winners), 1);
    }

    #[test]
    fn read_polling_wakes_on_write() {
        let m = Machine::new(Config::default().nodes(2));
        let flag = m.alloc_on(0, 1);
        let seen = m.alloc_on(1, 1);
        let c0 = m.cpu(0);
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            let v = c1.poll_until(flag, |v| v != 0).await;
            c1.write(seen, v).await;
        });
        m.spawn(0, async move {
            c0.work(5_000).await;
            c0.write(flag, 42).await;
        });
        m.run();
        assert_eq!(m.read_word(seen), 42);
        assert_eq!(m.live_tasks(), 0);
    }

    #[test]
    fn remote_miss_costs_more_than_hit() {
        // One read from far away vs. a re-read (hit).
        let m = Machine::new(Config::default().nodes(64));
        let a = m.alloc_on(0, 1);
        let cpu = m.cpu(63);
        let times = m.alloc_on(1, 2);
        m.spawn(63, async move {
            let t0 = cpu.now();
            cpu.read(a).await;
            let t1 = cpu.now();
            cpu.read(a).await;
            let t2 = cpu.now();
            cpu.write(times, t1 - t0).await;
            cpu.write(times.plus(1), t2 - t1).await;
        });
        m.run();
        let miss = m.read_word(times);
        let hit = m.read_word(times.plus(1));
        assert!(miss >= 30, "remote miss only {miss} cycles");
        assert!(hit <= 4, "cache hit took {hit} cycles");
    }

    #[test]
    fn blocking_and_signalling_threads() {
        let m = Machine::new(Config::default().nodes(2));
        let q = m.new_wait_queue();
        let done = m.alloc_on(0, 1);
        let c0 = m.cpu(0);
        let c1 = m.cpu(1);
        m.spawn(0, async move {
            c0.block_on(q).await;
            c0.write(done, 1).await;
        });
        m.spawn(1, async move {
            c1.work(2_000).await;
            assert!(c1.signal_one(q).await);
        });
        let elapsed = m.run();
        assert_eq!(m.read_word(done), 1);
        assert_eq!(m.live_tasks(), 0);
        // Block + signal + reload should land past the signal time.
        assert!(elapsed >= 2_000);
    }

    #[test]
    fn two_threads_share_one_processor_nonpreemptively() {
        let m = Machine::new(Config::default().nodes(1).contexts(2));
        let a = m.alloc_on(0, 2);
        let c0 = m.cpu(0);
        let c1 = m.cpu(0);
        m.spawn(0, async move {
            c0.work(100).await;
            c0.write(a, c0.now()).await;
            c0.yield_now().await;
            c0.work(100).await;
        });
        m.spawn(0, async move {
            c1.write(a.plus(1), c1.now()).await;
        });
        m.run();
        let first = m.read_word(a);
        let second = m.read_word(a.plus(1));
        // Thread 2 only ran after thread 1 yielded.
        assert!(second > first, "t2 at {second} should follow t1 at {first}");
        assert_eq!(m.live_tasks(), 0);
    }

    #[test]
    fn rpc_round_trip() {
        let m = Machine::new(Config::default().nodes(4));
        m.register_handler(2, Port(7), |ctx, args| {
            let tok = ctx.token();
            ctx.reply_to(tok, args[0] * 2);
        });
        let out = m.alloc_on(0, 1);
        let cpu = m.cpu(0);
        m.spawn(0, async move {
            let r = cpu.rpc(2, Port(7), [21, 0, 0, 0]).await;
            cpu.write(out, r).await;
        });
        m.run();
        assert_eq!(m.read_word(out), 42);
    }

    #[test]
    fn bounded_run_then_more_scheduling() {
        // A bounded run that stops short of a far-future event must not
        // advance the event queue's window past the limit: scheduling
        // new work afterwards (at a now <= limit) has to stay legal and
        // keep total event order intact.
        let m = Machine::new(Config::default().nodes(2));
        let cpu = m.cpu(0);
        m.spawn(0, async move {
            cpu.work(10_000).await;
        });
        let reached = m.run_until(500);
        assert!(reached <= 500);
        let flag = m.alloc_on(1, 1);
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            c1.work(5).await;
            c1.write(flag, 1).await;
        });
        m.run();
        assert_eq!(m.read_word(flag), 1);
        assert_eq!(m.live_tasks(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let m = Machine::new(Config::default().nodes(8).seed(99));
            let a = m.alloc_on(0, 1);
            for p in 0..8 {
                let cpu = m.cpu(p);
                m.spawn(p, async move {
                    for _ in 0..20 {
                        cpu.fetch_and_add(a, 1).await;
                        cpu.work(cpu.rand_below(100)).await;
                    }
                });
            }
            let t = m.run();
            (t, m.stats().net_msgs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn limitless_traps_fire_beyond_hw_pointers() {
        let m = Machine::new(Config::default().nodes(16).hw_ptrs(5));
        let a = m.alloc_on(0, 1);
        for p in 0..16 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                cpu.read(a).await;
            });
        }
        m.run();
        assert!(m.stats().limitless_traps > 0);

        let m2 = Machine::new(Config::default().nodes(16).hw_ptrs(5).full_map(true));
        let a2 = m2.alloc_on(0, 1);
        for p in 0..16 {
            let cpu = m2.cpu(p);
            m2.spawn(p, async move {
                cpu.read(a2).await;
            });
        }
        m2.run();
        assert_eq!(m2.stats().limitless_traps, 0);
    }

    #[test]
    fn invalidation_fan_out_scales_with_sharers() {
        // Writing a line cached by k readers should take longer as k grows.
        let time_release = |k: usize| {
            let m = Machine::new(Config::default().nodes(33));
            let a = m.alloc_on(0, 1);
            let ready = m.alloc_on(1, 1);
            for p in 1..=k {
                let cpu = m.cpu(p);
                m.spawn(p, async move {
                    cpu.read(a).await;
                    cpu.fetch_and_add(ready, 1).await;
                    // Keep the copy cached; do nothing else.
                });
            }
            let cpu = m.cpu(32);
            let out = m.alloc_on(2, 1);
            let kk = k as u64;
            m.spawn(32, async move {
                cpu.poll_until(ready, move |v| v == kk).await;
                let t0 = cpu.now();
                cpu.write(a, 1).await;
                let t1 = cpu.now();
                cpu.write(out, t1 - t0).await;
            });
            m.run();
            m.read_word(out)
        };
        let t2 = time_release(2);
        let t16 = time_release(16);
        assert!(
            t16 > t2 + 20,
            "16-sharer inval ({t16}) not costlier than 2-sharer ({t2})"
        );
    }
}
