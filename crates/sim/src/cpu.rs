//! The per-processor handle protocol code uses to interact with the
//! simulated machine.

use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;

use crate::coherence::{self, RmwOp};
use crate::exec::{CompFuture, Completion, MapFut};
use crate::msg::{self, Port};
use crate::state::{Addr, State};
use crate::thread::{self, WaitQueueId};
use crate::FullEmpty;

/// A handle onto one simulated processor.
///
/// All memory operations are *blocking* (the processor stalls for the
/// full round trip), matching Alewife's default behaviour. `Cpu` is
/// cheaply cloneable; clones refer to the same processor.
#[derive(Clone)]
pub struct Cpu {
    pub(crate) st: Rc<RefCell<State>>,
    pub(crate) node: usize,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu").field("node", &self.node).finish()
    }
}

impl Cpu {
    /// The node this processor belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Total number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.st.borrow().nodes_n
    }

    /// Hardware contexts on this node (Sparcle block multithreading).
    pub fn contexts(&self) -> usize {
        self.st.borrow().contexts
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&self, bound: u64) -> u64 {
        self.st.borrow_mut().rand_below(bound)
    }

    /// Allocate shared memory homed on `node` (no cycles charged; models
    /// drawing from a pre-allocated pool, e.g. MCS queue nodes).
    pub fn alloc_on(&self, node: usize, words: u64) -> Addr {
        self.st.borrow_mut().alloc_on(node, words)
    }

    /// A handle for issuing operations as a *different* node (e.g. to
    /// hand to a thread spawned there).
    pub fn on(&self, node: usize) -> Cpu {
        assert!(
            node < self.st.borrow().nodes_n,
            "Cpu::on: node out of range"
        );
        Cpu {
            st: self.st.clone(),
            node,
        }
    }

    /// Create a fresh wait queue (for dynamically created sync objects).
    pub fn new_wait_queue(&self) -> WaitQueueId {
        thread::new_wait_queue(&mut self.st.borrow_mut())
    }

    /// Increment a named statistics counter.
    pub fn bump(&self, name: &str, n: u64) {
        self.st.borrow_mut().stats.bump(name, n);
    }

    /// Record a waiting time into a named histogram.
    pub fn record_wait(&self, name: &str, t: u64) {
        self.st.borrow_mut().stats.record_wait(name, t);
    }

    /// Build the await-side future for `c`; must be called with the
    /// issuing task current (inside its poll).
    fn comp_future_in(st: &crate::state::State, c: Completion) -> CompFuture {
        let tid = st
            .current_task
            .expect("sim operation issued outside the sim executor");
        CompFuture::new(tid, c)
    }

    /// Busy-compute for `cycles` (the processor is occupied).
    ///
    /// Like every memory/compute primitive on `Cpu`, this issues the
    /// operation immediately and returns a one-frame future — there is
    /// no intermediate async-fn state machine on the hot path.
    pub fn work(&self, cycles: u64) -> impl Future<Output = ()> {
        let fut = {
            let mut st = self.st.borrow_mut();
            let c = st.new_completion();
            let at = st.now + cycles;
            st.schedule_complete(at, c.clone(), [0, 0]);
            Self::comp_future_in(&st, c)
        };
        MapFut::new(fut, |_| ())
    }

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    #[inline]
    fn read_fut(&self, a: Addr) -> CompFuture {
        let mut st = self.st.borrow_mut();
        let c = st.new_completion();
        coherence::issue_read(&mut st, self.node, a, c.clone());
        Self::comp_future_in(&st, c)
    }

    #[inline]
    fn own_fut(&self, a: Addr, op: RmwOp) -> CompFuture {
        let mut st = self.st.borrow_mut();
        let c = st.new_completion();
        coherence::issue_own(&mut st, self.node, a, op, c.clone());
        Self::comp_future_in(&st, c)
    }

    /// Load a word.
    pub fn read(&self, a: Addr) -> impl Future<Output = u64> {
        MapFut::new(self.read_fut(a), |v| v[0])
    }

    /// Load a word together with its full/empty bit.
    pub fn read_full(&self, a: Addr) -> impl Future<Output = FullEmpty> {
        MapFut::new(self.read_fut(a), |[v, f]| {
            if f != 0 {
                FullEmpty::Full(v)
            } else {
                FullEmpty::Empty
            }
        })
    }

    /// Store a word.
    pub fn write(&self, a: Addr, v: u64) -> impl Future<Output = ()> {
        MapFut::new(self.own_fut(a, RmwOp::Write(v)), |_| ())
    }

    /// Atomic `test&set`: set the word to 1, return the previous value.
    pub fn test_and_set(&self, a: Addr) -> impl Future<Output = u64> {
        MapFut::new(self.own_fut(a, RmwOp::TestAndSet), |v| v[0])
    }

    /// Atomic `fetch&store` (swap); Sparcle's native RMW primitive.
    pub fn fetch_and_store(&self, a: Addr, v: u64) -> impl Future<Output = u64> {
        MapFut::new(self.own_fut(a, RmwOp::FetchAndStore(v)), |v| v[0])
    }

    /// Atomic compare-and-swap; returns `true` on success.
    pub fn compare_and_swap(&self, a: Addr, expect: u64, new: u64) -> impl Future<Output = bool> {
        MapFut::new(self.own_fut(a, RmwOp::CompareAndSwap(expect, new)), |v| {
            v[0] != 0
        })
    }

    /// Atomic fetch-and-add; returns the previous value.
    pub fn fetch_and_add(&self, a: Addr, d: u64) -> impl Future<Output = u64> {
        MapFut::new(self.own_fut(a, RmwOp::FetchAndAdd(d)), |v| v[0])
    }

    /// Store a value and set the word's full bit (producer side of a
    /// J-structure/future). Returns `true` if the word was already full.
    pub fn write_fill(&self, a: Addr, v: u64) -> impl Future<Output = bool> {
        MapFut::new(self.own_fut(a, RmwOp::WriteFill(v)), |v| v[0] != 0)
    }

    /// If the word is full, atomically read it and reset it to empty
    /// (I-structure take).
    pub fn take_if_full(&self, a: Addr) -> impl Future<Output = FullEmpty> {
        MapFut::new(self.own_fut(a, RmwOp::TakeIfFull), |[v, ok]| {
            if ok != 0 {
                FullEmpty::Full(v)
            } else {
                FullEmpty::Empty
            }
        })
    }

    /// Reset a word's full bit.
    pub fn reset_empty(&self, a: Addr) -> impl Future<Output = ()> {
        MapFut::new(self.own_fut(a, RmwOp::ResetEmpty), |_| ())
    }

    // ------------------------------------------------------------------
    // Read-polling
    // ------------------------------------------------------------------

    /// Read-poll `a` until `pred(value)` holds; returns the value.
    ///
    /// Models test-and-test-and-set-style spinning on a cached copy: the
    /// first poll may miss, subsequent polls hit in the local cache, and
    /// the waiter re-fetches (serializing at the home directory) each
    /// time the line is invalidated by a writer. Implemented as one
    /// hand-rolled future (see `SpinRead`) so each spin re-check costs
    /// a single state borrow and no nested state machines.
    pub fn poll_until<'a>(
        &'a self,
        a: Addr,
        pred: impl Fn(u64) -> bool + Unpin + 'a,
    ) -> impl Future<Output = u64> + 'a {
        SpinRead {
            cpu: self,
            a,
            accept: move |[v, _f]: [u64; 2]| if pred(v) { Some(v) } else { None },
            state: SpinSt::Start,
        }
    }

    /// Read-poll until the word's full bit is set; returns the value.
    pub fn poll_until_full(&self, a: Addr) -> impl Future<Output = u64> + '_ {
        SpinRead {
            cpu: self,
            a,
            accept: |[v, f]: [u64; 2]| if f != 0 { Some(v) } else { None },
            state: SpinSt::Start,
        }
    }

    /// Read-poll `a` until `pred(value)` holds or `deadline` passes.
    /// Returns `Some(value)` on success, `None` on timeout — the polling
    /// phase of a two-phase waiting algorithm.
    pub fn poll_until_deadline<'a>(
        &'a self,
        a: Addr,
        pred: impl Fn(u64) -> bool + Unpin + 'a,
        deadline: u64,
    ) -> impl Future<Output = Option<u64>> + 'a {
        SpinReadDeadline {
            cpu: self,
            a,
            accept: move |[v, _f]: [u64; 2]| if pred(v) { Some(v) } else { None },
            deadline,
            state: SpinDeadlineSt::Start,
        }
    }

    /// Read-poll until the word's full bit is set or `deadline` passes.
    pub fn poll_until_full_deadline(
        &self,
        a: Addr,
        deadline: u64,
    ) -> impl Future<Output = Option<u64>> + '_ {
        SpinReadDeadline {
            cpu: self,
            a,
            accept: |[v, f]: [u64; 2]| if f != 0 { Some(v) } else { None },
            deadline,
            state: SpinDeadlineSt::Start,
        }
    }

    /// This node's abort epoch (bumped by fault-plan abort signals).
    pub fn abort_epoch(&self) -> u64 {
        self.st.borrow().abort_epoch[self.node]
    }

    /// Read-poll `a` until `pred(value)` holds, `deadline` passes, or an
    /// abort signal is delivered to this node (its abort epoch moves
    /// past the snapshot taken at the start of the wait). Returns
    /// `Some(value)` on success, `None` on timeout or abort — the
    /// waiting primitive of abortable lock protocols. Pass
    /// `u64::MAX` as the deadline for an abort-only wait.
    pub fn poll_until_abortable<'a>(
        &'a self,
        a: Addr,
        pred: impl Fn(u64) -> bool + Unpin + 'a,
        deadline: u64,
    ) -> impl Future<Output = Option<u64>> + 'a {
        SpinReadAbortable {
            cpu: self,
            a,
            accept: move |[v, _f]: [u64; 2]| if pred(v) { Some(v) } else { None },
            deadline,
            epoch0: self.abort_epoch(),
            state: SpinDeadlineSt::Start,
        }
    }

    // ------------------------------------------------------------------
    // Active messages
    // ------------------------------------------------------------------

    /// Fire-and-forget active message (costs `msg_send` on this CPU).
    pub async fn send(&self, dest: usize, port: Port, args: [u64; 4]) {
        let cost = {
            let mut st = self.st.borrow_mut();
            msg::issue_send(&mut st, self.node, dest, port, args);
            st.cost.msg_send
        };
        self.work(cost).await;
    }

    /// Remote procedure call: send a message and wait for some handler to
    /// reply (possibly much later — e.g. a queued lock grant).
    pub fn rpc(&self, dest: usize, port: Port, args: [u64; 4]) -> impl Future<Output = u64> {
        let fut = {
            let mut st = self.st.borrow_mut();
            let c = st.new_completion();
            msg::issue_rpc(&mut st, self.node, dest, port, args, c.clone());
            Self::comp_future_in(&st, c)
        };
        MapFut::new(fut, |v| v[0])
    }

    // ------------------------------------------------------------------
    // Thread runtime
    // ------------------------------------------------------------------

    /// Block the current thread on `q` (signaling waiting mechanism).
    /// Pays the unload cost now and the reload cost when rescheduled;
    /// the signaller pays the reenable cost. Total ≈ `B` (Table 4.1).
    pub async fn block_on(&self, q: WaitQueueId) {
        let fut = {
            let mut st = self.st.borrow_mut();
            let c = thread::begin_block(&mut st, self.node, q);
            Self::comp_future_in(&st, c)
        };
        fut.await;
    }

    /// Wake one thread blocked on `q`, paying the reenable cost if a
    /// thread was actually woken. Returns whether one was woken.
    pub async fn signal_one(&self, q: WaitQueueId) -> bool {
        let woke = thread::signal_one(&mut self.st.borrow_mut(), q);
        if woke {
            let reenable = self.st.borrow().cost.reenable;
            self.work(reenable).await;
        }
        woke
    }

    /// Wake every thread blocked on `q` *at the time of the call*;
    /// returns how many were woken. (Snapshotting the count first keeps
    /// a signaller from chasing a waiter that re-blocks because its
    /// condition is still unsatisfied.)
    pub async fn signal_all(&self, q: WaitQueueId) -> usize {
        let n = self.queue_len(q);
        for _ in 0..n {
            self.signal_one(q).await;
        }
        n
    }

    /// Number of threads currently blocked on `q`.
    pub fn queue_len(&self, q: WaitQueueId) -> usize {
        thread::queue_len(&self.st.borrow(), q)
    }

    /// Switch to the next ready thread on this node, if any (polling
    /// waiting mechanism on a multithreaded processor: switch-spinning).
    /// Returns `true` if a switch happened.
    pub async fn yield_now(&self) -> bool {
        let fut = {
            let mut st = self.st.borrow_mut();
            thread::begin_yield(&mut st, self.node).map(|c| Self::comp_future_in(&st, c))
        };
        match fut {
            Some(fut) => {
                fut.await;
                true
            }
            None => false,
        }
    }

    /// Number of other threads ready to run on this node.
    pub fn ready_peers(&self) -> usize {
        thread::ready_count(&self.st.borrow(), self.node)
    }

    /// Spawn a new scheduler-managed thread on `node` (dynamic thread
    /// creation, e.g. future-spawning runtimes). Returns its task id.
    pub fn spawn(
        &self,
        node: usize,
        fut: impl std::future::Future<Output = ()> + 'static,
    ) -> crate::exec::TaskId {
        thread::spawn_thread(&mut self.st.borrow_mut(), node, Box::pin(fut))
    }
}

/// State of a [`SpinRead`] spin loop.
enum SpinSt {
    /// Next poll issues the read (and snapshots the line version).
    Start,
    /// A read is in flight.
    Read {
        c: Completion,
        tid: crate::exec::TaskId,
        line: crate::state::LineId,
        seen: u64,
    },
    /// Registered as a line watcher, waiting for an invalidation.
    Watch {
        line: crate::state::LineId,
        seen: u64,
    },
}

/// The fused read-polling future behind [`Cpu::poll_until`] and
/// [`Cpu::poll_until_full`]: issue read → (miss or hit) → test
/// predicate → watch line → re-read on invalidation. Event and watcher
/// registration order is identical to the naive
/// `loop { read().await; LineChangeFuture.await }`, but each transition
/// runs under a single state borrow with no nested async-fn frames.
struct SpinRead<'a, A: Fn([u64; 2]) -> Option<u64>> {
    cpu: &'a Cpu,
    a: Addr,
    accept: A,
    state: SpinSt,
}

impl<A: Fn([u64; 2]) -> Option<u64> + Unpin> Future for SpinRead<'_, A> {
    type Output = u64;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<u64> {
        use std::task::Poll;
        let this = self.get_mut();
        loop {
            match &this.state {
                SpinSt::Start => {
                    let mut st = this.cpu.st.borrow_mut();
                    let line = st.line_of(this.a);
                    let seen = st.line_ver[line.idx()];
                    let c = st.new_completion();
                    coherence::issue_read(&mut st, this.cpu.node, this.a, c.clone());
                    let tid = st
                        .current_task
                        .expect("sim operation issued outside the sim executor");
                    this.state = SpinSt::Read { c, tid, line, seen };
                }
                SpinSt::Read { c, tid, line, seen } => {
                    if !c.is_done() {
                        c.set_waiter(*tid);
                        return Poll::Pending;
                    }
                    if let Some(v) = (this.accept)(c.value()) {
                        return Poll::Ready(v);
                    }
                    let (line, seen, tid) = (*line, *seen, *tid);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.line_ver[line.idx()] != seen {
                        // Invalidated while we examined the value:
                        // re-read immediately.
                        drop(st);
                        this.state = SpinSt::Start;
                        continue;
                    }
                    st.watchers[line.idx()].push(tid);
                    drop(st);
                    this.state = SpinSt::Watch { line, seen };
                    return Poll::Pending;
                }
                SpinSt::Watch { line, seen } => {
                    let (line, seen) = (*line, *seen);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.line_ver[line.idx()] != seen {
                        drop(st);
                        this.state = SpinSt::Start;
                        continue;
                    }
                    // Stale wake: re-register and keep waiting.
                    let cur = st
                        .current_task
                        .expect("sim future polled outside the sim executor");
                    st.watchers[line.idx()].push(cur);
                    return Poll::Pending;
                }
            }
        }
    }
}

/// State of a [`SpinReadDeadline`] bounded spin loop.
enum SpinDeadlineSt {
    Start,
    Read {
        c: Completion,
        tid: crate::exec::TaskId,
        line: crate::state::LineId,
        seen: u64,
    },
    /// Watching the line with a deadline wake armed for this round.
    Watch {
        line: crate::state::LineId,
        seen: u64,
    },
    /// Deadline hit; one final read races the last write.
    FinalRead {
        c: Completion,
        tid: crate::exec::TaskId,
    },
}

/// The fused future behind [`Cpu::poll_until_deadline`] and
/// [`Cpu::poll_until_full_deadline`] — the polling phase of two-phase
/// waiting. Schedule order (read issues, watcher registrations, one
/// deadline wake armed per re-check round) is identical to the naive
/// async-fn loop it replaces.
struct SpinReadDeadline<'a, A: Fn([u64; 2]) -> Option<u64>> {
    cpu: &'a Cpu,
    a: Addr,
    accept: A,
    deadline: u64,
    state: SpinDeadlineSt,
}

impl<A: Fn([u64; 2]) -> Option<u64> + Unpin> Future for SpinReadDeadline<'_, A> {
    type Output = Option<u64>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Option<u64>> {
        use std::task::Poll;
        let this = self.get_mut();
        loop {
            match &this.state {
                SpinDeadlineSt::Start => {
                    let mut st = this.cpu.st.borrow_mut();
                    let line = st.line_of(this.a);
                    let seen = st.line_ver[line.idx()];
                    let c = st.new_completion();
                    coherence::issue_read(&mut st, this.cpu.node, this.a, c.clone());
                    let tid = st
                        .current_task
                        .expect("sim operation issued outside the sim executor");
                    this.state = SpinDeadlineSt::Read { c, tid, line, seen };
                }
                SpinDeadlineSt::Read { c, tid, line, seen } => {
                    if !c.is_done() {
                        c.set_waiter(*tid);
                        return Poll::Pending;
                    }
                    if let Some(v) = (this.accept)(c.value()) {
                        return Poll::Ready(Some(v));
                    }
                    let (line, seen, tid) = (*line, *seen, *tid);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.now >= this.deadline {
                        return Poll::Ready(None);
                    }
                    if st.line_ver[line.idx()] != seen {
                        // Changed while we examined the value: re-read.
                        drop(st);
                        this.state = SpinDeadlineSt::Start;
                        continue;
                    }
                    // Watch the line and arm this round's deadline wake
                    // (registration first, then the timer — the order the
                    // unfused loop scheduled them in).
                    st.watchers[line.idx()].push(tid);
                    let deadline = this.deadline;
                    st.schedule(deadline, crate::exec::Ev::Wake(tid));
                    drop(st);
                    this.state = SpinDeadlineSt::Watch { line, seen };
                    return Poll::Pending;
                }
                SpinDeadlineSt::Watch { line, seen } => {
                    let (line, seen) = (*line, *seen);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.line_ver[line.idx()] != seen {
                        drop(st);
                        this.state = SpinDeadlineSt::Start;
                        continue;
                    }
                    if st.now >= this.deadline {
                        // Deadline passed: issue the final racing read.
                        let c = st.new_completion();
                        coherence::issue_read(&mut st, this.cpu.node, this.a, c.clone());
                        let tid = st
                            .current_task
                            .expect("sim operation issued outside the sim executor");
                        drop(st);
                        this.state = SpinDeadlineSt::FinalRead { c, tid };
                        continue;
                    }
                    // Stale wake: re-register; the timer stays armed.
                    let cur = st
                        .current_task
                        .expect("sim future polled outside the sim executor");
                    st.watchers[line.idx()].push(cur);
                    return Poll::Pending;
                }
                SpinDeadlineSt::FinalRead { c, tid } => {
                    if !c.is_done() {
                        c.set_waiter(*tid);
                        return Poll::Pending;
                    }
                    return Poll::Ready((this.accept)(c.value()));
                }
            }
        }
    }
}

/// The fused future behind [`Cpu::poll_until_abortable`]: a
/// [`SpinReadDeadline`] that additionally gives up when the node's
/// abort epoch moves past the snapshot taken at wait start (fault-plan
/// abort signals wake the node's tasks, so the check runs promptly).
struct SpinReadAbortable<'a, A: Fn([u64; 2]) -> Option<u64>> {
    cpu: &'a Cpu,
    a: Addr,
    accept: A,
    deadline: u64,
    epoch0: u64,
    state: SpinDeadlineSt,
}

impl<A: Fn([u64; 2]) -> Option<u64> + Unpin> Future for SpinReadAbortable<'_, A> {
    type Output = Option<u64>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Option<u64>> {
        use std::task::Poll;
        let this = self.get_mut();
        loop {
            match &this.state {
                SpinDeadlineSt::Start => {
                    let mut st = this.cpu.st.borrow_mut();
                    let line = st.line_of(this.a);
                    let seen = st.line_ver[line.idx()];
                    let c = st.new_completion();
                    coherence::issue_read(&mut st, this.cpu.node, this.a, c.clone());
                    let tid = st
                        .current_task
                        .expect("sim operation issued outside the sim executor");
                    this.state = SpinDeadlineSt::Read { c, tid, line, seen };
                }
                SpinDeadlineSt::Read { c, tid, line, seen } => {
                    if !c.is_done() {
                        c.set_waiter(*tid);
                        return Poll::Pending;
                    }
                    if let Some(v) = (this.accept)(c.value()) {
                        return Poll::Ready(Some(v));
                    }
                    let (line, seen, tid) = (*line, *seen, *tid);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.abort_epoch[this.cpu.node] != this.epoch0 || st.now >= this.deadline {
                        return Poll::Ready(None);
                    }
                    if st.line_ver[line.idx()] != seen {
                        drop(st);
                        this.state = SpinDeadlineSt::Start;
                        continue;
                    }
                    st.watchers[line.idx()].push(tid);
                    if this.deadline != u64::MAX {
                        let deadline = this.deadline;
                        st.schedule(deadline, crate::exec::Ev::Wake(tid));
                    }
                    drop(st);
                    this.state = SpinDeadlineSt::Watch { line, seen };
                    return Poll::Pending;
                }
                SpinDeadlineSt::Watch { line, seen } => {
                    let (line, seen) = (*line, *seen);
                    let mut st = this.cpu.st.borrow_mut();
                    if st.abort_epoch[this.cpu.node] != this.epoch0 {
                        return Poll::Ready(None);
                    }
                    if st.line_ver[line.idx()] != seen {
                        drop(st);
                        this.state = SpinDeadlineSt::Start;
                        continue;
                    }
                    if st.now >= this.deadline {
                        // Deadline passed: issue the final racing read.
                        let c = st.new_completion();
                        coherence::issue_read(&mut st, this.cpu.node, this.a, c.clone());
                        let tid = st
                            .current_task
                            .expect("sim operation issued outside the sim executor");
                        drop(st);
                        this.state = SpinDeadlineSt::FinalRead { c, tid };
                        continue;
                    }
                    // Stale wake: re-register; any armed timer stays.
                    let cur = st
                        .current_task
                        .expect("sim future polled outside the sim executor");
                    st.watchers[line.idx()].push(cur);
                    return Poll::Pending;
                }
                SpinDeadlineSt::FinalRead { c, tid } => {
                    if !c.is_done() {
                        c.set_waiter(*tid);
                        return Poll::Pending;
                    }
                    return Poll::Ready((this.accept)(c.value()));
                }
            }
        }
    }
}
