//! The per-processor handle protocol code uses to interact with the
//! simulated machine.

use std::cell::RefCell;
use std::rc::Rc;

use crate::coherence::{self, RmwOp};
use crate::exec::{CompFuture, Completion, Ev, LineChangeFuture};
use crate::msg::{self, Port};
use crate::state::{Addr, State};
use crate::thread::{self, WaitQueueId};
use crate::FullEmpty;

/// A handle onto one simulated processor.
///
/// All memory operations are *blocking* (the processor stalls for the
/// full round trip), matching Alewife's default behaviour. `Cpu` is
/// cheaply cloneable; clones refer to the same processor.
#[derive(Clone)]
pub struct Cpu {
    pub(crate) st: Rc<RefCell<State>>,
    pub(crate) node: usize,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu").field("node", &self.node).finish()
    }
}

impl Cpu {
    /// The node this processor belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Total number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.st.borrow().nodes_n
    }

    /// Hardware contexts on this node (Sparcle block multithreading).
    pub fn contexts(&self) -> usize {
        self.st.borrow().contexts
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&self, bound: u64) -> u64 {
        self.st.borrow_mut().rand_below(bound)
    }

    /// Allocate shared memory homed on `node` (no cycles charged; models
    /// drawing from a pre-allocated pool, e.g. MCS queue nodes).
    pub fn alloc_on(&self, node: usize, words: u64) -> Addr {
        self.st.borrow_mut().alloc_on(node, words)
    }

    /// A handle for issuing operations as a *different* node (e.g. to
    /// hand to a thread spawned there).
    pub fn on(&self, node: usize) -> Cpu {
        assert!(
            node < self.st.borrow().nodes_n,
            "Cpu::on: node out of range"
        );
        Cpu {
            st: self.st.clone(),
            node,
        }
    }

    /// Create a fresh wait queue (for dynamically created sync objects).
    pub fn new_wait_queue(&self) -> WaitQueueId {
        thread::new_wait_queue(&mut self.st.borrow_mut())
    }

    /// Increment a named statistics counter.
    pub fn bump(&self, name: &str, n: u64) {
        self.st.borrow_mut().stats.bump(name, n);
    }

    /// Record a waiting time into a named histogram.
    pub fn record_wait(&self, name: &str, t: u64) {
        self.st.borrow_mut().stats.record_wait(name, t);
    }

    fn comp_future(&self, c: Completion) -> CompFuture {
        CompFuture::new(self.st.clone(), c)
    }

    /// Busy-compute for `cycles` (the processor is occupied).
    pub async fn work(&self, cycles: u64) {
        let c = Completion::new();
        {
            let mut st = self.st.borrow_mut();
            let at = st.now + cycles;
            st.schedule(at, Ev::Complete(c.clone(), [0, 0]));
        }
        self.comp_future(c).await;
    }

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    /// Load a word.
    pub async fn read(&self, a: Addr) -> u64 {
        let c = Completion::new();
        coherence::issue_read(&mut self.st.borrow_mut(), self.node, a, c.clone());
        self.comp_future(c).await[0]
    }

    /// Load a word together with its full/empty bit.
    pub async fn read_full(&self, a: Addr) -> FullEmpty {
        let c = Completion::new();
        coherence::issue_read(&mut self.st.borrow_mut(), self.node, a, c.clone());
        let [v, f] = self.comp_future(c).await;
        if f != 0 {
            FullEmpty::Full(v)
        } else {
            FullEmpty::Empty
        }
    }

    async fn own(&self, a: Addr, op: RmwOp) -> [u64; 2] {
        let c = Completion::new();
        coherence::issue_own(&mut self.st.borrow_mut(), self.node, a, op, c.clone());
        self.comp_future(c).await
    }

    /// Store a word.
    pub async fn write(&self, a: Addr, v: u64) {
        self.own(a, RmwOp::Write(v)).await;
    }

    /// Atomic `test&set`: set the word to 1, return the previous value.
    pub async fn test_and_set(&self, a: Addr) -> u64 {
        self.own(a, RmwOp::TestAndSet).await[0]
    }

    /// Atomic `fetch&store` (swap); Sparcle's native RMW primitive.
    pub async fn fetch_and_store(&self, a: Addr, v: u64) -> u64 {
        self.own(a, RmwOp::FetchAndStore(v)).await[0]
    }

    /// Atomic compare-and-swap; returns `true` on success.
    pub async fn compare_and_swap(&self, a: Addr, expect: u64, new: u64) -> bool {
        self.own(a, RmwOp::CompareAndSwap(expect, new)).await[0] != 0
    }

    /// Atomic fetch-and-add; returns the previous value.
    pub async fn fetch_and_add(&self, a: Addr, d: u64) -> u64 {
        self.own(a, RmwOp::FetchAndAdd(d)).await[0]
    }

    /// Store a value and set the word's full bit (producer side of a
    /// J-structure/future). Returns `true` if the word was already full.
    pub async fn write_fill(&self, a: Addr, v: u64) -> bool {
        self.own(a, RmwOp::WriteFill(v)).await[0] != 0
    }

    /// If the word is full, atomically read it and reset it to empty
    /// (I-structure take).
    pub async fn take_if_full(&self, a: Addr) -> FullEmpty {
        let [v, ok] = self.own(a, RmwOp::TakeIfFull).await;
        if ok != 0 {
            FullEmpty::Full(v)
        } else {
            FullEmpty::Empty
        }
    }

    /// Reset a word's full bit.
    pub async fn reset_empty(&self, a: Addr) {
        self.own(a, RmwOp::ResetEmpty).await;
    }

    // ------------------------------------------------------------------
    // Read-polling
    // ------------------------------------------------------------------

    /// Read-poll `a` until `pred(value)` holds; returns the value.
    ///
    /// Models test-and-test-and-set-style spinning on a cached copy: the
    /// first poll may miss, subsequent polls hit in the local cache, and
    /// the waiter re-fetches (serializing at the home directory) each
    /// time the line is invalidated by a writer.
    pub async fn poll_until(&self, a: Addr, pred: impl Fn(u64) -> bool) -> u64 {
        loop {
            let (line, seen) = {
                let st = self.st.borrow();
                let line = st.line_of(a);
                (line, st.line_ver.get(&line).copied().unwrap_or(0))
            };
            let v = self.read(a).await;
            if pred(v) {
                return v;
            }
            LineChangeFuture {
                st: self.st.clone(),
                line,
                seen,
            }
            .await;
        }
    }

    /// Read-poll until the word's full bit is set; returns the value.
    pub async fn poll_until_full(&self, a: Addr) -> u64 {
        loop {
            let (line, seen) = {
                let st = self.st.borrow();
                let line = st.line_of(a);
                (line, st.line_ver.get(&line).copied().unwrap_or(0))
            };
            if let FullEmpty::Full(v) = self.read_full(a).await {
                return v;
            }
            LineChangeFuture {
                st: self.st.clone(),
                line,
                seen,
            }
            .await;
        }
    }

    /// Read-poll `a` until `pred(value)` holds or `deadline` passes.
    /// Returns `Some(value)` on success, `None` on timeout — the polling
    /// phase of a two-phase waiting algorithm.
    pub async fn poll_until_deadline(
        &self,
        a: Addr,
        pred: impl Fn(u64) -> bool,
        deadline: u64,
    ) -> Option<u64> {
        loop {
            let (line, seen) = {
                let st = self.st.borrow();
                let line = st.line_of(a);
                (line, st.line_ver.get(&line).copied().unwrap_or(0))
            };
            let v = self.read(a).await;
            if pred(v) {
                return Some(v);
            }
            if self.now() >= deadline {
                return None;
            }
            let changed = crate::exec::ChangeOrDeadlineFuture {
                st: self.st.clone(),
                line,
                seen,
                deadline,
                timer_armed: false,
            }
            .await;
            if !changed && self.now() >= deadline {
                // One last check: the final write may have landed exactly
                // at the deadline.
                let v = self.read(a).await;
                if pred(v) {
                    return Some(v);
                }
                return None;
            }
        }
    }

    /// Read-poll until the word's full bit is set or `deadline` passes.
    pub async fn poll_until_full_deadline(&self, a: Addr, deadline: u64) -> Option<u64> {
        loop {
            let (line, seen) = {
                let st = self.st.borrow();
                let line = st.line_of(a);
                (line, st.line_ver.get(&line).copied().unwrap_or(0))
            };
            if let FullEmpty::Full(v) = self.read_full(a).await {
                return Some(v);
            }
            if self.now() >= deadline {
                return None;
            }
            let changed = crate::exec::ChangeOrDeadlineFuture {
                st: self.st.clone(),
                line,
                seen,
                deadline,
                timer_armed: false,
            }
            .await;
            if !changed && self.now() >= deadline {
                if let FullEmpty::Full(v) = self.read_full(a).await {
                    return Some(v);
                }
                return None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Active messages
    // ------------------------------------------------------------------

    /// Fire-and-forget active message (costs `msg_send` on this CPU).
    pub async fn send(&self, dest: usize, port: Port, args: [u64; 4]) {
        let cost = {
            let mut st = self.st.borrow_mut();
            msg::issue_send(&mut st, self.node, dest, port, args);
            st.cost.msg_send
        };
        self.work(cost).await;
    }

    /// Remote procedure call: send a message and wait for some handler to
    /// reply (possibly much later — e.g. a queued lock grant).
    pub async fn rpc(&self, dest: usize, port: Port, args: [u64; 4]) -> u64 {
        let c = Completion::new();
        msg::issue_rpc(
            &mut self.st.borrow_mut(),
            self.node,
            dest,
            port,
            args,
            c.clone(),
        );
        self.comp_future(c).await[0]
    }

    // ------------------------------------------------------------------
    // Thread runtime
    // ------------------------------------------------------------------

    /// Block the current thread on `q` (signaling waiting mechanism).
    /// Pays the unload cost now and the reload cost when rescheduled;
    /// the signaller pays the reenable cost. Total ≈ `B` (Table 4.1).
    pub async fn block_on(&self, q: WaitQueueId) {
        let c = thread::begin_block(&mut self.st.borrow_mut(), self.node, q);
        self.comp_future(c).await;
    }

    /// Wake one thread blocked on `q`, paying the reenable cost if a
    /// thread was actually woken. Returns whether one was woken.
    pub async fn signal_one(&self, q: WaitQueueId) -> bool {
        let woke = thread::signal_one(&mut self.st.borrow_mut(), q);
        if woke {
            let reenable = self.st.borrow().cost.reenable;
            self.work(reenable).await;
        }
        woke
    }

    /// Wake every thread blocked on `q` *at the time of the call*;
    /// returns how many were woken. (Snapshotting the count first keeps
    /// a signaller from chasing a waiter that re-blocks because its
    /// condition is still unsatisfied.)
    pub async fn signal_all(&self, q: WaitQueueId) -> usize {
        let n = self.queue_len(q);
        for _ in 0..n {
            self.signal_one(q).await;
        }
        n
    }

    /// Number of threads currently blocked on `q`.
    pub fn queue_len(&self, q: WaitQueueId) -> usize {
        thread::queue_len(&self.st.borrow(), q)
    }

    /// Switch to the next ready thread on this node, if any (polling
    /// waiting mechanism on a multithreaded processor: switch-spinning).
    /// Returns `true` if a switch happened.
    pub async fn yield_now(&self) -> bool {
        let c = thread::begin_yield(&mut self.st.borrow_mut(), self.node);
        match c {
            Some(c) => {
                self.comp_future(c).await;
                true
            }
            None => false,
        }
    }

    /// Number of other threads ready to run on this node.
    pub fn ready_peers(&self) -> usize {
        thread::ready_count(&self.st.borrow(), self.node)
    }

    /// Spawn a new scheduler-managed thread on `node` (dynamic thread
    /// creation, e.g. future-spawning runtimes). Returns its task id.
    pub fn spawn(
        &self,
        node: usize,
        fut: impl std::future::Future<Output = ()> + 'static,
    ) -> crate::exec::TaskId {
        thread::spawn_thread(&mut self.st.borrow_mut(), node, Box::pin(fut))
    }
}
