//! Network latency model: a 2-D mesh with dimension-ordered routing.
//!
//! One-way latency between two nodes is `net_base + net_per_hop * hops`
//! where `hops` is the Manhattan distance on the smallest square mesh
//! that holds all nodes. Contention is modelled at the endpoints (the
//! directory and handler engines are serially-occupied resources), which
//! is where synchronization traffic actually piles up; wire contention is
//! not modelled.

use crate::cost::CostModel;
use crate::state::State;

/// Side length of the smallest square mesh holding `nodes` nodes (the
/// rule shared by the per-shard machines and the global cluster
/// topology the parallel scheduler derives its lookahead from).
pub(crate) fn mesh_dim(nodes: usize) -> usize {
    (1..).find(|d| d * d >= nodes).unwrap_or(1)
}

/// Row-major mesh coordinates for a `nodes`-node machine.
pub(crate) fn coords_for(nodes: usize) -> Vec<(u16, u16)> {
    let dim = mesh_dim(nodes);
    (0..nodes)
        .map(|n| ((n % dim) as u16, (n / dim) as u16))
        .collect()
}

/// Manhattan distance between two precomputed mesh coordinates.
#[inline]
pub(crate) fn hops_between(a: (u16, u16), b: (u16, u16)) -> u64 {
    (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as u64
}

/// One-way latency for a message crossing `hops` mesh hops (`hops > 0`;
/// same-node loopback is priced separately).
#[inline]
pub(crate) fn latency_for_hops(cost: &CostModel, hops: u64) -> u64 {
    cost.net_base + cost.net_per_hop * hops
}

/// Manhattan distance between `a` and `b` on the mesh (coordinates are
/// precomputed in `State::coords`; no division on this path).
#[inline]
pub(crate) fn hops(st: &State, a: usize, b: usize) -> u64 {
    if a == b {
        return 0;
    }
    hops_between(st.coords[a], st.coords[b])
}

/// One-way message latency from `a` to `b` in cycles.
pub(crate) fn latency(st: &State, a: usize, b: usize) -> u64 {
    if a == b {
        // Loopback through the network interface.
        return st.cost.net_base / 2;
    }
    latency_for_hops(&st.cost, hops(st, a, b))
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::state::State;

    fn mk(nodes: usize) -> State {
        State::new(nodes, 1, CostModel::nwo(), 4, 5, false, 1)
    }

    #[test]
    fn mesh_dimension_is_smallest_square() {
        assert_eq!(mk(1).mesh_dim, 1);
        assert_eq!(mk(4).mesh_dim, 2);
        assert_eq!(mk(16).mesh_dim, 4);
        assert_eq!(mk(17).mesh_dim, 5);
        assert_eq!(mk(64).mesh_dim, 8);
    }

    #[test]
    fn hops_are_symmetric_and_triangle() {
        let st = mk(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(super::hops(&st, a, b), super::hops(&st, b, a));
                for c in 0..16 {
                    assert!(
                        super::hops(&st, a, c) <= super::hops(&st, a, b) + super::hops(&st, b, c)
                    );
                }
            }
        }
    }

    #[test]
    fn latency_grows_with_distance() {
        let st = mk(64);
        let near = super::latency(&st, 0, 1);
        let far = super::latency(&st, 0, 63);
        assert!(far > near);
        assert!(super::latency(&st, 5, 5) < near);
    }
}
