//! The per-node thread runtime: non-preemptive scheduling with
//! Alewife-like costs (§2.2.4, Table 4.1).
//!
//! Each node runs at most one thread at a time. Threads leave the
//! processor only at explicit points: [`crate::Cpu::block_on`] (unload,
//! ≈300 cycles), [`crate::Cpu::yield_now`] (context switch, 14 cycles),
//! or exit. A blocked thread sits on a [`WaitQueueId`] until a signaller
//! pays the reenable cost (≈100 cycles) to move it to its node's ready
//! queue; it then pays the reload cost (≈65 cycles) when dispatched.
//! Scheduling is non-preemptive: a spinning thread starves its peers,
//! exactly the hazard that motivates two-phase waiting (Chapter 4).

use std::collections::VecDeque;

use crate::exec::{Completion, Ev, TaskId};
use crate::state::State;

/// Identifier of a simulator-level wait queue (a list of blocked
/// threads attached to a synchronization condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WaitQueueId(pub(crate) usize);

/// Per-node scheduler state. The hardware-context count lives in the
/// machine configuration; loaded threads beyond it still work (capacity
/// is advisory), and blocked threads always unload.
#[derive(Debug)]
pub(crate) struct NodeSched {
    pub running: Option<TaskId>,
    pub ready: VecDeque<TaskId>,
}

impl NodeSched {
    pub fn new(_contexts: usize) -> NodeSched {
        NodeSched {
            running: None,
            ready: VecDeque::new(),
        }
    }
}

/// Spawn a scheduler-managed thread on `node`.
pub(crate) fn spawn_thread(st: &mut State, node: usize, fut: crate::exec::BoxFut) -> TaskId {
    let info = crate::state::ThreadInfo {
        node,
        resume: None,
        loaded: false,
    };
    let tid = crate::exec::insert_task(st, fut, Some(info));
    st.scheds[node].ready.push_back(tid);
    let now = st.now;
    st.schedule(now, Ev::Dispatch(node as u32));
    tid
}

/// If `node` is idle, start its next ready thread (charging a context
/// switch for loaded threads or a reload for unloaded/new ones).
pub(crate) fn dispatch(st: &mut State, node: usize) {
    if st.scheds[node].running.is_some() {
        return;
    }
    let Some(tid) = st.scheds[node].ready.pop_front() else {
        return;
    };
    st.scheds[node].running = Some(tid);
    let (cost, resume) = {
        let info = st.tasks[tid.0]
            .as_mut()
            .and_then(|s| s.thread.as_mut())
            .expect("dispatched a non-thread task");
        let cost = if info.loaded {
            st.cost.ctx_switch
        } else {
            st.cost.reload
        };
        info.loaded = true;
        (cost, info.resume.take())
    };
    let at = st.now + cost;
    match resume {
        Some(c) => st.schedule_complete(at, c, [0, 0]),
        // First dispatch: the task has never been polled.
        None => st.schedule(at, Ev::Wake(tid)),
    }
}

/// The running thread on `node` finished; free the processor.
pub(crate) fn thread_exited(st: &mut State, node: usize) {
    st.scheds[node].running = None;
    let now = st.now;
    st.schedule(now, Ev::Dispatch(node as u32));
}

/// Create a fresh wait queue.
pub(crate) fn new_wait_queue(st: &mut State) -> WaitQueueId {
    st.wait_queues.push(VecDeque::new());
    WaitQueueId(st.wait_queues.len() - 1)
}

/// Block the current thread on `q`. Returns the completion the caller
/// must await; all scheduler state transitions happen here, and the
/// processor is handed off after the unload cost.
pub(crate) fn begin_block(st: &mut State, node: usize, q: WaitQueueId) -> Completion {
    let tid = st.current_task.expect("block_on outside a task");
    debug_assert_eq!(
        st.scheds[node].running,
        Some(tid),
        "block_on by a thread that is not running on its node"
    );
    let comp = st.new_completion();
    {
        let info = st.tasks[tid.0]
            .as_mut()
            .and_then(|s| s.thread.as_mut())
            .expect("block_on by a non-thread task");
        info.resume = Some(comp.clone());
        info.loaded = false;
    }
    st.wait_queues[q.0].push_back(tid);
    st.scheds[node].running = None;
    let at = st.now + st.cost.unload;
    st.schedule(at, Ev::Dispatch(node as u32));
    comp
}

/// Pop one blocked thread from `q` and make it ready. Returns whether a
/// thread was woken. The *caller* pays the reenable cost separately.
pub(crate) fn signal_one(st: &mut State, q: WaitQueueId) -> bool {
    match st.wait_queues[q.0].pop_front() {
        Some(tid) => {
            let node = st.tasks[tid.0]
                .as_ref()
                .and_then(|s| s.thread.as_ref())
                .expect("signalled a non-thread task")
                .node;
            st.scheds[node].ready.push_back(tid);
            let now = st.now;
            st.schedule(now, Ev::Dispatch(node as u32));
            true
        }
        None => false,
    }
}

/// Yield the processor to the next ready thread, if any. Returns the
/// completion to await (`None` when there is nothing to switch to).
pub(crate) fn begin_yield(st: &mut State, node: usize) -> Option<Completion> {
    if st.scheds[node].ready.is_empty() {
        return None;
    }
    let tid = st.current_task.expect("yield outside a task");
    let comp = st.new_completion();
    {
        let info = st.tasks[tid.0]
            .as_mut()
            .and_then(|s| s.thread.as_mut())
            .expect("yield by a non-thread task");
        info.resume = Some(comp.clone());
        // Stays loaded: this is a cheap context switch, not an unload.
    }
    st.scheds[node].ready.push_back(tid);
    st.scheds[node].running = None;
    let now = st.now;
    st.schedule(now, Ev::Dispatch(node as u32));
    Some(comp)
}

/// Number of threads ready to run on `node` (excluding the running one).
pub(crate) fn ready_count(st: &State, node: usize) -> usize {
    st.scheds[node].ready.len()
}

/// Number of threads blocked on `q`.
pub(crate) fn queue_len(st: &State, q: WaitQueueId) -> usize {
    st.wait_queues[q.0].len()
}
