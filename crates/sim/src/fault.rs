//! Deterministic fault injection: node crashes, recoveries, and abort
//! signals delivered at event boundaries.
//!
//! The failure model is the standard recoverable-mutual-exclusion one
//! (Golab & Ramaraju): *processors* crash, *memory* survives. A kill
//! wipes everything volatile on the node — the running and ready
//! threads (their future state machines are the simulated registers),
//! the node's cache contents, and its directory presence — while the
//! authoritative word array (`State::mem`) persists as the node's
//! "NVM". A recovery brings the node back and spawns its registered
//! recovery thread (see `Machine::on_recovery`), which inspects NVM to
//! repair protocol state.
//!
//! A [`FaultPlan`] is a schedule of such actions fixed before the run.
//! Its entries become ordinary simulator events, so the same seed and
//! plan replay the same fault schedule down to the event interleaving —
//! and an **empty plan adds no events and perturbs nothing**, which is
//! what keeps the determinism goldens bit-exact. Randomized plans
//! ([`FaultPlan::crash_storm`], [`FaultPlan::abort_storm`]) draw from a
//! private xorshift64* stream derived from their seed argument, never
//! from the machine's stream.

use crate::exec::{Ev, TaskId};
use crate::state::State;

/// A pre-run schedule of fault actions, installed with
/// [`crate::Config::faults`].
///
/// Times are absolute virtual cycles. Kills and recoveries target a
/// node; aborts bump the node's abort epoch (observed by
/// [`crate::Cpu::poll_until_abortable`]). Actions at the same instant
/// fire in insertion order.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub(crate) entries: Vec<(u64, FaultAction)>,
}

/// One scheduled fault action.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FaultAction {
    Kill(u32),
    Recover(u32),
    Abort(u32),
}

impl FaultPlan {
    /// An empty plan (injects nothing; simulation is unperturbed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules any action at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Kill `node` at virtual time `at`: every scheduler-managed thread
    /// on the node is destroyed (volatile state lost), its cache is
    /// wiped, and the directories forget it. Shared memory ("NVM")
    /// survives. No-op if the node is already dead at that time.
    pub fn kill_at(mut self, at: u64, node: usize) -> FaultPlan {
        self.entries.push((at, FaultAction::Kill(node as u32)));
        self
    }

    /// Recover `node` at virtual time `at`: the node is marked alive
    /// and its registered recovery thread (if any) is spawned. No-op if
    /// the node is alive.
    pub fn recover_at(mut self, at: u64, node: usize) -> FaultPlan {
        self.entries.push((at, FaultAction::Recover(node as u32)));
        self
    }

    /// Kill `node` at `at` and recover it `outage` cycles later.
    pub fn kill_for(self, at: u64, node: usize, outage: u64) -> FaultPlan {
        self.kill_at(at, node).recover_at(at + outage, node)
    }

    /// Deliver an abort signal to `node` at `at`: the node's abort
    /// epoch is bumped and its threads are woken so abortable waits
    /// ([`crate::Cpu::poll_until_abortable`]) observe the change.
    pub fn abort_at(mut self, at: u64, node: usize) -> FaultPlan {
        self.entries.push((at, FaultAction::Abort(node as u32)));
        self
    }

    /// A deterministic crash storm: `kills` kill/recover cycles spread
    /// uniformly over `(0, window]` across `nodes` nodes, each with the
    /// given `outage`, drawn from a private stream seeded by `seed`.
    pub fn crash_storm(
        seed: u64,
        nodes: usize,
        kills: usize,
        window: u64,
        outage: u64,
    ) -> FaultPlan {
        let mut s = mix_seed(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..kills {
            let at = crate::rng::below(&mut s, window.max(1)) + 1;
            let node = crate::rng::below(&mut s, nodes.max(1) as u64) as usize;
            plan = plan.kill_for(at, node, outage);
        }
        plan
    }

    /// A deterministic abort storm: `aborts` abort signals spread
    /// uniformly over `(0, window]` across `nodes` nodes, drawn from a
    /// private stream seeded by `seed`.
    pub fn abort_storm(seed: u64, nodes: usize, aborts: usize, window: u64) -> FaultPlan {
        let mut s = mix_seed(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..aborts {
            let at = crate::rng::below(&mut s, window.max(1)) + 1;
            let node = crate::rng::below(&mut s, nodes.max(1) as u64) as usize;
            plan = plan.abort_at(at, node);
        }
        plan
    }
}

/// Derive the plan's private RNG state from a user seed, decorrelating
/// it from the machine stream even when both use the same seed value.
fn mix_seed(seed: u64) -> u64 {
    let s = seed ^ 0xFA17_1A7E_D15A_57E5;
    if s == 0 {
        1
    } else {
        s
    }
}

/// One entry of the machine's fault log ([`crate::Machine::fault_log`]):
/// the actions that actually fired, in order, with their effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A node was killed at `at`, destroying `tasks_killed` threads.
    Kill {
        /// Virtual time of the kill.
        at: u64,
        /// The node that died.
        node: usize,
        /// Scheduler-managed threads destroyed by the kill.
        tasks_killed: u64,
    },
    /// A node came back at `at`.
    Recover {
        /// Virtual time of the recovery.
        at: u64,
        /// The node that recovered.
        node: usize,
    },
    /// An abort signal was delivered to a node at `at`.
    Abort {
        /// Virtual time of the signal.
        at: u64,
        /// The node whose abort epoch was bumped.
        node: usize,
    },
}

/// Kill `node`: destroy its threads, wipe its volatile cache/directory
/// presence, keep NVM. Runs at an event boundary (no poll in flight).
pub(crate) fn kill_node(st: &mut State, node: usize) {
    if !st.alive[node] {
        return;
    }
    st.alive[node] = false;
    // Destroy every scheduler-managed thread on the node. Slots are
    // retired but deliberately NOT returned to the free list: in-flight
    // events still name these task ids, and a recycled id would alias a
    // stale wake onto a fresh task. The leak is bounded by kills.
    let mut dead = vec![false; st.tasks.len()];
    let mut killed = 0u64;
    for (i, slot) in dead.iter_mut().enumerate() {
        let on_node = st.tasks[i]
            .as_ref()
            .and_then(|s| s.thread.as_ref())
            .is_some_and(|t| t.node == node);
        if on_node {
            *slot = true;
            killed += 1;
            st.futs[i] = None; // the future IS the volatile registers
            st.tasks[i] = None;
            st.live_tasks -= 1;
        }
    }
    st.scheds[node].running = None;
    st.scheds[node].ready.clear();
    for q in &mut st.wait_queues {
        q.retain(|t| !dead[t.0]);
    }
    for w in &mut st.watchers {
        w.retain(|t| !dead[t.0]);
    }
    // Volatile cache contents are lost and the coherence directories
    // forget the node (a crashed cache can never acknowledge an
    // invalidation or service an owner fetch). Values are safe: the
    // authoritative word array is updated at grant time, so a dead
    // exclusive owner holds no data the directory still needs.
    for l in 0..st.line_ver.len() {
        st.cache[l * st.nodes_n + node] = None;
        let d = &mut st.dir[l];
        if d.owner == node as u32 {
            d.owner = crate::coherence::NO_OWNER;
        }
        d.sharers.retain(|&s| s != node as u32);
    }
    st.fault_log.push(FaultEvent::Kill {
        at: st.now,
        node,
        tasks_killed: killed,
    });
}

/// Recover `node`: mark it alive and spawn its registered recovery
/// thread, if any.
pub(crate) fn recover_node(st: &mut State, node: usize) {
    if st.alive[node] {
        return;
    }
    st.alive[node] = true;
    st.fault_log.push(FaultEvent::Recover { at: st.now, node });
    let fut = st.recovery[node].as_ref().map(|f| f());
    if let Some(fut) = fut {
        crate::thread::spawn_thread(st, node, fut);
    }
}

/// Deliver an abort signal to `node`: bump its epoch and wake its
/// threads so abortable waits re-check.
pub(crate) fn abort_node(st: &mut State, node: usize) {
    st.abort_epoch[node] += 1;
    st.fault_log.push(FaultEvent::Abort { at: st.now, node });
    let tids: Vec<TaskId> = (0..st.tasks.len())
        .filter(|&i| {
            st.tasks[i]
                .as_ref()
                .and_then(|s| s.thread.as_ref())
                .is_some_and(|t| t.node == node)
        })
        .map(TaskId)
        .collect();
    let now = st.now;
    for tid in tids {
        st.schedule(now, Ev::Wake(tid));
    }
}
