//! Property tests for [`WaitHistogram`]'s percentile reporting against
//! a sorted-vector model — the satellite contract behind the
//! lock-service percentiles: below the reservoir cap the histogram is
//! *exact*; past the cap it is a seeded uniform sample whose
//! percentiles are reproducible run-to-run and track the model within
//! a sampling tolerance, while the moments (`count`/`sum`/`max`) stay
//! exact at any stream length.

use alewife_sim::WaitHistogram;
use proptest::prelude::*;

/// The model: the exact percentile over *all* samples, using the same
/// nearest-rank convention as `WaitHistogram::percentile`.
fn model_percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Below the cap every percentile equals the sorted-vector model
    /// exactly — sampling must be invisible until it has to kick in.
    #[test]
    fn below_cap_is_exact(
        samples in prop::collection::vec(0u64..1_000_000, 1..300),
        seed in 1u64..u64::MAX,
    ) {
        let mut h = WaitHistogram::with_sampling(512, seed);
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(h.percentile(p), model_percentile(&sorted, p));
        }
        prop_assert_eq!(h.p50(), model_percentile(&sorted, 50.0));
        prop_assert_eq!(h.p999(), model_percentile(&sorted, 99.9));
    }

    /// Determinism: two histograms with the same cap and seed fed the
    /// same over-cap stream retain bit-identical reservoirs, so every
    /// reported percentile is reproducible run-to-run.
    #[test]
    fn same_seed_same_percentiles(
        samples in prop::collection::vec(0u64..1_000_000, 600..900),
        seed in 1u64..u64::MAX,
    ) {
        let cap = 128;
        let mut a = WaitHistogram::with_sampling(cap, seed);
        let mut b = WaitHistogram::with_sampling(cap, seed);
        for &s in &samples {
            a.record(s);
            b.record(s);
        }
        prop_assert_eq!(a.raw.len(), cap);
        prop_assert_eq!(&a.raw, &b.raw);
        for p in [50.0, 99.0, 99.9] {
            prop_assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    /// Moments are exact at any stream length: the reservoir only
    /// affects percentile estimates, never `count`/`sum`/`max`/`mean`.
    #[test]
    fn moments_exact_past_cap(
        samples in prop::collection::vec(0u64..1_000_000, 300..700),
        seed in 1u64..u64::MAX,
    ) {
        let mut h = WaitHistogram::with_sampling(64, seed);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count, samples.len() as u64);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(h.max, *samples.iter().max().unwrap());
    }

    /// Past the cap the reservoir percentile tracks the full-stream
    /// model within a (generous) uniform-sampling tolerance: the
    /// estimated p50/p90 lie between nearby model percentiles. The
    /// stream is a worst-friendly shape — strictly increasing values —
    /// so a biased prefix (the pre-reservoir behaviour) would sit at
    /// the distribution's bottom and fail immediately.
    #[test]
    fn reservoir_tracks_model(seed in 1u64..u64::MAX, n in 4_000u64..12_000) {
        let cap = 1_024;
        let mut h = WaitHistogram::with_sampling(cap, seed);
        // Strictly increasing stream: sample i has value i, so the
        // model's p-th percentile is ~p% of n and rank error converts
        // directly to value error.
        for i in 0..n {
            h.record(i);
        }
        let sorted: Vec<u64> = (0..n).collect();
        for p in [50.0, 90.0] {
            let est = h.percentile(p) as f64;
            // +/- 12 percentile points: ~8 standard errors at cap 1024.
            let lo = model_percentile(&sorted, (p - 12.0).max(0.0)) as f64;
            let hi = model_percentile(&sorted, (p + 12.0).min(100.0)) as f64;
            prop_assert!(
                (lo..=hi).contains(&est),
                "p{p} estimate {est} outside model band [{lo}, {hi}] (n = {n})"
            );
        }
    }
}
