//! Property tests for [`WaitHistogram`]'s percentile reporting against
//! a sorted-vector model — the satellite contract behind the
//! lock-service percentiles: below the reservoir cap the histogram is
//! *exact*; past the cap it is a seeded uniform sample whose
//! percentiles are reproducible run-to-run and track the model within
//! a sampling tolerance, while the moments (`count`/`sum`/`max`) stay
//! exact at any stream length.

use alewife_sim::{Stats, WaitHistogram};
use proptest::prelude::*;

/// The model: the exact percentile over *all* samples, using the same
/// nearest-rank convention as `WaitHistogram::percentile`.
fn model_percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Below the cap every percentile equals the sorted-vector model
    /// exactly — sampling must be invisible until it has to kick in.
    #[test]
    fn below_cap_is_exact(
        samples in prop::collection::vec(0u64..1_000_000, 1..300),
        seed in 1u64..u64::MAX,
    ) {
        let mut h = WaitHistogram::with_sampling(512, seed);
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(h.percentile(p), model_percentile(&sorted, p));
        }
        prop_assert_eq!(h.p50(), model_percentile(&sorted, 50.0));
        prop_assert_eq!(h.p999(), model_percentile(&sorted, 99.9));
    }

    /// Determinism: two histograms with the same cap and seed fed the
    /// same over-cap stream retain bit-identical reservoirs, so every
    /// reported percentile is reproducible run-to-run.
    #[test]
    fn same_seed_same_percentiles(
        samples in prop::collection::vec(0u64..1_000_000, 600..900),
        seed in 1u64..u64::MAX,
    ) {
        let cap = 128;
        let mut a = WaitHistogram::with_sampling(cap, seed);
        let mut b = WaitHistogram::with_sampling(cap, seed);
        for &s in &samples {
            a.record(s);
            b.record(s);
        }
        prop_assert_eq!(a.raw.len(), cap);
        prop_assert_eq!(&a.raw, &b.raw);
        for p in [50.0, 99.0, 99.9] {
            prop_assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    /// Moments are exact at any stream length: the reservoir only
    /// affects percentile estimates, never `count`/`sum`/`max`/`mean`.
    #[test]
    fn moments_exact_past_cap(
        samples in prop::collection::vec(0u64..1_000_000, 300..700),
        seed in 1u64..u64::MAX,
    ) {
        let mut h = WaitHistogram::with_sampling(64, seed);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count, samples.len() as u64);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(h.max, *samples.iter().max().unwrap());
    }

    /// Past the cap the reservoir percentile tracks the full-stream
    /// model within a (generous) uniform-sampling tolerance: the
    /// estimated p50/p90 lie between nearby model percentiles. The
    /// stream is a worst-friendly shape — strictly increasing values —
    /// so a biased prefix (the pre-reservoir behaviour) would sit at
    /// the distribution's bottom and fail immediately.
    #[test]
    fn reservoir_tracks_model(seed in 1u64..u64::MAX, n in 4_000u64..12_000) {
        let cap = 1_024;
        let mut h = WaitHistogram::with_sampling(cap, seed);
        // Strictly increasing stream: sample i has value i, so the
        // model's p-th percentile is ~p% of n and rank error converts
        // directly to value error.
        for i in 0..n {
            h.record(i);
        }
        let sorted: Vec<u64> = (0..n).collect();
        for p in [50.0, 90.0] {
            let est = h.percentile(p) as f64;
            // +/- 12 percentile points: ~8 standard errors at cap 1024.
            let lo = model_percentile(&sorted, (p - 12.0).max(0.0)) as f64;
            let hi = model_percentile(&sorted, (p + 12.0).min(100.0)) as f64;
            prop_assert!(
                (lo..=hi).contains(&est),
                "p{p} estimate {est} outside model band [{lo}, {hi}] (n = {n})"
            );
        }
    }

    /// Merging per-worker histograms keeps moments exact and percentiles
    /// within sampling tolerance of a single histogram fed the whole
    /// stream — the contract behind parallel-mode stat collection.
    #[test]
    fn merge_matches_single_reservoir(
        seed in 1u64..u64::MAX,
        n1 in 2_000u64..6_000,
        n2 in 2_000u64..6_000,
    ) {
        let cap = 1_024;
        // Worker streams drawn from the same increasing shape so rank
        // error converts directly to value error (see above).
        let mut a = WaitHistogram::with_sampling(cap, seed);
        let mut b = WaitHistogram::with_sampling(cap, seed.rotate_left(17) | 1);
        let total = n1 + n2;
        for i in 0..n1 {
            a.record(i);
        }
        for i in n1..total {
            b.record(i);
        }
        a.merge(&b);
        // Moments combine exactly regardless of reservoir state.
        prop_assert_eq!(a.count, total);
        prop_assert_eq!(a.sum, (0..total).sum::<u64>());
        prop_assert_eq!(a.max, total - 1);
        prop_assert_eq!(a.raw.len(), cap);
        // Percentiles track the union model within the sampling band.
        let sorted: Vec<u64> = (0..total).collect();
        for p in [50.0, 90.0] {
            let est = a.percentile(p) as f64;
            let lo = model_percentile(&sorted, (p - 12.0).max(0.0)) as f64;
            let hi = model_percentile(&sorted, (p + 12.0).min(100.0)) as f64;
            prop_assert!(
                (lo..=hi).contains(&est),
                "merged p{p} estimate {est} outside [{lo}, {hi}] (n1 = {n1}, n2 = {n2})"
            );
        }
    }

    /// Below the cap a merge is exact: the union reservoir is the
    /// concatenation, so every percentile equals the full-union model.
    #[test]
    fn merge_below_cap_is_exact(
        s1 in prop::collection::vec(0u64..1_000_000, 1..200),
        s2 in prop::collection::vec(0u64..1_000_000, 1..200),
        seed in 1u64..u64::MAX,
    ) {
        let mut a = WaitHistogram::with_sampling(512, seed);
        let mut b = WaitHistogram::with_sampling(512, seed ^ 0x9E37);
        for &s in &s1 {
            a.record(s);
        }
        for &s in &s2 {
            b.record(s);
        }
        a.merge(&b);
        let mut union: Vec<u64> = s1.iter().chain(&s2).copied().collect();
        union.sort_unstable();
        for p in [0.0, 50.0, 99.0, 100.0] {
            prop_assert_eq!(a.percentile(p), model_percentile(&union, p));
        }
    }
}

/// `Stats::absorb` folds per-worker partials into exactly the arithmetic
/// sums: every scalar, per-node vector slot, named counter, and
/// histogram moment of the absorbed total equals the sum over partials.
#[test]
fn absorb_sums_partials() {
    let mk = |k: u64, nodes: usize| {
        let mut s = Stats {
            net_msgs: 10 * k,
            remote_misses: 3 * k,
            invalidations: 2 * k,
            limitless_traps: k,
            dir_requests: 7 * k,
            active_msgs: 5 * k,
            sim_events: 100 * k,
            rmr_cc: (0..nodes as u64).map(|i| i + k).collect(),
            rmr_dsm: (0..nodes as u64).map(|i| 2 * i + k).collect(),
            ..Stats::default()
        };
        s.bump("shared", k);
        s.bump(&format!("only_{k}"), k);
        for i in 0..20 * k {
            s.record_wait("acq", i);
        }
        s
    };
    // Unequal shard widths: absorb must extend to the longer shape.
    let parts = [mk(1, 3), mk(2, 5), mk(3, 2)];
    let mut total = Stats::default();
    for p in &parts {
        total.absorb(p);
    }
    assert_eq!(total.net_msgs, 60);
    assert_eq!(total.sim_events, 600);
    assert_eq!(total.dir_requests, 42);
    assert_eq!(total.counter("shared"), 6);
    assert_eq!(total.counter("only_2"), 2);
    // Vector slots: node 0 gets 1+2+3, node 3 exists only in part 2.
    assert_eq!(total.rmr_cc[0], 6);
    assert_eq!(total.rmr_cc[3], 3 + 2);
    assert_eq!(total.rmr_cc.len(), 5);
    assert_eq!(
        total.rmr_cc_total(),
        parts.iter().map(|p| p.rmr_cc_total()).sum::<u64>()
    );
    let w = &total.waits["acq"];
    assert_eq!(w.count, 20 + 40 + 60);
    assert_eq!(w.sum, parts.iter().map(|p| p.waits["acq"].sum).sum::<u64>());
    assert_eq!(w.max, 59);
}
