//! Safe-horizon property test: over random mesh topologies, shard
//! counts, epoch windows, and cross-shard traffic patterns, the
//! conservative scheduler must never execute an event earlier than an
//! undelivered cross-shard message — i.e. every delivery lands strictly
//! after the receiving shard's executed-to watermark. The causality
//! detector in `ShardRt::inject` counts violations in release builds
//! (and panics in debug); both execution modes must report zero, agree
//! with each other, and conserve messages (every post is delivered
//! exactly once).

use alewife_sim::parallel::{Cluster, ParallelConfig, ShardCtx};
use alewife_sim::{Config, Port};
use proptest::prelude::*;

/// Deterministic per-case traffic plan derived from proptest inputs.
#[derive(Clone, Copy, Debug)]
struct Plan {
    nodes: usize,
    workers: usize,
    epoch_window: u64,
    seed: u64,
    /// Destination stride for cross-shard posts.
    stride: usize,
    /// Posts attempted per node.
    posts: u64,
}

/// The workload: every node works a random amount, then posts to a
/// strided destination whenever that destination is cross-shard. The
/// handler bumps a delivery counter on arrival.
fn traffic(ctx: &ShardCtx<'_>, plan: Plan) {
    let m = ctx.machine;
    let n = ctx.shard_nodes;
    let (base, total) = (ctx.node_base, ctx.total_nodes);
    for local in 0..n {
        m.register_handler(local, Port(50), |hctx, _| {
            hctx.bump("delivered", 1);
        });
    }
    for p in 0..n {
        let cpu = m.cpu(p);
        let mail = ctx.mail();
        m.spawn(p, async move {
            let me = base + p;
            for i in 1..=plan.posts {
                cpu.work(10 + cpu.rand_below(80)).await;
                let dest = (me + i as usize * plan.stride) % total;
                if dest < base || dest >= base + n {
                    mail.post(cpu.now(), me, dest, Port(50), [i, 0, 0, 0]);
                    cpu.bump("posted", 1);
                }
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random topology/sharding/window: no causality violations in
    /// either mode, identical results across modes, and exact message
    /// conservation (posted == delivered == remote_msgs).
    #[test]
    fn safe_horizon_holds(
        nodes in 4usize..40,
        workers_raw in 2usize..8,
        window_idx in 0usize..5,
        seed in 1u64..u64::MAX,
        stride in 1usize..13,
        posts in 1u64..6,
    ) {
        let workers = workers_raw.min(nodes);
        let epoch_window = [0u64, 1, 50, 400, 1999][window_idx];
        let plan = Plan { nodes, workers, epoch_window, seed, stride, posts };
        let mk = || {
            Cluster::new(
                plan.nodes,
                Config::default().seed(plan.seed),
                ParallelConfig { workers: plan.workers, epoch_window: plan.epoch_window },
            )
        };
        let a = mk().run_serial(|ctx| traffic(ctx, plan));
        let b = mk().run_parallel(|ctx| traffic(ctx, plan));
        // The invariant under test: nothing was delivered into a shard's
        // executed past, in either mode.
        prop_assert_eq!(a.causality_violations, 0);
        prop_assert_eq!(b.causality_violations, 0);
        // Both modes finished everything they started.
        prop_assert_eq!(a.live_tasks, 0);
        prop_assert_eq!(b.live_tasks, 0);
        // Message conservation: every cross-shard post was delivered
        // exactly once, and the handler saw each delivery.
        prop_assert_eq!(a.stats.counter("posted"), a.remote_msgs);
        prop_assert_eq!(a.stats.counter("delivered"), a.remote_msgs);
        // Cross-mode agreement on everything observable.
        prop_assert_eq!(a.remote_msgs, b.remote_msgs);
        prop_assert_eq!(a.stats.sim_events, b.stats.sim_events);
        prop_assert_eq!(a.stats.net_msgs, b.stats.net_msgs);
        prop_assert_eq!(a.stats.active_msgs, b.stats.active_msgs);
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.epochs, b.epochs);
        prop_assert_eq!(&a.stats.counters, &b.stats.counters);
    }
}
