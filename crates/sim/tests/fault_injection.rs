//! Fault-injection layer tests: kills destroy volatile state but not
//! NVM, recoveries respawn, aborts reach waiting futures, and the whole
//! schedule is deterministic and replayable.

use alewife_sim::{Config, FaultEvent, FaultPlan, Machine};

#[test]
fn kill_destroys_threads_but_not_nvm() {
    let m = Machine::new(
        Config::default()
            .nodes(2)
            .faults(FaultPlan::new().kill_at(5_000, 1)),
    );
    let word = m.alloc_on(1, 1);
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        cpu.write(word, 42).await;
        // Spin forever; only the kill ends this thread.
        cpu.poll_until(word, |v| v == 999).await;
    });
    m.run();
    assert_eq!(m.live_tasks(), 0, "killed thread still counted live");
    assert_eq!(m.read_word(word), 42, "NVM must survive the kill");
    assert!(!m.alive(1));
    assert_eq!(
        m.fault_log(),
        vec![FaultEvent::Kill {
            at: 5_000,
            node: 1,
            tasks_killed: 1
        }]
    );
}

#[test]
fn kill_only_hits_the_named_node() {
    let m = Machine::new(
        Config::default()
            .nodes(4)
            .faults(FaultPlan::new().kill_at(100, 2)),
    );
    let a = m.alloc_on(0, 1);
    for p in 0..4 {
        let cpu = m.cpu(p);
        m.spawn(p, async move {
            cpu.work(10_000).await;
            cpu.fetch_and_add(a, 1).await;
        });
    }
    m.run();
    assert_eq!(m.read_word(a), 3, "survivors must finish normally");
    assert!(m.alive(0) && m.alive(1) && m.alive(3) && !m.alive(2));
}

#[test]
fn recovery_thread_runs_and_sees_nvm() {
    let m = Machine::new(
        Config::default()
            .nodes(2)
            .faults(FaultPlan::new().kill_for(2_000, 1, 3_000)),
    );
    let progress = m.alloc_on(1, 2);
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        cpu.write(progress, 7).await;
        cpu.poll_until(progress, |v| v == 999).await; // dies here
    });
    let rcpu = m.cpu(1);
    m.on_recovery(1, move || {
        let cpu = rcpu.clone();
        Box::pin(async move {
            // NVM records how far the dead thread got.
            let seen = cpu.read(progress).await;
            cpu.write(progress.plus(1), seen + 1).await;
        })
    });
    m.run();
    assert_eq!(m.read_word(progress.plus(1)), 8);
    assert!(m.alive(1));
    let log = m.fault_log();
    assert_eq!(log.len(), 2);
    assert!(matches!(log[1], FaultEvent::Recover { at: 5_000, node: 1 }));
}

#[test]
fn abort_signal_reaches_a_waiting_future() {
    let m = Machine::new(
        Config::default()
            .nodes(2)
            .faults(FaultPlan::new().abort_at(4_000, 1)),
    );
    let flag = m.alloc_on(0, 1);
    let out = m.alloc_on(1, 1);
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        // No deadline: only the abort signal can end this wait.
        let r = cpu.poll_until_abortable(flag, |v| v != 0, u64::MAX).await;
        assert!(r.is_none(), "wait should end by abort, not success");
        cpu.write(out, 1).await;
    });
    let t = m.run();
    assert_eq!(m.read_word(out), 1);
    assert!(
        (4_000..8_000).contains(&t),
        "abort should land promptly, got {t}"
    );
    assert_eq!(m.live_tasks(), 0);
}

#[test]
fn abortable_wait_still_times_out_and_succeeds() {
    // Timeout path.
    let m = Machine::new(Config::default().nodes(2));
    let flag = m.alloc_on(0, 1);
    let out = m.alloc_on(1, 1);
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        let r = cpu.poll_until_abortable(flag, |v| v != 0, 3_000).await;
        cpu.write(out, if r.is_none() { 1 } else { 2 }).await;
    });
    m.run();
    assert_eq!(m.read_word(out), 1);

    // Success path.
    let m = Machine::new(Config::default().nodes(2));
    let flag = m.alloc_on(0, 1);
    let out = m.alloc_on(1, 1);
    let c0 = m.cpu(0);
    let c1 = m.cpu(1);
    m.spawn(0, async move {
        c0.work(1_000).await;
        c0.write(flag, 5).await;
    });
    m.spawn(1, async move {
        let r = c1.poll_until_abortable(flag, |v| v != 0, u64::MAX).await;
        c1.write(out, r.unwrap()).await;
    });
    m.run();
    assert_eq!(m.read_word(out), 5);
}

#[test]
fn crash_storm_is_deterministic_and_replayable() {
    let run = || {
        let plan = FaultPlan::crash_storm(0xDEAD, 8, 6, 50_000, 2_000);
        let m = Machine::new(Config::default().nodes(8).seed(7).faults(plan));
        let a = m.alloc_on(0, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..40 {
                    cpu.fetch_and_add(a, 1).await;
                    cpu.work(cpu.rand_below(200)).await;
                }
            });
        }
        let t = m.run();
        (t, m.read_word(a), m.fault_log(), m.stats().net_msgs)
    };
    let (t1, v1, log1, n1) = run();
    let (t2, v2, log2, n2) = run();
    assert_eq!(t1, t2);
    assert_eq!(v1, v2);
    assert_eq!(log1, log2);
    assert_eq!(n1, n2);
    assert!(!log1.is_empty(), "storm should actually kill something");
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let run = |with_plan: bool| {
        let mut cfg = Config::default().nodes(8).seed(3);
        if with_plan {
            cfg = cfg.faults(FaultPlan::new());
        }
        let m = Machine::new(cfg);
        let a = m.alloc_on(0, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..30 {
                    cpu.fetch_and_add(a, 1).await;
                    cpu.work(cpu.rand_below(64)).await;
                }
            });
        }
        let t = m.run();
        let s = m.stats();
        (t, s.net_msgs, s.sim_events, s.remote_misses)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn rmr_counters_follow_the_cost_models() {
    let m = Machine::new(Config::default().nodes(2));
    let remote = m.alloc_on(0, 1); // homed on 0, accessed by 1
    let local = m.alloc_on(1, 1); // homed on 1, accessed by 1
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        cpu.read(remote).await; // CC: miss (1); DSM: remote (1)
        cpu.read(remote).await; // CC: hit (0); DSM: remote (1)
        cpu.read(local).await; // CC: miss (1); DSM: local (0)
        cpu.read(local).await; // CC: hit (0); DSM: local (0)
    });
    m.run();
    let s = m.stats();
    assert_eq!(s.rmr_cc[1], 2, "CC counts coherence misses");
    assert_eq!(s.rmr_dsm[1], 2, "DSM counts remotely-homed accesses");
    assert_eq!(s.rmr_cc[0], 0);
    assert_eq!(s.rmr_dsm[0], 0);
    assert_eq!(s.rmr_cc_total(), 2);
}
