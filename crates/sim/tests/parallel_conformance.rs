//! Cross-mode conformance: for the same sharded workload,
//! [`Cluster::run_serial`] and [`Cluster::run_parallel`] must produce
//! **identical** statistics — same event counts, same message counts,
//! same per-node RMR vectors, same named counters, same wait-histogram
//! contents down to the raw reservoirs. Per-shard execution is
//! deterministic and the epoch protocol fixes the cross-shard injection
//! order, so nothing may depend on thread interleaving.
//!
//! Three seeded workloads cover the surface: shard-local reactive locks
//! with a cross-shard message ring, an all-to-all message storm with
//! handler-originated replies, and an unevenly-sharded mixed run with a
//! widened epoch window.

use alewife_sim::parallel::{Cluster, ParallelConfig, ShardCtx};
use alewife_sim::{Config, Port, Stats};
use sim_apps::alg::{AnyLock, LockAlg};

/// Field-by-field equality over [`Stats`], including histogram raw
/// reservoirs (both modes merge shards in the same order with the same
/// seeds, so even the sampled state must match bit-for-bit).
fn assert_stats_identical(a: &Stats, b: &Stats, workload: &str) {
    assert_eq!(a.net_msgs, b.net_msgs, "{workload}: net_msgs");
    assert_eq!(
        a.remote_misses, b.remote_misses,
        "{workload}: remote_misses"
    );
    assert_eq!(
        a.invalidations, b.invalidations,
        "{workload}: invalidations"
    );
    assert_eq!(
        a.limitless_traps, b.limitless_traps,
        "{workload}: limitless_traps"
    );
    assert_eq!(a.dir_requests, b.dir_requests, "{workload}: dir_requests");
    assert_eq!(a.active_msgs, b.active_msgs, "{workload}: active_msgs");
    assert_eq!(a.sim_events, b.sim_events, "{workload}: sim_events");
    assert_eq!(a.rmr_cc, b.rmr_cc, "{workload}: rmr_cc");
    assert_eq!(a.rmr_dsm, b.rmr_dsm, "{workload}: rmr_dsm");
    assert_eq!(a.counters, b.counters, "{workload}: counters");
    assert_eq!(
        a.waits.keys().collect::<Vec<_>>(),
        b.waits.keys().collect::<Vec<_>>(),
        "{workload}: wait histogram names"
    );
    for (name, wa) in &a.waits {
        let wb = &b.waits[name];
        assert_eq!(wa.count, wb.count, "{workload}: waits[{name}].count");
        assert_eq!(wa.sum, wb.sum, "{workload}: waits[{name}].sum");
        assert_eq!(wa.max, wb.max, "{workload}: waits[{name}].max");
        assert_eq!(wa.buckets, wb.buckets, "{workload}: waits[{name}].buckets");
        assert_eq!(wa.raw, wb.raw, "{workload}: waits[{name}].raw");
    }
}

fn check_both_modes(
    name: &str,
    nodes: usize,
    pcfg: ParallelConfig,
    seed: u64,
    setup: impl Fn(&ShardCtx<'_>) + Send + Sync + Copy,
) {
    let mk = || Cluster::new(nodes, Config::default().seed(seed), pcfg.clone());
    let serial = mk().run_serial(setup);
    let parallel = mk().run_parallel(setup);
    assert_eq!(serial.live_tasks, 0, "{name}: serial deadlocked");
    assert_eq!(parallel.live_tasks, 0, "{name}: parallel deadlocked");
    assert_eq!(serial.causality_violations, 0, "{name}: serial causality");
    assert_eq!(
        parallel.causality_violations, 0,
        "{name}: parallel causality"
    );
    assert_eq!(serial.elapsed, parallel.elapsed, "{name}: elapsed");
    assert_eq!(serial.epochs, parallel.epochs, "{name}: epoch count");
    assert_eq!(
        serial.remote_msgs, parallel.remote_msgs,
        "{name}: remote deliveries"
    );
    assert_stats_identical(&serial.stats, &parallel.stats, name);
    assert!(serial.stats.sim_events > 0, "{name}: trivially empty run");
}

/// Workload 1: every shard hammers a shard-local reactive lock while
/// shard node 0 sends a message ring around the shards; the receiving
/// handler bumps a counter and records the hop arrival time.
fn lock_ring(ctx: &ShardCtx<'_>) {
    let m = ctx.machine;
    let n = ctx.shard_nodes;
    let lock = AnyLock::make(m, 0, LockAlg::Reactive, n);
    let counter = m.alloc_on(0, 1);
    for local in 0..n {
        m.register_handler(local, Port(40), |hctx, args| {
            hctx.bump("ring_hops", 1);
            let hop = hctx.now().saturating_sub(args[0]);
            hctx.record_wait("ring_hop_latency", hop);
        });
    }
    for p in 0..n {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        let mail = ctx.mail();
        let (base, total) = (ctx.node_base, ctx.total_nodes);
        m.spawn(p, async move {
            for _ in 0..8u64 {
                let t = lock.acquire(&cpu).await;
                cpu.fetch_and_add(counter, 1).await;
                cpu.work(cpu.rand_below(60)).await;
                lock.release(&cpu, t).await;
                if p == 0 {
                    let dest = (base + cpu.rand_below(3) as usize + n) % total;
                    let dest = if dest >= base && dest < base + n {
                        (base + n) % total
                    } else {
                        dest
                    };
                    mail.post(cpu.now(), base, dest, Port(40), [cpu.now(), 0, 0, 0]);
                }
            }
        });
    }
}

/// Workload 2: all-to-all storm — every node posts to a strided remote
/// destination, and the destination's handler posts a cross-shard reply
/// back (handler-originated mail).
fn storm(ctx: &ShardCtx<'_>) {
    let m = ctx.machine;
    let n = ctx.shard_nodes;
    let (base, total) = (ctx.node_base, ctx.total_nodes);
    for local in 0..n {
        let mail = ctx.mail();
        let me = base + local;
        m.register_handler(local, Port(41), move |hctx, args| {
            hctx.bump("storm_recv", 1);
            if args[1] == 0 {
                // Reply once; args[1] = 1 marks a reply so it stops.
                let sender = hctx.sender();
                hctx.bump("storm_reply", 1);
                let now = hctx.now();
                mail.post(now, me, sender, Port(41), [now, 1, 0, 0]);
            }
        });
    }
    for p in 0..n {
        let cpu = m.cpu(p);
        let mail = ctx.mail();
        m.spawn(p, async move {
            let me = base + p;
            for i in 1..5u64 {
                cpu.work(20 + cpu.rand_below(50)).await;
                let dest = (me + i as usize * 7) % total;
                if dest < base || dest >= base + n {
                    mail.post(cpu.now(), me, dest, Port(41), [cpu.now(), 0, 0, 0]);
                }
            }
        });
    }
}

/// Workload 3: shard-local counter mix, uneven shard split, widened
/// epoch window (coarser lookahead must not change the results of
/// either mode relative to the other).
fn mixed_uneven(ctx: &ShardCtx<'_>) {
    let m = ctx.machine;
    let n = ctx.shard_nodes;
    let counter = m.alloc_on(n / 2, 1);
    m.register_handler(0, Port(42), |hctx, _| {
        hctx.bump("mixed_msgs", 1);
    });
    for p in 0..n {
        let cpu = m.cpu(p);
        let mail = ctx.mail();
        let (base, total) = (ctx.node_base, ctx.total_nodes);
        m.spawn(p, async move {
            for _ in 0..10u64 {
                cpu.fetch_and_add(counter, 1).await;
                cpu.work(cpu.rand_below(30)).await;
            }
            if p + 1 == n {
                // Last node of the shard pokes the next shard once.
                let dest = (base + n) % total;
                mail.post(cpu.now(), base + p, dest, Port(42), [0; 4]);
            }
        });
    }
}

#[test]
fn conformance_lock_ring() {
    check_both_modes(
        "lock_ring",
        32,
        ParallelConfig {
            workers: 4,
            epoch_window: 0,
        },
        0xC0FF_EE01,
        lock_ring,
    );
}

#[test]
fn conformance_storm() {
    check_both_modes(
        "storm",
        24,
        ParallelConfig {
            workers: 6,
            epoch_window: 0,
        },
        0xC0FF_EE02,
        storm,
    );
}

#[test]
fn conformance_mixed_uneven() {
    check_both_modes(
        "mixed_uneven",
        22,
        ParallelConfig {
            workers: 5,
            epoch_window: 400,
        },
        0xC0FF_EE03,
        mixed_uneven,
    );
}
