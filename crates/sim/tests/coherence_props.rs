//! Property-based tests of the coherence substrate: for any random mix
//! of processors, operations, timings, and machine shapes, the memory
//! system must stay linearizable, deterministic, and deadlock-free.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Config, CostModel, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// fetch&add from random nodes with random pacing returns a
    /// permutation of {0..N} regardless of machine shape.
    #[test]
    fn fetch_add_linearizes_any_shape(
        nodes in 1usize..20,
        line_words in 1u64..9,
        hw_ptrs in 1usize..8,
        full_map in any::<bool>(),
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(
            Config::default()
                .nodes(nodes)
                .line_words(line_words)
                .hw_ptrs(hw_ptrs)
                .full_map(full_map)
                .seed(seed),
        );
        let a = m.alloc_on(0, 1);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let iters = 12u64;
        for p in 0..nodes {
            let cpu = m.cpu(p);
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let v = cpu.fetch_and_add(a, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0);
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        let want: Vec<u64> = (0..nodes as u64 * iters).collect();
        prop_assert_eq!(got, want);
    }

    /// compare&swap: concurrent CAS(i, i+1) chains from all nodes apply
    /// exactly once each; the word ends at the chain length.
    #[test]
    fn cas_chains_apply_exactly_once(
        nodes in 2usize..12,
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(Config::default().nodes(nodes).seed(seed));
        let a = m.alloc_on(0, 1);
        let successes = m.alloc_on(1, 1);
        let target = 30u64;
        for p in 0..nodes {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                loop {
                    let cur = cpu.read(a).await;
                    if cur >= target {
                        break;
                    }
                    if cpu.compare_and_swap(a, cur, cur + 1).await {
                        cpu.fetch_and_add(successes, 1).await;
                    }
                    cpu.work(cpu.rand_below(50)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0);
        prop_assert_eq!(m.read_word(a), target);
        prop_assert_eq!(m.read_word(successes), target);
    }

    /// Full/empty bits: N producers fill N distinct slots; N consumers
    /// each take a distinct slot exactly once (take_if_full atomicity).
    #[test]
    fn take_if_full_consumes_exactly_once(
        pairs in 1usize..8,
        seed in 1u64..u64::MAX,
    ) {
        let nodes = (2 * pairs).max(2);
        let m = Machine::new(Config::default().nodes(nodes).seed(seed));
        let slot = m.alloc_on(0, 1);
        let takes = m.alloc_on(1, 1);
        // One producer fills once; all consumers race to take; exactly
        // one take may succeed per fill.
        for p in 0..pairs {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                loop {
                    match cpu.take_if_full(slot).await {
                        alewife_sim::FullEmpty::Full(_) => {
                            cpu.fetch_and_add(takes, 1).await;
                            break;
                        }
                        alewife_sim::FullEmpty::Empty => {
                            if cpu.read(takes).await >= 1 {
                                break; // someone else got it
                            }
                            cpu.work(50).await;
                        }
                    }
                }
            });
        }
        {
            let cpu = m.cpu(nodes - 1);
            m.spawn(nodes - 1, async move {
                cpu.work(200).await;
                cpu.write_fill(slot, 42).await;
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0);
        prop_assert_eq!(m.read_word(takes), 1, "take_if_full not exactly-once");
    }

    /// Determinism across machine shapes: identical runs produce
    /// identical elapsed time and statistics.
    #[test]
    fn determinism_across_shapes(
        nodes in 1usize..16,
        contexts in 1usize..4,
        seed in 1u64..u64::MAX,
    ) {
        let run = || {
            let m = Machine::new(
                Config::default().nodes(nodes).contexts(contexts).seed(seed),
            );
            let a = m.alloc_on(0, 1);
            for p in 0..nodes {
                let cpu = m.cpu(p);
                m.spawn(p, async move {
                    for _ in 0..10 {
                        cpu.fetch_and_add(a, 1).await;
                        cpu.work(cpu.rand_below(200)).await;
                    }
                });
            }
            let t = m.run();
            let s = m.stats();
            (t, s.net_msgs, s.remote_misses, s.invalidations, s.dir_requests)
        };
        prop_assert_eq!(run(), run());
    }

    /// Reads always observe the latest committed write (regression for
    /// stale-cache bugs): a single writer bumps a word through a chain
    /// of values; a reader polling the word sees a nondecreasing
    /// sequence ending at the final value.
    #[test]
    fn reader_sees_monotonic_values(
        writes in 2u64..20,
        gap in 10u64..300,
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(Config::default().nodes(2).seed(seed));
        let a = m.alloc_on(0, 1);
        let ok = m.alloc_on(1, 1);
        let c0 = m.cpu(0);
        m.spawn(0, async move {
            for i in 1..=writes {
                c0.work(gap).await;
                c0.write(a, i).await;
            }
        });
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            let mut last = 0;
            let mut monotonic = true;
            loop {
                let v = c1.read(a).await;
                if v < last {
                    monotonic = false;
                    break;
                }
                last = v;
                if v == writes {
                    break;
                }
                c1.work(25).await;
            }
            c1.write(ok, monotonic as u64).await;
        });
        m.run();
        prop_assert_eq!(m.live_tasks(), 0);
        prop_assert_eq!(m.read_word(ok), 1, "reader saw stale values");
    }
}

/// Non-property regression: the prototype cost model really makes
/// remote operations cheaper than the NWO model.
#[test]
fn prototype_model_cheaper_network() {
    let time_one_miss = |cost: CostModel| {
        let m = Machine::new(Config::default().nodes(16).cost(cost));
        let a = m.alloc_on(0, 1);
        let out = m.alloc_on(1, 1);
        let cpu = m.cpu(15);
        m.spawn(15, async move {
            let t0 = cpu.now();
            cpu.read(a).await;
            cpu.write(out, cpu.now() - t0).await;
        });
        m.run();
        m.read_word(out)
    };
    assert!(time_one_miss(CostModel::prototype()) < time_one_miss(CostModel::nwo()));
}
