//! Determinism golden test: a fixed contended-lock workload must produce
//! bit-identical results run-to-run *and* match digests captured before
//! the arena/calendar-queue refactor of the simulator hot paths. Any
//! silent change to event ordering, cost accounting, or the RNG stream
//! shows up here as a digest mismatch.
//!
//! The workload deliberately exercises every subsystem the refactor
//! touches: directory coherence (test&set + fetch&add + sequential
//! invalidations of poll_until watchers), the line-version watcher
//! machinery, active-message RPC, and the thread runtime
//! (block/signal/yield across multiple contexts).

use alewife_sim::{Config, FullEmpty, Machine, Port, Stats};

/// FNV-1a over a stream of u64s.
fn fnv(acc: u64, x: u64) -> u64 {
    let mut h = acc;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold a run's observable outcome — elapsed time plus every machine
/// counter and wait histogram — into one digest.
fn digest_stats(elapsed: u64, st: &Stats) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in [
        elapsed,
        st.net_msgs,
        st.remote_misses,
        st.invalidations,
        st.limitless_traps,
        st.dir_requests,
        st.active_msgs,
        st.sim_events,
    ] {
        h = fnv(h, x);
    }
    for (name, v) in &st.counters {
        h = fnv(h, name.len() as u64);
        h = fnv(h, *v);
    }
    for (name, w) in &st.waits {
        h = fnv(h, name.len() as u64);
        h = fnv(h, w.count);
        h = fnv(h, w.sum);
        h = fnv(h, w.max);
    }
    h
}

/// Run the fixed workload on one machine shape; digest the observable
/// outcome (final time, memory results, and every machine counter).
fn run_digest(nodes: usize, contexts: usize) -> u64 {
    let m = Machine::new(
        Config::default()
            .nodes(nodes)
            .contexts(contexts)
            .seed(0x5EED_601D),
    );
    let lock = m.alloc_on(0, 1);
    let counter = m.alloc_on(1 % nodes, 1);
    let slot = m.alloc_on(nodes / 2, 1);
    let q = m.new_wait_queue();

    // RPC echo handler on the last node.
    m.register_handler(nodes - 1, Port(9), |ctx, args| {
        ctx.consume(5);
        let tok = ctx.token();
        ctx.reply_to(tok, args[0].wrapping_mul(3) + 1);
    });

    // Contended TTS-style lock plus RPC traffic on every node.
    for p in 0..nodes {
        let cpu = m.cpu(p);
        m.spawn(p, async move {
            for i in 0..10u64 {
                loop {
                    if cpu.test_and_set(lock).await == 0 {
                        break;
                    }
                    cpu.poll_until(lock, |v| v == 0).await;
                }
                cpu.fetch_and_add(counter, 1).await;
                cpu.work(cpu.rand_below(60)).await;
                cpu.write(lock, 0).await;
                if i % 3 == 0 {
                    let r = cpu.rpc(cpu.nodes() - 1, Port(9), [i, 0, 0, 0]).await;
                    cpu.bump("rpc_sum", r);
                }
                cpu.work(cpu.rand_below(40)).await;
                cpu.record_wait("iter", i * 7 + p as u64);
            }
        });
    }

    // A producer/consumer pair exercising full/empty bits and the
    // blocking thread runtime (second context on node 0).
    let c0 = m.cpu(0);
    m.spawn(0, async move {
        c0.block_on(q).await;
        loop {
            if let FullEmpty::Full(v) = c0.take_if_full(slot).await {
                c0.bump("took", v);
                break;
            }
            c0.yield_now().await;
            c0.work(25).await;
        }
    });
    let c1 = m.cpu(nodes - 1);
    m.spawn(nodes - 1, async move {
        c1.work(500).await;
        c1.write_fill(slot, 77).await;
        c1.signal_one(q).await;
    });

    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "golden workload deadlocked");
    assert_eq!(m.read_word(counter), nodes as u64 * 10);

    let st = m.stats();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in [
        elapsed,
        m.read_word(counter),
        m.read_word(lock),
        st.net_msgs,
        st.remote_misses,
        st.invalidations,
        st.limitless_traps,
        st.dir_requests,
        st.active_msgs,
        st.sim_events,
    ] {
        h = fnv(h, x);
    }
    for (name, v) in &st.counters {
        h = fnv(h, name.len() as u64);
        h = fnv(h, *v);
    }
    for (name, w) in &st.waits {
        h = fnv(h, name.len() as u64);
        h = fnv(h, w.count);
        h = fnv(h, w.sum);
        h = fnv(h, w.max);
    }
    h
}

/// Golden digests captured from the pre-refactor simulator (HashMap
/// line tables + BinaryHeap event queue). The hot-path refactor must
/// reproduce them bit-exactly.
const GOLDEN_4X2: u64 = 0x2EBB_46DA_D3C4_624F;
const GOLDEN_16X1: u64 = 0xEA08_32AE_447B_E995;

#[test]
fn digest_is_stable_across_runs_and_matches_golden_4x2() {
    let a = run_digest(4, 2);
    let b = run_digest(4, 2);
    assert_eq!(a, b, "same configuration, different digests");
    assert_eq!(
        a, GOLDEN_4X2,
        "4-node/2-context digest drifted: got {a:#018x}"
    );
}

#[test]
fn digest_is_stable_across_runs_and_matches_golden_16x1() {
    let a = run_digest(16, 1);
    let b = run_digest(16, 1);
    assert_eq!(a, b, "same configuration, different digests");
    assert_eq!(a, GOLDEN_16X1, "16-node digest drifted: got {a:#018x}");
}

// ---------------------------------------------------------------------
// App-workload golden digests: the scenario layer's figure
// reproductions run these same sim-apps workloads, so their event
// streams are pinned bit-exact here like the synthetic suites above.
// ---------------------------------------------------------------------

/// Gamteb (9 reactive fetch-and-op interaction counters) at 8 procs —
/// the fetch-op app workload of Figures 3.24 and 4.6.
fn run_digest_gamteb() -> u64 {
    use sim_apps::alg::FetchOpAlg;
    use sim_apps::gamteb;
    let r = gamteb::run(&gamteb::GamtebConfig::small(8, FetchOpAlg::Reactive));
    digest_stats(r.elapsed, &r.stats)
}

/// MP3D (cell locks + collision-count lock, reactive) at 8 procs — the
/// lock app workload of Figure 3.25.
fn run_digest_mp3d() -> u64 {
    use sim_apps::alg::LockAlg;
    use sim_apps::mp3d;
    let mut cfg = mp3d::Mp3dConfig::small(8, LockAlg::Reactive);
    cfg.particles_per_proc = 8;
    let r = mp3d::run(&cfg);
    digest_stats(r.elapsed, &r.stats)
}

/// Golden digests for the app workloads, captured when the scenario
/// layer was introduced (PR 4). A drift means app event streams — and
/// therefore every figure reproduction built on them — changed.
const GOLDEN_GAMTEB_8: u64 = 0xD6A8_2948_28D6_805D;
const GOLDEN_MP3D_8: u64 = 0xB198_F6C3_0360_E094;

#[test]
fn app_digest_gamteb_is_stable_and_matches_golden() {
    let a = run_digest_gamteb();
    let b = run_digest_gamteb();
    assert_eq!(a, b, "gamteb digests differ run-to-run");
    assert_eq!(a, GOLDEN_GAMTEB_8, "gamteb digest drifted: got {a:#018x}");
}

#[test]
fn app_digest_mp3d_is_stable_and_matches_golden() {
    let a = run_digest_mp3d();
    let b = run_digest_mp3d();
    assert_eq!(a, b, "mp3d digests differ run-to-run");
    assert_eq!(a, GOLDEN_MP3D_8, "mp3d digest drifted: got {a:#018x}");
}
