//! The no-stampede oracle.
//!
//! The limiter in [`crate::limiter`] *claims* a window bound; this
//! module *checks* it, from the outside, against the raw switch log —
//! the same offline-oracle discipline as the repo's conc-check gate
//! (record everything, replay nothing, verify an invariant the
//! implementation cannot vouch for about itself).
//!
//! **Invariant (no-stampede).** For a shard limited by
//! `(burst, period_ns)`, every time window of length `W` contains at
//! most `burst + W / period_ns + 1` committed switches. The check
//! slides a window over the per-shard switch log starting at each
//! event, for several window lengths spanning one to many refill
//! periods — a stampede that squeaks past one window length is caught
//! by another.
//!
//! The checker has teeth: the bench's stampede scenario also runs a
//! limiter-off control and asserts the oracle *rejects* it (see
//! `violates_without_limiter` below and the `service_stampede`
//! scenario), so a vacuously-green checker cannot hide.

use crate::limiter::LimiterConfig;

/// One committed protocol switch, as logged by an executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Time of the commit, in virtual (or native monotonic) ns.
    pub time_ns: u64,
    /// Shard that performed it.
    pub shard: u32,
    /// Arena object id.
    pub object: u64,
    /// Protocol switched from.
    pub from: u8,
    /// Protocol switched to.
    pub to: u8,
}

/// A detected violation of the no-stampede invariant.
#[derive(Clone, Copy, Debug)]
pub struct Stampede {
    /// Shard in which the over-dense window was found.
    pub shard: u32,
    /// Start of the offending window (ns).
    pub window_start_ns: u64,
    /// Length of the offending window (ns).
    pub window_ns: u64,
    /// Switches observed inside the window.
    pub observed: u64,
    /// Maximum the invariant allows in a window of this length.
    pub allowed: u64,
}

/// Window lengths to scan, as multiples of the refill period: one
/// period (catches raw bursts above `burst + 2`), and three longer
/// windows (catch sustained over-rate leaks a single period can hide).
const WINDOW_PERIODS: [u64; 4] = [1, 4, 16, 64];

/// Check the no-stampede invariant over a switch log. Records may be
/// in any order (they are sorted per shard internally). Returns every
/// violation found, or an empty vec if the log is clean.
pub fn check_no_stampede(log: &[SwitchRecord], cfg: LimiterConfig) -> Vec<Stampede> {
    let mut violations = Vec::new();
    let mut shards: Vec<u32> = log.iter().map(|r| r.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    for shard in shards {
        let mut times: Vec<u64> = log
            .iter()
            .filter(|r| r.shard == shard)
            .map(|r| r.time_ns)
            .collect();
        times.sort_unstable();
        for &mult in &WINDOW_PERIODS {
            let w = cfg.period_ns.saturating_mul(mult);
            let allowed = u64::from(cfg.burst) + w / cfg.period_ns + 1;
            // Two-pointer sweep: for each window anchored at a switch,
            // count switches with time in [t0, t0 + w).
            let mut hi = 0usize;
            for (lo, &t0) in times.iter().enumerate() {
                if hi < lo {
                    hi = lo;
                }
                let end = t0.saturating_add(w);
                while hi < times.len() && times[hi] < end {
                    hi += 1;
                }
                let observed = (hi - lo) as u64;
                if observed > allowed {
                    violations.push(Stampede {
                        shard,
                        window_start_ns: t0,
                        window_ns: w,
                        observed,
                        allowed,
                    });
                    break; // one violation per (shard, window length) is enough
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time_ns: u64, shard: u32) -> SwitchRecord {
        SwitchRecord {
            time_ns,
            shard,
            object: 0,
            from: 0,
            to: 1,
        }
    }

    const CFG: LimiterConfig = LimiterConfig {
        burst: 2,
        period_ns: 100,
    };

    #[test]
    fn clean_log_passes() {
        // 2-burst then exactly one per period: the limiter's own shape.
        let log: Vec<_> = [0, 0, 100, 200, 300, 400]
            .iter()
            .map(|&t| rec(t, 0))
            .collect();
        assert!(check_no_stampede(&log, CFG).is_empty());
    }

    #[test]
    fn violates_without_limiter() {
        // A stampede: 20 switches in one period-sized window.
        let log: Vec<_> = (0..20).map(|i| rec(i, 0)).collect();
        let v = check_no_stampede(&log, CFG);
        assert!(!v.is_empty(), "oracle must reject an unthrottled burst");
        assert!(v[0].observed > v[0].allowed);
    }

    #[test]
    fn sustained_over_rate_caught_by_long_window() {
        // 2 per period forever: each 1-period window holds 2 <= 2+1+1,
        // but a 64-period window holds 128 > 2+64+1.
        let log: Vec<_> = (0..200u64).map(|i| rec(i * 50, 0)).collect();
        let v = check_no_stampede(&log, CFG);
        assert!(
            v.iter().any(|s| s.window_ns > CFG.period_ns),
            "sustained leak must be caught by a multi-period window"
        );
    }

    #[test]
    fn shards_are_checked_independently() {
        // 3 shards each at the legal rate; together they'd exceed a
        // single bucket, but the invariant is per shard.
        let mut log = Vec::new();
        for shard in 0..3 {
            for i in 0..10u64 {
                log.push(rec(i * 100, shard));
            }
        }
        assert!(check_no_stampede(&log, CFG).is_empty());
    }

    #[test]
    fn unsorted_log_is_handled() {
        let mut log: Vec<_> = (0..20).map(|i| rec(i, 0)).collect();
        log.reverse();
        assert!(!check_no_stampede(&log, CFG).is_empty());
    }
}
