//! The deterministic virtual-time service executor.
//!
//! This is the executor behind every CI-gated claim: a single-threaded
//! discrete-event simulation over the arena, so a `ServiceConfig` plus
//! a seed reproduces the exact event sequence — and therefore the exact
//! p999, switch count, and footprint — on every run. (The threaded
//! executor over real [`reactive_native`] locks lives in
//! [`crate::native`]; it shares the arena and limiter but measures wall
//! time, so it demos rather than gates.)
//!
//! The memory discipline is the point of the design: an object at rest
//! is *only* its slot word. A side-table entry (holder + waiter queue)
//! exists only while the object is in flight, and is removed the moment
//! the last waiter drains — so 10⁶ objects with a 10³-object working
//! set cost 8 MB of slots plus kilobytes of side state, not 10⁶
//! lock structures.
//!
//! Protocol cost model (virtual ns, loosely calibrated to the paper's
//! Alewife measurements scaled to a modern cache-coherent part):
//!
//! * test-and-set grant, uncontended: 15 ns — the cheap case TTS wins.
//! * test-and-set handoff under `w` waiters: 90 ns × `w` — every waiter
//!   re-fetches the invalidated line, so handoff degrades linearly
//!   (Fig. 4.6's melting slope).
//! * queue grant, empty: 28 ns — the queue's fixed overhead.
//! * queue handoff: 40 ns, flat — the whole reason to switch.
//! * protocol switch: 400 ns — drain + republish.
//!
//! TTS handoff picks the *newest* waiter (last-in wins the re-fetch
//! race more often than not on real hardware); the queue is FIFO. That
//! unfairness is what gives static TTS its long p999 tail under
//! contention, and the adaptive arena its headline.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use alewife_sim::WaitHistogram;

use crate::arena::{Footprint, ObjectArena};
use crate::limiter::{LimiterConfig, TokenBucket};
use crate::oracle::{self, Stampede, SwitchRecord};
use crate::slot;
use crate::workload::{think_time, Arrivals, Load, TenantConfig};

/// Protocol-selection regime for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaMode {
    /// Reactive: observe contention streaks per object and switch
    /// protocols through the per-shard limiter.
    Adaptive,
    /// Every object pinned to the TTS-like protocol.
    StaticTts,
    /// Every object pinned to the queue protocol.
    StaticQueue,
}

/// Full description of one service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Objects in the arena.
    pub objects: u64,
    /// Shards (each with its own limiter and switch log).
    pub shards: u32,
    /// Master seed; every tenant generator derives its own stream.
    pub seed: u64,
    /// Virtual-time horizon: no arrivals are generated at or after
    /// this time (in-flight requests drain past it).
    pub horizon_ns: u64,
    /// Per-shard switch limiter; `None` disables throttling (the
    /// stampede scenario's control arm).
    pub limiter: Option<LimiterConfig>,
    /// Protocol-selection regime.
    pub mode: ArenaMode,
    /// The tenants driving load.
    pub tenants: Vec<TenantConfig>,
    /// Wait-histogram reservoir capacity (samples kept for
    /// percentiles); scaled down in `--quick` runs.
    pub reservoir: usize,
}

impl ServiceConfig {
    /// A config with the standard knob defaults; callers fill in
    /// tenants.
    pub fn new(objects: u64, shards: u32, seed: u64) -> Self {
        ServiceConfig {
            objects,
            shards,
            seed,
            horizon_ns: 2_000_000,
            limiter: Some(LimiterConfig::default()),
            mode: ArenaMode::Adaptive,
            tenants: Vec::new(),
            reservoir: 65_536,
        }
    }
}

/// Contended-grant streak at which an adaptive TTS object asks to
/// switch to the queue protocol.
const SWITCH_UP_STREAK: u8 = 3;
/// Calm-grant streak at which an adaptive queue object asks to switch
/// back to TTS. Asymmetric (higher) on purpose: switching down is
/// cheap to regret, so demand longer evidence — the hysteresis lesson
/// of the paper's §5 threshold tuning.
const SWITCH_DOWN_STREAK: u8 = 12;

const COST_TTS_UNCONTENDED: u64 = 15;
const COST_TTS_HANDOFF_PER_WAITER: u64 = 90;
const COST_QUEUE_EMPTY: u64 = 28;
const COST_QUEUE_HANDOFF: u64 = 40;
const COST_SWITCH: u64 = 400;

/// Where a request came from, so completions can close the loop.
#[derive(Clone, Copy, Debug)]
enum Source {
    Open,
    Closed { tenant: u32, client: u32 },
}

/// A request waiting for an object.
#[derive(Clone, Copy, Debug)]
struct Waiter {
    arrived_ns: u64,
    /// Absolute abort deadline (u64::MAX when none).
    deadline_ns: u64,
    hold_ns: u64,
    source: Source,
}

/// In-flight side state for one object; exists only while the object
/// is held or has waiters.
#[derive(Debug, Default)]
struct Active {
    waiters: VecDeque<Waiter>,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// An open-loop tenant's next generated arrival.
    OpenArrival { tenant: u32 },
    /// A closed-loop client issues its next request.
    ClosedArrival { tenant: u32, client: u32 },
    /// The current holder of `object` releases it.
    Release { object: u64 },
}

/// Heap entry ordered by (time, seq) so ties break deterministically
/// in insertion order.
#[derive(Debug)]
struct Scheduled {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Everything a run measured, for the bench harness and scenarios.
#[derive(Debug)]
pub struct ServiceReport {
    /// Objects hosted.
    pub objects: u64,
    /// Grants completed.
    pub acquires: u64,
    /// Requests aborted at their deadline.
    pub aborts: u64,
    /// Committed protocol switches.
    pub switches: u64,
    /// Switch requests denied by the limiter.
    pub switch_denials: u64,
    /// Virtual time of the last processed event.
    pub end_ns: u64,
    /// Acquire-latency histogram (arrival → grant, ns).
    pub wait: WaitHistogram,
    /// Measured memory footprint at the run's high-water mark.
    pub footprint: Footprint,
    /// Full per-shard switch log for the oracle.
    pub switch_log: Vec<SwitchRecord>,
    /// Limiter in force, if any.
    pub limiter: Option<LimiterConfig>,
    /// High-water mark of concurrently in-flight objects.
    pub max_active: u64,
}

impl ServiceReport {
    /// Median acquire latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.wait.p50()
    }

    /// 99th-percentile acquire latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.wait.p99()
    }

    /// 99.9th-percentile acquire latency (ns).
    pub fn p999_ns(&self) -> u64 {
        self.wait.p999()
    }

    /// Mean acquire latency (ns).
    pub fn mean_wait_ns(&self) -> f64 {
        self.wait.mean()
    }

    /// Committed switches per second of virtual time.
    pub fn switches_per_sec(&self) -> f64 {
        if self.end_ns == 0 {
            return 0.0;
        }
        self.switches as f64 * 1e9 / self.end_ns as f64
    }

    /// Fraction of requests that aborted at their deadline.
    pub fn abort_rate(&self) -> f64 {
        let total = self.acquires + self.aborts;
        if total == 0 {
            return 0.0;
        }
        self.aborts as f64 / total as f64
    }

    /// Run the no-stampede oracle over this run's switch log (empty =
    /// clean; meaningful only when a limiter was configured).
    pub fn stampedes(&self) -> Vec<Stampede> {
        match self.limiter {
            Some(cfg) => oracle::check_no_stampede(&self.switch_log, cfg),
            None => Vec::new(),
        }
    }
}

/// Per-shard mutable state for the simulation.
struct ShardState {
    limiter: Option<TokenBucket>,
}

/// The discrete-event executor. Build with a [`ServiceConfig`], call
/// [`run`](ServiceSim::run), read the [`ServiceReport`].
pub struct ServiceSim {
    cfg: ServiceConfig,
    arena: ObjectArena,
    shards: Vec<ShardState>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: u64,
    /// Side table: only in-flight objects appear here.
    active: BTreeMap<u64, Active>,
    /// Per-tenant open-loop arrival generators (index = tenant id).
    arrivals: Vec<Option<Arrivals>>,
    /// Per-tenant object-pick and think-time RNG streams.
    picks: Vec<crate::workload::Zipf>,
    think_rng: Vec<u64>,
    wait: WaitHistogram,
    acquires: u64,
    aborts: u64,
    switches: u64,
    switch_denials: u64,
    switch_log: Vec<SwitchRecord>,
    max_active: u64,
    max_waiters: u64,
}

impl ServiceSim {
    /// Build the arena and seed every tenant's generator streams.
    ///
    /// # Panics
    /// If the config has no tenants, or a tenant's object range falls
    /// outside the arena.
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(
            !cfg.tenants.is_empty(),
            "service run needs at least one tenant"
        );
        for t in &cfg.tenants {
            assert!(
                t.first_object + t.objects <= cfg.objects,
                "tenant range [{}, {}) exceeds arena of {}",
                t.first_object,
                t.first_object + t.objects,
                cfg.objects
            );
        }
        let arena = ObjectArena::new(cfg.objects, cfg.shards);
        if cfg.mode == ArenaMode::StaticQueue {
            for obj in 0..cfg.objects {
                arena.store(obj, slot::with_mode(0, slot::MODE_QUEUE));
            }
        }
        let shards = (0..cfg.shards)
            .map(|_| ShardState {
                limiter: cfg.limiter.map(TokenBucket::new),
            })
            .collect();
        let mut arrivals = Vec::new();
        let mut picks = Vec::new();
        let mut think_rng = Vec::new();
        for (i, t) in cfg.tenants.iter().enumerate() {
            // Distinct derived streams per tenant and per purpose, so
            // adding a tenant never perturbs another's draws.
            let base = cfg.seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
            arrivals.push(match t.load {
                Load::Open { curve } => Some(Arrivals::new(curve, base ^ 1)),
                Load::Closed { .. } => None,
            });
            picks.push(crate::workload::Zipf::new(t.objects, t.theta, base ^ 2));
            think_rng.push(base ^ 3);
        }
        let reservoir = cfg.reservoir.max(1);
        let seed = cfg.seed;
        ServiceSim {
            arena,
            shards,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            active: BTreeMap::new(),
            arrivals,
            picks,
            think_rng,
            wait: WaitHistogram::with_sampling(reservoir, seed ^ 0x5EED),
            acquires: 0,
            aborts: 0,
            switches: 0,
            switch_denials: 0,
            switch_log: Vec::new(),
            max_active: 0,
            max_waiters: 0,
            cfg,
        }
    }

    fn push(&mut self, time: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            ev,
        }));
    }

    /// Schedule a tenant's next open-loop arrival, if one lands before
    /// the horizon.
    fn schedule_open(&mut self, tenant: u32) {
        if let Some(gen) = self.arrivals[tenant as usize].as_mut() {
            if let Some(t) = gen.next_arrival() {
                if t < self.cfg.horizon_ns {
                    self.push(t, Ev::OpenArrival { tenant });
                }
            }
        }
    }

    /// Schedule a closed-loop client's next request after think time.
    fn schedule_closed(&mut self, tenant: u32, client: u32, after_ns: u64) {
        let Load::Closed { think_ns, .. } = self.cfg.tenants[tenant as usize].load else {
            return;
        };
        let think = think_time(think_ns, &mut self.think_rng[tenant as usize]);
        let t = after_ns.saturating_add(think);
        if t < self.cfg.horizon_ns {
            self.push(t, Ev::ClosedArrival { tenant, client });
        }
    }

    /// One tenant request hitting the arena at `self.now`.
    fn handle_arrival(&mut self, tenant: u32, source: Source) {
        let t = &self.cfg.tenants[tenant as usize];
        let object = t.first_object + self.picks[tenant as usize].sample();
        let deadline = if t.deadline_ns == 0 {
            u64::MAX
        } else {
            self.now.saturating_add(t.deadline_ns)
        };
        let w = Waiter {
            arrived_ns: self.now,
            deadline_ns: deadline,
            hold_ns: t.hold_ns,
            source,
        };
        let word = self.arena.load(object);
        if word & slot::HELD == 0 && !self.active.contains_key(&object) {
            // Uncontended grant: pay the mode's empty-acquire cost.
            let cost = match slot::mode(word) {
                slot::MODE_QUEUE => COST_QUEUE_EMPTY,
                _ => COST_TTS_UNCONTENDED,
            };
            self.grant(object, w, cost, 0);
        } else {
            let entry = self.active.entry(object).or_default();
            entry.waiters.push_back(w);
            self.max_waiters = self.max_waiters.max(entry.waiters.len() as u64);
        }
        self.max_active = self.max_active.max(self.active.len() as u64);
    }

    /// Commit a grant: adaptive observation (maybe a switch), latency
    /// accounting, release scheduling, HELD bookkeeping.
    fn grant(&mut self, object: u64, w: Waiter, base_cost: u64, waiters_seen: u64) {
        let mut cost = base_cost;
        if self.cfg.mode == ArenaMode::Adaptive {
            cost += self.observe_and_maybe_switch(object, waiters_seen > 0);
        }
        let granted_at = self.now + cost;
        self.wait.record(granted_at - w.arrived_ns);
        self.acquires += 1;
        let word = self.arena.load(object);
        self.arena.store(object, word | slot::HELD);
        self.active.entry(object).or_default();
        self.push(granted_at + w.hold_ns, Ev::Release { object });
        if let Source::Closed { tenant, client } = w.source {
            self.schedule_closed(tenant, client, granted_at + w.hold_ns);
        }
    }

    /// Update the slot streaks for one grant; if a switch threshold is
    /// crossed, ask the shard limiter and either commit (returning the
    /// switch cost) or clear streaks and back off.
    fn observe_and_maybe_switch(&mut self, object: u64, contended: bool) -> u64 {
        let word = slot::observe(self.arena.load(object), contended);
        self.arena.store(object, word);
        let cur = slot::mode(word);
        let want = if cur == slot::MODE_TTS && slot::contended_streak(word) >= SWITCH_UP_STREAK {
            Some(slot::MODE_QUEUE)
        } else if cur == slot::MODE_QUEUE && slot::calm_streak(word) >= SWITCH_DOWN_STREAK {
            Some(slot::MODE_TTS)
        } else {
            None
        };
        let Some(to) = want else { return 0 };
        let shard = self.arena.shard_of(object);
        let allowed = match self.shards[shard as usize].limiter.as_mut() {
            Some(bucket) => bucket.try_acquire(self.now),
            None => true,
        };
        if allowed {
            self.arena.store(object, slot::with_mode(word, to));
            self.switches += 1;
            self.switch_log.push(SwitchRecord {
                time_ns: self.now,
                shard,
                object,
                from: cur,
                to,
            });
            COST_SWITCH
        } else {
            // Denied: clear the evidence so the object re-earns its
            // switch instead of stampeding on the next grant.
            self.arena.store(object, slot::clear_streaks(word));
            self.switch_denials += 1;
            0
        }
    }

    /// The holder of `object` leaves; hand off to a waiter or go idle.
    fn handle_release(&mut self, object: u64) {
        let word = self.arena.load(object);
        self.arena.store(object, word & !slot::HELD);
        // Abort every waiter whose deadline already passed (the PR 7
        // abortable-acquire path: they have left the queue by now).
        let now = self.now;
        let (next, aborted) = {
            let Some(entry) = self.active.get_mut(&object) else {
                return;
            };
            let mut aborted = Vec::new();
            entry.waiters.retain(|w| {
                if w.deadline_ns <= now {
                    aborted.push(*w);
                    false
                } else {
                    true
                }
            });
            // Pop handoff candidates until one can still meet its
            // deadline at the grant completion time `now + cost` (not
            // merely at `now`); the TTS handoff cost shrinks as the
            // herd thins, so it is recomputed per candidate. An
            // adaptive switch committed inside `grant` may still add
            // its surcharge past the deadline — that residual keeps
            // admission-time semantics, bounded by `COST_SWITCH`.
            let next = loop {
                let waiters = entry.waiters.len() as u64;
                let cand = match slot::mode(word) {
                    // Queue: FIFO handoff, flat cost.
                    slot::MODE_QUEUE => entry.waiters.pop_front(),
                    // TTS: the newest waiter usually wins the re-fetch
                    // race; cost scales with the herd re-fetching the
                    // line.
                    _ => entry.waiters.pop_back(),
                };
                let Some(w) = cand else { break None };
                let cost = match slot::mode(word) {
                    slot::MODE_QUEUE => COST_QUEUE_HANDOFF,
                    _ => COST_TTS_HANDOFF_PER_WAITER.saturating_mul(waiters),
                };
                if w.deadline_ns <= now.saturating_add(cost) {
                    aborted.push(w);
                    continue;
                }
                break Some((w, cost, waiters - 1));
            };
            (next, aborted)
        };
        self.aborts += aborted.len() as u64;
        for w in aborted {
            if let Source::Closed { tenant, client } = w.source {
                self.schedule_closed(tenant, client, now);
            }
        }
        match next {
            Some((w, cost, waiters_seen)) => self.grant(object, w, cost, waiters_seen),
            None => {
                // Last one out: drop the side entry so the object is
                // back to slot-word-only residency.
                self.active.remove(&object);
            }
        }
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> ServiceReport {
        for tenant in 0..self.cfg.tenants.len() as u32 {
            match self.cfg.tenants[tenant as usize].load {
                Load::Open { .. } => self.schedule_open(tenant),
                Load::Closed { clients, .. } => {
                    for client in 0..clients {
                        self.schedule_closed(tenant, client, 0);
                    }
                }
            }
        }
        while let Some(Reverse(s)) = self.heap.pop() {
            self.now = s.time;
            match s.ev {
                Ev::OpenArrival { tenant } => {
                    self.schedule_open(tenant);
                    self.handle_arrival(tenant, Source::Open);
                }
                Ev::ClosedArrival { tenant, client } => {
                    self.handle_arrival(tenant, Source::Closed { tenant, client });
                }
                Ev::Release { object } => self.handle_release(object),
            }
        }
        let footprint = self.measure_footprint();
        ServiceReport {
            objects: self.cfg.objects,
            acquires: self.acquires,
            aborts: self.aborts,
            switches: self.switches,
            switch_denials: self.switch_denials,
            end_ns: self.now,
            wait: self.wait,
            footprint,
            switch_log: self.switch_log,
            limiter: self.cfg.limiter,
            max_active: self.max_active,
        }
    }

    /// Account the run's memory: the slot array, fixed per-shard state,
    /// and the high-water lazily allocated side state.
    fn measure_footprint(&self) -> Footprint {
        let shard_fixed = std::mem::size_of::<ShardState>() as u64;
        let active_entry = (std::mem::size_of::<u64>()
            + std::mem::size_of::<Active>()
            + 4 * std::mem::size_of::<Waiter>()) as u64;
        Footprint {
            objects: self.cfg.objects,
            slot_bytes: self.arena.resident_bytes(),
            shard_bytes: u64::from(self.cfg.shards) * shard_fixed,
            hot_bytes: self.max_active * active_entry
                + self.switch_log.len() as u64 * std::mem::size_of::<SwitchRecord>() as u64,
            hot_objects: self.max_active,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_service(cfg: ServiceConfig) -> ServiceReport {
    ServiceSim::new(cfg).run()
}
