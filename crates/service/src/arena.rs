//! The sharded object arena: one packed word per object, at rest.
//!
//! The arena is the memory-bound half of the tentpole contract: hosting
//! 10⁶ adaptive objects means the *per-object* cost must be a handful
//! of bytes, not a kernel-backed lock each. The arena therefore stores
//! exactly one `AtomicU64` slot word per object (layout in
//! [`crate::slot`]); everything else — switch journals, hot-object
//! statistics, inflated native locks, limiter state — is *per shard* or
//! *per hot object*, allocated lazily, and accounted for by
//! [`Footprint`] so the bytes/object claim is measured rather than
//! asserted.
//!
//! Sharding is `object mod shards`, which spreads each tenant's
//! contiguous object range across all shards — a hot tenant heats every
//! limiter a little instead of one limiter a lot. When the shard count
//! is a power of two (every config this repo ships) the modulo is a
//! single mask; the router keeps a precomputed mask for that case and
//! falls back to the division only for odd shard counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// The slot array plus shard router.
pub struct ObjectArena {
    slots: Box<[AtomicU64]>,
    shards: u32,
    /// `shards - 1` when `shards` is a power of two (so `object & mask`
    /// equals `object % shards`), else `None`.
    shard_mask: Option<u64>,
}

impl ObjectArena {
    /// Allocate `objects` slots routed across `shards` shards, all in
    /// TTS mode with clear streaks (slot word 0).
    ///
    /// # Panics
    /// If `objects` or `shards` is 0.
    pub fn new(objects: u64, shards: u32) -> Self {
        assert!(objects > 0, "arena must hold at least one object");
        assert!(shards > 0, "arena must have at least one shard");
        let slots = (0..objects).map(|_| AtomicU64::new(0)).collect();
        let shard_mask = shards.is_power_of_two().then(|| u64::from(shards) - 1);
        ObjectArena {
            slots,
            shards,
            shard_mask,
        }
    }

    /// Number of objects hosted.
    pub fn objects(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning `object`: `object % shards`, computed as a mask
    /// when the shard count is a power of two.
    pub fn shard_of(&self, object: u64) -> u32 {
        match self.shard_mask {
            Some(mask) => (object & mask) as u32,
            None => (object % u64::from(self.shards)) as u32,
        }
    }

    /// Read a slot word. Relaxed suffices for the deterministic
    /// executor (single-threaded) and for native heuristic reads whose
    /// decisions are re-validated under the fast-path bit.
    pub fn load(&self, object: u64) -> u64 {
        // order: Relaxed — heuristic read; any mutation that matters is
        // re-checked by a CAS on the same word.
        self.slots[object as usize].load(Ordering::Relaxed)
    }

    /// Read a slot word with acquire ordering (native executor): pairs
    /// with [`store_release`](Self::store_release) so a reader that
    /// observes a published word also sees everything the publisher
    /// wrote before it — in particular, an `INFLATED` word's slab entry.
    pub fn load_acquire(&self, object: u64) -> u64 {
        // order: Acquire — pairs with store_release; observing an
        // INFLATED word must make the slab push that preceded it
        // visible, and observing a cleared HELD bit must make the
        // previous holder's critical section visible.
        self.slots[object as usize].load(Ordering::Acquire)
    }

    /// Unconditionally store a slot word (deterministic executor only,
    /// where the simulation loop is the sole mutator).
    pub fn store(&self, object: u64, word: u64) {
        // order: Relaxed — single-mutator virtual-time executor.
        self.slots[object as usize].store(word, Ordering::Relaxed)
    }

    /// Store a slot word with release ordering (native executor). This
    /// is the unlock/publish store: clearing `HELD` must make the
    /// critical section visible to the next acquirer's
    /// [`cas`](Self::cas)/[`load_acquire`](Self::load_acquire), and
    /// publishing `INFLATED | index` must order the slab push before
    /// the word that points at it.
    pub fn store_release(&self, object: u64, word: u64) {
        // order: Release — pairs with the Acquire side of cas/
        // load_acquire; the slot word doubles as a lock word in the
        // native fast path.
        self.slots[object as usize].store(word, Ordering::Release)
    }

    /// Compare-and-swap a slot word (native executor). Success is
    /// AcqRel: acquiring the HELD bit must see the critical section it
    /// protects, releasing must publish it.
    pub fn cas(&self, object: u64, old: u64, new: u64) -> Result<u64, u64> {
        // order: AcqRel/Acquire — slot word doubles as a lock word in
        // the native fast path.
        self.slots[object as usize].compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Bytes occupied by at-rest per-object state: the slot array only.
    pub fn resident_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<AtomicU64>()) as u64
    }
}

/// Measured memory footprint of a service instance, split so the
/// bytes/object claim can distinguish the at-rest cost (which must stay
/// flat as the arena grows) from the hot-object cost (which tracks the
/// *working set*, not the arena size).
#[derive(Clone, Copy, Debug, Default)]
pub struct Footprint {
    /// Objects hosted.
    pub objects: u64,
    /// Slot-array bytes (8 × objects).
    pub slot_bytes: u64,
    /// Per-shard fixed state: limiters, switch logs, router tables.
    pub shard_bytes: u64,
    /// Lazily allocated hot-object side state (journals, stats,
    /// inflated locks).
    pub hot_bytes: u64,
    /// Hot objects currently tracked.
    pub hot_objects: u64,
}

impl Footprint {
    /// At-rest bytes per object: slot array plus shard overhead,
    /// excluding hot side state (which scales with the working set).
    pub fn at_rest_bytes_per_object(&self) -> f64 {
        if self.objects == 0 {
            return 0.0;
        }
        (self.slot_bytes + self.shard_bytes) as f64 / self.objects as f64
    }

    /// Total bytes per object including hot side state.
    pub fn total_bytes_per_object(&self) -> f64 {
        if self.objects == 0 {
            return 0.0;
        }
        (self.slot_bytes + self.shard_bytes + self.hot_bytes) as f64 / self.objects as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_array_is_eight_bytes_per_object() {
        let a = ObjectArena::new(1_000, 8);
        assert_eq!(a.resident_bytes(), 8_000);
        assert_eq!(a.objects(), 1_000);
    }

    #[test]
    fn router_covers_all_shards() {
        let a = ObjectArena::new(100, 7);
        let mut seen = [false; 7];
        for obj in 0..100 {
            seen[a.shard_of(obj) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest::proptest! {
        /// The mask fast path must be indistinguishable from the
        /// modulo definition for every object id and shard count.
        #[test]
        fn router_is_object_mod_shards(object in 0u64..u64::MAX,
                                       shards in 1u32..4097) {
            let a = ObjectArena::new(1, shards);
            proptest::prop_assert_eq!(
                u64::from(a.shard_of(object)),
                object % u64::from(shards)
            );
            proptest::prop_assert!(a.shard_of(object) < shards);
        }
    }

    #[test]
    fn cas_and_load_roundtrip() {
        let a = ObjectArena::new(4, 2);
        assert_eq!(a.load(3), 0);
        assert!(a.cas(3, 0, 42).is_ok());
        assert_eq!(a.load(3), 42);
        assert_eq!(a.cas(3, 0, 7), Err(42));
    }

    #[test]
    fn at_rest_footprint_is_flat() {
        let small = Footprint {
            objects: 1_000,
            slot_bytes: 8_000,
            shard_bytes: 4_096,
            ..Footprint::default()
        };
        let big = Footprint {
            objects: 1_000_000,
            slot_bytes: 8_000_000,
            shard_bytes: 4_096,
            ..Footprint::default()
        };
        assert!(big.at_rest_bytes_per_object() < small.at_rest_bytes_per_object());
        assert!(big.at_rest_bytes_per_object() < 9.0);
    }
}
