//! Per-shard switch-rate limiter.
//!
//! A protocol switch is the service's most expensive single operation:
//! it drains the old protocol, rewrites the slot word, and (in the
//! native world) republishes the inflated lock. Under a load spike
//! every hot object's streak crosses the switch threshold within the
//! same few microseconds, and an unthrottled arena would stampede —
//! thousands of simultaneous switches, each adding latency exactly when
//! the service is least able to afford it. (Lim & Agarwal's §6 hybrid
//! waiting makes the same move at the level of a single lock: damp the
//! reaction, don't chase every transient.)
//!
//! The limiter is a deterministic integer token bucket per shard:
//! capacity `burst`, one token refilled every `period_ns` of virtual
//! (or native monotonic) time. A switch proceeds only if a token is
//! available; a denied switch clears the object's streaks
//! ([`crate::slot::clear_streaks`]), so the object backs off and
//! re-accumulates evidence instead of retrying on the very next grant —
//! that is what spreads the herd.
//!
//! The oracle-checkable contract (see [`crate::oracle`]): in *any* time
//! window of length `W`, grants ≤ `burst + W / period_ns + 1`. The `+1`
//! covers the token that can be refilled at the window's open edge.

/// Token-bucket parameters for one shard.
#[derive(Clone, Copy, Debug)]
pub struct LimiterConfig {
    /// Bucket capacity: switches that may pass back-to-back after a
    /// long calm stretch.
    pub burst: u32,
    /// Virtual ns per refilled token: the steady-state switch budget is
    /// one per `period_ns`.
    pub period_ns: u64,
}

impl Default for LimiterConfig {
    fn default() -> Self {
        LimiterConfig {
            burst: 8,
            period_ns: 50_000,
        }
    }
}

/// Deterministic integer token bucket. All arithmetic is u64/u128 ns —
/// no floats — so the native and virtual-time executors, and the
/// oracle replaying the grant log, agree exactly.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    cfg: LimiterConfig,
    /// Tokens currently available.
    tokens: u32,
    /// Time of the last refill accounting, in ns.
    last_refill_ns: u64,
    /// Grants issued (for reporting).
    pub granted: u64,
    /// Denials issued (for reporting).
    pub denied: u64,
}

impl TokenBucket {
    /// A full bucket whose clock starts at 0 ns.
    ///
    /// # Panics
    /// If `burst` is 0 or `period_ns` is 0 (the bucket could never
    /// grant, resp. never meter).
    pub fn new(cfg: LimiterConfig) -> Self {
        assert!(cfg.burst > 0, "limiter burst must be positive");
        assert!(cfg.period_ns > 0, "limiter period must be positive");
        TokenBucket {
            cfg,
            tokens: cfg.burst,
            last_refill_ns: 0,
            granted: 0,
            denied: 0,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> LimiterConfig {
        self.cfg
    }

    /// Credit tokens earned since the last refill. Time is monotone in
    /// both executors; a non-monotone `now` (native clock quirks) is
    /// treated as no elapsed time — the anchor is left where it was, so
    /// a backward reading never retroactively re-credits fractional
    /// progress toward the next token.
    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_refill_ns);
        let earned = elapsed / self.cfg.period_ns;
        if earned > 0 {
            self.tokens = self
                .tokens
                .saturating_add(earned.min(u64::from(u32::MAX)) as u32)
                .min(self.cfg.burst);
            // Advance by whole periods only, so fractional progress
            // toward the next token is never discarded.
            self.last_refill_ns += earned * self.cfg.period_ns;
        }
    }

    /// Try to take one token at time `now_ns`. `true` means the switch
    /// may proceed.
    pub fn try_acquire(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens > 0 {
            self.tokens -= 1;
            self.granted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve() {
        let mut b = TokenBucket::new(LimiterConfig {
            burst: 3,
            period_ns: 100,
        });
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0));
        assert!(!b.try_acquire(99));
        assert!(b.try_acquire(100)); // one token refilled
        assert!(!b.try_acquire(100));
        assert_eq!(b.granted, 4);
        assert_eq!(b.denied, 3);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(LimiterConfig {
            burst: 2,
            period_ns: 10,
        });
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        // A long calm stretch earns at most `burst` tokens.
        assert!(b.try_acquire(1_000_000));
        assert!(b.try_acquire(1_000_000));
        assert!(!b.try_acquire(1_000_000));
    }

    #[test]
    fn fractional_progress_is_preserved() {
        let mut b = TokenBucket::new(LimiterConfig {
            burst: 1,
            period_ns: 100,
        });
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(60));
        assert!(!b.try_acquire(90)); // 90ns elapsed: still < 1 period
        assert!(b.try_acquire(110)); // crossed 100ns since last refill
    }

    #[test]
    fn backward_clock_does_not_recredit_progress() {
        let mut b = TokenBucket::new(LimiterConfig {
            burst: 1,
            period_ns: 100,
        });
        // The first acquire refills at t=1000 and spends the token.
        assert!(b.try_acquire(1_000));
        // A backward reading is zero elapsed time; the anchor must
        // stay at 1000, so by 1050 only 50 ns have accrued, not 100.
        assert!(!b.try_acquire(950));
        assert!(!b.try_acquire(1_050));
        assert!(b.try_acquire(1_100));
    }

    #[test]
    fn window_bound_holds_under_hammering() {
        let cfg = LimiterConfig {
            burst: 4,
            period_ns: 50,
        };
        let mut b = TokenBucket::new(cfg);
        let mut grants = Vec::new();
        for t in 0..5_000u64 {
            if b.try_acquire(t) {
                grants.push(t);
            }
        }
        for w in [50u64, 200, 800] {
            for (i, &t0) in grants.iter().enumerate() {
                let in_window = grants[i..].iter().take_while(|&&t| t < t0 + w).count() as u64;
                let bound = u64::from(cfg.burst) + w / cfg.period_ns + 1;
                assert!(
                    in_window <= bound,
                    "{in_window} grants in window [{t0}, {t0}+{w}) > bound {bound}"
                );
            }
        }
    }
}
