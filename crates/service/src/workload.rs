//! Tenant and workload model: who asks for which lock, when.
//!
//! A tenant is a population of clients hammering a contiguous range of
//! arena objects. Three orthogonal knobs describe it:
//!
//! * **Object skew** — a [`Zipf`] sampler picks *which* object each
//!   request targets. High skew concentrates a tenant's traffic on a
//!   few hot objects (the ones worth switching to queue mode); low skew
//!   spreads it thin (objects that should stay in the cheap TTS mode).
//! * **Arrival curve** — an [`ArrivalCurve`] shapes *when* open-loop
//!   requests arrive: constant, diurnal (sinusoid-approximating ramp),
//!   or bursty (square wave between a base and a spike rate).
//! * **Loop discipline** — [`Load::Open`] arrivals ignore completions
//!   (a timer fires regardless of queueing, so latency can blow up —
//!   the honest way to measure tails); [`Load::Closed`] clients issue
//!   the next request only after the previous one finishes, plus think
//!   time.
//!
//! Everything is seeded and deterministic: a [`TenantConfig`] plus a
//! seed reproduces the exact request sequence, which is what lets the
//! bench gate p999 numbers in CI.

use crate::rng;

/// Approximate Zipf(θ) sampler over `{0, 1, …, n-1}` using the Gray et
/// al. two-segment inversion (SIGMOD '94 quickly-generating skewed
/// data): rank 0 gets probability ~`1/H`, and the remaining mass falls
/// off as `rank^-θ`. Exact enough for workload shaping (the property
/// tests in `tests/generators.rs` pin the empirical skew), O(1) per
/// draw, no per-rank table — important when a tenant spans 10⁶ objects.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    state: u64,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta` in `[0, 1)`
    /// (`theta = 0` is uniform; ~0.99 is the YCSB-style hot default).
    ///
    /// # Panics
    /// If `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf over an empty range");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            state: seed,
        }
    }

    /// Generalized harmonic number `H_{n,θ}`, summed directly for small
    /// `n` and via the Euler–Maclaurin head + integral tail for large
    /// `n` (the sum is a one-time cost per tenant, but 10⁶ terms per
    /// tenant per run adds up in `--quick` CI).
    fn zeta(n: u64, theta: f64) -> f64 {
        const DIRECT: u64 = 10_000;
        let head = (1..=n.min(DIRECT))
            .map(|i| (i as f64).powf(-theta))
            .sum::<f64>();
        if n <= DIRECT {
            return head;
        }
        // Integral of x^-θ from DIRECT to n plus midpoint correction.
        let (a, b) = (DIRECT as f64, n as f64);
        let tail = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
            + 0.5 * (b.powf(-theta) - a.powf(-theta));
        head + tail
    }

    /// Draw one rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&mut self) -> u64 {
        if self.theta == 0.0 {
            return rng::below(&mut self.state, self.n);
        }
        let u = rng::unit(&mut self.state);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Shape of an open-loop tenant's arrival rate over virtual time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalCurve {
    /// Fixed rate forever.
    Constant {
        /// Mean arrivals per second of virtual time.
        rate_per_sec: f64,
    },
    /// Linear ramp between a trough and a peak and back, with period
    /// `period_ns` — a triangle-wave stand-in for a day's load curve.
    Diurnal {
        /// Rate at the trough (per second).
        low_per_sec: f64,
        /// Rate at the peak (per second).
        high_per_sec: f64,
        /// Full trough→peak→trough period in virtual ns.
        period_ns: u64,
    },
    /// Square wave: `base_per_sec` normally, `spike_per_sec` for the
    /// first `duty_ns` of every `period_ns` — the stampede-inducing
    /// load the switch-rate limiter exists for.
    Burst {
        /// Off-spike rate (per second).
        base_per_sec: f64,
        /// In-spike rate (per second).
        spike_per_sec: f64,
        /// Spike length in virtual ns.
        duty_ns: u64,
        /// Spike-to-spike period in virtual ns.
        period_ns: u64,
    },
}

impl ArrivalCurve {
    /// Instantaneous rate (arrivals per virtual ns) at time `t`.
    pub fn rate_per_ns(&self, t: u64) -> f64 {
        const NS: f64 = 1e-9;
        match *self {
            ArrivalCurve::Constant { rate_per_sec } => rate_per_sec * NS,
            ArrivalCurve::Diurnal {
                low_per_sec,
                high_per_sec,
                period_ns,
            } => {
                let phase = (t % period_ns.max(1)) as f64 / period_ns.max(1) as f64;
                // Triangle: 0→1 over the first half, 1→0 over the second.
                let frac = if phase < 0.5 {
                    2.0 * phase
                } else {
                    2.0 * (1.0 - phase)
                };
                (low_per_sec + (high_per_sec - low_per_sec) * frac) * NS
            }
            ArrivalCurve::Burst {
                base_per_sec,
                spike_per_sec,
                duty_ns,
                period_ns,
            } => {
                if t % period_ns.max(1) < duty_ns {
                    spike_per_sec * NS
                } else {
                    base_per_sec * NS
                }
            } // order of match arms mirrors the enum; no default so a new
              // curve variant is a compile error here.
        }
    }

    /// The same curve shape with every rate multiplied by `factor`.
    /// The native driver partitions one tenant's open-loop process
    /// across its worker threads by handing each a `1/threads`-scaled
    /// copy (with a distinct seed): the superposition of independent
    /// thinned Poisson processes at `rate/T` is a Poisson process at
    /// `rate`, so the offered load is preserved exactly.
    pub fn scaled(&self, factor: f64) -> ArrivalCurve {
        match *self {
            ArrivalCurve::Constant { rate_per_sec } => ArrivalCurve::Constant {
                rate_per_sec: rate_per_sec * factor,
            },
            ArrivalCurve::Diurnal {
                low_per_sec,
                high_per_sec,
                period_ns,
            } => ArrivalCurve::Diurnal {
                low_per_sec: low_per_sec * factor,
                high_per_sec: high_per_sec * factor,
                period_ns,
            },
            ArrivalCurve::Burst {
                base_per_sec,
                spike_per_sec,
                duty_ns,
                period_ns,
            } => ArrivalCurve::Burst {
                base_per_sec: base_per_sec * factor,
                spike_per_sec: spike_per_sec * factor,
                duty_ns,
                period_ns,
            },
        }
    }

    /// Peak instantaneous rate (arrivals per virtual ns) — used to
    /// bound the thinning envelope in [`Arrivals`].
    fn peak_per_ns(&self) -> f64 {
        const NS: f64 = 1e-9;
        match *self {
            ArrivalCurve::Constant { rate_per_sec } => rate_per_sec * NS,
            ArrivalCurve::Diurnal {
                low_per_sec,
                high_per_sec,
                ..
            } => low_per_sec.max(high_per_sec) * NS,
            ArrivalCurve::Burst {
                base_per_sec,
                spike_per_sec,
                ..
            } => base_per_sec.max(spike_per_sec) * NS,
        }
    }
}

/// Open- vs closed-loop discipline for a tenant's clients.
#[derive(Clone, Copy, Debug)]
pub enum Load {
    /// Timer-driven arrivals from the tenant's [`ArrivalCurve`];
    /// arrivals do not wait for completions.
    Open {
        /// The arrival process shape.
        curve: ArrivalCurve,
    },
    /// `clients` independent clients, each issuing its next request
    /// `think_ns` of virtual time after the previous one completes.
    Closed {
        /// Number of concurrent clients.
        clients: u32,
        /// Mean think time between a completion and the next request
        /// (exponentially distributed), in virtual ns.
        think_ns: u64,
    },
}

/// One tenant: an object range, a skew, and a load discipline.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// First arena object id owned by this tenant.
    pub first_object: u64,
    /// Number of consecutive objects owned.
    pub objects: u64,
    /// Zipf exponent for object choice within the range (`0` uniform,
    /// `0.99` hot-spot heavy).
    pub theta: f64,
    /// Load discipline (open- or closed-loop).
    pub load: Load,
    /// Critical-section service time in virtual ns (work done while
    /// holding the lock).
    pub hold_ns: u64,
    /// Acquire deadline in virtual ns; a request whose acquire has not
    /// been granted by `deadline_ns` after arrival aborts (PR 7's
    /// abortable-acquire path). 0 disables deadlines.
    pub deadline_ns: u64,
}

/// A seeded open-loop arrival-time generator for one tenant: a
/// non-homogeneous Poisson process realised by thinning (Lewis &
/// Shedler) against the curve's peak rate, so inter-arrival times are
/// exact for constant curves and correctly rate-modulated for diurnal
/// and bursty ones.
#[derive(Clone, Debug)]
pub struct Arrivals {
    curve: ArrivalCurve,
    peak_per_ns: f64,
    state: u64,
    now_ns: f64,
}

impl Arrivals {
    /// New process starting at virtual time 0.
    pub fn new(curve: ArrivalCurve, seed: u64) -> Self {
        Arrivals {
            curve,
            peak_per_ns: curve.peak_per_ns(),
            state: seed,
            now_ns: 0.0,
        }
    }

    /// Virtual time of the next arrival, or `None` if the curve's rate
    /// is zero (no arrivals ever).
    pub fn next_arrival(&mut self) -> Option<u64> {
        if self.peak_per_ns <= 0.0 {
            return None;
        }
        // Thinning: candidate gaps at the peak rate, accepted with
        // probability rate(t)/peak. Bounded retries keep a zero-rate
        // trough from spinning forever in pathological configs.
        for _ in 0..100_000 {
            let gap = -rng::unit(&mut self.state).ln() / self.peak_per_ns;
            self.now_ns += gap;
            let t = self.now_ns as u64;
            let accept = self.curve.rate_per_ns(t) / self.peak_per_ns;
            if rng::unit(&mut self.state) <= accept {
                return Some(t);
            }
        }
        None
    }
}

/// Exponentially distributed think time with the given mean, for
/// closed-loop clients (mean 0 yields 0).
pub fn think_time(mean_ns: u64, state: &mut u64) -> u64 {
    if mean_ns == 0 {
        return 0;
    }
    (-rng::unit(state).ln() * mean_ns as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let mut z = Zipf::new(10, 0.0, 7);
        let mut seen = [0u64; 10];
        for _ in 0..10_000 {
            seen[z.sample() as usize] += 1;
        }
        for &c in &seen {
            assert!(
                (600..1_400).contains(&c),
                "uniform draw count {c} out of band"
            );
        }
    }

    #[test]
    fn zipf_rank0_dominates_at_high_theta() {
        let mut z = Zipf::new(1_000, 0.99, 11);
        let hits = (0..10_000).filter(|_| z.sample() == 0).count();
        // H_{1000,0.99} ~ 7.5, so rank 0 carries ~13% of the mass.
        assert!(hits > 800, "rank 0 hit only {hits}/10000 times");
    }

    #[test]
    fn constant_curve_rate_is_flat() {
        let c = ArrivalCurve::Constant { rate_per_sec: 1e6 };
        assert_eq!(c.rate_per_ns(0), c.rate_per_ns(123_456));
    }

    #[test]
    fn burst_curve_switches_rates() {
        let c = ArrivalCurve::Burst {
            base_per_sec: 1e3,
            spike_per_sec: 1e6,
            duty_ns: 100,
            period_ns: 1_000,
        };
        assert!(c.rate_per_ns(50) > c.rate_per_ns(500) * 100.0);
    }

    #[test]
    fn scaled_curve_scales_every_rate() {
        let c = ArrivalCurve::Burst {
            base_per_sec: 1e3,
            spike_per_sec: 1e6,
            duty_ns: 100,
            period_ns: 1_000,
        };
        let half = c.scaled(0.5);
        for t in [0u64, 50, 500, 999] {
            assert!((half.rate_per_ns(t) - c.rate_per_ns(t) * 0.5).abs() < 1e-15);
        }
        let d = ArrivalCurve::Diurnal {
            low_per_sec: 10.0,
            high_per_sec: 90.0,
            period_ns: 1_000,
        }
        .scaled(2.0);
        assert!((d.rate_per_ns(0) - 20.0e-9).abs() < 1e-12);
    }

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        let curve = ArrivalCurve::Constant { rate_per_sec: 1e7 };
        let mut a = Arrivals::new(curve, 3);
        let mut b = Arrivals::new(curve, 3);
        let mut last = 0;
        for _ in 0..1_000 {
            let ta = a.next_arrival().unwrap();
            let tb = b.next_arrival().unwrap();
            assert_eq!(ta, tb);
            assert!(ta >= last);
            last = ta;
        }
    }
}
