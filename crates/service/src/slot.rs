//! The packed per-object slot word.
//!
//! At 10⁶ objects the per-object state must be memory-bounded: a full
//! [`SwitchKernel`](reactive_api::SwitchKernel)-backed reactive lock
//! carries a boxed policy, an instrumentation `Arc`, and a journal —
//! hundreds of bytes. The arena instead keeps **one `u64` per object at
//! rest** and packs everything the cold path needs into it; switch
//! journals, per-object statistics, and (in the native executor) a full
//! kernel-backed [`ReactiveLock`](reactive_native::ReactiveLock) are
//! lazily allocated only once an object proves hot.
//!
//! Layout (low to high bits):
//!
//! | bits  | field            | meaning                                          |
//! |-------|------------------|--------------------------------------------------|
//! | 0     | `HELD`           | native fast-path spin bit                        |
//! | 1     | `INFLATED`       | native: object promoted to a full reactive lock  |
//! | 2-3   | `MODE`           | current protocol (0 = TTS-like, 1 = queue)       |
//! | 4-7   | contended streak | saturating count of consecutive contended grants |
//! | 8-11  | calm streak      | saturating count of consecutive calm grants      |
//! | 12    | `HOT`            | a lazily allocated hot-stat entry exists         |
//! | 32-63 | inflation index  | slab index of the inflated lock (when `INFLATED`)|
//!
//! The mode/validity discipline mirrors the switching kernel's: the
//! mode field is committed in one store together with the streak reset,
//! so an object is never observably "between" protocols, and in the
//! native world the `INFLATED` bit is only ever set by the current
//! holder of the fast-path bit (see `native.rs`), preserving the
//! at-most-one-valid-protocol invariant across the promotion.

/// Native fast-path lock bit.
pub const HELD: u64 = 1;
/// Object has been promoted to a full kernel-backed reactive lock.
pub const INFLATED: u64 = 1 << 1;
/// A lazily allocated hot-stat entry exists for this object.
pub const HOT: u64 = 1 << 12;

const MODE_SHIFT: u32 = 2;
const MODE_MASK: u64 = 0b11 << MODE_SHIFT;
const CONTENDED_SHIFT: u32 = 4;
const CALM_SHIFT: u32 = 8;
const STREAK_MASK: u64 = 0xF;
const INDEX_SHIFT: u32 = 32;

/// Protocol id of the TTS-like (cheap, unfair, melts under contention)
/// mode — matches [`reactive_native::reactive::PROTO_TTS`].
pub const MODE_TTS: u8 = 0;
/// Protocol id of the queue (scalable, FIFO, dearer when idle) mode —
/// matches [`reactive_native::reactive::PROTO_QUEUE`].
pub const MODE_QUEUE: u8 = 1;

/// Current protocol of a slot word.
pub fn mode(word: u64) -> u8 {
    ((word & MODE_MASK) >> MODE_SHIFT) as u8
}

/// Replace the protocol field, clearing both streaks (a mode change
/// resets the evidence that drove it, exactly like the kernel's
/// post-commit policy reset). `m` is masked to the 2-bit field so an
/// out-of-range id can never leak into the streak bits.
pub fn with_mode(word: u64, m: u8) -> u64 {
    let cleared =
        word & !(MODE_MASK | (STREAK_MASK << CONTENDED_SHIFT) | (STREAK_MASK << CALM_SHIFT));
    cleared | (((m as u64) << MODE_SHIFT) & MODE_MASK)
}

/// Saturating contended-grant streak.
pub fn contended_streak(word: u64) -> u8 {
    ((word >> CONTENDED_SHIFT) & STREAK_MASK) as u8
}

/// Saturating calm-grant streak.
pub fn calm_streak(word: u64) -> u8 {
    ((word >> CALM_SHIFT) & STREAK_MASK) as u8
}

/// Record one grant observation: bump the matching streak (saturating
/// at 15) and zero the opposite one.
pub fn observe(word: u64, contended: bool) -> u64 {
    let (bump_shift, clear_shift) = if contended {
        (CONTENDED_SHIFT, CALM_SHIFT)
    } else {
        (CALM_SHIFT, CONTENDED_SHIFT)
    };
    let streak = ((word >> bump_shift) & STREAK_MASK)
        .saturating_add(1)
        .min(15);
    (word & !((STREAK_MASK << bump_shift) | (STREAK_MASK << clear_shift))) | (streak << bump_shift)
}

/// Zero both streaks (the limiter-denied backoff: the object must
/// re-accumulate its evidence before asking again, which spreads a
/// thundering herd of switch requests over time).
pub fn clear_streaks(word: u64) -> u64 {
    word & !((STREAK_MASK << CONTENDED_SHIFT) | (STREAK_MASK << CALM_SHIFT))
}

/// Inflation slab index (meaningful only when `INFLATED` is set).
pub fn index(word: u64) -> u32 {
    (word >> INDEX_SHIFT) as u32
}

/// Mark the word inflated with the given slab index.
pub fn with_index(word: u64, idx: u32) -> u64 {
    (word & !(u64::MAX << INDEX_SHIFT)) | INFLATED | ((idx as u64) << INDEX_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip_preserves_other_bits() {
        let w = HELD | HOT | with_index(0, 7);
        for m in [MODE_TTS, MODE_QUEUE, 2, 3] {
            let v = with_mode(w, m);
            assert_eq!(mode(v), m);
            assert_eq!(v & HELD, HELD);
            assert_eq!(v & HOT, HOT);
            assert_eq!(index(v), 7);
        }
    }

    #[test]
    fn out_of_range_mode_is_masked_to_the_field() {
        let w = HELD | HOT | with_index(0, 7);
        // Only the low two bits of `m` may land in the word: bit 2 of
        // an oversized id must not shift into the contended streak.
        let v = with_mode(w, 0b111);
        assert_eq!(mode(v), 0b11);
        assert_eq!(contended_streak(v), 0);
        assert_eq!(calm_streak(v), 0);
        assert_eq!(v & HELD, HELD);
        assert_eq!(v & HOT, HOT);
        assert_eq!(index(v), 7);
    }

    #[test]
    fn observe_bumps_and_clears() {
        let mut w = 0u64;
        for i in 1..=20u8 {
            w = observe(w, true);
            assert_eq!(contended_streak(w), i.min(15));
            assert_eq!(calm_streak(w), 0);
        }
        w = observe(w, false);
        assert_eq!(contended_streak(w), 0);
        assert_eq!(calm_streak(w), 1);
        assert_eq!(clear_streaks(w), 0);
    }

    #[test]
    fn mode_change_resets_streaks() {
        let mut w = 0u64;
        for _ in 0..5 {
            w = observe(w, true);
        }
        let v = with_mode(w, MODE_QUEUE);
        assert_eq!(mode(v), MODE_QUEUE);
        assert_eq!(contended_streak(v), 0);
        assert_eq!(calm_streak(v), 0);
    }

    #[test]
    fn index_field_is_independent() {
        let w = with_mode(HELD, MODE_QUEUE);
        let v = with_index(w, u32::MAX);
        assert_eq!(index(v), u32::MAX);
        assert_eq!(mode(v), MODE_QUEUE);
        assert_ne!(v & INFLATED, 0);
    }
}
