//! The packed per-object slot word.
//!
//! At 10⁶ objects the per-object state must be memory-bounded: a full
//! [`SwitchKernel`](reactive_api::SwitchKernel)-backed reactive lock
//! carries a boxed policy, an instrumentation `Arc`, and a journal —
//! hundreds of bytes. The arena instead keeps **one `u64` per object at
//! rest** and packs everything the cold path needs into it; switch
//! journals, per-object statistics, and (in the native executor) a full
//! kernel-backed [`ReactiveLock`](reactive_native::ReactiveLock) are
//! lazily allocated only once an object proves hot.
//!
//! Layout (low to high bits):
//!
//! | bits  | field            | meaning                                          |
//! |-------|------------------|--------------------------------------------------|
//! | 0     | `HELD`           | native fast-path spin bit                        |
//! | 1     | `INFLATED`       | native: object promoted to a full reactive lock  |
//! | 2-3   | `MODE`           | current protocol (0 = TTS-like, 1 = queue)       |
//! | 4-7   | contended streak | saturating count of consecutive contended grants |
//! | 8-11  | calm streak      | saturating count of consecutive calm grants      |
//! | 12    | `HOT`            | a lazily allocated hot-stat entry exists         |
//! | 13    | `WAITERS`        | native: a spinner registered during this hold    |
//! | 14-15 | (reserved)       | zero                                             |
//! | 16-31 | in-flight count  | native: registered inflated-path acquirers       |
//! | 32-63 | inflation index  | slab index of the inflated lock (when `INFLATED`)|
//!
//! The mode/validity discipline mirrors the switching kernel's: the
//! mode field is committed in one store together with the streak reset,
//! so an object is never observably "between" protocols, and in the
//! native world the `INFLATED` bit is only ever set by the current
//! holder of the fast-path bit (see `native.rs`), preserving the
//! at-most-one-valid-protocol invariant across the promotion.
//!
//! Two fields exist purely for the native executor's *demotion*
//! (deflation) protocol. `WAITERS` is the futex-style contended bit: a
//! flat spinner sets it once per hold, the releasing owner reads it as
//! this hold's contention evidence, and the next flat winner clears it
//! — so streaks accrue at release time and survive the capture effect
//! (one thread re-winning its own lock) that starves acquirer-side
//! observation on small machines. The in-flight count is the
//! registration refcount of inflated-path acquirers: registering (a
//! `+= REF_ONE` CAS) and deflating (a CAS that requires the count to be
//! exactly the holder's own 1) arbitrate on the same word, which is
//! what makes demotion linearizable without a stop-the-world quiesce.

/// Native fast-path lock bit.
pub const HELD: u64 = 1;
/// Object has been promoted to a full kernel-backed reactive lock.
pub const INFLATED: u64 = 1 << 1;
/// A lazily allocated hot-stat entry exists for this object.
pub const HOT: u64 = 1 << 12;
/// Native flat path: a spinner registered interest during the current
/// hold. Set by waiters, read (as contention evidence) and cleared by
/// the release/acquire that ends the hold.
pub const WAITERS: u64 = 1 << 13;
/// One in-flight inflated-path acquirer (the registration refcount
/// lives in bits 16-31; add/subtract this to register/deregister).
pub const REF_ONE: u64 = 1 << REF_SHIFT;

const MODE_SHIFT: u32 = 2;
const MODE_MASK: u64 = 0b11 << MODE_SHIFT;
const CONTENDED_SHIFT: u32 = 4;
const CALM_SHIFT: u32 = 8;
const STREAK_MASK: u64 = 0xF;
const REF_SHIFT: u32 = 16;
const REF_MASK: u64 = 0xFFFF;
const INDEX_SHIFT: u32 = 32;

/// Per-object bits that survive a protocol promotion or demotion: the
/// hot-stat marker is object identity, not hold state, so inflation and
/// deflation must carry it through their published words.
const CARRY_MASK: u64 = HOT;

/// Protocol id of the TTS-like (cheap, unfair, melts under contention)
/// mode — matches [`reactive_native::reactive::PROTO_TTS`].
pub const MODE_TTS: u8 = 0;
/// Protocol id of the queue (scalable, FIFO, dearer when idle) mode —
/// matches [`reactive_native::reactive::PROTO_QUEUE`].
pub const MODE_QUEUE: u8 = 1;

/// Current protocol of a slot word.
pub fn mode(word: u64) -> u8 {
    ((word & MODE_MASK) >> MODE_SHIFT) as u8
}

/// Replace the protocol field, clearing both streaks (a mode change
/// resets the evidence that drove it, exactly like the kernel's
/// post-commit policy reset). `m` is masked to the 2-bit field so an
/// out-of-range id can never leak into the streak bits.
pub fn with_mode(word: u64, m: u8) -> u64 {
    let cleared =
        word & !(MODE_MASK | (STREAK_MASK << CONTENDED_SHIFT) | (STREAK_MASK << CALM_SHIFT));
    cleared | (((m as u64) << MODE_SHIFT) & MODE_MASK)
}

/// Saturating contended-grant streak.
pub fn contended_streak(word: u64) -> u8 {
    ((word >> CONTENDED_SHIFT) & STREAK_MASK) as u8
}

/// Saturating calm-grant streak.
pub fn calm_streak(word: u64) -> u8 {
    ((word >> CALM_SHIFT) & STREAK_MASK) as u8
}

/// Record one grant observation: bump the matching streak (saturating
/// at 15) and zero the opposite one.
pub fn observe(word: u64, contended: bool) -> u64 {
    let (bump_shift, clear_shift) = if contended {
        (CONTENDED_SHIFT, CALM_SHIFT)
    } else {
        (CALM_SHIFT, CONTENDED_SHIFT)
    };
    let streak = ((word >> bump_shift) & STREAK_MASK)
        .saturating_add(1)
        .min(15);
    (word & !((STREAK_MASK << bump_shift) | (STREAK_MASK << clear_shift))) | (streak << bump_shift)
}

/// Zero both streaks (the limiter-denied backoff: the object must
/// re-accumulate its evidence before asking again, which spreads a
/// thundering herd of switch requests over time).
pub fn clear_streaks(word: u64) -> u64 {
    word & !((STREAK_MASK << CONTENDED_SHIFT) | (STREAK_MASK << CALM_SHIFT))
}

/// Raise the contended streak to at least `streak` (saturating at 15)
/// and zero the calm streak — the long-wait fast path: a winner whose
/// measured flat wait was pathological seeds the full inflation
/// evidence at once, instead of waiting for per-release observations
/// that a capturing holder keeps wiping out.
pub fn saturate_contended(word: u64, streak: u8) -> u64 {
    let cur = contended_streak(word);
    let new = u64::from(cur.max(streak).min(15));
    (word & !((STREAK_MASK << CONTENDED_SHIFT) | (STREAK_MASK << CALM_SHIFT)))
        | (new << CONTENDED_SHIFT)
}

/// Registered inflated-path acquirers currently in flight (meaningful
/// only while `INFLATED` is set; the holder's own registration counts).
pub fn inflight(word: u64) -> u32 {
    ((word >> REF_SHIFT) & REF_MASK) as u32
}

/// The per-object bits that persist across inflation and deflation
/// (currently just `HOT`); everything transient — hold bits, streaks,
/// refcount, index — is dropped.
pub fn carry_bits(word: u64) -> u64 {
    word & CARRY_MASK
}

/// The flat word a deflating holder publishes: demoted to TTS mode with
/// clear streaks and no hold/waiter/refcount state, carrying only the
/// persistent per-object bits.
pub fn deflated(word: u64) -> u64 {
    with_mode(carry_bits(word), MODE_TTS)
}

/// Inflation slab index (meaningful only when `INFLATED` is set).
pub fn index(word: u64) -> u32 {
    (word >> INDEX_SHIFT) as u32
}

/// Mark the word inflated with the given slab index.
pub fn with_index(word: u64, idx: u32) -> u64 {
    (word & !(u64::MAX << INDEX_SHIFT)) | INFLATED | ((idx as u64) << INDEX_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip_preserves_other_bits() {
        let w = HELD | HOT | with_index(0, 7);
        for m in [MODE_TTS, MODE_QUEUE, 2, 3] {
            let v = with_mode(w, m);
            assert_eq!(mode(v), m);
            assert_eq!(v & HELD, HELD);
            assert_eq!(v & HOT, HOT);
            assert_eq!(index(v), 7);
        }
    }

    #[test]
    fn out_of_range_mode_is_masked_to_the_field() {
        let w = HELD | HOT | with_index(0, 7);
        // Only the low two bits of `m` may land in the word: bit 2 of
        // an oversized id must not shift into the contended streak.
        let v = with_mode(w, 0b111);
        assert_eq!(mode(v), 0b11);
        assert_eq!(contended_streak(v), 0);
        assert_eq!(calm_streak(v), 0);
        assert_eq!(v & HELD, HELD);
        assert_eq!(v & HOT, HOT);
        assert_eq!(index(v), 7);
    }

    #[test]
    fn observe_bumps_and_clears() {
        let mut w = 0u64;
        for i in 1..=20u8 {
            w = observe(w, true);
            assert_eq!(contended_streak(w), i.min(15));
            assert_eq!(calm_streak(w), 0);
        }
        w = observe(w, false);
        assert_eq!(contended_streak(w), 0);
        assert_eq!(calm_streak(w), 1);
        assert_eq!(clear_streaks(w), 0);
    }

    #[test]
    fn mode_change_resets_streaks() {
        let mut w = 0u64;
        for _ in 0..5 {
            w = observe(w, true);
        }
        let v = with_mode(w, MODE_QUEUE);
        assert_eq!(mode(v), MODE_QUEUE);
        assert_eq!(contended_streak(v), 0);
        assert_eq!(calm_streak(v), 0);
    }

    #[test]
    fn index_field_is_independent() {
        let w = with_mode(HELD, MODE_QUEUE);
        let v = with_index(w, u32::MAX);
        assert_eq!(index(v), u32::MAX);
        assert_eq!(mode(v), MODE_QUEUE);
        assert_ne!(v & INFLATED, 0);
    }

    #[test]
    fn saturate_contended_seeds_without_touching_other_fields() {
        let word = with_index(HELD | WAITERS | HOT | REF_ONE, 7);
        let seeded = saturate_contended(word, 3);
        assert_eq!(contended_streak(seeded), 3);
        assert_eq!(calm_streak(seeded), 0);
        assert_eq!(seeded & !0xFF0, word & !0xFF0, "only streak fields move");
        // Already past the seed: the higher streak survives.
        let hot = observe(observe(observe(observe(word, true), true), true), true);
        assert_eq!(contended_streak(saturate_contended(hot, 3)), 4);
        // Saturates at the 4-bit field cap.
        assert_eq!(contended_streak(saturate_contended(word, 99)), 15);
    }

    #[test]
    fn refcount_field_is_independent() {
        let mut w = with_index(with_mode(HOT | WAITERS, MODE_QUEUE), 9);
        assert_eq!(inflight(w), 0);
        for n in 1..=5u32 {
            w += REF_ONE;
            assert_eq!(inflight(w), n);
        }
        // Registration arithmetic must not leak into its neighbours.
        assert_eq!(index(w), 9);
        assert_eq!(mode(w), MODE_QUEUE);
        assert_ne!(w & HOT, 0);
        assert_ne!(w & WAITERS, 0);
        w -= REF_ONE;
        assert_eq!(inflight(w), 4);
        // Streak observation leaves the refcount alone.
        assert_eq!(inflight(observe(w, true)), 4);
        assert_eq!(inflight(with_mode(w, MODE_TTS)), 4);
    }

    #[test]
    fn deflated_word_keeps_only_carry_bits() {
        let mut w = with_index(HELD | HOT | WAITERS, 3) + 2 * REF_ONE;
        for _ in 0..5 {
            w = observe(w, false);
        }
        let d = deflated(w);
        assert_eq!(d, HOT, "only the carry bits survive demotion");
        assert_eq!(mode(d), MODE_TTS);
        assert_eq!(inflight(d), 0);
        assert_eq!(calm_streak(d), 0);
        assert_eq!(d & (HELD | INFLATED | WAITERS), 0);
        assert_eq!(carry_bits(w), HOT);
    }
}
