//! The native load driver: real threads replaying [`crate::workload`]
//! tenants against a [`NativeService`].
//!
//! The virtual-time executor ([`crate::exec`]) owns every deterministic
//! CI-gated claim; this driver answers the question it cannot — what do
//! the same tenant mixes cost on *real* cores, with real cache-line
//! bouncing, real preemption, and the kernel-backed inflated locks
//! actually spinning? Each worker thread replays a seeded slice of the
//! tenant set:
//!
//! * An **open-loop** tenant's Poisson process is partitioned by
//!   handing every worker a `rate/threads`-scaled copy of the arrival
//!   curve with a distinct seed ([`crate::workload::ArrivalCurve::scaled`]); the
//!   superposition of the thinned sub-processes reproduces the offered
//!   load exactly. Latency is measured from the *scheduled* arrival
//!   time, so a backlogged worker charges its queueing delay to the
//!   tail instead of silently omitting it (the coordinated-omission
//!   trap).
//! * A **closed-loop** tenant's clients are dealt round-robin across
//!   workers; each client issues, holds, thinks, repeats. Latency is
//!   measured from dispatch — a closed client that has not issued yet
//!   is not waiting.
//!
//! Worker samples are merged into one reservoir-sampled
//! [`WaitHistogram`], so native p50/p99/p999 land in the same shape of
//! report the simulator produces and the bench can print them side by
//! side. Samples are *also* split per tenant
//! ([`NativeReport::tenant_wait`]): the merged tail conflates a hot
//! tenant's true lock waits with a backlogged open tenant's queueing
//! delay (which measures CPU saturation, not lock policy), so claims
//! about a specific tenant's service gate on its own histogram.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use alewife_sim::stats::WaitHistogram;

use crate::arena::Footprint;
use crate::exec::ArenaMode;
use crate::limiter::LimiterConfig;
use crate::native::NativeService;
use crate::oracle::{self, Stampede, SwitchRecord};
use crate::rng;
use crate::workload::{think_time, Arrivals, Load, TenantConfig, Zipf};

/// Spins between clock reads while waiting out a scheduled gap or a
/// hold; yields at this cadence so co-scheduled workers make progress
/// on small hosts.
const WAIT_YIELD_MASK: u32 = 63;

/// Full description of one native driver run.
#[derive(Clone, Debug)]
pub struct NativeRunConfig {
    /// Objects hosted by the arena.
    pub objects: u64,
    /// Arena shards (limiter granularity).
    pub shards: u32,
    /// Base seed; every (tenant, worker) stream derives its own.
    pub seed: u64,
    /// Protocol-selection regime (adaptive inflation/deflation or a
    /// static pin — the bench's control arms).
    pub mode: ArenaMode,
    /// Per-shard switch-rate limiter, if any.
    pub limiter: Option<LimiterConfig>,
    /// Worker threads; 0 picks `max(2, available_parallelism)`.
    pub threads: usize,
    /// Wall-clock run length in ns.
    pub run_ns: u64,
    /// Wait-histogram reservoir capacity.
    pub reservoir: usize,
    /// The tenants driving load.
    pub tenants: Vec<TenantConfig>,
}

impl NativeRunConfig {
    /// A config with the standard knob defaults; callers fill in
    /// tenants.
    pub fn new(objects: u64, shards: u32, seed: u64) -> Self {
        NativeRunConfig {
            objects,
            shards,
            seed,
            mode: ArenaMode::Adaptive,
            limiter: Some(LimiterConfig::default()),
            threads: 0,
            run_ns: 200_000_000,
            reservoir: 65_536,
            tenants: Vec::new(),
        }
    }

    /// The worker count a run will actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2)
    }
}

/// Everything a native run measured.
#[derive(Debug)]
pub struct NativeReport {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock ns the run actually took.
    pub elapsed_ns: u64,
    /// Grants completed.
    pub acquires: u64,
    /// Requests aborted at their deadline.
    pub aborts: u64,
    /// Flat→reactive promotions (cumulative).
    pub inflations: u64,
    /// Reactive→flat demotions (cumulative).
    pub deflations: u64,
    /// Inflated locks still live at run end.
    pub live_inflated: u64,
    /// Kernel-internal protocol switches inside inflated locks.
    pub lock_switches: u64,
    /// Acquire-latency histogram (scheduled arrival → grant for open
    /// tenants, dispatch → grant for closed ones; ns).
    pub wait: WaitHistogram,
    /// Per-tenant acquire-latency histograms, indexed like
    /// `cfg.tenants`; same measurement convention as [`Self::wait`].
    pub tenant_wait: Vec<WaitHistogram>,
    /// Per-tenant *deadline-adjusted* histograms: every grant records
    /// its wait, and every abort records the tenant's full deadline.
    /// A completed-only percentile silently censors starvation — a
    /// flat spin lock that starves a waiter to its deadline produces
    /// *no* latency sample, so its tail looks better the worse it
    /// behaves. Charging each shed request its whole deadline is the
    /// same convention the virtual-time rows use for shed traffic.
    pub tenant_adjusted: Vec<WaitHistogram>,
    /// Per-tenant deadline aborts, indexed like `cfg.tenants`.
    pub aborts_by_tenant: Vec<u64>,
    /// Measured memory footprint at run end.
    pub footprint: Footprint,
    /// Combined inflation/deflation log for the oracle.
    pub switch_log: Vec<SwitchRecord>,
    /// Limiter in force, if any.
    pub limiter: Option<LimiterConfig>,
}

impl NativeReport {
    /// Median acquire latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.wait.p50()
    }

    /// 99th-percentile acquire latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.wait.p99()
    }

    /// 99.9th-percentile acquire latency (ns).
    pub fn p999_ns(&self) -> u64 {
        self.wait.p999()
    }

    /// 99.9th-percentile acquire latency of one tenant (ns).
    ///
    /// # Panics
    /// If `tenant` is out of range for the run's tenant list.
    pub fn tenant_p999_ns(&self, tenant: usize) -> u64 {
        self.tenant_wait[tenant].p999()
    }

    /// 99.9th-percentile *deadline-adjusted* latency of one tenant
    /// (ns): aborts count as samples at the tenant's full deadline.
    ///
    /// # Panics
    /// If `tenant` is out of range for the run's tenant list.
    pub fn tenant_adjusted_p999_ns(&self, tenant: usize) -> u64 {
        self.tenant_adjusted[tenant].p999()
    }

    /// Fraction of requests that aborted at their deadline.
    pub fn abort_rate(&self) -> f64 {
        let total = self.acquires + self.aborts;
        if total == 0 {
            return 0.0;
        }
        self.aborts as f64 / total as f64
    }

    /// Inflations + deflations per second of wall-clock time.
    pub fn switches_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.inflations + self.deflations) as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Run the no-stampede oracle over this run's switch log (empty =
    /// clean; meaningful only when a limiter was configured).
    pub fn stampedes(&self) -> Vec<Stampede> {
        match self.limiter {
            Some(cfg) => oracle::check_no_stampede(&self.switch_log, cfg),
            None => Vec::new(),
        }
    }
}

/// One worker's slice of the load: its open-loop sub-processes and its
/// round-robin share of the closed-loop clients.
struct OpenStream {
    tenant: usize,
    arrivals: Arrivals,
    zipf: Zipf,
    /// Next scheduled arrival (ns since run start), refilled lazily;
    /// `u64::MAX` once the process is exhausted.
    due: u64,
    primed: bool,
}

struct ClosedClient {
    tenant: usize,
    zipf: Zipf,
    think_state: u64,
    /// Earliest dispatch time (ns since run start).
    due: u64,
}

/// Derive a per-(tenant, worker, role) seed from the base seed; one
/// xorshift step decorrelates neighbouring ids.
fn derive_seed(base: u64, tenant: usize, worker: usize, role: u64) -> u64 {
    let mut s = base
        ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (worker as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ role.wrapping_mul(0x1656_67B1_9E37_79F9);
    rng::next(&mut s)
}

/// Busy-wait (with periodic yields) until `target_ns` after `start`.
fn wait_until(start: Instant, target_ns: u64) {
    let mut i: u32 = 0;
    while (start.elapsed().as_nanos() as u64) < target_ns {
        std::hint::spin_loop();
        i = i.wrapping_add(1);
        if i & WAIT_YIELD_MASK == 0 {
            std::thread::yield_now();
        }
    }
}

/// Tallies one worker brings home.
#[derive(Default)]
struct WorkerOut {
    /// (tenant index, acquire latency ns) per grant.
    samples: Vec<(usize, u64)>,
    acquires: u64,
    aborts: u64,
    /// Deadline aborts per tenant, indexed like `cfg.tenants`.
    aborts_by_tenant: Vec<u64>,
}

/// Run `cfg` and collect the measured report.
///
/// # Panics
/// If a tenant's object range reaches outside the arena (same contract
/// as the virtual-time executor) or a worker thread panics.
pub fn run_native(cfg: &NativeRunConfig) -> NativeReport {
    for t in &cfg.tenants {
        assert!(
            t.first_object + t.objects <= cfg.objects,
            "tenant range [{}, {}) outside arena of {}",
            t.first_object,
            t.first_object + t.objects,
            cfg.objects
        );
    }
    let threads = cfg.effective_threads();
    let svc = NativeService::with_mode(cfg.objects, cfg.shards, cfg.limiter, cfg.mode);
    let outs: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::with_capacity(threads));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let svc = &svc;
            let outs = &outs;
            scope.spawn(move || {
                let out = worker(cfg, w, threads, svc, start);
                outs.lock().expect("worker output poisoned").push(out);
            });
        }
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut wait = WaitHistogram::with_sampling(cfg.reservoir, cfg.seed);
    let mut tenant_wait: Vec<WaitHistogram> = (0..cfg.tenants.len())
        .map(|t| WaitHistogram::with_sampling(cfg.reservoir, cfg.seed ^ (t as u64 + 1)))
        .collect();
    let mut tenant_adjusted: Vec<WaitHistogram> = (0..cfg.tenants.len())
        .map(|t| WaitHistogram::with_sampling(cfg.reservoir, cfg.seed ^ (t as u64 + 101)))
        .collect();
    let mut aborts_by_tenant = vec![0u64; cfg.tenants.len()];
    let mut acquires = 0;
    let mut aborts = 0;
    for o in outs.into_inner().expect("worker output poisoned") {
        acquires += o.acquires;
        aborts += o.aborts;
        for (t, n) in o.aborts_by_tenant.iter().enumerate() {
            aborts_by_tenant[t] += n;
        }
        for (t, s) in o.samples {
            wait.record(s);
            tenant_wait[t].record(s);
            tenant_adjusted[t].record(s);
        }
    }
    // Charge every shed request its full deadline so starvation shows
    // up in the adjusted tail instead of being censored out of it.
    for (t, tc) in cfg.tenants.iter().enumerate() {
        for _ in 0..aborts_by_tenant[t] {
            tenant_adjusted[t].record(tc.deadline_ns);
        }
    }
    debug_assert_eq!(
        aborts,
        svc.aborts(),
        "driver and service abort counts disagree"
    );
    NativeReport {
        threads,
        elapsed_ns,
        acquires,
        aborts,
        inflations: svc.inflations(),
        deflations: svc.deflations(),
        live_inflated: svc.live_inflated(),
        lock_switches: svc.lock_switches(),
        wait,
        tenant_wait,
        tenant_adjusted,
        aborts_by_tenant,
        footprint: svc.footprint(),
        switch_log: svc.switch_log(),
        limiter: cfg.limiter,
    }
}

/// One worker thread's replay loop: repeatedly pick the earliest-due
/// request among its streams, wait out the gap, and drive it through
/// the service.
fn worker(
    cfg: &NativeRunConfig,
    w: usize,
    threads: usize,
    svc: &NativeService,
    start: Instant,
) -> WorkerOut {
    let inv = 1.0 / threads as f64;
    let mut opens: Vec<OpenStream> = Vec::new();
    let mut closeds: Vec<ClosedClient> = Vec::new();
    for (ti, t) in cfg.tenants.iter().enumerate() {
        match t.load {
            Load::Open { curve } => opens.push(OpenStream {
                tenant: ti,
                arrivals: Arrivals::new(curve.scaled(inv), derive_seed(cfg.seed, ti, w, 1)),
                zipf: Zipf::new(t.objects, t.theta, derive_seed(cfg.seed, ti, w, 2)),
                due: 0,
                primed: false,
            }),
            Load::Closed { clients, think_ns } => {
                for c in 0..clients {
                    if c as usize % threads != w {
                        continue;
                    }
                    let mut think_state = derive_seed(cfg.seed, ti, w, 3 + u64::from(c));
                    // Stagger the first dispatch by one think time so
                    // all clients don't fire in the same instant.
                    let due = think_time(think_ns, &mut think_state);
                    closeds.push(ClosedClient {
                        tenant: ti,
                        zipf: Zipf::new(
                            t.objects,
                            t.theta,
                            derive_seed(cfg.seed, ti, w, 101 + u64::from(c)),
                        ),
                        think_state,
                        due,
                    });
                }
            }
        }
    }
    let mut out = WorkerOut {
        aborts_by_tenant: vec![0; cfg.tenants.len()],
        ..WorkerOut::default()
    };
    loop {
        let now = start.elapsed().as_nanos() as u64;
        if now >= cfg.run_ns {
            return out;
        }
        // Refill exhausted open schedules, then pick the earliest-due
        // request across both disciplines.
        for o in opens.iter_mut() {
            if !o.primed {
                o.due = o.arrivals.next_arrival().unwrap_or(u64::MAX);
                o.primed = true;
            }
        }
        let open_best = opens
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.due)
            .map(|(i, o)| (o.due, i));
        let closed_best = closeds
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.due)
            .map(|(i, c)| (c.due, i));
        let (due, pick_open) = match (open_best, closed_best) {
            (None, None) => return out, // no load assigned to this worker
            (Some((d, _)), None) => (d, true),
            (None, Some((d, _))) => (d, false),
            (Some((od, _)), Some((cd, _))) => {
                if od <= cd {
                    (od, true)
                } else {
                    (cd, false)
                }
            }
        };
        if due >= cfg.run_ns || due == u64::MAX {
            return out;
        }
        if due > now {
            wait_until(start, due);
        }
        let (tenant, object, is_open) = if pick_open {
            let i = open_best.expect("picked open").1;
            let o = &mut opens[i];
            o.primed = false;
            (
                o.tenant,
                cfg.tenants[o.tenant].first_object + o.zipf.sample(),
                true,
            )
        } else {
            let i = closed_best.expect("picked closed").1;
            let c = &mut closeds[i];
            (
                c.tenant,
                cfg.tenants[c.tenant].first_object + c.zipf.sample(),
                false,
            )
        };
        let tcfg = &cfg.tenants[tenant];
        let deadline = (tcfg.deadline_ns > 0).then(|| Duration::from_nanos(tcfg.deadline_ns));
        let dispatched = start.elapsed().as_nanos() as u64;
        let mut finished = dispatched;
        match svc.acquire(object, deadline) {
            Some(guard) => {
                let granted = start.elapsed().as_nanos() as u64;
                if tcfg.hold_ns > 0 {
                    wait_until(start, granted + tcfg.hold_ns);
                }
                drop(guard);
                finished = start.elapsed().as_nanos() as u64;
                out.acquires += 1;
                // Open latency runs from the *scheduled* arrival so
                // backlog is charged to the tail; closed latency runs
                // from dispatch (the client wasn't asking earlier).
                let from = if is_open { due } else { dispatched };
                out.samples.push((tenant, granted.saturating_sub(from)));
            }
            None => {
                out.aborts += 1;
                out.aborts_by_tenant[tenant] += 1;
            }
        }
        if !pick_open {
            let i = closed_best.expect("picked closed").1;
            let c = &mut closeds[i];
            c.due = finished + think_time(tcfg.think_ns_or_zero(), &mut c.think_state);
        }
    }
}

impl TenantConfig {
    /// Closed-loop think time, or 0 for open-loop tenants (which never
    /// consult it).
    fn think_ns_or_zero(&self) -> u64 {
        match self.load {
            Load::Closed { think_ns, .. } => think_ns,
            Load::Open { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ArrivalCurve;

    fn quick_cfg() -> NativeRunConfig {
        let mut cfg = NativeRunConfig::new(64, 4, 7);
        cfg.threads = 2;
        cfg.run_ns = 20_000_000; // 20 ms
        cfg.tenants.push(TenantConfig {
            first_object: 0,
            objects: 8,
            theta: 0.9,
            load: Load::Closed {
                clients: 4,
                think_ns: 1_000,
            },
            hold_ns: 500,
            deadline_ns: 0,
        });
        cfg.tenants.push(TenantConfig {
            first_object: 8,
            objects: 56,
            theta: 0.2,
            load: Load::Open {
                curve: ArrivalCurve::Constant {
                    rate_per_sec: 50_000.0,
                },
            },
            hold_ns: 200,
            deadline_ns: 1_000_000,
        });
        cfg
    }

    #[test]
    fn driver_produces_work_and_consistent_counters() {
        let cfg = quick_cfg();
        let r = run_native(&cfg);
        assert!(r.acquires > 0, "no grants in 20ms");
        assert_eq!(r.wait.count, r.acquires);
        assert_eq!(r.tenant_wait.len(), cfg.tenants.len());
        let split: u64 = r.tenant_wait.iter().map(|h| h.count).sum();
        assert_eq!(split, r.acquires, "per-tenant split loses samples");
        assert!(
            r.tenant_wait.iter().all(|h| h.count > 0),
            "a tenant got no grants"
        );
        let adjusted: u64 = r.tenant_adjusted.iter().map(|h| h.count).sum();
        assert_eq!(
            adjusted,
            r.acquires + r.aborts,
            "adjusted histograms must hold every grant plus every shed request"
        );
        assert_eq!(r.aborts_by_tenant.iter().sum::<u64>(), r.aborts);
        for t in 0..cfg.tenants.len() {
            assert_eq!(
                r.tenant_adjusted[t].count,
                r.tenant_wait[t].count + r.aborts_by_tenant[t],
                "tenant {t}: adjusted = completed + shed"
            );
        }
        assert!(r.elapsed_ns >= cfg.run_ns);
        assert_eq!(r.threads, 2);
        assert!(r.p50_ns() <= r.p99_ns() && r.p99_ns() <= r.p999_ns());
        let _ = r.tenant_p999_ns(0);
        assert_eq!(r.inflations - r.deflations, r.live_inflated);
        assert!(r.stampedes().is_empty(), "limiter bound violated");
    }

    #[test]
    fn static_tts_arm_never_inflates() {
        let mut cfg = quick_cfg();
        cfg.mode = ArenaMode::StaticTts;
        let r = run_native(&cfg);
        assert!(r.acquires > 0);
        assert_eq!(r.inflations, 0);
        assert_eq!(r.footprint.hot_objects, 0);
    }

    #[test]
    fn tenant_range_outside_arena_panics() {
        let mut cfg = NativeRunConfig::new(8, 1, 1);
        cfg.tenants.push(TenantConfig {
            first_object: 4,
            objects: 8,
            theta: 0.0,
            load: Load::Closed {
                clients: 1,
                think_ns: 0,
            },
            hold_ns: 0,
            deadline_ns: 0,
        });
        assert!(std::panic::catch_unwind(|| run_native(&cfg)).is_err());
    }
}
