//! Seeded xorshift64* streams (the simulator's generator, replicated
//! here so workload draws never depend on `alewife-sim` internals).
//! Every generator in the service owns its own stream, so adding a
//! tenant never perturbs another tenant's draws.

/// xorshift64* step. A zero state is replaced by a fixed non-zero
/// constant, so a zero seed is valid and deterministic.
pub(crate) fn next(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform value in `[0, bound)`; `bound == 0` yields 0.
pub(crate) fn below(state: &mut u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    next(state) % bound
}

/// Uniform `f64` in `(0, 1]` (never 0, so `ln` is always finite).
pub(crate) fn unit(state: &mut u64) -> f64 {
    let bits = next(state) >> 11; // 53 significant bits
    (bits + 1) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_in_half_open_range() {
        let mut s = 9;
        for _ in 0..1_000 {
            let u = unit(&mut s);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let (mut a, mut b, mut c) = (5u64, 5u64, 6u64);
        let xs: Vec<u64> = (0..16).map(|_| next(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| next(&mut b)).collect();
        let zs: Vec<u64> = (0..16).map(|_| next(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
