//! `lock-service`: a multi-tenant adaptive lock service.
//!
//! The crates below this one answer "how does *one* reactive lock
//! switch protocols?" (Lim & Agarwal, ASPLOS '94). This crate answers
//! the operational question a real system asks next: what does it take
//! to host **millions** of such adaptive objects at once — and keep
//! per-object memory flat, keep tail latency bounded, and keep a load
//! spike from stampeding every hot object through a protocol switch at
//! the same instant?
//!
//! The pieces:
//!
//! * [`arena`] — the sharded [`ObjectArena`]: one packed `u64` slot
//!   word per object at rest ([`slot`] defines the layout); journals,
//!   stats, and inflated locks are lazily allocated for hot objects
//!   only, and [`Footprint`] measures the result.
//! * [`workload`] — tenants: [`Zipf`] object skew, open-/closed-loop
//!   [`Load`], and constant/diurnal/bursty [`ArrivalCurve`]s, all
//!   seeded and deterministic.
//! * [`limiter`] — the per-shard switch-rate [`TokenBucket`], and
//! * [`oracle`] — the offline no-stampede checker that holds it to its
//!   window bound from the switch log alone.
//! * [`exec`] — the deterministic virtual-time executor
//!   ([`ServiceSim`]) behind every CI-gated number: p50/p99/p999
//!   acquire latency, switch and abort rates, bytes/object.
//! * [`native`] — the threaded executor ([`NativeService`]): real
//!   threads over real kernel-backed [`reactive_native::ReactiveLock`]s
//!   via lock inflation and (for durably calm objects) deflation.
//! * [`drive`] — the native load driver ([`run_native`]): worker
//!   threads replaying the same tenant configs against a
//!   [`NativeService`], reporting measured wall-clock percentiles next
//!   to the simulated ones.
//!
//! Quick taste (the bench scenarios in `crates/bench` are the real
//! entry point):
//!
//! ```
//! use lock_service::{run_service, ArenaMode, Load, ServiceConfig, TenantConfig, Zipf};
//!
//! let mut cfg = ServiceConfig::new(10_000, 8, 42);
//! cfg.tenants.push(TenantConfig {
//!     first_object: 0,
//!     objects: 10_000,
//!     theta: 0.9,
//!     load: Load::Closed { clients: 16, think_ns: 500 },
//!     hold_ns: 200,
//!     deadline_ns: 0,
//! });
//! let report = run_service(cfg);
//! assert!(report.acquires > 0);
//! assert!(report.stampedes().is_empty());
//! ```

#![deny(missing_docs)]

pub mod arena;
pub mod drive;
pub mod exec;
pub mod limiter;
pub mod native;
pub mod oracle;
mod rng;
pub mod slot;
pub mod workload;

pub use arena::{Footprint, ObjectArena};
pub use drive::{run_native, NativeReport, NativeRunConfig};
pub use exec::{run_service, ArenaMode, ServiceConfig, ServiceReport, ServiceSim};
pub use limiter::{LimiterConfig, TokenBucket};
pub use native::{NativeGuard, NativeService};
pub use oracle::{check_no_stampede, Stampede, SwitchRecord};
pub use workload::{ArrivalCurve, Arrivals, Load, TenantConfig, Zipf};
