//! The native threaded executor: real threads, real kernel-backed
//! reactive locks, lock inflation *and deflation*.
//!
//! Where [`crate::exec`] simulates the arena under virtual time (and
//! drives every CI-gated claim), this executor runs it for real: the
//! slot word *is* the lock in the cold path, and a hot object is
//! **inflated** — promoted to a full [`reactive_native::ReactiveLock`]
//! whose switching kernel then adapts between its TTS and queue
//! protocols on its own. The JVM's thin/fat monitor split is the same
//! shape; here the fat lock is the paper's reactive lock.
//!
//! Promotion protocol (the step that must not break mutual exclusion):
//! only the thread that currently owns the flat `HELD` bit may inflate.
//! At release time, instead of clearing `HELD`, it builds the reactive
//! lock, installs it in the slab, and publishes `INFLATED | index` in a
//! single release store, carrying the per-object bits
//! ([`slot::carry_bits`]) of the word it replaces. Flat acquisition is
//! a CAS that asserts `INFLATED` is clear in the expected word, so no
//! thread can win the flat path once the word is inflated, and the word
//! is only replaced while its owner holds it — there is never a moment
//! with two live lock identities.
//!
//! Contention evidence accrues at *release* time through the `WAITERS`
//! bit: a flat spinner CASes `WAITERS` into the word once per hold, the
//! releasing owner folds it into the contended streak, and the next
//! winner either clears it (uncontended win) or — having itself lost a
//! CAS or seen the word held — re-asserts it into its own hold.
//! Observing at release (rather than at the winner's acquire, as the
//! virtual executor can afford to) defeats the capture effect: a
//! releaser that immediately re-wins its own lock would otherwise reset
//! acquirer-observed streaks forever. The fought-win re-assert covers
//! the opposite degenerate schedule, a single core draining a backlog
//! of descheduled waiters, where no spinner is ever running *during* a
//! hold to register itself. Streaks still miss one pathology — capture
//! on an oversubscribed host, where the starved spinner runs once per
//! scheduling quantum and the captor's thousands of calm releases in
//! between wipe the streak — so a fought win whose measured spin wait
//! crossed `LONG_WAIT_SPINS` seeds the full inflation streak in its
//! winning CAS ([`slot::saturate_contended`]): the paper's reactive
//! rule, switching on observed waiting time, and the winner holds the
//! lock until its own release reads the evidence.
//!
//! Demotion (deflation) is the reverse door, and what makes the slot
//! word's `MODE`/calm-streak bits real on the native path. Inflated
//! acquirers first *register* on the slot word (a `+= REF_ONE` CAS
//! while `INFLATED` is set) before touching the slab, so the word's
//! in-flight count pins the slab entry. A releasing holder whose
//! registration is the only one (`inflight == 1`) observes a calm
//! grant; once the kernel itself has settled back into its TTS protocol
//! and the calm streak crosses `DEFLATE_STREAK`, the holder asks the
//! shard limiter for a token and attempts the demotion CAS: the exact
//! word it loaded (ref == 1, its own) against the flat
//! [`slot::deflated`] word. Registration and demotion arbitrate on the
//! same word, so a racing acquirer either registers first (the demotion
//! CAS fails, the holder releases normally) or loses its registration
//! CAS (and retries against the now-flat word). On success the holder
//! releases the kernel lock — provably uncontended: it held the lock,
//! so every earlier holder finished, and ref == 1 means no registered
//! acquirer is en route — and retires the slab entry to a free list for
//! the next inflation to reuse.
//!
//! Deadlines are honest but shallow here: a deadline bounds the flat
//! spin (checked every `DEADLINE_CHECK_SPINS` iterations, so its
//! precision is a few microseconds, not a few nanoseconds) and is
//! re-checked at inflated-path *admission*; once a thread registers, it
//! is committed (the sim's abortable queues model mid-wait abort).
//! Inflations and deflations are gated by the same per-shard
//! [`TokenBucket`] as simulated switches and logged as
//! [`SwitchRecord`]s, so the no-stampede oracle applies to native runs
//! too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use reactive_native::reactive::{PROTO_QUEUE, PROTO_TTS};
use reactive_native::ReactiveLock;

use crate::arena::{Footprint, ObjectArena};
use crate::exec::ArenaMode;
use crate::limiter::{LimiterConfig, TokenBucket};
use crate::oracle::SwitchRecord;
use crate::slot;

/// Contended flat grants (streak) after which the releasing owner
/// inflates the object.
const INFLATE_STREAK: u8 = 3;
/// Calm inflated grants (streak) after which a releasing holder — with
/// the kernel already back in its TTS protocol — deflates the object.
const DEFLATE_STREAK: u8 = 8;
/// Flat spin iterations between deadline checks / yields; a power of
/// two so the cadence test is a mask, and small enough that deadline
/// precision stays in the low microseconds.
const DEADLINE_CHECK_SPINS: u32 = 64;
/// Initial and maximum per-iteration backoff (in `spin_loop` hints) of
/// the flat spin; doubling between iterations keeps the contended CAS
/// rate — and therefore cache-line bouncing — bounded.
const BACKOFF_INIT: u32 = 4;
const BACKOFF_MAX: u32 = 256;
/// Flat spin iterations past which a wait is *pathological* and the
/// eventual winner seeds the full inflation evidence at once (the
/// paper's reactive rule applied to the arena: switch on observed
/// waiting time). Streaks alone cannot catch lock capture on an
/// oversubscribed host — a starved spinner gets scheduled roughly once
/// per quantum, so the capturing holder's thousands of uncontended
/// releases in between wipe the streak faster than the single
/// contended release per quantum can build it, while the spinner's
/// wait grows without bound. At 8 yield cadences of maximum backoff
/// this is orders of magnitude past any healthy multi-core wait for
/// the microsecond-scale holds the service targets.
const LONG_WAIT_SPINS: u32 = 8 * DEADLINE_CHECK_SPINS;

/// Per-shard native state: the switch limiter and the inflation/
/// deflation log.
struct ShardNative {
    limiter: Option<TokenBucket>,
    log: Vec<SwitchRecord>,
}

/// The inflated-lock slab: a slot word's index field points in here.
/// Entries are retired (not popped) on deflation so live indices stay
/// stable, and retired indices are recycled through `free` — which is
/// what keeps the slab bounded by the *peak concurrent* hot set rather
/// than the total number of inflations ever.
struct Slab {
    entries: Vec<Option<Arc<ReactiveLock>>>,
    free: Vec<u32>,
    /// Kernel switch counts of retired locks, folded in at retirement
    /// so `lock_switches` survives reclamation.
    retired_switches: u64,
}

impl Slab {
    fn insert(&mut self, lock: Arc<ReactiveLock>) -> u32 {
        if let Some(idx) = self.free.pop() {
            debug_assert!(
                self.entries[idx as usize].is_none(),
                "free list pointed at a live slab entry"
            );
            self.entries[idx as usize] = Some(lock);
            idx
        } else {
            // The slot word's index field is 32 bits: a slab past 2³²
            // entries would silently alias an earlier lock. Free-list
            // reuse makes growth track the peak hot set, so this bound
            // is unreachable in practice — but assert it at the push.
            let idx = u32::try_from(self.entries.len())
                .expect("inflation slab overflow: the slot index field is 32 bits");
            self.entries.push(Some(lock));
            idx
        }
    }

    fn retire(&mut self, idx: u32) -> Arc<ReactiveLock> {
        let lock = self.entries[idx as usize]
            .take()
            .expect("retiring an already-retired slab entry");
        self.free.push(idx);
        lock
    }

    fn live(&self) -> u64 {
        self.entries.iter().filter(|e| e.is_some()).count() as u64
    }
}

/// A multi-tenant arena served by real threads.
pub struct NativeService {
    arena: ObjectArena,
    /// `RwLock` because reads (every inflated acquire) vastly outnumber
    /// writes (one per inflation or deflation).
    slab: RwLock<Slab>,
    shards: Vec<Mutex<ShardNative>>,
    mode: ArenaMode,
    epoch: Instant,
    aborts: AtomicU64,
    inflations: AtomicU64,
    deflations: AtomicU64,
}

/// Outcome of a demotion attempt (see [`NativeService::try_deflate`]).
enum Deflate {
    /// The flat word is published and the slab entry retired.
    Done,
    /// The shard limiter denied the token.
    Denied,
    /// A racing registration changed the word (carried here from the
    /// failed CAS).
    Raced(u64),
}

/// RAII guard for a native acquisition; releases on drop.
pub struct NativeGuard<'a> {
    svc: &'a NativeService,
    object: u64,
    /// `None` while the object was flat; `Some` when the acquisition
    /// went through an inflated reactive lock.
    held: Option<(Arc<ReactiveLock>, reactive_native::reactive::Held)>,
}

impl NativeService {
    /// A fresh adaptive arena of flat (deflated, TTS-mode) objects.
    pub fn new(objects: u64, shards: u32, limiter: Option<LimiterConfig>) -> Self {
        Self::with_mode(objects, shards, limiter, ArenaMode::Adaptive)
    }

    /// A fresh arena pinned to a protocol-selection regime: `Adaptive`
    /// inflates hot objects and deflates calm ones; `StaticTts` never
    /// inflates (every object stays a flat TTS-like spin word);
    /// `StaticQueue` inflates every object on its first release and
    /// never deflates.
    pub fn with_mode(
        objects: u64,
        shards: u32,
        limiter: Option<LimiterConfig>,
        mode: ArenaMode,
    ) -> Self {
        NativeService {
            arena: ObjectArena::new(objects, shards),
            slab: RwLock::new(Slab {
                entries: Vec::new(),
                free: Vec::new(),
                retired_switches: 0,
            }),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardNative {
                        limiter: limiter.map(TokenBucket::new),
                        log: Vec::new(),
                    })
                })
                .collect(),
            mode,
            epoch: Instant::now(),
            aborts: AtomicU64::new(0),
            inflations: AtomicU64::new(0),
            deflations: AtomicU64::new(0),
        }
    }

    /// Contended streak at which a releasing owner inflates, or `None`
    /// if this regime never inflates.
    fn inflate_threshold(&self) -> Option<u8> {
        match self.mode {
            ArenaMode::Adaptive => Some(INFLATE_STREAK),
            ArenaMode::StaticQueue => Some(0),
            ArenaMode::StaticTts => None,
        }
    }

    /// Nanoseconds since service start (the native switch-log clock).
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Acquire `object`, optionally bounded by a deadline. `None` means
    /// the deadline expired before the acquisition was admitted.
    pub fn acquire(&self, object: u64, deadline: Option<Duration>) -> Option<NativeGuard<'_>> {
        let limit = deadline.map(|d| Instant::now() + d);
        let mut spins: u32 = 0;
        let mut backoff: u32 = BACKOFF_INIT;
        // True once this call has lost a CAS or seen the word held: the
        // eventual win then pre-seeds WAITERS into its own hold, so a
        // drained backlog keeps the streak alive even when the waiters
        // behind it are descheduled (the single-core case, where no
        // spinner is running during a short hold to register itself).
        let mut fought = false;
        loop {
            // Acquire: pairs with the inflation publish store_release,
            // so an INFLATED word guarantees the slab entry it indexes
            // is visible, and a clear HELD bit guarantees the previous
            // holder's critical section is.
            let word = self.arena.load_acquire(object);
            if word & slot::INFLATED != 0 {
                // Admission check: registering commits us, so the
                // deadline is tested before the registration CAS.
                if let Some(t) = limit {
                    if Instant::now() >= t {
                        // order: Relaxed — statistics counter.
                        self.aborts.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                debug_assert!(
                    slot::inflight(word) < u32::from(u16::MAX),
                    "in-flight refcount saturated"
                );
                // Register before touching the slab: the in-flight
                // count pins the entry against deflation (the demotion
                // CAS requires the count to be the holder's own 1). A
                // failed CAS means the word moved — possibly deflated —
                // so reload and re-dispatch.
                if self.arena.cas(object, word, word + slot::REF_ONE).is_err() {
                    continue;
                }
                let lock = {
                    let slab = self.slab.read().expect("inflation slab poisoned");
                    Arc::clone(
                        slab.entries[slot::index(word) as usize]
                            .as_ref()
                            .expect("registered slab index was retired"),
                    )
                };
                let held = lock.acquire();
                return Some(NativeGuard {
                    svc: self,
                    object,
                    held: Some((lock, held)),
                });
            }
            if word & slot::HELD == 0 {
                // Win the flat path. An uncontended win consumes the
                // WAITERS evidence (the releaser already folded it into
                // the streaks); a fought win re-asserts it, charging
                // its own hold with the contention it just drained. A
                // win after a *pathological* wait additionally seeds
                // the full inflation streak: the winner holds the lock
                // until its own release reads that evidence, so a
                // capturing peer gets no window to wipe it.
                let next = if fought {
                    let w = if spins >= LONG_WAIT_SPINS {
                        slot::saturate_contended(word, INFLATE_STREAK)
                    } else {
                        word
                    };
                    w | slot::HELD | slot::WAITERS
                } else {
                    (word | slot::HELD) & !slot::WAITERS
                };
                if self.arena.cas(object, word, next).is_ok() {
                    return Some(NativeGuard {
                        svc: self,
                        object,
                        held: None,
                    });
                }
                fought = true;
                continue;
            }
            fought = true;
            // Held by someone else: register this hold's contention
            // evidence once, then spin. The releaser reads WAITERS as
            // "this grant was contended".
            if word & slot::WAITERS == 0 {
                let _ = self.arena.cas(object, word, word | slot::WAITERS);
                continue;
            }
            for _ in 0..backoff {
                std::hint::spin_loop();
            }
            backoff = (backoff * 2).min(BACKOFF_MAX);
            spins = spins.wrapping_add(1);
            if spins & (DEADLINE_CHECK_SPINS - 1) == 0 {
                // Deadline checks and yields ride the same cadence:
                // Instant::now() on every iteration would dominate the
                // contended fast path (the satellite bug this fixes),
                // and the yield keeps progress on oversubscribed hosts.
                if let Some(t) = limit {
                    if Instant::now() >= t {
                        // order: Relaxed — statistics counter.
                        self.aborts.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                std::thread::yield_now();
            }
        }
    }

    /// Release a flat hold: fold this hold's `WAITERS` evidence into
    /// the streaks and clear `HELD` — or, if the object has proven hot,
    /// inflate.
    fn release_flat(&self, object: u64) {
        let mut word = self.arena.load(object);
        debug_assert!(word & slot::HELD != 0, "releasing an unheld flat object");
        // The inflation decision reads the streak as it stood when this
        // release began (the evidence that crossed the threshold), not
        // post-observation — so a streak seeded directly (tests) and
        // one accrued through WAITERS behave identically.
        if self
            .inflate_threshold()
            .is_some_and(|t| slot::contended_streak(word) >= t)
        {
            self.try_inflate(object, word);
            return;
        }
        loop {
            let contended = word & slot::WAITERS != 0;
            let next = slot::observe(word, contended) & !slot::HELD;
            match self.arena.cas(object, word, next) {
                Ok(_) => return,
                // A spinner registered WAITERS between our load and
                // CAS; retry against the updated word so the evidence
                // is not lost.
                Err(w) => word = w,
            }
        }
    }

    /// Attempt the promotion while owning `HELD`. Publishes either the
    /// inflated word (token granted) or the cleared-streak backoff word
    /// (token denied); either way the flat hold ends.
    fn try_inflate(&self, object: u64, word: u64) {
        let shard = self.arena.shard_of(object);
        let now = self.now_ns();
        let mut sh = self.shards[shard as usize].lock().expect("shard poisoned");
        let allowed = match sh.limiter.as_mut() {
            Some(b) => b.try_acquire(now),
            None => true,
        };
        if !allowed {
            // Denied: back off by clearing the evidence (and HELD). A
            // blind store may drop a concurrent WAITERS registration,
            // which only costs one hold's worth of already-discarded
            // evidence.
            self.arena
                .store_release(object, slot::clear_streaks(word) & !slot::HELD);
            return;
        }
        let lock = Arc::new(
            ReactiveLock::builder()
                // Hot from birth: start in the queue protocol; the
                // kernel will switch back if it calms down.
                .initial_protocol(PROTO_QUEUE)
                .build(),
        );
        let index = {
            let mut slab = self.slab.write().expect("inflation slab poisoned");
            slab.insert(lock)
        };
        sh.log.push(SwitchRecord {
            time_ns: now,
            shard,
            object,
            from: PROTO_TTS.0,
            to: PROTO_QUEUE.0,
        });
        drop(sh);
        // order: Relaxed — statistics counter.
        self.inflations.fetch_add(1, Ordering::Relaxed);
        // Publish the inflated identity and drop HELD in one release
        // store, carrying the per-object bits (HOT) of the word this
        // replaces; we own HELD, so the only concurrent writes are
        // conditional WAITERS CASes, which fail once this word lands,
        // and Release orders the slab insert above before the word
        // that indexes it.
        self.arena.store_release(
            object,
            slot::with_index(
                slot::with_mode(slot::carry_bits(word), slot::MODE_QUEUE),
                index,
            ),
        );
    }

    /// Release an inflated hold: sync the word's mode field to the
    /// kernel, fold in a calm/contended observation, and — when the
    /// object has proven durably calm — deflate it back to a flat word.
    fn release_inflated(
        &self,
        object: u64,
        lock: Arc<ReactiveLock>,
        held: reactive_native::reactive::Held,
    ) {
        let mut word = self.arena.load(object);
        loop {
            debug_assert!(
                word & slot::INFLATED != 0,
                "inflated release on a flat word"
            );
            debug_assert!(slot::inflight(word) >= 1, "release without a registration");
            // Calm iff our registration is the only one: no other
            // acquirer is holding, queued, or en route.
            let calm = slot::inflight(word) == 1;
            let kproto = lock.current_protocol();
            let kmode = if kproto == PROTO_TTS {
                slot::MODE_TTS
            } else {
                slot::MODE_QUEUE
            };
            let observed = if slot::mode(word) == kmode {
                slot::observe(word, !calm)
            } else {
                // The kernel switched protocols during this hold: sync
                // the word's mode field, resetting the streaks exactly
                // like the kernel's own post-commit policy reset.
                slot::with_mode(word, kmode)
            };
            if self.mode == ArenaMode::Adaptive
                && calm
                && kproto == PROTO_TTS
                && slot::calm_streak(observed) >= DEFLATE_STREAK
            {
                match self.try_deflate(object, word, &lock) {
                    // The flat word is published and the slab entry
                    // retired; finish by releasing the kernel lock —
                    // provably uncontended (we held it, and ref == 1
                    // meant no registered acquirer was en route).
                    Deflate::Done => {
                        lock.release(held);
                        return;
                    }
                    // Denied by the limiter: back off by clearing the
                    // evidence instead of observing, so the object
                    // re-accumulates calm before asking again.
                    Deflate::Denied => {
                        let next = slot::clear_streaks(word) - slot::REF_ONE;
                        match self.arena.cas(object, word, next) {
                            Ok(_) => {
                                lock.release(held);
                                return;
                            }
                            Err(w) => {
                                word = w;
                                continue;
                            }
                        }
                    }
                    // A racing registration changed the word; re-decide
                    // against it (calm is now false).
                    Deflate::Raced(w) => {
                        word = w;
                        continue;
                    }
                }
            }
            // Normal release: the deregistration rides the same CAS as
            // the streak update, so the word changes on every release
            // and a stale registration CAS can never succeed late.
            let next = observed - slot::REF_ONE;
            match self.arena.cas(object, word, next) {
                Ok(_) => {
                    lock.release(held);
                    return;
                }
                Err(w) => word = w,
            }
        }
    }

    /// Attempt the demotion CAS under a shard-limiter token. On
    /// [`Deflate::Done`] the flat word is published and the slab entry
    /// retired; the caller still holds (and must release) the kernel
    /// lock. The caller keeps sole responsibility for deregistering on
    /// the other two outcomes.
    fn try_deflate(&self, object: u64, word: u64, lock: &Arc<ReactiveLock>) -> Deflate {
        let shard = self.arena.shard_of(object);
        let now = self.now_ns();
        let mut sh = self.shards[shard as usize].lock().expect("shard poisoned");
        let allowed = match sh.limiter.as_mut() {
            Some(b) => b.try_acquire(now),
            None => true,
        };
        if !allowed {
            return Deflate::Denied;
        }
        // The demotion CAS: the exact word we based the decision on
        // (ref == 1, ours) against the flat TTS word. A racing
        // registration bumps the count first and fails this CAS — the
        // word is the arbiter.
        match self.arena.cas(object, word, slot::deflated(word)) {
            Ok(_) => {
                // The record captures the representation demotion
                // (inflated, queue-capable → flat, TTS-like), mirroring
                // the inflation record — the word's mode field already
                // reached TTS while the streak accrued.
                sh.log.push(SwitchRecord {
                    time_ns: now,
                    shard,
                    object,
                    from: PROTO_QUEUE.0,
                    to: PROTO_TTS.0,
                });
                drop(sh);
                // order: Relaxed — statistics counter.
                self.deflations.fetch_add(1, Ordering::Relaxed);
                let mut slab = self.slab.write().expect("inflation slab poisoned");
                let retired = slab.retire(slot::index(word));
                debug_assert!(Arc::ptr_eq(&retired, lock));
                slab.retired_switches += retired.switches();
                Deflate::Done
            }
            // A registration won the race; the token is burned (the
            // limiter meters attempts, and a lost demotion race is
            // rare enough not to matter for the window bound).
            Err(w) => Deflate::Raced(w),
        }
    }

    /// Total deadline aborts so far.
    pub fn aborts(&self) -> u64 {
        // order: Relaxed — statistics counter.
        self.aborts.load(Ordering::Relaxed)
    }

    /// Objects inflated so far (cumulative; reuse of a retired slab
    /// entry counts as a new inflation).
    pub fn inflations(&self) -> u64 {
        // order: Relaxed — statistics counter.
        self.inflations.load(Ordering::Relaxed)
    }

    /// Objects deflated back to a flat word so far.
    pub fn deflations(&self) -> u64 {
        // order: Relaxed — statistics counter.
        self.deflations.load(Ordering::Relaxed)
    }

    /// Currently live inflated locks (inflations minus deflations, as
    /// counted in the slab).
    pub fn live_inflated(&self) -> u64 {
        self.slab.read().expect("inflation slab poisoned").live()
    }

    /// Physical slab length including retired entries — stays at the
    /// peak live count when the free list recycles, which is how the
    /// reuse claim is tested.
    pub fn slab_entries(&self) -> u64 {
        self.slab
            .read()
            .expect("inflation slab poisoned")
            .entries
            .len() as u64
    }

    /// Kernel-internal protocol switches across all inflated locks,
    /// live and retired.
    pub fn lock_switches(&self) -> u64 {
        let slab = self.slab.read().expect("inflation slab poisoned");
        slab.retired_switches
            + slab
                .entries
                .iter()
                .flatten()
                .map(|l| l.switches())
                .sum::<u64>()
    }

    /// Drain a copy of the combined per-shard switch (inflation/
    /// deflation) log.
    pub fn switch_log(&self) -> Vec<SwitchRecord> {
        let mut out = Vec::new();
        for sh in &self.shards {
            out.extend(sh.lock().expect("shard poisoned").log.iter().copied());
        }
        out.sort_unstable_by_key(|r| (r.time_ns, r.shard, r.object));
        out
    }

    /// Measured footprint: slots + shard fixed state + live inflated
    /// locks. Deflation shrinks `hot_bytes`: a retired entry frees its
    /// lock and leaves only the 8-byte `None` slot awaiting reuse.
    pub fn footprint(&self) -> Footprint {
        let slab = self.slab.read().expect("inflation slab poisoned");
        let per_lock =
            (std::mem::size_of::<ReactiveLock>() + std::mem::size_of::<Arc<ReactiveLock>>()) as u64;
        let live = slab.live();
        let slab_slots = (slab.entries.len() * std::mem::size_of::<Option<Arc<ReactiveLock>>>()
            + slab.free.len() * std::mem::size_of::<u32>()) as u64;
        let log_bytes: u64 = self
            .shards
            .iter()
            .map(|s| {
                s.lock().expect("shard poisoned").log.len() as u64
                    * std::mem::size_of::<SwitchRecord>() as u64
            })
            .sum();
        Footprint {
            objects: self.arena.objects(),
            slot_bytes: self.arena.resident_bytes(),
            shard_bytes: self.shards.len() as u64
                * std::mem::size_of::<Mutex<ShardNative>>() as u64,
            hot_bytes: live * per_lock + slab_slots + log_bytes,
            hot_objects: live,
        }
    }
}

impl Drop for NativeGuard<'_> {
    fn drop(&mut self) {
        match self.held.take() {
            Some((lock, held)) => self.svc.release_inflated(self.object, lock, held),
            None => self.svc.release_flat(self.object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seed `object`'s contended streak to the inflation threshold
    /// while holding it flat (the single-threaded stand-in for streaks
    /// accrued through real WAITERS contention — which the stress tests
    /// exercise with racing threads).
    fn seed_hot(svc: &NativeService, object: u64, extra_bits: u64) {
        let _g = svc.acquire(object, None).unwrap();
        let mut w = svc.arena.load(object) | extra_bits;
        for _ in 0..INFLATE_STREAK {
            w = slot::observe(w, true);
        }
        svc.arena.store(object, w);
    }

    #[test]
    fn flat_acquire_release_roundtrip() {
        let svc = NativeService::new(8, 2, None);
        {
            let _g = svc.acquire(3, None).unwrap();
            assert_ne!(svc.arena.load(3) & slot::HELD, 0);
        }
        assert_eq!(svc.arena.load(3) & slot::HELD, 0);
        assert_eq!(svc.inflations(), 0);
    }

    #[test]
    fn contended_object_inflates_once() {
        let svc = NativeService::new(1, 1, None);
        seed_hot(&svc, 0, 0);
        assert_eq!(svc.inflations(), 1);
        assert_eq!(svc.switch_log().len(), 1);
        // Subsequent acquisitions go through the reactive lock.
        let g = svc.acquire(0, None).unwrap();
        assert!(g.held.is_some());
    }

    #[test]
    fn inflation_carries_the_hot_bit() {
        let svc = NativeService::new(1, 1, None);
        seed_hot(&svc, 0, slot::HOT);
        let w = svc.arena.load(0);
        assert_ne!(w & slot::INFLATED, 0);
        // Regression: the publish word used to be rebuilt from 0,
        // silently dropping per-object state like the hot-stat marker.
        assert_ne!(w & slot::HOT, 0, "inflation must carry the HOT bit");
        assert_eq!(slot::mode(w), slot::MODE_QUEUE);
    }

    #[test]
    fn waiters_evidence_accrues_at_release() {
        let svc = NativeService::new(1, 1, None);
        for expected in 1..=2u8 {
            let _g = svc.acquire(0, None).unwrap();
            // A spinner would CAS WAITERS in; do it by hand (the real
            // races are covered by the stress tests).
            let w = svc.arena.load(0);
            svc.arena.store(0, w | slot::WAITERS);
            drop(_g);
            assert_eq!(slot::contended_streak(svc.arena.load(0)), expected);
        }
        // The next winner consumes the WAITERS bit...
        let w = svc.arena.load(0);
        svc.arena.store(0, w | slot::WAITERS);
        let g = svc.acquire(0, None).unwrap();
        assert_eq!(svc.arena.load(0) & slot::WAITERS, 0);
        drop(g);
        // ...so an uncontended hold resets the streak.
        assert_eq!(slot::contended_streak(svc.arena.load(0)), 0);
        assert_eq!(slot::calm_streak(svc.arena.load(0)), 1);
    }

    #[test]
    fn expired_deadline_aborts_without_acquiring() {
        let svc = NativeService::new(1, 1, None);
        let _g = svc.acquire(0, None).unwrap();
        let r = svc.acquire(0, Some(Duration::from_micros(200)));
        assert!(r.is_none());
        assert_eq!(svc.aborts(), 1);
    }

    #[test]
    fn limiter_denial_defers_inflation() {
        let svc = NativeService::new(
            2,
            1,
            Some(LimiterConfig {
                burst: 1,
                period_ns: u64::MAX / 2,
            }),
        );
        for obj in [0u64, 1] {
            seed_hot(&svc, obj, 0);
        }
        // Only the first release got a token; the second backed off.
        assert_eq!(svc.inflations(), 1);
        assert_eq!(svc.arena.load(1) & slot::INFLATED, 0);
        assert_eq!(slot::contended_streak(svc.arena.load(1)), 0);
    }

    #[test]
    fn calm_inflated_object_deflates_and_slab_recycles() {
        let svc = NativeService::new(1, 1, None);
        seed_hot(&svc, 0, slot::HOT);
        assert_eq!(svc.live_inflated(), 1);
        // Solo polite traffic: the kernel settles back to TTS (empty-
        // queue acquisitions), the mode field syncs, and the calm
        // streak then walks up to the deflation threshold.
        for _ in 0..100 {
            drop(svc.acquire(0, None).unwrap());
            if svc.deflations() == 1 {
                break;
            }
        }
        assert_eq!(svc.deflations(), 1, "calm object never deflated");
        let w = svc.arena.load(0);
        assert_eq!(w & slot::INFLATED, 0);
        assert_eq!(slot::mode(w), slot::MODE_TTS);
        assert_ne!(w & slot::HOT, 0, "deflation must carry the HOT bit");
        assert_eq!(svc.live_inflated(), 0);
        assert_eq!(svc.slab_entries(), 1, "retired entry stays in the slab");
        // The flat word is a real lock again...
        drop(svc.acquire(0, None).unwrap());
        // ...and re-inflation reuses the retired entry instead of
        // growing the slab.
        seed_hot(&svc, 0, 0);
        assert_eq!(svc.inflations(), 2);
        assert_eq!(svc.live_inflated(), 1);
        assert_eq!(svc.slab_entries(), 1, "free list must recycle the entry");
        assert_eq!(
            svc.switch_log().len(),
            3,
            "inflate + deflate + re-inflate are all logged"
        );
    }

    #[test]
    fn static_tts_never_inflates() {
        let svc = NativeService::with_mode(1, 1, None, ArenaMode::StaticTts);
        seed_hot(&svc, 0, 0);
        assert_eq!(svc.inflations(), 0);
        assert_eq!(svc.arena.load(0) & slot::INFLATED, 0);
    }

    #[test]
    fn static_queue_inflates_on_first_release() {
        let svc = NativeService::with_mode(1, 1, None, ArenaMode::StaticQueue);
        drop(svc.acquire(0, None).unwrap());
        assert_eq!(svc.inflations(), 1);
        // And never deflates, however calm.
        for _ in 0..100 {
            drop(svc.acquire(0, None).unwrap());
        }
        assert_eq!(svc.deflations(), 0);
        assert_eq!(svc.live_inflated(), 1);
    }
}
