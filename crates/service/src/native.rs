//! The native threaded executor: real threads, real kernel-backed
//! reactive locks, lock inflation.
//!
//! Where [`crate::exec`] simulates the arena under virtual time (and
//! drives every CI-gated claim), this executor runs it for real: the
//! slot word *is* the lock in the cold path, and a hot object is
//! **inflated** — promoted to a full [`reactive_native::ReactiveLock`]
//! whose switching kernel then adapts between its TTS and queue
//! protocols on its own. The JVM's thin/fat monitor split is the same
//! shape; here the fat lock is the paper's reactive lock.
//!
//! Promotion protocol (the step that must not break mutual exclusion):
//! only the thread that currently owns the flat `HELD` bit may inflate.
//! At release time, instead of clearing `HELD`, it builds the reactive
//! lock, pushes it into the append-only slab, and publishes
//! `INFLATED | index` in a single store. Flat acquisition is a CAS
//! that asserts `INFLATED` is clear in the expected word, so no thread
//! can win the flat path once the word is inflated, and the word is
//! only replaced while its owner holds it — there is never a moment
//! with two live lock identities. Inflation is one-way natively (the
//! virtual-time executor models switching both directions; deflating a
//! live native lock would need a quiescence scheme this demo does not
//! attempt).
//!
//! Deadlines are honest but shallow here: a deadline bounds the flat
//! spin and is re-checked at inflated-path *admission*; once a thread
//! enters the reactive lock's queue it is committed (the sim's
//! abortable queues model mid-wait abort). Inflations are gated by the
//! same per-shard [`TokenBucket`] as simulated switches and logged as
//! [`SwitchRecord`]s, so the no-stampede oracle applies to native runs
//! too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use reactive_native::reactive::{PROTO_QUEUE, PROTO_TTS};
use reactive_native::ReactiveLock;

use crate::arena::{Footprint, ObjectArena};
use crate::limiter::{LimiterConfig, TokenBucket};
use crate::oracle::SwitchRecord;
use crate::slot;

/// Contended flat acquisitions (streak) after which the releasing
/// owner inflates the object.
const INFLATE_STREAK: u8 = 3;

/// Per-shard native state: the switch limiter and the inflation log.
struct ShardNative {
    limiter: Option<TokenBucket>,
    log: Vec<SwitchRecord>,
}

/// A multi-tenant arena served by real threads.
pub struct NativeService {
    arena: ObjectArena,
    /// Append-only slab of inflated locks; a slot word's index field
    /// points in here. `RwLock` because reads (every inflated acquire)
    /// vastly outnumber writes (one per inflation, ever).
    inflated: RwLock<Vec<Arc<ReactiveLock>>>,
    shards: Vec<Mutex<ShardNative>>,
    epoch: Instant,
    aborts: AtomicU64,
}

/// RAII guard for a native acquisition; releases on drop.
pub struct NativeGuard<'a> {
    svc: &'a NativeService,
    object: u64,
    /// `None` while the object was flat; `Some` when the acquisition
    /// went through an inflated reactive lock.
    held: Option<(Arc<ReactiveLock>, reactive_native::reactive::Held)>,
}

impl NativeService {
    /// A fresh arena of flat (deflated, TTS-mode) objects.
    pub fn new(objects: u64, shards: u32, limiter: Option<LimiterConfig>) -> Self {
        NativeService {
            arena: ObjectArena::new(objects, shards),
            inflated: RwLock::new(Vec::new()),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardNative {
                        limiter: limiter.map(TokenBucket::new),
                        log: Vec::new(),
                    })
                })
                .collect(),
            epoch: Instant::now(),
            aborts: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since service start (the native switch-log clock).
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Acquire `object`, optionally bounded by a deadline. `None` means
    /// the deadline expired before the acquisition was admitted.
    pub fn acquire(&self, object: u64, deadline: Option<Duration>) -> Option<NativeGuard<'_>> {
        let limit = deadline.map(|d| Instant::now() + d);
        let mut contended = false;
        loop {
            // Acquire: pairs with release_flat's store_release, so an
            // INFLATED word guarantees the slab entry it indexes is
            // visible, and a clear HELD bit guarantees the previous
            // holder's critical section is.
            let word = self.arena.load_acquire(object);
            if word & slot::INFLATED != 0 {
                // Admission check: entering the reactive queue commits
                // us, so the deadline is tested before enqueueing.
                if let Some(t) = limit {
                    if Instant::now() >= t {
                        // order: Relaxed — statistics counter.
                        self.aborts.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                let lock = {
                    let slab = self.inflated.read().expect("inflation slab poisoned");
                    Arc::clone(&slab[slot::index(word) as usize])
                };
                let held = lock.acquire();
                return Some(NativeGuard {
                    svc: self,
                    object,
                    held: Some((lock, held)),
                });
            }
            if word & slot::HELD == 0 {
                let observed = slot::observe(word, contended);
                if self.arena.cas(object, word, observed | slot::HELD).is_ok() {
                    return Some(NativeGuard {
                        svc: self,
                        object,
                        held: None,
                    });
                }
                contended = true;
                continue;
            }
            contended = true;
            if let Some(t) = limit {
                if Instant::now() >= t {
                    // order: Relaxed — statistics counter.
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Release a flat hold: either clear `HELD`, or — if this object
    /// has proven hot and the shard limiter grants a token — inflate.
    fn release_flat(&self, object: u64) {
        let word = self.arena.load(object);
        debug_assert!(word & slot::HELD != 0, "releasing an unheld flat object");
        if slot::contended_streak(word) >= INFLATE_STREAK {
            let shard = self.arena.shard_of(object);
            let now = self.now_ns();
            let mut sh = self.shards[shard as usize].lock().expect("shard poisoned");
            let allowed = match sh.limiter.as_mut() {
                Some(b) => b.try_acquire(now),
                None => true,
            };
            if allowed {
                let lock = Arc::new(
                    ReactiveLock::builder()
                        // Hot from birth: start in the queue protocol;
                        // the kernel will switch back if it calms down.
                        .initial_protocol(PROTO_QUEUE)
                        .build(),
                );
                let index = {
                    let mut slab = self.inflated.write().expect("inflation slab poisoned");
                    slab.push(lock);
                    (slab.len() - 1) as u32
                };
                sh.log.push(SwitchRecord {
                    time_ns: now,
                    shard,
                    object,
                    from: PROTO_TTS.0,
                    to: PROTO_QUEUE.0,
                });
                // Publish the inflated identity and drop HELD in one
                // release store; we own HELD, so no flat CAS can
                // interleave, and Release orders the slab push above
                // before the word that indexes it.
                self.arena.store_release(
                    object,
                    slot::with_index(slot::with_mode(0, slot::MODE_QUEUE), index),
                );
                return;
            }
            // Denied: back off by clearing the evidence (and HELD).
            self.arena
                .store_release(object, slot::clear_streaks(word) & !slot::HELD);
            return;
        }
        self.arena.store_release(object, word & !slot::HELD);
    }

    /// Total deadline aborts so far.
    pub fn aborts(&self) -> u64 {
        // order: Relaxed — statistics counter.
        self.aborts.load(Ordering::Relaxed)
    }

    /// Objects inflated so far.
    pub fn inflations(&self) -> u64 {
        self.inflated.read().expect("inflation slab poisoned").len() as u64
    }

    /// Drain a copy of the combined per-shard switch (inflation) log.
    pub fn switch_log(&self) -> Vec<SwitchRecord> {
        let mut out = Vec::new();
        for sh in &self.shards {
            out.extend(sh.lock().expect("shard poisoned").log.iter().copied());
        }
        out.sort_unstable_by_key(|r| (r.time_ns, r.shard, r.object));
        out
    }

    /// Measured footprint: slots + shard fixed state + inflated locks.
    pub fn footprint(&self) -> Footprint {
        let slab = self.inflated.read().expect("inflation slab poisoned");
        let per_lock =
            (std::mem::size_of::<ReactiveLock>() + std::mem::size_of::<Arc<ReactiveLock>>()) as u64;
        let log_bytes: u64 = self
            .shards
            .iter()
            .map(|s| {
                s.lock().expect("shard poisoned").log.len() as u64
                    * std::mem::size_of::<SwitchRecord>() as u64
            })
            .sum();
        Footprint {
            objects: self.arena.objects(),
            slot_bytes: self.arena.resident_bytes(),
            shard_bytes: self.shards.len() as u64
                * std::mem::size_of::<Mutex<ShardNative>>() as u64,
            hot_bytes: slab.len() as u64 * per_lock + log_bytes,
            hot_objects: slab.len() as u64,
        }
    }
}

impl Drop for NativeGuard<'_> {
    fn drop(&mut self) {
        match self.held.take() {
            Some((lock, held)) => lock.release(held),
            None => self.svc.release_flat(self.object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_acquire_release_roundtrip() {
        let svc = NativeService::new(8, 2, None);
        {
            let _g = svc.acquire(3, None).unwrap();
            assert_ne!(svc.arena.load(3) & slot::HELD, 0);
        }
        assert_eq!(svc.arena.load(3) & slot::HELD, 0);
        assert_eq!(svc.inflations(), 0);
    }

    #[test]
    fn contended_object_inflates_once() {
        let svc = NativeService::new(1, 1, None);
        // Streaks only bump on contended acquires, which need a racing
        // thread; fake the streak directly, then release.
        {
            let _g = svc.acquire(0, None).unwrap();
            let w = svc.arena.load(0);
            let mut bumped = w;
            for _ in 0..INFLATE_STREAK {
                bumped = slot::observe(bumped, true);
            }
            svc.arena.store(0, bumped);
        }
        assert_eq!(svc.inflations(), 1);
        assert_eq!(svc.switch_log().len(), 1);
        // Subsequent acquisitions go through the reactive lock.
        let g = svc.acquire(0, None).unwrap();
        assert!(g.held.is_some());
    }

    #[test]
    fn expired_deadline_aborts_without_acquiring() {
        let svc = NativeService::new(1, 1, None);
        let _g = svc.acquire(0, None).unwrap();
        let r = svc.acquire(0, Some(Duration::from_micros(200)));
        assert!(r.is_none());
        assert_eq!(svc.aborts(), 1);
    }

    #[test]
    fn limiter_denial_defers_inflation() {
        let svc = NativeService::new(
            2,
            1,
            Some(LimiterConfig {
                burst: 1,
                period_ns: u64::MAX / 2,
            }),
        );
        for obj in [0u64, 1] {
            let _g = svc.acquire(obj, None).unwrap();
            let w = svc.arena.load(obj);
            let mut bumped = w;
            for _ in 0..INFLATE_STREAK {
                bumped = slot::observe(bumped, true);
            }
            svc.arena.store(obj, bumped);
        }
        // Only the first release got a token; the second backed off.
        assert_eq!(svc.inflations(), 1);
        assert_eq!(svc.arena.load(1) & slot::INFLATED, 0);
        assert_eq!(slot::contended_streak(svc.arena.load(1)), 0);
    }
}
