//! Threaded stress of the native executor: mutual exclusion must hold
//! across the flat path, the inflated path, and — the dangerous part —
//! the promotion between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lock_service::{LimiterConfig, NativeService};

/// Hammer a handful of objects from many threads while a per-object
/// `in_cs` counter checks that no two threads ever overlap inside a
/// critical section. The contention forces inflation mid-test, so the
/// flat→reactive promotion happens while the herd is racing.
#[test]
fn mutual_exclusion_survives_inflation() {
    const OBJECTS: u64 = 2;
    const THREADS: usize = 8;
    const ITERS: usize = 2_000;

    let svc = Arc::new(NativeService::new(
        OBJECTS,
        2,
        Some(LimiterConfig::default()),
    ));
    let in_cs: Arc<Vec<AtomicU64>> = Arc::new((0..OBJECTS).map(|_| AtomicU64::new(0)).collect());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let in_cs = Arc::clone(&in_cs);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let obj = ((t + i) % OBJECTS as usize) as u64;
                    let guard = svc.acquire(obj, None).expect("no deadline, must acquire");
                    // order: SeqCst — the test's whole point is cross-
                    // thread visibility of the overlap counter.
                    let inside = in_cs[obj as usize].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(inside, 0, "two holders inside object {obj}");
                    // Stay inside long enough that other threads pile
                    // up and the contended streak actually builds.
                    for _ in 0..200 {
                        std::hint::spin_loop();
                    }
                    // order: SeqCst — see above.
                    in_cs[obj as usize].fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
    // 8 threads over 4 objects is contended enough that at least one
    // object must have inflated along the way.
    assert!(svc.inflations() > 0, "stress never promoted an object");
    assert!(
        svc.inflations() <= OBJECTS,
        "each object inflates at most once"
    );
}

/// Deadline-bounded acquires on a monopolised object abort instead of
/// blocking forever, and a later unbounded acquire still succeeds.
#[test]
fn deadlines_abort_under_monopoly() {
    let svc = Arc::new(NativeService::new(1, 1, None));
    let holder = Arc::clone(&svc);
    let g = holder.acquire(0, None).expect("uncontended");
    let svc2 = Arc::clone(&svc);
    let waiter = std::thread::spawn(move || {
        let mut aborted = 0;
        for _ in 0..5 {
            if svc2.acquire(0, Some(Duration::from_millis(1))).is_none() {
                aborted += 1;
            }
        }
        aborted
    });
    let aborted = waiter.join().expect("waiter panicked");
    assert_eq!(aborted, 5);
    assert_eq!(svc.aborts(), 5);
    drop(g);
    assert!(svc.acquire(0, Some(Duration::from_millis(50))).is_some());
}

/// The measured native footprint obeys the same at-rest bound as the
/// simulated one: slots dominate, inflated locks track the hot set.
#[test]
fn native_footprint_is_slot_dominated() {
    let svc = NativeService::new(100_000, 8, Some(LimiterConfig::default()));
    let fp = svc.footprint();
    assert_eq!(fp.slot_bytes, 800_000);
    assert!(fp.at_rest_bytes_per_object() <= 64.0);
    assert_eq!(fp.hot_objects, 0);
}
