//! Threaded stress of the native executor: mutual exclusion must hold
//! across the flat path, the inflated path, and — the dangerous part —
//! the promotion between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lock_service::{LimiterConfig, NativeService};

/// Hammer a handful of objects from many threads while a per-object
/// `in_cs` counter checks that no two threads ever overlap inside a
/// critical section. The contention forces inflation mid-test, so the
/// flat→reactive promotion happens while the herd is racing.
#[test]
fn mutual_exclusion_survives_inflation() {
    const OBJECTS: u64 = 2;
    const THREADS: usize = 8;
    const ITERS: usize = 2_000;

    let svc = Arc::new(NativeService::new(
        OBJECTS,
        2,
        Some(LimiterConfig::default()),
    ));
    let in_cs: Arc<Vec<AtomicU64>> = Arc::new((0..OBJECTS).map(|_| AtomicU64::new(0)).collect());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let in_cs = Arc::clone(&in_cs);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let obj = ((t + i) % OBJECTS as usize) as u64;
                    let guard = svc.acquire(obj, None).expect("no deadline, must acquire");
                    // order: SeqCst — the test's whole point is cross-
                    // thread visibility of the overlap counter.
                    let inside = in_cs[obj as usize].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(inside, 0, "two holders inside object {obj}");
                    // Stay inside long enough that other threads pile
                    // up and the contended streak actually builds.
                    for _ in 0..200 {
                        std::hint::spin_loop();
                    }
                    // order: SeqCst — see above.
                    in_cs[obj as usize].fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
    // 8 threads over 2 objects is contended enough that at least one
    // object must have inflated along the way. Inflations are
    // cumulative (a calm stretch may deflate and a later storm
    // re-inflate), but the *live* set and the slab — bounded by the
    // peak live set through free-list reuse — never exceed the arena.
    assert!(svc.inflations() > 0, "stress never promoted an object");
    assert!(svc.live_inflated() <= OBJECTS);
    assert!(
        svc.slab_entries() <= OBJECTS,
        "slab grew past the peak live hot set"
    );
    assert_eq!(svc.inflations() - svc.deflations(), svc.live_inflated());
}

/// The full adaptive round trip under real races: a contention phase
/// inflates, a calm phase deflates (reclaiming the slab entry), and a
/// second storm re-inflates *reusing* the retired entry — with a
/// per-object overlap counter checking mutual exclusion across both
/// promotion boundaries.
#[test]
fn inflate_deflate_reinflate_roundtrip() {
    const THREADS: usize = 4;
    const ITERS: usize = 4_000;

    let svc = Arc::new(NativeService::new(1, 1, None));
    let in_cs = Arc::new(AtomicU64::new(0));
    let storm = |svc: &Arc<NativeService>, in_cs: &Arc<AtomicU64>| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let svc = Arc::clone(svc);
                let in_cs = Arc::clone(in_cs);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let guard = svc.acquire(0, None).expect("no deadline, must acquire");
                        // order: SeqCst — the test's whole point is
                        // cross-thread visibility of the overlap
                        // counter.
                        let inside = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(inside, 0, "two holders inside the object");
                        // Yield mid-hold so waiters actually run (and
                        // register) during the hold even on one core —
                        // a preempted critical section, the schedule
                        // that makes flat TTS hurt.
                        std::thread::yield_now();
                        // order: SeqCst — see above.
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread panicked");
        }
    };

    // Phase 1: genuine contention accrues the streak through WAITERS
    // CASes and inflates.
    storm(&svc, &in_cs);
    assert!(svc.inflations() >= 1, "storm never inflated");
    let after_storm = svc.footprint().hot_bytes;

    // Phase 2: polite solo traffic lets the kernel settle back to TTS
    // and the calm streak walk up to the deflation threshold.
    for _ in 0..200 {
        drop(svc.acquire(0, None).expect("uncontended"));
        if svc.deflations() >= 1 {
            break;
        }
    }
    assert!(svc.deflations() >= 1, "calm phase never deflated");
    assert_eq!(svc.live_inflated(), 0);
    // The footprint claim: cooling a hot object gives its bytes back.
    assert!(
        svc.footprint().hot_bytes < after_storm,
        "deflation must shrink the hot footprint"
    );

    // Phase 3: a second storm re-inflates through the free list — the
    // slab must not grow past its peak.
    let inflations_before = svc.inflations();
    storm(&svc, &in_cs);
    assert!(
        svc.inflations() > inflations_before,
        "second storm never re-inflated"
    );
    assert_eq!(svc.slab_entries(), 1, "free list must recycle the entry");
    assert_eq!(svc.inflations() - svc.deflations(), svc.live_inflated());
}

/// Regression for the per-iteration `Instant::now()` spin bug: setting
/// a (generous) deadline on every acquire must not collapse contended
/// flat-path throughput. The deadline checks now ride a spin cadence,
/// so the clock syscall leaves the hot loop.
#[test]
fn deadlines_do_not_degrade_contended_throughput() {
    const THREADS: usize = 4;
    const ITERS: usize = 3_000;

    let run = |deadline: Option<Duration>| {
        // StaticTts pins the run to the flat path, so both arms
        // measure the same spin loop and nothing inflates away the
        // contention.
        let svc = Arc::new(NativeService::with_mode(
            1,
            1,
            None,
            lock_service::ArenaMode::StaticTts,
        ));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let g = svc
                            .acquire(0, deadline)
                            .expect("deadline too generous to miss");
                        std::hint::black_box(&g);
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("throughput thread panicked");
        }
        start.elapsed()
    };

    let bare = run(None);
    let with_deadline = run(Some(Duration::from_secs(600)));
    // Loose bound (CI machines are noisy): the deadline arm may not be
    // more than 4x slower than the bare arm. The pre-fix code was an
    // order of magnitude off on contended single-core runs.
    assert!(
        with_deadline < bare * 4,
        "deadline arm {with_deadline:?} vs bare {bare:?}: deadline checks are back on the hot path"
    );
}

/// Deadline-bounded acquires on a monopolised object abort instead of
/// blocking forever, and a later unbounded acquire still succeeds.
#[test]
fn deadlines_abort_under_monopoly() {
    let svc = Arc::new(NativeService::new(1, 1, None));
    let holder = Arc::clone(&svc);
    let g = holder.acquire(0, None).expect("uncontended");
    let svc2 = Arc::clone(&svc);
    let waiter = std::thread::spawn(move || {
        let mut aborted = 0;
        for _ in 0..5 {
            if svc2.acquire(0, Some(Duration::from_millis(1))).is_none() {
                aborted += 1;
            }
        }
        aborted
    });
    let aborted = waiter.join().expect("waiter panicked");
    assert_eq!(aborted, 5);
    assert_eq!(svc.aborts(), 5);
    drop(g);
    assert!(svc.acquire(0, Some(Duration::from_millis(50))).is_some());
}

/// The measured native footprint obeys the same at-rest bound as the
/// simulated one: slots dominate, inflated locks track the hot set.
#[test]
fn native_footprint_is_slot_dominated() {
    let svc = NativeService::new(100_000, 8, Some(LimiterConfig::default()));
    let fp = svc.footprint();
    assert_eq!(fp.slot_bytes, 800_000);
    assert!(fp.at_rest_bytes_per_object() <= 64.0);
    assert_eq!(fp.hot_objects, 0);
}
