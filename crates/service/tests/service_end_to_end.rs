//! End-to-end contracts of the virtual-time executor: run-to-run
//! determinism, the memory bound, deadline aborts, adaptive switching
//! under the limiter, and the stampede oracle's teeth on a real
//! (not hand-built) switch log.

use lock_service::{
    run_service, ArenaMode, ArrivalCurve, LimiterConfig, Load, ServiceConfig, TenantConfig,
};

/// A two-tenant mixed workload: one hot closed-loop tenant (drives
/// switching), one sprawling open-loop tenant (drives residency).
fn mixed_config(objects: u64, mode: ArenaMode, limiter: Option<LimiterConfig>) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(objects, 16, 1234);
    cfg.mode = mode;
    cfg.limiter = limiter;
    cfg.horizon_ns = 1_000_000;
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: objects / 2,
        theta: 0.95,
        load: Load::Closed {
            clients: 24,
            think_ns: 300,
        },
        hold_ns: 250,
        deadline_ns: 40_000,
    });
    cfg.tenants.push(TenantConfig {
        first_object: objects / 2,
        objects: objects / 2,
        theta: 0.2,
        load: Load::Open {
            curve: ArrivalCurve::Constant { rate_per_sec: 2e6 },
        },
        hold_ns: 100,
        deadline_ns: 0,
    });
    cfg
}

#[test]
fn identical_configs_produce_identical_reports() {
    let a = run_service(mixed_config(
        50_000,
        ArenaMode::Adaptive,
        Some(LimiterConfig::default()),
    ));
    let b = run_service(mixed_config(
        50_000,
        ArenaMode::Adaptive,
        Some(LimiterConfig::default()),
    ));
    assert_eq!(a.acquires, b.acquires);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.switch_denials, b.switch_denials);
    assert_eq!(a.p50_ns(), b.p50_ns());
    assert_eq!(a.p999_ns(), b.p999_ns());
    assert_eq!(a.switch_log, b.switch_log);
    assert!(a.acquires > 1_000, "workload too small to mean anything");
}

#[test]
fn adaptive_run_switches_and_stays_stampede_free() {
    let r = run_service(mixed_config(
        50_000,
        ArenaMode::Adaptive,
        Some(LimiterConfig::default()),
    ));
    assert!(r.switches > 0, "hot tenant never triggered a switch");
    assert!(r.stampedes().is_empty(), "limited run must pass the oracle");
    assert!(r.aborts > 0, "deadline tenant never aborted");
    assert!(
        r.abort_rate() < 0.5,
        "abort rate {:.2} implausibly high",
        r.abort_rate()
    );
}

#[test]
fn unlimited_control_run_fails_the_oracle() {
    // Same workload, limiter off: the oracle (checked against the
    // default limiter parameters) must reject the resulting log,
    // proving both that the stampede is real and that the checker has
    // teeth on executor-produced logs.
    let r = run_service(mixed_config(50_000, ArenaMode::Adaptive, None));
    assert!(r.switches > 0);
    let v = lock_service::check_no_stampede(&r.switch_log, LimiterConfig::default());
    assert!(!v.is_empty(), "unthrottled run should stampede somewhere");
}

#[test]
fn at_rest_memory_stays_bounded_as_arena_grows() {
    let small = run_service(mixed_config(
        50_000,
        ArenaMode::Adaptive,
        Some(LimiterConfig::default()),
    ));
    let big = run_service(mixed_config(
        500_000,
        ArenaMode::Adaptive,
        Some(LimiterConfig::default()),
    ));
    for r in [&small, &big] {
        assert!(
            r.footprint.at_rest_bytes_per_object() <= 64.0,
            "at-rest bytes/object {} exceeds budget",
            r.footprint.at_rest_bytes_per_object()
        );
        // The side table tracks the working set, not the arena.
        assert!(r.footprint.hot_objects < r.objects / 10);
    }
    // Growing the arena 10× must not grow at-rest bytes/object at all
    // (fixed shard state amortises; slots are constant per object).
    assert!(
        big.footprint.at_rest_bytes_per_object()
            <= small.footprint.at_rest_bytes_per_object() + 0.01
    );
}

#[test]
fn no_grant_completes_past_its_deadline() {
    // One scorching object, many clients, tight deadline: handoffs
    // regularly collide with deadlines. A waiter is aborted unless the
    // grant *completes* (handoff cost included) before its deadline,
    // so in the static modes (no switch surcharge) every recorded
    // acquire latency must fall strictly below the deadline.
    for mode in [ArenaMode::StaticTts, ArenaMode::StaticQueue] {
        let mut cfg = ServiceConfig::new(16, 4, 99);
        cfg.mode = mode;
        cfg.horizon_ns = 500_000;
        cfg.tenants.push(TenantConfig {
            first_object: 0,
            objects: 1,
            theta: 0.0,
            load: Load::Closed {
                clients: 32,
                think_ns: 100,
            },
            hold_ns: 400,
            deadline_ns: 2_000,
        });
        let r = run_service(cfg);
        assert!(r.aborts > 0, "deadline never bit in {mode:?}");
        assert!(r.acquires > 0, "nothing was ever granted in {mode:?}");
        assert!(
            r.wait.max < 2_000,
            "a {mode:?} grant completed past its deadline: {} ns",
            r.wait.max
        );
    }
}

#[test]
fn static_modes_never_switch() {
    for mode in [ArenaMode::StaticTts, ArenaMode::StaticQueue] {
        let r = run_service(mixed_config(20_000, mode, Some(LimiterConfig::default())));
        assert_eq!(r.switches, 0);
        assert_eq!(r.switch_denials, 0);
        assert!(r.acquires > 0);
    }
}
