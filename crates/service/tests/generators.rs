//! Workload-generator contracts: determinism under a fixed seed,
//! empirical Zipf skew within tolerance, and open-loop arrival-rate
//! accuracy — the statistical ground the bench scenarios stand on.

use lock_service::{ArrivalCurve, Arrivals, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Same (n, theta, seed) → bit-identical rank sequence; different
    /// seed → a different one (no accidental seed swallowing).
    #[test]
    fn zipf_is_deterministic_per_seed(
        n in 2u64..100_000,
        theta in 0.0f64..0.99,
        seed in 1u64..u64::MAX - 1,
    ) {
        let mut a = Zipf::new(n, theta, seed);
        let mut b = Zipf::new(n, theta, seed);
        let mut c = Zipf::new(n, theta, seed + 1);
        let xs: Vec<u64> = (0..256).map(|_| a.sample()).collect();
        let ys: Vec<u64> = (0..256).map(|_| b.sample()).collect();
        let zs: Vec<u64> = (0..256).map(|_| c.sample()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert!(xs.iter().all(|&r| r < n));
        prop_assert_ne!(xs, zs);
    }

    /// Open-loop arrivals are deterministic, strictly ordered in time,
    /// and within the horizon used by the executor.
    #[test]
    fn arrivals_are_deterministic_per_seed(
        rate in 1e5f64..1e8,
        seed in 1u64..u64::MAX,
    ) {
        let curve = ArrivalCurve::Constant { rate_per_sec: rate };
        let mut a = Arrivals::new(curve, seed);
        let mut b = Arrivals::new(curve, seed);
        let mut last = 0u64;
        for _ in 0..512 {
            let ta = a.next_arrival().unwrap();
            prop_assert_eq!(ta, b.next_arrival().unwrap());
            prop_assert!(ta >= last);
            last = ta;
        }
    }
}

/// Empirical skew: at θ=0.99 over 10⁴ ranks the hottest rank must
/// carry far more mass than the uniform share, and the top decile of
/// ranks must dominate the stream; at θ=0 the distribution must be
/// flat within sampling noise.
#[test]
fn zipf_empirical_skew_matches_theta() {
    const N: u64 = 10_000;
    const DRAWS: usize = 200_000;

    let mut hot = Zipf::new(N, 0.99, 7);
    let mut counts = vec![0u64; N as usize];
    for _ in 0..DRAWS {
        counts[hot.sample() as usize] += 1;
    }
    // H_{10^4, 0.99} ≈ 9.8 → rank 0 carries ~10% of all draws; demand
    // at least 5% (vs a uniform share of 0.01%).
    assert!(
        counts[0] as f64 > 0.05 * DRAWS as f64,
        "rank 0 drew only {} of {DRAWS}",
        counts[0]
    );
    // The hottest 10% of ranks must carry the large majority of mass.
    let top_decile: u64 = counts[..(N / 10) as usize].iter().sum();
    assert!(
        top_decile as f64 > 0.75 * DRAWS as f64,
        "top decile drew only {top_decile} of {DRAWS}"
    );

    let mut flat = Zipf::new(N, 0.0, 7);
    let mut counts = vec![0u64; N as usize];
    for _ in 0..DRAWS {
        counts[flat.sample() as usize] += 1;
    }
    let expect = DRAWS as f64 / N as f64; // 20 per rank
    let worst = counts
        .iter()
        .map(|&c| (c as f64 - expect).abs())
        .fold(0.0, f64::max);
    // Poisson(20) essentially never strays 25 away from its mean.
    assert!(worst < 25.0, "uniform draw strayed {worst} from {expect}");
}

/// Open-loop rate accuracy: over a long horizon the realised arrival
/// count tracks the curve's integrated rate within a few percent, for
/// all three curve shapes.
#[test]
fn open_loop_rate_is_accurate() {
    const HORIZON_NS: u64 = 100_000_000; // 0.1 s of virtual time

    // (curve, expected arrivals over the horizon)
    let cases: Vec<(ArrivalCurve, f64)> = vec![
        (ArrivalCurve::Constant { rate_per_sec: 1e6 }, 1e6 * 0.1),
        (
            // Triangle between 0.5e6 and 1.5e6 averages 1e6.
            ArrivalCurve::Diurnal {
                low_per_sec: 5e5,
                high_per_sec: 1.5e6,
                period_ns: 10_000_000,
            },
            1e6 * 0.1,
        ),
        (
            // 10% duty at 5e6 + 90% at 5e5 averages 9.5e5.
            ArrivalCurve::Burst {
                base_per_sec: 5e5,
                spike_per_sec: 5e6,
                duty_ns: 1_000_000,
                period_ns: 10_000_000,
            },
            (0.1 * 5e6 + 0.9 * 5e5) * 0.1,
        ),
    ];
    for (i, (curve, expected)) in cases.into_iter().enumerate() {
        let mut gen = Arrivals::new(curve, 11 + i as u64);
        let mut n = 0u64;
        while let Some(t) = gen.next_arrival() {
            if t >= HORIZON_NS {
                break;
            }
            n += 1;
        }
        let err = (n as f64 - expected).abs() / expected;
        assert!(
            err < 0.03,
            "curve {i}: {n} arrivals vs expected {expected} (err {err:.3})"
        );
    }
}

/// The burst curve's arrivals actually cluster in the duty window.
#[test]
fn burst_arrivals_cluster_in_spikes() {
    let curve = ArrivalCurve::Burst {
        base_per_sec: 1e5,
        spike_per_sec: 1e7,
        duty_ns: 1_000_000,
        period_ns: 10_000_000,
    };
    let mut gen = Arrivals::new(curve, 3);
    let (mut in_spike, mut total) = (0u64, 0u64);
    while let Some(t) = gen.next_arrival() {
        if t >= 100_000_000 {
            break;
        }
        total += 1;
        if t % 10_000_000 < 1_000_000 {
            in_spike += 1;
        }
    }
    // Spikes carry 10/10.9 ≈ 92% of the mass.
    assert!(
        in_spike as f64 > 0.85 * total as f64,
        "{in_spike}/{total} arrivals in spikes"
    );
}
