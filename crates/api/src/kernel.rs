//! The **switching kernel** — the consensus-object mode-change engine
//! shared by every reactive object in both worlds.
//!
//! The paper's reactive algorithms (§3.2.5, §3.4) all share one
//! mechanism: N passive protocols, each guarded by a consensus object
//! with a valid/invalid state; a monitor that produces [`Observation`]s;
//! a [`Policy`] that turns observations into [`Decision`]s; and a
//! mode-change transaction that invalidates the old protocol, validates
//! the new one, migrates or bounces waiters, and publishes the new
//! dispatch hint. Before this module existed that state machine was
//! re-implemented by every reactive object (simulator lock, fetch-op,
//! message-passing objects, native lock). [`SwitchKernel`] owns it
//! once:
//!
//! * **protocol registration** — slots are registered in id order with a
//!   name and an exit [`SwitchStyle`];
//! * **valid/invalid flag transitions** — the kernel tracks the
//!   authoritative validity state machine and asserts the §3.2.3
//!   invariant (*at most one protocol valid at any instant*) across
//!   every transition;
//! * **policy handling** — [`SwitchKernel::observe`] consults the
//!   configured policy, filters self/out-of-range targets, and carries
//!   the approving residual to the commit point;
//! * **the mode-change transaction** — [`SwitchKernel::switch`]
//!   sequences the per-world [`SwitchableObject`] hooks (validate,
//!   publish, invalidate/migrate) in the order the exiting protocol's
//!   consensus discipline requires;
//! * **commit bookkeeping** — switch counting, policy evidence reset,
//!   and [`SwitchEvent`] emission through the configured
//!   [`Instrument`] sink.
//!
//! What stays in each reactive object is exactly the part that cannot
//! be shared: the physical realization of "make protocol *i* valid /
//! invalid" (pin a TTS flag busy, poison an MCS queue tail with the
//! `INVALID` sentinel, RPC a manager's validity flag) and the monitor
//! that produces observations. Those are supplied to the kernel as
//! [`SwitchableObject`] hooks.
//!
//! # Worlds
//!
//! The simulator is single-threaded and shares objects through `Rc`;
//! host hardware is multi-threaded and shares through `Arc` with `Send`
//! policies. [`KernelWorld`] abstracts exactly that difference
//! ([`LocalWorld`] / [`SharedWorld`]), so the kernel's engine — and
//! therefore its observable `Decision`/`SwitchEvent` behaviour — is the
//! same type in both worlds. `crates/api/tests/conformance.rs` feeds
//! identical observation traces to a kernel of each world and asserts
//! bit-identical outputs.
//!
//! # Hook execution
//!
//! Hooks are `async` because simulator-side transitions issue simulated
//! memory operations (`cpu.write(...).await`). Native hooks are plain
//! atomics and never await; [`drive`] polls such an always-ready future
//! to completion synchronously.

use std::future::Future;
use std::pin::pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use crate::{
    Always, Decision, Instrument, Observation, Policy, ProtocolId, ProtocolInfo, SwitchEvent,
};

// ---------------------------------------------------------------------
// Worlds
// ---------------------------------------------------------------------

/// The sharing/threading regime a [`SwitchKernel`] lives in.
///
/// The kernel engine is identical across worlds; only the pointer and
/// auto-trait plumbing differs — what a boxed policy must implement and
/// how the instrumentation sink is shared.
pub trait KernelWorld {
    /// The boxed policy trait object this world stores (`dyn Policy` on
    /// the single-threaded simulator, `dyn Policy + Send` on hardware).
    type Policy: Policy + ?Sized;
    /// The shared instrumentation sink handle (`Rc<dyn Instrument>` /
    /// `Arc<dyn Instrument + Send + Sync>`).
    type Sink: Instrument;

    /// The world's default policy (the paper's switch-immediately
    /// [`Always`]).
    fn default_policy() -> Box<Self::Policy>;
}

/// Single-threaded world: `Rc` sharing, `!Send` policies allowed. The
/// simulator-side reactive objects live here.
#[derive(Debug)]
pub enum LocalWorld {}

impl KernelWorld for LocalWorld {
    type Policy = dyn Policy;
    type Sink = Rc<dyn Instrument>;

    fn default_policy() -> Box<dyn Policy> {
        Box::new(Always)
    }
}

/// Multi-threaded world: `Arc` sharing, `Send` policies. The native
/// (host-atomics) reactive objects live here.
#[derive(Debug)]
pub enum SharedWorld {}

impl KernelWorld for SharedWorld {
    type Policy = dyn Policy + Send;
    type Sink = Arc<dyn Instrument + Send + Sync>;

    fn default_policy() -> Box<dyn Policy + Send> {
        Box::new(Always)
    }
}

// ---------------------------------------------------------------------
// Switch styles and the object hook trait
// ---------------------------------------------------------------------

/// How mode changes *leaving* a protocol slot must sequence the
/// validity transitions — the three consensus disciplines that appear
/// in the paper's algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchStyle {
    /// Holder-based consensus (sub-locks as consensus objects, §3.2.5):
    /// the switching process already holds the exiting protocol's
    /// consensus object, so the target is validated first and the
    /// source invalidated after commit (often implicitly, by leaving
    /// its consensus object pinned busy). Sequence:
    /// `validate(to)` → `publish_mode(to)` → commit → `invalidate(from)`.
    Handoff,
    /// Value-carrying consensus (manager validity flags, §3.6): the
    /// exiting protocol holds state (e.g. the fetch-and-op value) that
    /// must be captured atomically with its invalidation and installed
    /// into the target. Sequence:
    /// `state = invalidate(from)` → `validate(to, state)` →
    /// `publish_mode(to)` → commit.
    Transfer,
    /// Real-concurrency exclusion window (the native lock): commit
    /// bookkeeping — and the kernel's shadow validity flags — run
    /// first, while both consensus objects still deny entry, so no
    /// racing process can commit an opposite change ahead of this one,
    /// the sink's events stay in true commit order, and a racer that
    /// wins the target the instant `validate` lands finds this
    /// transaction's bookkeeping already settled.
    /// Sequence: commit → `validate(to)` → `publish_mode(to)` →
    /// `invalidate(from)`.
    CommitFirst,
}

/// The per-world hooks a reactive object supplies to the kernel: the
/// physical realization of validity transitions, waiter migration, and
/// the dispatch hint.
///
/// Hooks are `async` so simulator-side implementations can issue
/// simulated memory operations; native implementations never await and
/// are driven synchronously with [`drive`].
///
/// # Contract
///
/// * `validate` / `invalidate` run while the switching process holds
///   the consensus object the exiting protocol's [`SwitchStyle`]
///   requires, so they need no additional synchronization.
/// * `invalidate` is also the **waiter-migration hook**: any process
///   waiting on the exiting protocol must be bounced (told to retry
///   through dispatch, §3.2.5's *invalid executions return retry*) or
///   migrated to the entering protocol before it returns.
/// * An object whose consensus discipline clears validity atomically
///   with the *decision* (e.g. under a combining-tree root lock) does
///   so before calling [`SwitchKernel::switch`] and leaves its
///   `invalidate` hook a no-op.
#[allow(async_fn_in_trait)] // hooks are driven in-world; no Send bound wanted
pub trait SwitchableObject {
    /// World-specific execution context threaded through to every hook
    /// (the simulated `Cpu` on the simulator, `()` on host hardware).
    type Ctx;

    /// Make `to`'s consensus object valid. Under
    /// [`SwitchStyle::Transfer`], `state` carries the value captured by
    /// `invalidate(from)`; otherwise it is 0.
    async fn validate(&self, ctx: &Self::Ctx, to: ProtocolId, from: ProtocolId, state: u64);

    /// Invalidate `from`'s consensus object, bouncing or migrating its
    /// waiters. Under [`SwitchStyle::Transfer`], returns the captured
    /// protocol state to install into `to` — or `None` when the
    /// consensus object arbitrated the change away (it was already
    /// invalid: a concurrent changer won; see
    /// [`SwitchKernel::try_switch`]). Under the other styles
    /// invalidation runs after commit and must succeed (`Some`).
    async fn invalidate(&self, ctx: &Self::Ctx, from: ProtocolId, to: ProtocolId) -> Option<u64>;

    /// Publish the dispatch hint (the mode word). The hint is only an
    /// optimization — correctness rests on the consensus objects — so
    /// this is a plain store/write.
    async fn publish_mode(&self, ctx: &Self::Ctx, to: ProtocolId);

    /// The clock used to stamp [`SwitchEvent`]s (simulated cycles /
    /// nanoseconds since object creation).
    fn now(&self, ctx: &Self::Ctx) -> u64;

    /// Per-pair diagnostics (e.g. named machine counters).
    fn note_switch(&self, _ctx: &Self::Ctx, _from: ProtocolId, _to: ProtocolId) {}

    /// Clear the monitor evidence for the protocol being entered (empty
    /// streaks, combining-rate streaks, ...).
    fn reset_monitor(&self, _to: ProtocolId) {}
}

/// Drive a hook future that never awaits to completion (the native
/// world's synchronous execution of the kernel's async transaction).
///
/// # Panics
/// If the future returns `Poll::Pending` — which would mean a
/// supposedly synchronous hook tried to await.
pub fn drive<F: Future>(fut: F) -> F::Output {
    let mut fut = pin!(fut);
    let waker = Waker::noop();
    match fut.as_mut().poll(&mut Context::from_waker(waker)) {
        Poll::Ready(out) => out,
        Poll::Pending => panic!("kernel hook future awaited in a synchronous world"),
    }
}

// ---------------------------------------------------------------------
// Regression mutants (conc-check builds only)
// ---------------------------------------------------------------------

/// Whether the named regression mutant is active. Compiled only into
/// `conc-check` mutant builds (`RUSTFLAGS=--cfg conc_check_mutant`);
/// selected at run time by the `CONC_CHECK_MUTANT` environment
/// variable, so one mutant build can rediscover each seeded race in a
/// separate run. The mutants re-introduce the two races the kernel's
/// invariants fixed when it was extracted (see `try_switch`); the
/// model checker in `crates/check` must find both.
#[cfg(conc_check_mutant)]
fn mutant(name: &str) -> bool {
    use std::sync::OnceLock;
    static SELECTED: OnceLock<String> = OnceLock::new();
    SELECTED.get_or_init(|| std::env::var("CONC_CHECK_MUTANT").unwrap_or_default()) == name
}

// ---------------------------------------------------------------------
// The kernel
// ---------------------------------------------------------------------

/// How far an in-flight mode-change transaction had progressed when it
/// was journaled — the recovery decision hinges on whether the commit
/// point was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// The source's shadow validity was cleared; no hook has run yet
    /// (or, under [`SwitchStyle::Transfer`], the capture is still in
    /// flight). Recovery rolls back.
    Cleared,
    /// The target was physically validated but the commit bookkeeping
    /// has not landed. The transition is physically irreversible (a
    /// racer may already hold the target), so recovery rolls *forward*.
    Validated,
    /// The commit point was passed; only post-commit steps (publish,
    /// source invalidation) may be missing. Recovery completes them.
    Committed,
}

/// The write-ahead record of an in-flight mode-change transaction:
/// enough to decide, after a crash, whether to roll back or complete.
#[derive(Clone, Copy, Debug)]
struct Journal {
    from: ProtocolId,
    to: ProtocolId,
    phase: Phase,
}

/// Where [`SwitchKernel::switch_crashed`] stops a transaction — the
/// crash points a fault-injection run or the model checker exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Immediately after the source's shadow validity is cleared,
    /// before any object hook runs.
    AfterSourceInvalidated,
    /// Immediately after the target's `validate` hook (and its shadow
    /// flag) land.
    AfterTargetValidated,
    /// Immediately after the commit bookkeeping, before the remaining
    /// post-commit hooks (publish / source invalidation).
    AfterCommit,
}

/// What [`SwitchKernel::recover`] found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchRecovery {
    /// No transaction was in flight; nothing to do.
    Clean,
    /// A pre-commit crash: the source's validity was restored and the
    /// attempt's pending residual dropped. The object is exactly as if
    /// the switch was never attempted.
    RolledBack {
        /// The transaction's source protocol (valid again).
        from: ProtocolId,
        /// The abandoned target.
        to: ProtocolId,
    },
    /// A post-validation or post-commit crash: the transition was
    /// completed (commit bookkeeping if missing, mode publication,
    /// source invalidation). The object is exactly as if the switch
    /// finished normally.
    Completed {
        /// The invalidated source protocol.
        from: ProtocolId,
        /// The now-current target.
        to: ProtocolId,
    },
}

/// Mutable engine state, serialized by the holder of the currently
/// valid consensus object (so the mutex is uncontended by design).
struct KernelState<W: KernelWorld> {
    policy: Box<W::Policy>,
    /// `(target, residual)` carried from the approving observation to
    /// the commit point (decisions are often taken at acquire time
    /// while the switch machinery runs at release time). Keyed by the
    /// approved target so a losing concurrent attempt, or an aborted
    /// one, cannot donate its residual to an unrelated commit.
    pending: Option<(ProtocolId, f64)>,
    /// The authoritative validity flags (§3.2.3: at most one set).
    valid: Vec<bool>,
    /// The currently valid protocol (the last committed target).
    current: ProtocolId,
    /// Write-ahead journal of the in-flight transaction, if any —
    /// written before the first destructive step, advanced at the
    /// validate and commit points, cleared when the transaction ends.
    /// [`SwitchKernel::recover`] consults it after a crash.
    journal: Option<Journal>,
}

/// The consensus-object mode-change engine of an N-way reactive object.
///
/// Owns protocol registration, the valid/invalid state machine, policy
/// consultation, the mode-change transaction ordering, switch counting,
/// and [`SwitchEvent`] emission. Built through
/// [`SwitchKernel::builder`]; reactive objects embed one per object
/// (shared via `Rc`/`Arc` clones of the enclosing object).
pub struct SwitchKernel<W: KernelWorld> {
    protocols: Vec<ProtocolInfo>,
    exits: Vec<SwitchStyle>,
    state: Mutex<KernelState<W>>,
    switches: AtomicU64,
    sink: Option<W::Sink>,
}

impl<W: KernelWorld> std::fmt::Debug for SwitchKernel<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchKernel")
            .field("protocols", &self.protocols)
            .field("switches", &self.switches())
            .finish()
    }
}

/// Builder for [`SwitchKernel`]: protocol registration plus the
/// optional policy, sink, and initial protocol.
pub struct KernelBuilder<W: KernelWorld> {
    protocols: Vec<ProtocolInfo>,
    exits: Vec<SwitchStyle>,
    policy: Option<Box<W::Policy>>,
    sink: Option<W::Sink>,
    initial: ProtocolId,
}

impl<W: KernelWorld> Default for KernelBuilder<W> {
    fn default() -> Self {
        KernelBuilder {
            protocols: Vec::new(),
            exits: Vec::new(),
            policy: None,
            sink: None,
            initial: ProtocolId(0),
        }
    }
}

impl<W: KernelWorld> KernelBuilder<W> {
    /// Register the next protocol slot.
    ///
    /// # Panics
    /// If `id` is not the next slot in id order `0..N` — which also
    /// rejects registering the same [`ProtocolId`] twice.
    pub fn register(mut self, id: ProtocolId, name: &'static str, exit: SwitchStyle) -> Self {
        assert_eq!(
            id.index(),
            self.protocols.len(),
            "protocol slots must be in id order (duplicate or out-of-order registration)"
        );
        self.protocols.push(ProtocolInfo { id, name });
        self.exits.push(exit);
        self
    }

    /// Use the given (already-boxed) switching policy (default: the
    /// world's [`Always`]).
    pub fn policy(mut self, p: Box<W::Policy>) -> Self {
        self.policy = Some(p);
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn sink(mut self, sink: W::Sink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Start with the given protocol valid (slot 0 by default).
    pub fn initial(mut self, p: ProtocolId) -> Self {
        self.initial = p;
        self
    }

    /// Build the kernel with the initial protocol valid.
    ///
    /// # Panics
    /// * If no protocol was registered — a reactive object with no
    ///   protocols cannot serve any request.
    /// * If the initial protocol is not a registered slot.
    pub fn build(self) -> SwitchKernel<W> {
        assert!(
            !self.protocols.is_empty(),
            "a reactive object needs at least one protocol"
        );
        assert!(
            self.initial.index() < self.protocols.len(),
            "initial protocol {} is not a registered slot",
            self.initial
        );
        let mut valid = vec![false; self.protocols.len()];
        valid[self.initial.index()] = true;
        SwitchKernel {
            protocols: self.protocols,
            exits: self.exits,
            state: Mutex::new(KernelState {
                policy: self.policy.unwrap_or_else(W::default_policy),
                pending: None,
                valid,
                current: self.initial,
                journal: None,
            }),
            switches: AtomicU64::new(0),
            sink: self.sink,
        }
    }
}

impl<W: KernelWorld> SwitchKernel<W> {
    /// Start building a kernel.
    pub fn builder() -> KernelBuilder<W> {
        KernelBuilder::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, KernelState<W>> {
        self.state.lock().expect("switch kernel poisoned")
    }

    /// Feed one acquisition's observation to the policy. Returns the
    /// switch target if the policy directed a change (always a
    /// registered, non-current slot), or `None` to stay.
    pub fn observe(&self, obs: &Observation) -> Option<ProtocolId> {
        let mut st = self.state();
        match st.policy.decide(obs) {
            Decision::SwitchTo(t) if t != obs.current && t.index() < self.protocols.len() => {
                st.pending = Some((t, obs.residual));
                Some(t)
            }
            _ => None,
        }
    }

    /// Run the mode-change transaction `from → to` through `obj`'s
    /// hooks, in the order required by `from`'s registered
    /// [`SwitchStyle`], with commit bookkeeping (validity flags, switch
    /// count, policy reset, [`SwitchEvent`] emission) owned here.
    ///
    /// For protocols whose discipline gives the switching process
    /// *exclusive* hold of the consensus object (a held lock, a barrier
    /// round token), the attempt cannot lose; use this method — a lost
    /// race then indicates a broken discipline and panics.
    ///
    /// # Panics
    /// If the transaction aborts (see [`SwitchKernel::try_switch`]) or
    /// `to` is not a registered slot.
    pub async fn switch<O: SwitchableObject>(
        &self,
        obj: &O,
        ctx: &O::Ctx,
        from: ProtocolId,
        to: ProtocolId,
    ) {
        assert!(
            self.try_switch(obj, ctx, from, to).await,
            "switch {from} -> {to} lost the consensus race under an exclusive discipline"
        );
    }

    /// [`SwitchKernel::switch`] for protocols whose consensus object
    /// *arbitrates* between concurrent change attempts (a manager
    /// handler, §3.6): returns `false` — with no observable transition
    /// — when this attempt lost, either because another changer already
    /// committed (the kernel's `current` has moved on) or because the
    /// exiting protocol's invalidation found the consensus object
    /// already claimed (the Transfer-style invalidate hook returned
    /// `None`). The caller simply abandons its stale decision; the
    /// winning transaction owns the transition.
    ///
    /// # Panics
    /// If `to` is not a registered slot, or a Handoff/CommitFirst
    /// invalidate hook returns `None` (those run after commit and must
    /// succeed).
    pub async fn try_switch<O: SwitchableObject>(
        &self,
        obj: &O,
        ctx: &O::Ctx,
        from: ProtocolId,
        to: ProtocolId,
    ) -> bool {
        self.run_switch(obj, ctx, from, to, None).await
    }

    /// Fault-injection entry: run the mode-change transaction exactly
    /// as [`SwitchKernel::try_switch`] would, but stop dead at `crash`
    /// — as a processor crash at that instant would — leaving the
    /// write-ahead journal (and any partially-applied shadow state)
    /// behind for [`SwitchKernel::recover`] to repair. Used by the
    /// crash-storm scenarios and the `crates/check` model checker.
    pub async fn switch_crashed<O: SwitchableObject>(
        &self,
        obj: &O,
        ctx: &O::Ctx,
        from: ProtocolId,
        to: ProtocolId,
        crash: CrashPoint,
    ) -> bool {
        self.run_switch(obj, ctx, from, to, Some(crash)).await
    }

    async fn run_switch<O: SwitchableObject>(
        &self,
        obj: &O,
        ctx: &O::Ctx,
        from: ProtocolId,
        to: ProtocolId,
        crash: Option<CrashPoint>,
    ) -> bool {
        assert!(
            to.index() < self.protocols.len(),
            "switch target {to} is not a registered slot"
        );
        // Leaving protocol stops accepting executions: from this point
        // until `validate` completes, zero protocols are valid (both
        // consensus objects deny entry — the lock's "never both free").
        // Regression mutant `double_commit`: drop the stale-decision
        // abort (half of the fix for the MP fetch-op race where two
        // completed requesters both committed a change, double-freeing
        // the entering protocol's consensus object).
        #[cfg(conc_check_mutant)]
        let stale_abort = !mutant("double_commit");
        #[cfg(not(conc_check_mutant))]
        let stale_abort = true;
        {
            let mut st = self.state();
            if stale_abort && st.current != from {
                // A concurrent changer already moved the object; this
                // decision is stale. Drop its pending residual so it
                // cannot be attributed to a later unrelated commit.
                if matches!(st.pending, Some((t, _)) if t == to) {
                    st.pending = None;
                }
                return false;
            }
            st.valid[from.index()] = false;
            // Journal before any hook runs: a crash from here on leaves
            // a record recovery can act on.
            st.journal = Some(Journal {
                from,
                to,
                phase: Phase::Cleared,
            });
        }
        if crash == Some(CrashPoint::AfterSourceInvalidated) {
            return true;
        }
        match self.exits[from.index()] {
            SwitchStyle::Handoff => {
                obj.validate(ctx, to, from, 0).await;
                self.mark_valid(to);
                self.journal_phase(Phase::Validated);
                if crash == Some(CrashPoint::AfterTargetValidated) {
                    return true;
                }
                obj.publish_mode(ctx, to).await;
                self.commit(obj.now(ctx), from, to);
                obj.note_switch(ctx, from, to);
                obj.reset_monitor(to);
                if crash == Some(CrashPoint::AfterCommit) {
                    return true;
                }
                let inv = obj.invalidate(ctx, from, to).await;
                assert!(inv.is_some(), "post-commit invalidation cannot lose");
            }
            SwitchStyle::Transfer => {
                let inv = obj.invalidate(ctx, from, to).await;
                // Regression mutant `double_commit`: the other half of
                // the MP fetch-op fix — treat a lost consensus-object
                // arbitration as success (the pre-kernel managers
                // invalidated unconditionally), so both changers commit.
                #[cfg(conc_check_mutant)]
                let inv = if inv.is_none() && mutant("double_commit") {
                    Some(0)
                } else {
                    inv
                };
                let Some(state) = inv else {
                    // The consensus object arbitrated the race to a
                    // concurrent changer mid-flight; that transaction
                    // (which already cleared `valid[from]` exactly as
                    // we did) completes the transition. Drop this
                    // attempt's pending residual and its journal entry
                    // (the winner owns the transition now).
                    let mut st = self.state();
                    if matches!(st.pending, Some((t, _)) if t == to) {
                        st.pending = None;
                    }
                    st.journal = None;
                    return false;
                };
                obj.validate(ctx, to, from, state).await;
                self.mark_valid(to);
                self.journal_phase(Phase::Validated);
                if crash == Some(CrashPoint::AfterTargetValidated) {
                    return true;
                }
                obj.publish_mode(ctx, to).await;
                self.commit(obj.now(ctx), from, to);
                obj.note_switch(ctx, from, to);
                obj.reset_monitor(to);
                if crash == Some(CrashPoint::AfterCommit) {
                    return true;
                }
            }
            SwitchStyle::CommitFirst => {
                // Regression mutant `stale_mode`: revert to the
                // physical-first ordering the native lock shipped with —
                // validate/publish before the shadow-state commit. A
                // racer that wins the freshly valid target then consults
                // `current` before this transaction's bookkeeping lands
                // and sees a stale mode (the interleave the CommitFirst
                // discipline exists to forbid).
                #[cfg(conc_check_mutant)]
                if mutant("stale_mode") {
                    obj.validate(ctx, to, from, 0).await;
                    obj.publish_mode(ctx, to).await;
                    self.commit(obj.now(ctx), from, to);
                    obj.note_switch(ctx, from, to);
                    obj.reset_monitor(to);
                    self.mark_valid(to);
                    let inv = obj.invalidate(ctx, from, to).await;
                    assert!(inv.is_some(), "post-commit invalidation cannot lose");
                    self.state().journal = None;
                    return true;
                }
                self.commit(obj.now(ctx), from, to);
                obj.note_switch(ctx, from, to);
                obj.reset_monitor(to);
                if crash == Some(CrashPoint::AfterCommit) {
                    return true;
                }
                // Shadow state is updated *before* the physical
                // validation: the instant `validate` lands, a racing
                // thread may win the target's consensus object and run
                // a full opposite transaction, and it must observe this
                // one's flags already settled (otherwise its commit and
                // our deferred bookkeeping interleave into a spurious
                // two-valid state).
                self.mark_valid(to);
                obj.validate(ctx, to, from, 0).await;
                if crash == Some(CrashPoint::AfterTargetValidated) {
                    return true;
                }
                obj.publish_mode(ctx, to).await;
                let inv = obj.invalidate(ctx, from, to).await;
                assert!(inv.is_some(), "post-commit invalidation cannot lose");
            }
        }
        self.state().journal = None;
        // No post-transaction snapshot assert here: on real hardware a
        // racing thread may legitimately begin (and commit) an opposite
        // change the instant `publish_mode` lands, so the only sound
        // invariant checks are the per-step ones taken under the state
        // mutex in `mark_valid`.
        true
    }

    /// Repair the kernel after a crash that may have interrupted a
    /// mode-change transaction (e.g. the switching node was killed by a
    /// `FaultPlan`). Consults the write-ahead journal:
    ///
    /// * no journal — nothing was in flight; returns
    ///   [`SwitchRecovery::Clean`];
    /// * crash before the target was validated — rolls back: the
    ///   source's validity is restored and the attempt's pending
    ///   residual dropped, with **no** object hooks run (nothing
    ///   physical happened yet);
    /// * crash at or after validation — rolls forward: commit
    ///   bookkeeping if it is missing, then the idempotent tail
    ///   (`publish_mode`, `invalidate(from)`) so stale waiters are
    ///   fenced off the dead source protocol.
    ///
    /// Idempotent: the journal is cleared only after the repair
    /// completes, so a crash *during* recovery just re-runs it, and a
    /// second call returns [`SwitchRecovery::Clean`]. The object hooks
    /// invoked on the roll-forward path (`publish_mode`, `invalidate`)
    /// are idempotent by the [`SwitchableObject`] contract;
    /// `invalidate` finding the source already invalid (`None`) is
    /// accepted here — the first, interrupted run may already have
    /// claimed it.
    pub async fn recover<O: SwitchableObject>(&self, obj: &O, ctx: &O::Ctx) -> SwitchRecovery {
        let Some(j) = ({
            let st = self.state();
            st.journal
        }) else {
            return SwitchRecovery::Clean;
        };
        if j.phase == Phase::Cleared {
            // Nothing physical happened: restore the shadow state.
            let mut st = self.state();
            st.valid[j.to.index()] = false;
            st.valid[j.from.index()] = true;
            if matches!(st.pending, Some((t, _)) if t == j.to) {
                st.pending = None;
            }
            st.journal = None;
            return SwitchRecovery::RolledBack {
                from: j.from,
                to: j.to,
            };
        }
        // The target is physically valid: the transition must complete.
        if j.phase == Phase::Validated {
            // Crash landed between validate and commit.
            self.commit(obj.now(ctx), j.from, j.to);
            obj.note_switch(ctx, j.from, j.to);
            obj.reset_monitor(j.to);
        }
        {
            // CommitFirst crashes can leave the target's shadow flag
            // unset even though the commit landed; settle it (the ≤1
            // invariant still holds — the source was cleared first).
            let mut st = self.state();
            st.valid[j.to.index()] = true;
            let count = st.valid.iter().filter(|&&v| v).count();
            assert!(count <= 1, "{count} protocols valid during recovery");
        }
        obj.publish_mode(ctx, j.to).await;
        // Regression mutant `drop_recovery_fence`: skip the source
        // invalidation on the recovery path. Waiters parked on the dead
        // protocol are then never bounced, and a fresh acquirer racing
        // the recovery can enter through the stale consensus object —
        // the two-valid/double-grant interleaving the model checker's
        // `kernel_recovery` scenario must rediscover.
        #[cfg(conc_check_mutant)]
        let fence = !mutant("drop_recovery_fence");
        #[cfg(not(conc_check_mutant))]
        let fence = true;
        if fence {
            // The recovery fence: bounce/migrate everything still
            // parked on the source. A `None` is fine here (the
            // interrupted run may already have invalidated it).
            let _ = obj.invalidate(ctx, j.from, j.to).await;
        }
        self.state().journal = None;
        SwitchRecovery::Completed {
            from: j.from,
            to: j.to,
        }
    }

    /// The in-flight transaction `(from, to)` recorded in the journal,
    /// if any — for oracles and diagnostics. `None` in quiescence.
    pub fn in_flight(&self) -> Option<(ProtocolId, ProtocolId)> {
        self.state().journal.map(|j| (j.from, j.to))
    }

    /// Advance the in-flight journal to `phase` (no-op if the journal
    /// was already cleared).
    fn journal_phase(&self, phase: Phase) {
        if let Some(j) = &mut self.state().journal {
            j.phase = phase;
        }
    }

    /// Mark `to` valid, asserting the §3.2.3 invariant.
    fn mark_valid(&self, to: ProtocolId) {
        let mut st = self.state();
        st.valid[to.index()] = true;
        let count = st.valid.iter().filter(|&&v| v).count();
        assert!(
            count <= 1,
            "{count} protocols valid after validating {to} (invariant: at most 1)"
        );
    }

    /// Commit bookkeeping: advance `current`, bump the switch counter,
    /// reset the policy's evidence, and emit the [`SwitchEvent`].
    fn commit(&self, now: u64, from: ProtocolId, to: ProtocolId) {
        let residual = {
            let mut st = self.state();
            st.current = to;
            st.policy.reset();
            // The commit point: from here recovery completes, never
            // rolls back.
            if let Some(j) = &mut st.journal {
                j.phase = Phase::Committed;
            }
            // Consume the pending residual only if it belongs to this
            // transition's target (concurrent approvals of *different*
            // targets must not cross-attribute).
            match st.pending.take() {
                Some((t, r)) if t == to => r,
                _ => 0.0,
            }
        };
        // order: Relaxed — diagnostic counter; transition ordering is
        // carried by the state mutex, not this increment.
        self.switches.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.switch_event(SwitchEvent {
                time: now,
                from,
                to,
                residual,
            });
        }
    }

    /// Number of protocol changes committed so far.
    pub fn switches(&self) -> u64 {
        // order: Relaxed — diagnostic snapshot.
        self.switches.load(Ordering::Relaxed)
    }

    /// The currently valid protocol (the last committed target, or the
    /// initial protocol). Diagnostics: mid-transaction it reports the
    /// transaction's source until commit.
    pub fn current(&self) -> ProtocolId {
        self.state().current
    }

    /// Snapshot of the validity flags — the protocols currently
    /// accepting executions (at most one; empty mid-transaction).
    pub fn valid_protocols(&self) -> Vec<ProtocolId> {
        self.state()
            .valid
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v)
            .map(|(i, _)| ProtocolId(i as u8))
            .collect()
    }

    /// Identity of the protocol in slot `id`.
    ///
    /// # Panics
    /// If `id` is not a registered slot.
    pub fn protocol(&self, id: ProtocolId) -> ProtocolInfo {
        self.protocols[id.index()]
    }

    /// All registered protocol slots, in id order.
    pub fn protocols(&self) -> &[ProtocolInfo] {
        &self.protocols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Competitive3, SwitchLog, SwitchTally};
    use std::cell::RefCell;

    const A: ProtocolId = ProtocolId(0);
    const B: ProtocolId = ProtocolId(1);

    /// A hook recorder: every hook call appends a tagged entry.
    #[derive(Default)]
    struct Recorder {
        calls: RefCell<Vec<String>>,
        clock: std::cell::Cell<u64>,
    }

    impl SwitchableObject for Recorder {
        type Ctx = ();

        async fn validate(&self, _ctx: &(), to: ProtocolId, from: ProtocolId, state: u64) {
            self.calls
                .borrow_mut()
                .push(format!("validate {from}->{to} state={state}"));
        }

        async fn invalidate(&self, _ctx: &(), from: ProtocolId, to: ProtocolId) -> Option<u64> {
            self.calls
                .borrow_mut()
                .push(format!("invalidate {from}->{to}"));
            Some(42)
        }

        async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
            self.calls.borrow_mut().push(format!("publish {to}"));
        }

        fn now(&self, _ctx: &()) -> u64 {
            self.clock.set(self.clock.get() + 1);
            self.clock.get()
        }

        fn note_switch(&self, _ctx: &(), from: ProtocolId, to: ProtocolId) {
            self.calls.borrow_mut().push(format!("note {from}->{to}"));
        }

        fn reset_monitor(&self, to: ProtocolId) {
            self.calls.borrow_mut().push(format!("reset {to}"));
        }
    }

    fn two(exit_a: SwitchStyle, exit_b: SwitchStyle) -> SwitchKernel<LocalWorld> {
        SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", exit_a)
            .register(B, "b", exit_b)
            .build()
    }

    #[test]
    fn handoff_orders_validate_publish_commit_invalidate() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        assert_eq!(
            *r.calls.borrow(),
            vec![
                "validate P0->P1 state=0",
                "publish P1",
                "note P0->P1",
                "reset P1",
                "invalidate P0->P1",
            ]
        );
        assert_eq!(k.current(), B);
        assert_eq!(k.switches(), 1);
    }

    #[test]
    fn transfer_captures_state_before_validating() {
        let k = two(SwitchStyle::Transfer, SwitchStyle::Transfer);
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        assert_eq!(
            *r.calls.borrow(),
            vec![
                "invalidate P0->P1",
                "validate P0->P1 state=42",
                "publish P1",
                "note P0->P1",
                "reset P1",
            ]
        );
    }

    #[test]
    fn commit_first_commits_inside_the_exclusion_window() {
        let log = Rc::new(SwitchLog::new());
        let k = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::CommitFirst)
            .register(B, "b", SwitchStyle::CommitFirst)
            .sink(log.clone() as Rc<dyn Instrument>)
            .build();
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        // The event is emitted before any hook publishes the target.
        assert_eq!(log.count(), 1);
        assert_eq!(
            *r.calls.borrow(),
            vec![
                "note P0->P1",
                "reset P1",
                "validate P0->P1 state=0",
                "publish P1",
                "invalidate P0->P1",
            ]
        );
    }

    #[test]
    fn observe_validates_targets_and_carries_residual_to_commit() {
        let log = Rc::new(SwitchLog::new());
        let k = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(B, "b", SwitchStyle::Handoff)
            .sink(log.clone() as Rc<dyn Instrument>)
            .build();
        assert_eq!(k.observe(&Observation::optimal(A)), None);
        // Out-of-range and self targets are filtered.
        assert_eq!(k.observe(&Observation::suboptimal(A, A, 9.0)), None);
        assert_eq!(
            k.observe(&Observation::suboptimal(A, B, 123.0)),
            Some(B),
            "Always policy approves the monitor's proposal"
        );
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        let evs = log.events();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].from, evs[0].to, evs[0].residual), (A, B, 123.0));
        assert_eq!(evs[0].time, 1, "stamped with the object's clock");
    }

    #[test]
    fn policy_evidence_resets_on_commit() {
        let k = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(B, "b", SwitchStyle::Handoff)
            .policy(Box::new(Competitive3::new(100.0)))
            .build();
        assert_eq!(k.observe(&Observation::suboptimal(A, B, 60.0)), None);
        assert_eq!(k.observe(&Observation::suboptimal(A, B, 60.0)), Some(B));
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        // Accumulated evidence was cleared by the commit.
        assert_eq!(k.observe(&Observation::suboptimal(B, A, 60.0)), None);
    }

    #[test]
    fn tally_counts_match_kernel_counts() {
        let tally = Rc::new(SwitchTally::new());
        let k = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(B, "b", SwitchStyle::Handoff)
            .sink(tally.clone() as Rc<dyn Instrument>)
            .build();
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        drive(k.switch(&r, &(), B, A));
        assert_eq!(k.switches(), 2);
        assert_eq!(tally.count(), 2);
    }

    #[test]
    fn validity_flags_track_transitions() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        assert_eq!(k.valid_protocols(), vec![A]);
        let r = Recorder::default();
        drive(k.switch(&r, &(), A, B));
        assert_eq!(k.valid_protocols(), vec![B]);
        assert_eq!(k.current(), B);
    }

    #[test]
    #[should_panic(expected = "lost the consensus race")]
    fn switching_from_an_invalid_protocol_panics() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        drive(k.switch(&r, &(), B, A));
    }

    #[test]
    fn try_switch_reports_stale_decisions_without_transitioning() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        assert!(!drive(k.try_switch(&r, &(), B, A)), "stale source loses");
        assert!(
            r.calls.borrow().is_empty(),
            "no hooks on an aborted attempt"
        );
        assert_eq!(k.valid_protocols(), vec![A]);
        assert_eq!(k.switches(), 0);
        assert!(drive(k.try_switch(&r, &(), A, B)));
        assert_eq!(k.switches(), 1);
    }

    #[test]
    fn transfer_invalidation_loss_aborts_without_committing() {
        /// An object whose exiting consensus object was already claimed
        /// by a concurrent changer: invalidate reports the loss.
        struct Claimed;
        impl SwitchableObject for Claimed {
            type Ctx = ();
            async fn validate(&self, _c: &(), _t: ProtocolId, _f: ProtocolId, _s: u64) {
                panic!("loser must not validate");
            }
            async fn invalidate(&self, _c: &(), _f: ProtocolId, _t: ProtocolId) -> Option<u64> {
                None
            }
            async fn publish_mode(&self, _c: &(), _t: ProtocolId) {
                panic!("loser must not publish");
            }
            fn now(&self, _c: &()) -> u64 {
                0
            }
        }
        let k = two(SwitchStyle::Transfer, SwitchStyle::Transfer);
        assert!(!drive(k.try_switch(&Claimed, &(), A, B)));
        assert_eq!(k.switches(), 0, "aborted attempts do not commit");
    }

    #[test]
    #[should_panic(expected = "at least one protocol")]
    fn zero_protocol_build_panics() {
        let _ = SwitchKernel::<LocalWorld>::builder().build();
    }

    #[test]
    #[should_panic(expected = "duplicate or out-of-order registration")]
    fn duplicate_registration_panics() {
        let _ = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(A, "a-again", SwitchStyle::Handoff);
    }

    #[test]
    #[should_panic(expected = "not a registered slot")]
    fn unknown_initial_protocol_panics() {
        let _ = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .initial(ProtocolId(7))
            .build();
    }

    #[test]
    fn shared_world_kernel_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SwitchKernel<SharedWorld>>();
    }

    // -- crash / recovery ---------------------------------------------

    #[test]
    fn crash_before_validation_rolls_back() {
        for style in [
            SwitchStyle::Handoff,
            SwitchStyle::Transfer,
            SwitchStyle::CommitFirst,
        ] {
            let k = two(style, style);
            let r = Recorder::default();
            drive(k.switch_crashed(&r, &(), A, B, CrashPoint::AfterSourceInvalidated));
            assert!(r.calls.borrow().is_empty(), "no hooks ran before the crash");
            assert!(k.valid_protocols().is_empty(), "crash left zero valid");
            assert_eq!(k.in_flight(), Some((A, B)));
            let rec = drive(k.recover(&r, &()));
            assert_eq!(rec, SwitchRecovery::RolledBack { from: A, to: B });
            assert_eq!(k.valid_protocols(), vec![A], "source valid again");
            assert_eq!(k.current(), A);
            assert_eq!(k.switches(), 0, "rolled-back attempts never commit");
            assert!(
                r.calls.borrow().is_empty(),
                "rollback is shadow-only: no hooks"
            );
        }
    }

    #[test]
    fn handoff_crash_after_validation_completes_forward() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        drive(k.switch_crashed(&r, &(), A, B, CrashPoint::AfterTargetValidated));
        // Physically B is valid but the commit never landed.
        assert_eq!(k.valid_protocols(), vec![B]);
        assert_eq!(k.current(), A);
        let rec = drive(k.recover(&r, &()));
        assert_eq!(rec, SwitchRecovery::Completed { from: A, to: B });
        assert_eq!(k.current(), B);
        assert_eq!(k.switches(), 1);
        // The tail ran: publish + the recovery fence (invalidate).
        let calls = r.calls.borrow();
        assert!(calls.iter().any(|c| c == "publish P1"));
        assert!(calls.iter().any(|c| c == "invalidate P0->P1"));
    }

    #[test]
    fn commit_first_crash_after_commit_completes_forward() {
        let k = two(SwitchStyle::CommitFirst, SwitchStyle::CommitFirst);
        let r = Recorder::default();
        drive(k.switch_crashed(&r, &(), A, B, CrashPoint::AfterCommit));
        // Committed, but the target's shadow flag and the physical
        // validation are both missing.
        assert_eq!(k.current(), B);
        assert!(k.valid_protocols().is_empty());
        let rec = drive(k.recover(&r, &()));
        assert_eq!(rec, SwitchRecovery::Completed { from: A, to: B });
        assert_eq!(k.valid_protocols(), vec![B]);
        assert_eq!(k.switches(), 1, "commit is not repeated on recovery");
    }

    #[test]
    fn recovery_is_idempotent() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        drive(k.switch_crashed(&r, &(), A, B, CrashPoint::AfterCommit));
        assert_eq!(
            drive(k.recover(&r, &())),
            SwitchRecovery::Completed { from: A, to: B }
        );
        let switches = k.switches();
        assert_eq!(
            drive(k.recover(&r, &())),
            SwitchRecovery::Clean,
            "second recovery finds nothing in flight"
        );
        assert_eq!(k.switches(), switches);
        assert_eq!(k.current(), B);
        // The repaired kernel keeps working normally.
        drive(k.switch(&r, &(), B, A));
        assert_eq!(k.current(), A);
        assert_eq!(k.in_flight(), None);
    }

    #[test]
    fn recover_on_quiescent_kernel_is_clean() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        let r = Recorder::default();
        assert_eq!(drive(k.recover(&r, &())), SwitchRecovery::Clean);
        drive(k.switch(&r, &(), A, B));
        assert_eq!(
            drive(k.recover(&r, &())),
            SwitchRecovery::Clean,
            "a completed switch leaves no journal"
        );
    }

    #[test]
    fn rolled_back_pending_residual_is_dropped() {
        let k = two(SwitchStyle::Handoff, SwitchStyle::Handoff);
        assert_eq!(k.observe(&Observation::suboptimal(A, B, 77.0)), Some(B));
        let r = Recorder::default();
        drive(k.switch_crashed(&r, &(), A, B, CrashPoint::AfterSourceInvalidated));
        drive(k.recover(&r, &()));
        // A later switch must not inherit the dead attempt's residual.
        let log = Rc::new(SwitchLog::new());
        let k2 = SwitchKernel::<LocalWorld>::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(B, "b", SwitchStyle::Handoff)
            .sink(log.clone() as Rc<dyn Instrument>)
            .build();
        assert_eq!(k2.observe(&Observation::suboptimal(A, B, 77.0)), Some(B));
        drive(k2.switch_crashed(&r, &(), A, B, CrashPoint::AfterSourceInvalidated));
        drive(k2.recover(&r, &()));
        drive(k2.switch(&r, &(), A, B));
        assert_eq!(log.events()[0].residual, 0.0);
    }
}
