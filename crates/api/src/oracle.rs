//! The kernel's cross-object oracle: C-serializability and
//! single-validity checkers (§3.2, Definitions 1-2).
//!
//! These checkers began life next to the naive protocol-manager
//! reference design (Figures 3.5-3.7, `reactive_core::framework`); they
//! live here so that **every** kernel-built reactive object — simulator
//! or native — can be checked against the framework's correctness
//! conditions from recorded histories:
//!
//! * [`check_c_serial`] — Definition 1: at every object, each
//!   protocol-change operation (`Invalidate`/`Validate`) is totally
//!   ordered with respect to every other operation on that object.
//! * [`check_at_most_one_valid`] — the §3.2.3 manager invariant:
//!   replaying the change operations in serialization order, at most
//!   one protocol object is ever valid.
//! * [`switch_events_to_records`] — lowers a [`SwitchEvent`] stream (the
//!   kernel's commit log) into change-operation records, so both
//!   checkers run against any instrumented reactive object without
//!   per-object recording code.

use crate::{ProtocolId, SwitchEvent};

/// Operation kinds at a protocol object (Figure 3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Execute the synchronization protocol.
    DoProtocol,
    /// Invalidate the object (first half of a protocol change).
    Invalidate,
    /// Update + validate the object (second half of a change).
    Validate,
}

/// One recorded operation interval at a protocol object.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Issuing process (node id; 0 when unknown).
    pub proc_id: usize,
    /// Protocol object id.
    pub obj: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Serialization interval start (cycles).
    pub start: u64,
    /// Serialization interval end (cycles).
    pub end: u64,
    /// For `DoProtocol`: whether the execution found the object valid.
    pub valid_execution: bool,
}

/// Check Definition 1 (C-seriality): for each object, no
/// `Invalidate`/`Validate` interval may overlap any other operation's
/// interval on the same object.
pub fn check_c_serial(records: &[OpRecord]) -> Result<(), String> {
    for (i, a) in records.iter().enumerate() {
        if a.kind == OpKind::DoProtocol {
            continue;
        }
        for (j, b) in records.iter().enumerate() {
            if i == j || a.obj != b.obj {
                continue;
            }
            let disjoint = a.end <= b.start || b.end <= a.start;
            if !disjoint {
                return Err(format!(
                    "change op {a:?} overlaps {b:?} on object {}",
                    a.obj
                ));
            }
        }
    }
    Ok(())
}

/// Check the §3.2.3 manager invariant: replaying the change operations
/// in serialization order, at most one object is ever valid (given
/// `initial_valid`).
pub fn check_at_most_one_valid(
    records: &[OpRecord],
    objects: usize,
    initial_valid: usize,
) -> Result<(), String> {
    let mut changes: Vec<&OpRecord> = records
        .iter()
        .filter(|r| r.kind != OpKind::DoProtocol)
        .collect();
    changes.sort_by_key(|r| r.start);
    let mut valid = vec![false; objects];
    valid[initial_valid] = true;
    for c in changes {
        match c.kind {
            OpKind::Invalidate => valid[c.obj] = false,
            OpKind::Validate => {
                valid[c.obj] = true;
                let count = valid.iter().filter(|&&v| v).count();
                if count > 1 {
                    return Err(format!(
                        "{count} objects valid after {c:?} (invariant: ≤ 1)"
                    ));
                }
            }
            OpKind::DoProtocol => unreachable!(),
        }
    }
    Ok(())
}

/// Check that no synchronization operation was lost to a protocol
/// change: every `DoProtocol` record must have executed against an
/// object that was valid at its start instant, and must itself report
/// a valid execution.
///
/// A violation is the classic *lost waiter*: a process enqueued under
/// the old protocol (say a queue lock) executes after the manager has
/// invalidated that protocol without migrating it, so its operation
/// runs against a dead object and the process hangs. Under C-seriality
/// change operations never overlap a `DoProtocol` interval, so the
/// object's validity is constant across the interval and checking the
/// start instant suffices; run [`check_c_serial`] first.
pub fn check_no_lost_waiters(
    records: &[OpRecord],
    objects: usize,
    initial_valid: usize,
) -> Result<(), String> {
    let mut changes: Vec<&OpRecord> = records
        .iter()
        .filter(|r| r.kind != OpKind::DoProtocol)
        .collect();
    changes.sort_by_key(|r| r.start);
    for r in records.iter().filter(|r| r.kind == OpKind::DoProtocol) {
        if !r.valid_execution {
            return Err(format!(
                "lost waiter: {r:?} reports executing against an \
                 invalidated protocol object"
            ));
        }
        let mut valid = vec![false; objects];
        valid[initial_valid] = true;
        for c in changes.iter().filter(|c| c.end <= r.start) {
            match c.kind {
                OpKind::Invalidate => valid[c.obj] = false,
                OpKind::Validate => valid[c.obj] = true,
                OpKind::DoProtocol => unreachable!(),
            }
        }
        if !valid[r.obj] {
            return Err(format!(
                "lost waiter: {r:?} ran on object {} which was invalid \
                 at t={}",
                r.obj, r.start
            ));
        }
    }
    Ok(())
}

/// Lower a committed-switch event stream into change-operation records:
/// each event becomes an `Invalidate(from)` immediately followed by a
/// `Validate(to)` at the commit instant (the kernel serializes the
/// whole transaction under one consensus holder, so the pair is
/// atomic with respect to every other change).
///
/// Because commit instants are points, the intervals are zero-length
/// and [`check_c_serial`] holds *by construction* for any lowering —
/// the kernel's serialization is what makes the history C-serial, and
/// the record format encodes exactly that. The operative check on a
/// lowered log is therefore [`check_at_most_one_valid`], which catches
/// inconsistent event chains (e.g. two changes leaving the same
/// protocol without an intervening change back).
///
/// Feed the result to [`check_at_most_one_valid`] with `initial_valid`
/// set to the object's initial protocol, or use
/// [`check_switch_history`].
pub fn switch_events_to_records(events: &[SwitchEvent]) -> Vec<OpRecord> {
    let mut out = Vec::with_capacity(events.len() * 2);
    for ev in events {
        out.push(OpRecord {
            proc_id: 0,
            obj: ev.from.index(),
            kind: OpKind::Invalidate,
            start: ev.time,
            end: ev.time,
            valid_execution: true,
        });
        out.push(OpRecord {
            proc_id: 0,
            obj: ev.to.index(),
            kind: OpKind::Validate,
            start: ev.time,
            end: ev.time,
            valid_execution: true,
        });
    }
    out
}

/// Convenience wrapper: run both checkers against a kernel commit log
/// (see [`switch_events_to_records`]: for point-interval lowerings the
/// at-most-one-valid replay is the discriminating check).
pub fn check_switch_history(
    events: &[SwitchEvent],
    protocols: usize,
    initial: ProtocolId,
) -> Result<(), String> {
    let records = switch_events_to_records(events);
    check_c_serial(&records)?;
    check_at_most_one_valid(&records, protocols, initial.index())
}

// ---------------------------------------------------------------------
// Crash-aware lock-history checkers
// ---------------------------------------------------------------------

/// One event in a lock's request/grant history, including the crash and
/// abort events a `FaultPlan` run injects. Times are cycles; ties are
/// broken by position in the slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockEvent {
    /// Event time (cycles).
    pub time: u64,
    /// The process the event concerns.
    pub proc_id: usize,
    /// What happened.
    pub kind: LockOpKind,
}

/// The kinds of [`LockEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOpKind {
    /// The process asked for the lock (enqueued / began acquiring).
    Request,
    /// The process was granted the lock.
    Grant,
    /// The process released the lock it held.
    Release,
    /// The process abandoned its outstanding request (timeout or abort
    /// signal) and observed the abandonment take effect.
    Abort,
    /// The process crashed: its volatile state — including any
    /// outstanding request or held lock — is gone.
    Crash,
    /// The process completed crash recovery and may request again.
    Recover,
}

/// Convenience constructor for [`LockEvent`].
pub fn lock_event(time: u64, proc_id: usize, kind: LockOpKind) -> LockEvent {
    LockEvent {
        time,
        proc_id,
        kind,
    }
}

fn sorted(events: &[LockEvent]) -> Vec<LockEvent> {
    let mut evs = events.to_vec();
    // Stable: equal-time events keep their recorded order.
    evs.sort_by_key(|e| e.time);
    evs
}

/// **Waiter conservation** across kills and recoveries: every `Request`
/// resolves as exactly one of `Grant`, `Abort`, or `Crash` (of the
/// requester), and every `Grant`/`Abort`/`Release` matches an
/// outstanding request or held lock. A request still unresolved at the
/// end of the history — e.g. a waiter stranded when a crash wiped a
/// queue link, or dropped by a recovery pass — is the *lost waiter*
/// this checker exists to catch.
pub fn check_waiter_conservation(events: &[LockEvent]) -> Result<(), String> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Idle,
        Waiting,
        Holding,
    }
    let n = events.iter().map(|e| e.proc_id + 1).max().unwrap_or(0);
    let mut st = vec![St::Idle; n];
    for ev in sorted(events) {
        let p = ev.proc_id;
        match ev.kind {
            LockOpKind::Request => {
                if st[p] != St::Idle {
                    return Err(format!(
                        "proc {p} issued a request at t={} while its previous \
                         request/hold was unresolved",
                        ev.time
                    ));
                }
                st[p] = St::Waiting;
            }
            LockOpKind::Grant => {
                if st[p] != St::Waiting {
                    return Err(format!(
                        "proc {p} granted at t={} without an outstanding request",
                        ev.time
                    ));
                }
                st[p] = St::Holding;
            }
            LockOpKind::Release => {
                if st[p] != St::Holding {
                    return Err(format!(
                        "proc {p} released at t={} without holding",
                        ev.time
                    ));
                }
                st[p] = St::Idle;
            }
            LockOpKind::Abort => {
                if st[p] != St::Waiting {
                    return Err(format!(
                        "proc {p} aborted at t={} without an outstanding request",
                        ev.time
                    ));
                }
                st[p] = St::Idle;
            }
            // A crash resolves whatever the process had in flight; a
            // recovery changes nothing about conservation.
            LockOpKind::Crash => st[p] = St::Idle,
            LockOpKind::Recover => {}
        }
    }
    for (p, s) in st.iter().enumerate() {
        if *s == St::Waiting {
            return Err(format!(
                "lost waiter: proc {p}'s request never resolved \
                 (no grant, abort, or crash)"
            ));
        }
    }
    Ok(())
}

/// **Abort safety**: once a process's request has aborted, that request
/// is dead — a later `Grant` to the process is legal only after a
/// *fresh* `Request`. A grant landing on an aborted request is the
/// race this checker catches: the releaser handed the lock to a waiter
/// that already left, so the lock is lost (nobody will release it) or
/// the leaver re-enters a critical section it renounced.
pub fn check_abort_safety(events: &[LockEvent]) -> Result<(), String> {
    let n = events.iter().map(|e| e.proc_id + 1).max().unwrap_or(0);
    let mut waiting = vec![false; n];
    let mut aborted = vec![false; n];
    for ev in sorted(events) {
        let p = ev.proc_id;
        match ev.kind {
            LockOpKind::Request => {
                waiting[p] = true;
                aborted[p] = false;
            }
            LockOpKind::Abort => {
                waiting[p] = false;
                aborted[p] = true;
            }
            LockOpKind::Grant => {
                if aborted[p] && !waiting[p] {
                    return Err(format!(
                        "abort-safety violation: proc {p} granted at t={} \
                         after its request aborted (no fresh request between)",
                        ev.time
                    ));
                }
                waiting[p] = false;
            }
            LockOpKind::Crash => {
                waiting[p] = false;
                aborted[p] = false;
            }
            LockOpKind::Release | LockOpKind::Recover => {}
        }
    }
    Ok(())
}

/// **Mutual exclusion** across crashes: at most one live holder at any
/// instant. A holder's crash vacates the lock (recovery is then
/// responsible for making it grantable again — which is what lets a
/// later grant be legal); a second `Grant` while a live holder exists
/// is the double-grant this checker catches.
pub fn check_no_double_grant(events: &[LockEvent]) -> Result<(), String> {
    let mut holder: Option<usize> = None;
    for ev in sorted(events) {
        let p = ev.proc_id;
        match ev.kind {
            LockOpKind::Grant => {
                if let Some(h) = holder {
                    return Err(format!(
                        "double grant: proc {p} granted at t={} while proc {h} \
                         still holds",
                        ev.time
                    ));
                }
                holder = Some(p);
            }
            // A crash releases the hold the same way an explicit
            // release does (the recovery routine rebuilds the lock).
            LockOpKind::Release | LockOpKind::Crash if holder == Some(p) => {
                holder = None;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Run all three crash-aware lock checkers
/// ([`check_waiter_conservation`], [`check_abort_safety`],
/// [`check_no_double_grant`]) over one history.
pub fn check_crash_lock_history(events: &[LockEvent]) -> Result<(), String> {
    check_waiter_conservation(events)?;
    check_abort_safety(events)?;
    check_no_double_grant(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_rejects_overlapping_change() {
        let bad = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 0,
                kind: OpKind::Invalidate,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&bad).is_err());
    }

    #[test]
    fn checker_accepts_overlapping_protocol_executions() {
        // Concurrent DoProtocol executions are explicitly allowed
        // (that is the whole point of C-serial vs serial, §3.2.5).
        let ok = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&ok).is_ok());
    }

    #[test]
    fn validity_checker_detects_double_valid() {
        let bad = vec![OpRecord {
            proc_id: 0,
            obj: 1,
            kind: OpKind::Validate,
            start: 0,
            end: 10,
            valid_execution: true,
        }];
        // Object 0 was initially valid and never invalidated.
        assert!(check_at_most_one_valid(&bad, 2, 0).is_err());
    }

    #[test]
    fn event_streams_lower_to_well_formed_histories() {
        let a = ProtocolId(0);
        let b = ProtocolId(1);
        let evs = vec![
            SwitchEvent {
                time: 10,
                from: a,
                to: b,
                residual: 1.0,
            },
            SwitchEvent {
                time: 20,
                from: b,
                to: a,
                residual: 2.0,
            },
        ];
        let recs = switch_events_to_records(&evs);
        assert_eq!(recs.len(), 4);
        assert!(check_switch_history(&evs, 2, a).is_ok());
    }

    #[test]
    fn crash_lock_checkers_accept_a_faulty_but_correct_history() {
        use LockOpKind::*;
        // p0 acquires, crashes in CS, recovers; p1's wait spans the
        // crash, aborts once, retries, and wins.
        let h = vec![
            lock_event(0, 0, Request),
            lock_event(1, 0, Grant),
            lock_event(2, 1, Request),
            lock_event(5, 0, Crash),
            lock_event(6, 1, Abort),
            lock_event(7, 0, Recover),
            lock_event(8, 1, Request),
            lock_event(9, 1, Grant),
            lock_event(10, 1, Release),
        ];
        assert!(check_crash_lock_history(&h).is_ok());
    }

    #[test]
    fn lowered_histories_catch_inconsistent_event_chains() {
        // A second A -> B change without an intervening change back
        // means two protocols would have been valid.
        let a = ProtocolId(0);
        let b = ProtocolId(1);
        let evs = vec![
            SwitchEvent {
                time: 10,
                from: a,
                to: b,
                residual: 0.0,
            },
            SwitchEvent {
                time: 20,
                from: a,
                to: ProtocolId(2),
                residual: 0.0,
            },
        ];
        assert!(check_switch_history(&evs, 3, a).is_err());
    }
}
