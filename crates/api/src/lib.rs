//! # reactive-api — the shared reactive protocol-selection API
//!
//! The paper's contribution is a *framework* (§3.2, §3.4): passive
//! protocol objects serialized by consensus objects, plus a switching
//! policy that decides, from run-time observations, which protocol
//! should be valid. This crate is that framework's public surface,
//! shared by every reactive object in the workspace — the simulator-side
//! algorithms in `reactive-core` and the host-hardware algorithms in
//! `reactive-native` — so that policies, instrumentation, and protocol
//! identities are written once and plug into either world.
//!
//! * [`ProtocolId`] — a small integer naming one protocol slot of a
//!   reactive object. Reactive objects are N-way (the reactive lock has
//!   2 protocols, the reactive fetch-and-op 3); nothing in this API
//!   assumes two.
//! * [`Policy`] — the switching policy trait (§3.4): observe one
//!   acquisition's [`Observation`] and return a [`Decision`]. Ships
//!   with the paper's three policies ([`Always`], [`Competitive3`],
//!   [`Hysteresis`]); it is object-safe, so users bring their own by
//!   boxing any impl.
//! * [`Protocol`] — identity and documentation of the consensus-object
//!   discipline each protocol slot must obey (invalid protocols bounce
//!   executions with *retry*; the combinator keeps at most one valid).
//! * [`SwitchEvent`] / [`Instrument`] / [`SwitchLog`] — instrumentation:
//!   every protocol change is reported with time, endpoints, and the
//!   residual estimate that triggered it, so experiments read switch
//!   counts from the API instead of poking object internals.
//! * [`kernel`] — the **switching kernel**: the consensus-object
//!   mode-change engine ([`SwitchKernel`]) every reactive object in the
//!   workspace is built on. Protocol registration, the valid/invalid
//!   state machine, policy handling, waiter-migration ordering, and
//!   switch-event emission live here once; objects supply only the
//!   per-world [`SwitchableObject`] hooks.
//! * [`oracle`] — the §3.2 correctness checkers (C-seriality,
//!   at-most-one-valid) runnable against any kernel commit log.

#![deny(missing_docs)]

pub mod kernel;
pub mod oracle;

pub use kernel::{
    drive, CrashPoint, KernelBuilder, KernelWorld, LocalWorld, SharedWorld, SwitchKernel,
    SwitchRecovery, SwitchStyle, SwitchableObject,
};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Protocol identity
// ---------------------------------------------------------------------

/// Names one protocol slot of an N-way reactive object.
///
/// Slot numbering is per-object and ordered by cost profile: lower ids
/// are the cheap/low-latency protocols, higher ids the
/// contention-tolerant ones. The reactive lock uses `{0: TTS, 1: MCS
/// queue}`; the reactive fetch-and-op uses `{0: TTS-lock counter,
/// 1: queue-lock counter, 2: combining tree}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtocolId(pub u8);

impl ProtocolId {
    /// Construct from a raw slot index.
    pub const fn new(id: u8) -> ProtocolId {
        ProtocolId(id)
    }

    /// The slot index as a usize (for table lookups).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Static description of one protocol slot in a reactive object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolInfo {
    /// The slot this protocol occupies.
    pub id: ProtocolId,
    /// Short human-readable name (e.g. `"tts"`, `"mcs-queue"`).
    pub name: &'static str,
}

/// Identity of a protocol participating in a reactive object, plus the
/// behavioral contract its implementation must obey.
///
/// # The consensus-object discipline (§3.2.5)
///
/// A reactive object serializes protocol changes with protocol
/// executions through per-protocol *consensus objects* (a lock word, a
/// queue tail, a manager's validity flag). Implementations must
/// guarantee:
///
/// 1. **Executions of an invalid protocol never take effect** — they
///    observe the invalidity through the consensus object and return
///    *retry* (a pinned-busy lock flag, an `INVALID` queue signal, a
///    bounce reply from a manager).
/// 2. **Only a process holding the currently valid consensus object
///    changes protocols**, which C-serializes the change with every
///    execution.
/// 3. The *combinator* (the N-way reactive object), not each protocol,
///    maintains the global invariant that **at most one protocol is
///    valid at any time** — e.g. the reactive lock's "the two sub-locks
///    are never both free". Individual protocols only promise (1) and
///    (2) locally.
pub trait Protocol {
    /// The slot this protocol occupies in its reactive object.
    fn id(&self) -> ProtocolId;

    /// Short human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Bundled identity record.
    fn info(&self) -> ProtocolInfo {
        ProtocolInfo {
            id: self.id(),
            name: self.name(),
        }
    }
}

// ---------------------------------------------------------------------
// Observations and decisions
// ---------------------------------------------------------------------

/// One acquisition's monitoring verdict, fed to a [`Policy`].
///
/// The reactive object's *monitor* (failed test&set counts, empty-queue
/// streaks, queue waiting times, combining rates — §3.3) produces one
/// observation per protocol execution: either the execution ran under
/// the right protocol, or some `better` protocol would have served it
/// cheaper, wasting about `residual` cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// The protocol that served this acquisition.
    pub current: ProtocolId,
    /// The protocol the monitor believes would have served it better,
    /// or `None` if the current protocol was the right choice.
    pub better: Option<ProtocolId>,
    /// Estimated cycles wasted by serving this acquisition under
    /// `current` instead of `better` (0 when optimal).
    pub residual: f64,
}

impl Observation {
    /// An acquisition served by the right protocol.
    pub fn optimal(current: ProtocolId) -> Observation {
        Observation {
            current,
            better: None,
            residual: 0.0,
        }
    }

    /// An acquisition that `better` would have served cheaper by about
    /// `residual` cycles.
    pub fn suboptimal(current: ProtocolId, better: ProtocolId, residual: f64) -> Observation {
        Observation {
            current,
            better: Some(better),
            residual,
        }
    }
}

/// A [`Policy`]'s verdict for one observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep executing the current protocol.
    Stay,
    /// Change protocols to the given target. The reactive object
    /// performs the change through its consensus objects and then calls
    /// [`Policy::reset`].
    SwitchTo(ProtocolId),
}

// ---------------------------------------------------------------------
// The policy trait and the paper's three policies
// ---------------------------------------------------------------------

/// A protocol-switching policy (§3.4): turns a stream of observations
/// into switch decisions, trading adaptation speed against thrash
/// resistance.
///
/// The trait is object-safe; reactive objects hold policies as
/// `Box<dyn Policy>` (plus `Send` on the native side), so any
/// user-defined impl plugs in. State is `&mut self`: the enclosing
/// reactive object provides whatever sharing/synchronization its world
/// needs (a `RefCell` on the single-threaded simulator, a mutex on real
/// hardware — policy calls are already serialized by the object's own
/// critical section).
pub trait Policy {
    /// Digest one observation; possibly direct a protocol change.
    ///
    /// A policy that decides to switch should normally target
    /// `obs.better`; returning some other (valid) protocol is allowed —
    /// the reactive object will honor any target it has machinery for.
    /// Returning `SwitchTo(obs.current)` is treated as [`Decision::Stay`].
    fn decide(&mut self, obs: &Observation) -> Decision;

    /// Clear accumulated evidence. Reactive objects call this after a
    /// committed protocol change; the shipped policies also reset
    /// themselves when `decide` returns a switch.
    fn reset(&mut self) {}
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn decide(&mut self, obs: &Observation) -> Decision {
        (**self).decide(obs)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Switch as soon as the monitor reports a better protocol (§3.4's
/// default policy; tracks contention closely, can thrash).
#[derive(Clone, Copy, Debug, Default)]
pub struct Always;

impl Policy for Always {
    fn decide(&mut self, obs: &Observation) -> Decision {
        match obs.better {
            Some(t) if t != obs.current => Decision::SwitchTo(t),
            _ => Decision::Stay,
        }
    }
}

/// The 3-competitive policy from the Borodin-Linial-Saks task-system
/// algorithm (§3.4.1): accumulate the residual cost of staying and
/// switch when it exceeds `round_trip`, the round-trip protocol-change
/// cost (`d_AB + d_BA`; the empirical §3.5.5 value is ≈ 8000 + 800 =
/// 8800 cycles). Worst case 3× the off-line optimum. Unlike
/// [`Hysteresis`], the cumulative cost persists across breaks in the
/// suboptimality streak.
#[derive(Clone, Copy, Debug)]
pub struct Competitive3 {
    round_trip: f64,
    accumulated: f64,
}

impl Competitive3 {
    /// Create with the given round-trip switching cost.
    pub fn new(round_trip: f64) -> Competitive3 {
        assert!(round_trip > 0.0, "round-trip cost must be positive");
        Competitive3 {
            round_trip,
            accumulated: 0.0,
        }
    }

    /// The configured round-trip switching cost.
    pub fn round_trip(&self) -> f64 {
        self.round_trip
    }
}

impl Policy for Competitive3 {
    fn decide(&mut self, obs: &Observation) -> Decision {
        if obs.better.is_some() {
            self.accumulated += obs.residual;
        }
        match obs.better {
            Some(t) if t != obs.current && self.accumulated > self.round_trip => {
                self.reset();
                Decision::SwitchTo(t)
            }
            _ => Decision::Stay,
        }
    }

    fn reset(&mut self) {
        self.accumulated = 0.0;
    }
}

/// Hysteresis(x, y) (§3.5.5): switch only after a *consecutive* streak
/// of sub-optimal acquisitions — `x` of them to move to a more scalable
/// (higher-id) protocol, `y` to move to a cheaper (lower-id) one.
/// Streak breaks reset the evidence entirely.
#[derive(Clone, Copy, Debug)]
pub struct Hysteresis {
    x: u64,
    y: u64,
    streak: u64,
}

impl Hysteresis {
    /// Create with thresholds `x` (toward scalable) and `y` (toward
    /// cheap).
    pub fn new(x: u64, y: u64) -> Hysteresis {
        assert!(x > 0 && y > 0, "hysteresis thresholds must be positive");
        Hysteresis { x, y, streak: 0 }
    }
}

impl Policy for Hysteresis {
    fn decide(&mut self, obs: &Observation) -> Decision {
        match obs.better {
            Some(t) if t != obs.current => {
                self.streak += 1;
                let limit = if t > obs.current { self.x } else { self.y };
                if self.streak >= limit {
                    self.reset();
                    Decision::SwitchTo(t)
                } else {
                    Decision::Stay
                }
            }
            _ => {
                self.reset();
                Decision::Stay
            }
        }
    }

    fn reset(&mut self) {
        self.streak = 0;
    }
}

// ---------------------------------------------------------------------
// Switch-event instrumentation
// ---------------------------------------------------------------------

/// One committed protocol change, as reported by a reactive object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchEvent {
    /// When the change committed: simulator cycles on the simulated
    /// machine, nanoseconds since object creation on real hardware.
    pub time: u64,
    /// The protocol that was valid before the change.
    pub from: ProtocolId,
    /// The protocol made valid by the change.
    pub to: ProtocolId,
    /// The residual estimate carried by the observation that triggered
    /// the change.
    pub residual: f64,
}

/// A sink for [`SwitchEvent`]s. Reactive objects report every committed
/// protocol change to their configured sink.
///
/// `&self` receivers plus the `Send + Sync` bounds demanded by the
/// native side mean one sink type (e.g. [`SwitchLog`]) serves both the
/// single-threaded simulator and multi-threaded hardware runs.
pub trait Instrument {
    /// Record one committed protocol change.
    fn switch_event(&self, ev: SwitchEvent);
}

impl<T: Instrument + ?Sized> Instrument for std::rc::Rc<T> {
    fn switch_event(&self, ev: SwitchEvent) {
        (**self).switch_event(ev)
    }
}

impl<T: Instrument + ?Sized> Instrument for std::sync::Arc<T> {
    fn switch_event(&self, ev: SwitchEvent) {
        (**self).switch_event(ev)
    }
}

/// An [`Instrument`] that appends every event to a mutex-protected log.
///
/// Works in both worlds: on the simulator the mutex is never contended;
/// on hardware events are recorded while the reporting object's own
/// critical section already serializes reporters.
#[derive(Debug, Default)]
pub struct SwitchLog {
    events: Mutex<Vec<SwitchEvent>>,
}

impl SwitchLog {
    /// Create an empty log.
    pub fn new() -> SwitchLog {
        SwitchLog::default()
    }

    /// Snapshot the recorded events in commit order.
    pub fn events(&self) -> Vec<SwitchEvent> {
        self.events.lock().expect("switch log poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn count(&self) -> usize {
        self.events.lock().expect("switch log poisoned").len()
    }
}

impl Instrument for SwitchLog {
    fn switch_event(&self, ev: SwitchEvent) {
        self.events.lock().expect("switch log poisoned").push(ev);
    }
}

/// An [`Instrument`] that only counts events — constant-memory, for
/// long runs where the full log would grow unboundedly.
#[derive(Debug, Default)]
pub struct SwitchTally {
    count: AtomicU64,
}

impl SwitchTally {
    /// Create a zeroed tally.
    pub fn new() -> SwitchTally {
        SwitchTally::default()
    }

    /// Number of events recorded so far.
    pub fn count(&self) -> u64 {
        // order: Relaxed — diagnostic counter snapshot.
        self.count.load(Ordering::Relaxed)
    }
}

impl Instrument for SwitchTally {
    fn switch_event(&self, _ev: SwitchEvent) {
        // order: Relaxed — count only; emission order is carried by the
        // kernel's commit serialization, not this increment.
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProtocolId = ProtocolId(0);
    const B: ProtocolId = ProtocolId(1);
    const C: ProtocolId = ProtocolId(2);

    #[test]
    fn always_switches_immediately() {
        let mut p = Always;
        assert_eq!(p.decide(&Observation::optimal(A)), Decision::Stay);
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 100.0)),
            Decision::SwitchTo(B)
        );
    }

    #[test]
    fn always_ignores_self_targets() {
        let mut p = Always;
        assert_eq!(
            p.decide(&Observation::suboptimal(A, A, 100.0)),
            Decision::Stay
        );
    }

    #[test]
    fn competitive3_waits_for_cumulative_cost() {
        let mut p = Competitive3::new(1_000.0);
        for _ in 0..9 {
            assert_eq!(
                p.decide(&Observation::suboptimal(A, B, 100.0)),
                Decision::Stay
            );
        }
        // 10th observation pushes the total over the round trip.
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 150.0)),
            Decision::SwitchTo(B)
        );
        // Evidence resets after a switch.
        assert_eq!(
            p.decide(&Observation::suboptimal(B, A, 100.0)),
            Decision::Stay
        );
    }

    #[test]
    fn competitive3_persists_across_streak_breaks() {
        let mut p = Competitive3::new(1_000.0);
        for _ in 0..6 {
            p.decide(&Observation::suboptimal(A, B, 100.0));
            // Optimal acquisitions do NOT reset the accumulator.
            p.decide(&Observation::optimal(A));
        }
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 500.0)),
            Decision::SwitchTo(B)
        );
    }

    #[test]
    fn hysteresis_requires_consecutive_evidence() {
        let mut p = Hysteresis::new(3, 5);
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::Stay
        );
        // A break resets the streak.
        assert_eq!(p.decide(&Observation::optimal(A)), Decision::Stay);
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::SwitchTo(B)
        );
    }

    #[test]
    fn hysteresis_is_direction_sensitive() {
        let mut p = Hysteresis::new(1, 3);
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::SwitchTo(B)
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(B, A, 1.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(B, A, 1.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(B, A, 1.0)),
            Decision::SwitchTo(A)
        );
    }

    #[test]
    fn hysteresis_generalizes_to_three_protocols() {
        // In a 3-protocol object, a move from the queue counter (1) to
        // the combining tree (2) is "toward scalable" and uses x.
        let mut p = Hysteresis::new(2, 4);
        assert_eq!(
            p.decide(&Observation::suboptimal(B, C, 10.0)),
            Decision::Stay
        );
        assert_eq!(
            p.decide(&Observation::suboptimal(B, C, 10.0)),
            Decision::SwitchTo(C)
        );
        // And tree (2) back down to queue (1) uses y.
        for _ in 0..3 {
            assert_eq!(
                p.decide(&Observation::suboptimal(C, B, 10.0)),
                Decision::Stay
            );
        }
        assert_eq!(
            p.decide(&Observation::suboptimal(C, B, 10.0)),
            Decision::SwitchTo(B)
        );
    }

    #[test]
    fn boxed_policies_are_policies() {
        let mut p: Box<dyn Policy> = Box::new(Always);
        assert_eq!(
            p.decide(&Observation::suboptimal(A, B, 1.0)),
            Decision::SwitchTo(B)
        );
    }

    #[test]
    fn switch_log_records_in_order() {
        let log = SwitchLog::new();
        log.switch_event(SwitchEvent {
            time: 10,
            from: A,
            to: B,
            residual: 150.0,
        });
        log.switch_event(SwitchEvent {
            time: 20,
            from: B,
            to: A,
            residual: 15.0,
        });
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(log.count(), 2);
        assert_eq!(evs[0].to, B);
        assert_eq!(evs[1].time, 20);
    }

    #[test]
    fn switch_tally_counts() {
        let t = SwitchTally::new();
        for i in 0..5 {
            t.switch_event(SwitchEvent {
                time: i,
                from: A,
                to: B,
                residual: 0.0,
            });
        }
        assert_eq!(t.count(), 5);
    }

    #[test]
    fn protocol_ids_order_and_display() {
        assert!(A < B && B < C);
        assert_eq!(format!("{B}"), "P1");
        assert_eq!(C.index(), 2);
    }
}
