//! Property tests of the shipped switching policies, written against
//! the `Policy` *trait*: the harness drives any `&mut dyn Policy` over a
//! task-system environment ([`waiting_theory::task_system`]), charging
//! residual and transition costs, so future policy impls reuse it
//! unchanged.
//!
//! * [`Competitive3`] stays within 3× the exact offline optimum (plus
//!   the standard additive constant) on random residual streams and on
//!   the Figure 3.14 worst-case adversary.
//! * [`Hysteresis`] never switches on a broken streak: any stream whose
//!   consecutive sub-optimal runs are all shorter than `min(x, y)`
//!   produces zero switch decisions.

use proptest::prelude::*;
use reactive_api::Competitive3;
use reactive_api::{Decision, Hysteresis, Observation, Policy, ProtocolId};
use waiting_theory::task_system::{worst_case_sequence, TaskSystem};

/// Drive `policy` over the request sequence the way a reactive object
/// does — serve under the current protocol, hand the monitor's
/// observation to the policy, commit any approved switch (paying the
/// transition cost and resetting the policy) — and return
/// `(total cost, switch count)`. Starts in state 0, like
/// [`TaskSystem::offline_opt`].
fn run_policy(ts: &TaskSystem, policy: &mut dyn Policy, reqs: &[usize]) -> (f64, u64) {
    let n = ts.states();
    let mut state = 0usize;
    let mut total = 0.0;
    let mut switches = 0u64;
    for &t in reqs {
        total += ts.c[state][t];
        let best = (0..n)
            .min_by(|&a, &b| ts.c[a][t].total_cmp(&ts.c[b][t]))
            .unwrap();
        let residual = ts.c[state][t] - ts.c[best][t];
        let obs = if residual > 0.0 {
            Observation::suboptimal(ProtocolId(state as u8), ProtocolId(best as u8), residual)
        } else {
            Observation::optimal(ProtocolId(state as u8))
        };
        if let Decision::SwitchTo(target) = policy.decide(&obs) {
            let j = target.index();
            if j != state && j < n {
                total += ts.d[state][j];
                state = j;
                switches += 1;
                policy.reset();
            }
        }
    }
    (total, switches)
}

/// The §3.5.5 empirical two-protocol system, with proptest-scaled
/// residuals.
fn system(d_ab: f64, d_ba: f64, c_a_high: f64, c_b_low: f64) -> TaskSystem {
    TaskSystem::two_protocol(d_ab, d_ba, c_a_high, c_b_low)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// On random residual streams (bursty blocks of low/high contention),
    /// `Competitive3` with the round-trip threshold stays within 3× the
    /// exact offline optimum plus an additive constant.
    ///
    /// The additive slack is not fudge — it is exactly what the phase
    /// argument leaves unamortized with *discrete* requests. Between two
    /// of its switches the policy accumulates at most `W + r_max`
    /// residual (`W = d_ab + d_ba`; the threshold can be overshot by at
    /// most one request), so a full thrash cycle costs online at most
    /// `3W + 2·r_max`, while the offline optimum pays at least `W` per
    /// cycle (stay on either side through a cycle and you eat one
    /// phase's `> W` residual; dodge both phases and you paid both
    /// transitions). That telescopes to
    /// `online ≤ 3·opt + 4W + (switches + 3)·r_max`.
    #[test]
    fn competitive3_within_3x_of_offline_opt(
        d_ab in 200.0f64..8_000.0,
        d_ba in 100.0f64..2_000.0,
        c_a_high in 10.0f64..400.0,
        c_b_low in 1.0f64..100.0,
        blocks in proptest::collection::vec((0usize..2, 1usize..120), 1..40),
    ) {
        let ts = system(d_ab, d_ba, c_a_high, c_b_low);
        let reqs: Vec<usize> = blocks
            .iter()
            .flat_map(|&(task, len)| std::iter::repeat_n(task, len))
            .collect();
        let round_trip = d_ab + d_ba;
        let (online, switches) = run_policy(&ts, &mut Competitive3::new(round_trip), &reqs);
        let opt = ts.offline_opt(&reqs);
        let r_max = c_a_high.max(c_b_low);
        let slack = 4.0 * round_trip + (switches as f64 + 3.0) * r_max;
        prop_assert!(
            online <= 3.0 * opt + slack + 1e-6,
            "online {online} vs 3*opt ({opt}) + {slack} after {switches} switches"
        );
    }

    /// The Figure 3.14 adversary (contention flips exactly at the
    /// policy's switch points) is the worst case; even there the ratio
    /// stays ≤ 3 modulo the additive constant.
    #[test]
    fn competitive3_survives_worst_case_adversary(
        cycles in 2usize..12,
        c_a_high in 50.0f64..300.0,
        c_b_low in 5.0f64..50.0,
    ) {
        let ts = system(8_000.0, 800.0, c_a_high, c_b_low);
        let reqs = worst_case_sequence(&ts, cycles);
        let round_trip = 8_000.0 + 800.0;
        let (online, switches) = run_policy(&ts, &mut Competitive3::new(round_trip), &reqs);
        let opt = ts.offline_opt(&reqs);
        prop_assert!(opt > 0.0);
        prop_assert!(switches > 0, "adversary must actually force switches");
        let slack = 4.0 * round_trip + (switches as f64 + 3.0) * c_a_high.max(c_b_low);
        prop_assert!(
            online <= 3.0 * opt + slack,
            "online {online} vs opt {opt} over {cycles} adversary cycles"
        );
    }

    /// `Hysteresis(x, y)` never switches on a broken streak: feed blocks
    /// of consecutive sub-optimal observations, every block shorter than
    /// `min(x, y)` and separated by an optimal observation, in random
    /// directions over a 3-protocol id space. No block may produce a
    /// switch decision.
    #[test]
    fn hysteresis_never_switches_on_broken_streaks(
        x in 2u64..8,
        y in 2u64..8,
        blocks in proptest::collection::vec(
            (0u8..3, 0u8..3, 1u64..8, 1.0f64..500.0),
            1..60
        ),
    ) {
        let mut pol = Hysteresis::new(x, y);
        let cap = x.min(y);
        for &(current, better_raw, len_raw, residual) in &blocks {
            let better = if better_raw == current { (better_raw + 1) % 3 } else { better_raw };
            let len = len_raw % cap; // every streak strictly shorter than min(x, y)
            for _ in 0..len {
                let obs = Observation::suboptimal(
                    ProtocolId(current),
                    ProtocolId(better),
                    residual,
                );
                prop_assert_eq!(
                    pol.decide(&obs),
                    Decision::Stay,
                    "switched inside a streak of {} < min({}, {})",
                    len, x, y
                );
            }
            // The break: one optimal observation resets the evidence.
            prop_assert_eq!(
                pol.decide(&Observation::optimal(ProtocolId(current))),
                Decision::Stay
            );
        }
    }

    /// The harness is policy-agnostic: `Hysteresis` run through the same
    /// task-system environment adapts to sustained contention changes
    /// (ends up far below never-switching) — demonstrating any
    /// `dyn Policy` impl plugs into the cost harness.
    #[test]
    fn harness_accepts_any_policy_impl(
        x in 2u64..10,
        y in 2u64..10,
    ) {
        let ts = system(8_000.0, 800.0, 150.0, 15.0);
        let reqs = vec![1usize; 2_000];
        let mut pol: Box<dyn Policy> = Box::new(Hysteresis::new(x, y));
        let (cost, switches) = run_policy(&ts, pol.as_mut(), &reqs);
        let (stay_cost, _) = run_policy(&ts, &mut NeverPolicy, &reqs);
        prop_assert_eq!(switches, 1);
        prop_assert!(cost < stay_cost / 10.0, "hysteresis failed to adapt: {cost}");
    }
}

/// A trivial user-style policy used to exercise the harness with a
/// non-shipped impl.
struct NeverPolicy;

impl Policy for NeverPolicy {
    fn decide(&mut self, _obs: &Observation) -> Decision {
        Decision::Stay
    }
}
