//! Property tests of the switching-kernel invariants, across all
//! ordered protocol pairs for N = 2..4:
//!
//! * **at most one protocol valid at any instant** (§3.2.3), observed
//!   through the kernel's validity snapshot after every transition;
//! * **no waiter lost across a mode change** — a model object tracks
//!   waiters per protocol and migrates them in its invalidate hook; the
//!   population must be conserved through arbitrary switch sequences;
//! * **switch counts match the instrumentation** — the kernel counter,
//!   a [`SwitchTally`] sink, and the model's committed transitions all
//!   agree.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use proptest::prelude::*;
use reactive_api::{
    drive, Always, Instrument, LocalWorld, Observation, ProtocolId, SwitchKernel, SwitchStyle,
    SwitchTally, SwitchableObject,
};

/// A model reactive object: per-protocol waiter sets, migrated on
/// invalidation. `validate` must see the entering protocol empty (its
/// consensus object was quiescent while invalid).
struct ModelObject {
    waiters: RefCell<Vec<Vec<u64>>>,
    clock: Cell<u64>,
    commits: Cell<u64>,
}

impl ModelObject {
    fn new(n: usize) -> ModelObject {
        ModelObject {
            waiters: RefCell::new(vec![Vec::new(); n]),
            clock: Cell::new(0),
            commits: Cell::new(0),
        }
    }

    fn population(&self) -> usize {
        self.waiters.borrow().iter().map(Vec::len).sum()
    }
}

impl SwitchableObject for ModelObject {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), _to: ProtocolId, _from: ProtocolId, _state: u64) {}

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, to: ProtocolId) -> Option<u64> {
        // The waiter-migration hook: everyone waiting on the exiting
        // protocol is bounced to the entering one.
        let mut w = self.waiters.borrow_mut();
        let moved = std::mem::take(&mut w[from.index()]);
        w[to.index()].extend(moved);
        Some(0)
    }

    async fn publish_mode(&self, _ctx: &(), _to: ProtocolId) {
        self.commits.set(self.commits.get() + 1);
    }

    fn now(&self, _ctx: &()) -> u64 {
        self.clock.set(self.clock.get() + 1);
        self.clock.get()
    }
}

/// Every ordered pair (i, j), i != j, for N = 2..4, under every switch
/// style: one transition commits, exactly one protocol stays valid,
/// and the event stream records (i, j).
#[test]
fn every_ordered_pair_commits_under_every_style() {
    for n in 2u8..=4 {
        for style in [
            SwitchStyle::Handoff,
            SwitchStyle::Transfer,
            SwitchStyle::CommitFirst,
        ] {
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let tally = Rc::new(SwitchTally::new());
                    let mut b = SwitchKernel::<LocalWorld>::builder()
                        .policy(Box::new(Always))
                        .sink(tally.clone() as Rc<dyn Instrument>)
                        .initial(ProtocolId(i));
                    for s in 0..n {
                        b = b.register(ProtocolId(s), "p", style);
                    }
                    let k = b.build();
                    let obj = ModelObject::new(n as usize);
                    obj.waiters.borrow_mut()[i as usize] = vec![1, 2, 3];
                    drive(k.switch(&obj, &(), ProtocolId(i), ProtocolId(j)));
                    assert_eq!(k.valid_protocols(), vec![ProtocolId(j)]);
                    assert_eq!(k.current(), ProtocolId(j));
                    assert_eq!(k.switches(), 1);
                    assert_eq!(tally.count(), 1);
                    assert_eq!(obj.population(), 3, "waiters lost in {i}->{j} ({style:?})");
                    assert_eq!(
                        obj.waiters.borrow()[j as usize].len(),
                        3,
                        "invalidation must migrate waiters to the target ({style:?})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary switch sequences over N = 2..4 protocols conserve the
    /// waiter population, keep at most one protocol valid, and keep
    /// kernel/tally/model counts in agreement.
    #[test]
    fn invariants_hold_under_arbitrary_switch_sequences(
        n in 2u8..5,
        steps in prop::collection::vec((0u8..4, 0u64..5, 0.0f64..2000.0), 1..160),
    ) {
        let tally = Rc::new(SwitchTally::new());
        let mut b = SwitchKernel::<LocalWorld>::builder()
            .policy(Box::new(Always))
            .sink(tally.clone() as Rc<dyn Instrument>);
        for i in 0..n {
            // Mix styles across slots: the invariants are
            // style-independent.
            let style = match i % 3 {
                0 => SwitchStyle::Handoff,
                1 => SwitchStyle::Transfer,
                _ => SwitchStyle::CommitFirst,
            };
            b = b.register(ProtocolId(i), "p", style);
        }
        let k = b.build();
        let obj = ModelObject::new(n as usize);
        let mut cur = ProtocolId(0);
        let mut population = 0usize;
        let mut expected_switches = 0u64;
        for (target_raw, arrivals, residual) in steps {
            // New waiters arrive at the currently valid protocol.
            for w in 0..arrivals {
                obj.waiters.borrow_mut()[cur.index()].push(w);
                population += 1;
            }
            let target = ProtocolId(target_raw % n);
            let obs = if target == cur {
                Observation::optimal(cur)
            } else {
                Observation::suboptimal(cur, target, residual)
            };
            if let Some(t) = k.observe(&obs) {
                prop_assert_eq!(t, target);
                drive(k.switch(&obj, &(), cur, t));
                cur = t;
                expected_switches += 1;
            }
            prop_assert_eq!(k.valid_protocols(), vec![cur], "validity snapshot");
            prop_assert_eq!(obj.population(), population, "waiters lost");
        }
        prop_assert_eq!(k.switches(), expected_switches);
        prop_assert_eq!(tally.count(), expected_switches);
        prop_assert_eq!(obj.commits.get(), expected_switches);
        prop_assert_eq!(k.current(), cur);
    }
}
