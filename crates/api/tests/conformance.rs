//! Cross-world conformance: the switching kernel is one engine, not
//! two implementations that happen to agree. Feeding identical
//! [`Observation`] traces to a [`LocalWorld`] kernel (the simulator's
//! `Rc`/`!Send` regime) and a [`SharedWorld`] kernel (the native
//! `Arc`/`Send` regime) must produce **bit-identical** decision and
//! [`SwitchEvent`] sequences for every shipped policy.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use reactive_api::{
    drive, Always, Competitive3, Hysteresis, Instrument, KernelWorld, LocalWorld, Observation,
    Policy, ProtocolId, SharedWorld, SwitchEvent, SwitchKernel, SwitchLog, SwitchStyle,
    SwitchableObject,
};

/// A hook-free object with a deterministic clock: transitions carry no
/// per-world physics here, so the traces compare the *kernel's* part
/// of the behaviour only.
#[derive(Default)]
struct NullObject {
    clock: Cell<u64>,
}

impl SwitchableObject for NullObject {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), _to: ProtocolId, _from: ProtocolId, _state: u64) {}

    async fn invalidate(&self, _ctx: &(), _from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        Some(7)
    }

    async fn publish_mode(&self, _ctx: &(), _to: ProtocolId) {}

    fn now(&self, _ctx: &()) -> u64 {
        self.clock.set(self.clock.get() + 10);
        self.clock.get()
    }
}

/// A deterministic observation trace over `n` protocols: a mix of
/// optimal acquisitions and proposals to every other slot, with
/// residuals large enough to trip Competitive3 periodically.
fn trace(n: u8, len: u64) -> Vec<(u8, f64)> {
    // (proposed_target_offset, residual); offset 0 encodes "optimal".
    let mut x = 0x9E37_79B9u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % n as u64) as u8, (x >> 8) as f64 % 4_000.0)
        })
        .collect()
}

/// Run a trace through one kernel; returns (decisions, events).
fn run<W: KernelWorld>(
    kernel: &SwitchKernel<W>,
    events: impl Fn() -> Vec<SwitchEvent>,
    n: u8,
    steps: &[(u8, f64)],
) -> (Vec<Option<ProtocolId>>, Vec<SwitchEvent>) {
    let obj = NullObject::default();
    let mut cur = ProtocolId(0);
    let mut decisions = Vec::new();
    for &(offset, residual) in steps {
        let obs = if offset == 0 {
            Observation::optimal(cur)
        } else {
            let better = ProtocolId((cur.0 + offset) % n);
            Observation::suboptimal(cur, better, residual)
        };
        let d = kernel.observe(&obs);
        decisions.push(d);
        if let Some(t) = d {
            drive(kernel.switch(&obj, &(), cur, t));
            cur = t;
        }
    }
    (decisions, events())
}

fn conformance_with(make_policy: &dyn Fn() -> Box<dyn Policy + Send>, n: u8) {
    let steps = trace(n, 600);

    let local_log = Rc::new(SwitchLog::new());
    let mut local = SwitchKernel::<LocalWorld>::builder()
        .policy(make_policy())
        .sink(local_log.clone() as Rc<dyn Instrument>);
    let shared_log = Arc::new(SwitchLog::new());
    let mut shared = SwitchKernel::<SharedWorld>::builder()
        .policy(make_policy())
        .sink(shared_log.clone() as Arc<dyn Instrument + Send + Sync>);
    for i in 0..n {
        // Styles differ per world in the real objects; the emitted
        // decision/event stream must not depend on them.
        local = local.register(ProtocolId(i), "p", SwitchStyle::Handoff);
        shared = shared.register(ProtocolId(i), "p", SwitchStyle::CommitFirst);
    }
    let local = local.build();
    let shared = shared.build();

    let (ld, le) = run(&local, || local_log.events(), n, &steps);
    let (sd, se) = run(&shared, || shared_log.events(), n, &steps);

    assert_eq!(ld, sd, "decision sequences diverged across worlds");
    assert_eq!(le, se, "switch-event sequences diverged across worlds");
    assert_eq!(local.switches(), shared.switches());
    assert_eq!(local.current(), shared.current());
    assert!(
        !le.is_empty(),
        "trace must exercise switching to be a meaningful conformance check"
    );
}

#[test]
fn always_policy_conforms_across_worlds() {
    conformance_with(&|| Box::new(Always), 2);
    conformance_with(&|| Box::new(Always), 4);
}

#[test]
fn competitive3_conforms_across_worlds() {
    conformance_with(&|| Box::new(Competitive3::new(8_800.0)), 2);
    conformance_with(&|| Box::new(Competitive3::new(8_800.0)), 3);
}

#[test]
fn hysteresis_conforms_across_worlds() {
    conformance_with(&|| Box::new(Hysteresis::new(4, 4)), 2);
    conformance_with(&|| Box::new(Hysteresis::new(2, 5)), 4);
}
