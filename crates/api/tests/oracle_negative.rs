//! Negative-path tests for the §3.2 oracle: hand-corrupted commit
//! logs and operation histories that MUST be rejected.
//!
//! The oracle is itself the last line of defense — the conformance
//! suite and the model checker both lean on it — so this file
//! mutation-tests the oracle: each test pairs a well-formed history
//! (accepted) with a minimally corrupted twin (rejected), and asserts
//! the rejection message names the culprit. An oracle that cannot see
//! these corruptions would silently pass broken kernels.

use reactive_api::oracle::{
    check_abort_safety, check_at_most_one_valid, check_c_serial, check_no_double_grant,
    check_no_lost_waiters, check_switch_history, check_waiter_conservation, lock_event, LockEvent,
    LockOpKind, OpKind, OpRecord,
};
use reactive_api::{ProtocolId, SwitchEvent};

fn rec(proc_id: usize, obj: usize, kind: OpKind, start: u64, end: u64) -> OpRecord {
    OpRecord {
        proc_id,
        obj,
        kind,
        start,
        end,
        valid_execution: true,
    }
}

fn ev(time: u64, from: u8, to: u8) -> SwitchEvent {
    SwitchEvent {
        time,
        from: ProtocolId(from),
        to: ProtocolId(to),
        residual: 0.0,
    }
}

/// Corruption 1: a double-valid window. The commit log records two
/// switches leaving protocol A with no intervening switch back, so
/// replaying it makes both B and C valid at once.
#[test]
fn double_valid_commit_log_is_rejected() {
    let good = vec![ev(10, 0, 1), ev(20, 1, 0), ev(30, 0, 2)];
    assert!(check_switch_history(&good, 3, ProtocolId(0)).is_ok());

    // Drop the middle B -> A hop: A is now "left" twice.
    let bad = vec![ev(10, 0, 1), ev(30, 0, 2)];
    let err = check_switch_history(&bad, 3, ProtocolId(0)).unwrap_err();
    assert!(
        err.contains("2 objects valid"),
        "rejection must name the double-valid count, got: {err}"
    );
}

/// Corruption 1b: the same window expressed as raw operation records —
/// a Validate with no matching Invalidate of the previously valid
/// object.
#[test]
fn double_valid_record_history_is_rejected() {
    let good = vec![
        rec(1, 0, OpKind::Invalidate, 10, 11),
        rec(1, 1, OpKind::Validate, 12, 13),
    ];
    assert!(check_at_most_one_valid(&good, 2, 0).is_ok());

    let bad = vec![rec(1, 1, OpKind::Validate, 12, 13)];
    let err = check_at_most_one_valid(&bad, 2, 0).unwrap_err();
    assert!(err.contains("valid after"), "got: {err}");
}

/// Corruption 2: a lost waiter. A process executes its protocol after
/// the manager invalidated that object — the waiter was enqueued under
/// the old protocol and never migrated.
#[test]
fn lost_waiter_is_rejected() {
    // Well-formed: the execution lands on the object that is valid at
    // its start instant (object 1, validated at t=13).
    let good = vec![
        rec(1, 0, OpKind::Invalidate, 10, 11),
        rec(1, 1, OpKind::Validate, 12, 13),
        rec(2, 1, OpKind::DoProtocol, 20, 25),
    ];
    assert!(check_no_lost_waiters(&good, 2, 0).is_ok());

    // Corrupted: the same execution still targets object 0, which was
    // invalidated at t=11 — a waiter stranded on the dead protocol.
    let bad = vec![
        rec(1, 0, OpKind::Invalidate, 10, 11),
        rec(1, 1, OpKind::Validate, 12, 13),
        rec(2, 0, OpKind::DoProtocol, 20, 25),
    ];
    let err = check_no_lost_waiters(&bad, 2, 0).unwrap_err();
    assert!(err.contains("lost waiter"), "got: {err}");
    assert!(err.contains("invalid"), "got: {err}");
}

/// Corruption 2b: the execution itself reports it found the object
/// invalid (`valid_execution: false`) — rejected regardless of the
/// replayed validity.
#[test]
fn self_reported_invalid_execution_is_rejected() {
    let bad = vec![OpRecord {
        proc_id: 2,
        obj: 0,
        kind: OpKind::DoProtocol,
        start: 5,
        end: 6,
        valid_execution: false,
    }];
    let err = check_no_lost_waiters(&bad, 2, 0).unwrap_err();
    assert!(err.contains("lost waiter"), "got: {err}");
}

/// Corruption 3: an out-of-order invalidation. The Invalidate of the
/// old object serializes *after* the Validate of the new one, opening
/// a window in which both objects are valid.
#[test]
fn out_of_order_invalidation_is_rejected() {
    let good = vec![
        rec(1, 0, OpKind::Invalidate, 10, 11),
        rec(1, 1, OpKind::Validate, 12, 13),
    ];
    assert!(check_at_most_one_valid(&good, 2, 0).is_ok());

    // Same two operations, invalidation serialized late.
    let bad = vec![
        rec(1, 1, OpKind::Validate, 12, 13),
        rec(1, 0, OpKind::Invalidate, 20, 21),
    ];
    let err = check_at_most_one_valid(&bad, 2, 0).unwrap_err();
    assert!(err.contains("2 objects valid"), "got: {err}");
}

/// Corruption 3b: the out-of-order change op also overlaps a running
/// protocol execution — a C-seriality violation on top of the validity
/// one, caught by the interval checker.
#[test]
fn change_overlapping_execution_is_rejected() {
    let good = vec![
        rec(2, 0, OpKind::DoProtocol, 0, 9),
        rec(1, 0, OpKind::Invalidate, 10, 11),
    ];
    assert!(check_c_serial(&good).is_ok());

    let bad = vec![
        rec(2, 0, OpKind::DoProtocol, 0, 15),
        rec(1, 0, OpKind::Invalidate, 10, 11),
    ];
    let err = check_c_serial(&bad).unwrap_err();
    assert!(err.contains("overlaps"), "got: {err}");
}

// ---------------------------------------------------------------------
// Crash-aware lock-history corruptions
// ---------------------------------------------------------------------

use LockOpKind::{Abort, Crash, Grant, Recover, Release, Request};

/// A faulty-but-correct baseline history: a crash mid-hold, a recovery,
/// an abort with a successful retry. Every corruption below is this
/// history minus or plus one event.
fn crash_baseline() -> Vec<LockEvent> {
    vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 1, Request),
        lock_event(5, 0, Crash),
        lock_event(6, 1, Abort),
        lock_event(7, 0, Recover),
        lock_event(8, 1, Request),
        lock_event(9, 1, Grant),
        lock_event(10, 1, Release),
    ]
}

/// Corruption 4: a lost waiter across a crash. Drop p1's Abort and
/// retry — its original request then never resolves, which is exactly
/// what a recovery pass that forgets queued waiters produces.
#[test]
fn waiter_lost_across_crash_is_rejected() {
    assert!(check_waiter_conservation(&crash_baseline()).is_ok());

    let bad = vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 1, Request),
        lock_event(5, 0, Crash),
        lock_event(7, 0, Recover),
        // p1 is never granted, aborted, or crashed: stranded.
    ];
    let err = check_waiter_conservation(&bad).unwrap_err();
    assert!(err.contains("lost waiter"), "got: {err}");
    assert!(err.contains("proc 1"), "must name the culprit, got: {err}");
}

/// Corruption 4b: a grant out of thin air — the releaser handed the
/// lock to a process that never (re-)requested it.
#[test]
fn grant_without_request_is_rejected() {
    let bad = vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 0, Release),
        lock_event(3, 1, Grant),
    ];
    let err = check_waiter_conservation(&bad).unwrap_err();
    assert!(err.contains("without an outstanding request"), "got: {err}");
}

/// Corruption 5: an aborted waiter later granted. p1 aborts at t=6 but
/// the releaser's stale pointer grants it anyway at t=9 — the race the
/// abortable lock's WAITING→ABORTED CAS exists to forbid.
#[test]
fn aborted_waiter_later_granted_is_rejected() {
    assert!(check_abort_safety(&crash_baseline()).is_ok());

    let bad = vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 1, Request),
        lock_event(6, 1, Abort),
        lock_event(8, 0, Release),
        lock_event(9, 1, Grant), // no fresh request since the abort
    ];
    let err = check_abort_safety(&bad).unwrap_err();
    assert!(err.contains("abort-safety"), "got: {err}");
    assert!(err.contains("proc 1"), "must name the culprit, got: {err}");
}

/// Corruption 6: a double grant across a recovery. The recovered
/// process re-enters its critical section (its pre-crash grant was
/// never cleaned up) while p1 holds — the outcome when a recovery path
/// skips releasing a crashed holder's claim but the history records no
/// crash for it.
#[test]
fn double_grant_is_rejected() {
    assert!(check_no_double_grant(&crash_baseline()).is_ok());

    let bad = vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 1, Request),
        lock_event(3, 1, Grant), // p0 still holds
    ];
    let err = check_no_double_grant(&bad).unwrap_err();
    assert!(err.contains("double grant"), "got: {err}");
    assert!(err.contains("proc 0"), "must name the holder, got: {err}");
}

/// A crash legitimately vacates the hold: the same second grant is
/// accepted once the first holder's crash is on record — the checker
/// must not reject correct crash-recovery histories.
#[test]
fn crash_vacates_hold_for_the_next_grant() {
    let ok = vec![
        lock_event(0, 0, Request),
        lock_event(1, 0, Grant),
        lock_event(2, 1, Request),
        lock_event(3, 0, Crash),
        lock_event(4, 1, Grant),
        lock_event(5, 1, Release),
    ];
    assert!(check_no_double_grant(&ok).is_ok());
    assert!(check_waiter_conservation(&ok).is_ok());
}
