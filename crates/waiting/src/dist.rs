//! Waiting-time distributions (§4.4.3).
//!
//! The *restricted adversary* of the thesis fixes the waiting-time
//! distribution family and controls only its parameter: exponential
//! waits arise from Poisson producer arrivals (producer-consumer
//! synchronization), uniform waits model barrier arrival skew.

/// A waiting-time distribution over `t ≥ 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WaitDist {
    /// Exponential with the given rate λ (mean `1/λ`).
    Exponential {
        /// Arrival rate λ > 0.
        rate: f64,
    },
    /// Uniform on `[0, b]`.
    Uniform {
        /// Upper bound b > 0.
        max: f64,
    },
}

impl WaitDist {
    /// Exponential distribution with the given mean.
    pub fn exponential_with_mean(mean: f64) -> WaitDist {
        assert!(mean > 0.0, "mean must be positive");
        WaitDist::Exponential { rate: 1.0 / mean }
    }

    /// Uniform distribution on `[0, max]`.
    pub fn uniform(max: f64) -> WaitDist {
        assert!(max > 0.0, "max must be positive");
        WaitDist::Uniform { max }
    }

    /// Probability density at `t`.
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        match *self {
            WaitDist::Exponential { rate } => rate * (-rate * t).exp(),
            WaitDist::Uniform { max } => {
                if t <= max {
                    1.0 / max
                } else {
                    0.0
                }
            }
        }
    }

    /// Cumulative distribution `P[T ≤ t]`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        match *self {
            WaitDist::Exponential { rate } => 1.0 - (-rate * t).exp(),
            WaitDist::Uniform { max } => (t / max).min(1.0),
        }
    }

    /// Mean waiting time.
    pub fn mean(&self) -> f64 {
        match *self {
            WaitDist::Exponential { rate } => 1.0 / rate,
            WaitDist::Uniform { max } => max / 2.0,
        }
    }

    /// Partial expectation `∫_0^x t f(t) dt`.
    pub fn partial_mean(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        match *self {
            WaitDist::Exponential { rate } => {
                // ∫0^x t λ e^{-λt} dt = 1/λ (1 - e^{-λx}) - x e^{-λx}
                let e = (-rate * x).exp();
                (1.0 - e) / rate - x * e
            }
            WaitDist::Uniform { max } => {
                let x = x.min(max);
                x * x / (2.0 * max)
            }
        }
    }

    /// Tail probability `P[T > t]`.
    pub fn tail(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Inverse-CDF sample from a uniform `u ∈ [0, 1)`.
    pub fn sample_from_u(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        match *self {
            WaitDist::Exponential { rate } => -(1.0 - u).ln() / rate,
            WaitDist::Uniform { max } => u * max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn pdf_integrates_to_one() {
        for d in [
            WaitDist::exponential_with_mean(100.0),
            WaitDist::uniform(500.0),
        ] {
            let mut sum = 0.0;
            let dt = 0.05;
            let mut t = 0.0;
            while t < 20_000.0 {
                sum += d.pdf(t) * dt;
                t += dt;
            }
            assert!(close(sum, 1.0, 1e-2), "integral = {sum}");
        }
    }

    #[test]
    fn partial_mean_limits() {
        let d = WaitDist::exponential_with_mean(10.0);
        assert!(close(d.partial_mean(1e9), d.mean(), 1e-6));
        assert_eq!(d.partial_mean(0.0), 0.0);
        let u = WaitDist::uniform(8.0);
        assert!(close(u.partial_mean(8.0), 4.0, 1e-12));
        assert!(close(u.partial_mean(100.0), 4.0, 1e-12));
        assert!(close(u.partial_mean(4.0), 1.0, 1e-12));
    }

    #[test]
    fn cdf_matches_pdf_numerically() {
        let d = WaitDist::exponential_with_mean(50.0);
        let mut acc = 0.0;
        let dt = 0.01;
        let mut t = 0.0;
        while t < 200.0 {
            acc += d.pdf(t) * dt;
            t += dt;
        }
        assert!(close(acc, d.cdf(200.0), 1e-3));
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for d in [
            WaitDist::exponential_with_mean(7.0),
            WaitDist::uniform(42.0),
        ] {
            for &u in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let t = d.sample_from_u(u);
                assert!(close(d.cdf(t), u, 1e-9), "cdf(icdf(u)) != u");
            }
        }
    }

    #[test]
    fn sample_mean_converges() {
        let d = WaitDist::exponential_with_mean(100.0);
        let n = 200_000;
        let mut s = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            s += d.sample_from_u(u);
        }
        assert!(close(s / n as f64, 100.0, 1.0));
    }
}
