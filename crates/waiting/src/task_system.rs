//! On-line task systems (Chapter 2, §3.4).
//!
//! A task system has `n` states, a state-transition cost matrix `D`, and
//! a task-cost matrix `C`; an on-line algorithm chooses which state
//! services each request (with lookahead one). Protocol selection maps
//! onto a task system whose states are protocols and whose tasks are
//! synchronization requests under given run-time conditions (Fig 3.13).
//!
//! This module provides the exact off-line optimum (dynamic
//! programming), the nearly-oblivious Borodin-Linial-Saks policy that
//! yields the 3-competitive protocol-switching rule of §3.4.1, and the
//! worst-case adversary of Figure 3.14.

/// A task system with `n` states and `m` task types.
#[derive(Clone, Debug)]
pub struct TaskSystem {
    /// `d[i][j]`: cost of switching from state `i` to state `j`.
    pub d: Vec<Vec<f64>>,
    /// `c[i][t]`: cost of serving task type `t` in state `i`.
    pub c: Vec<Vec<f64>>,
}

impl TaskSystem {
    /// Build a task system; validates matrix shapes and that switching
    /// costs have zero diagonal.
    pub fn new(d: Vec<Vec<f64>>, c: Vec<Vec<f64>>) -> TaskSystem {
        let n = d.len();
        assert!(n > 0, "task system needs at least one state");
        assert!(d.iter().all(|r| r.len() == n), "D must be square");
        assert_eq!(c.len(), n, "C must have one row per state");
        let m = c[0].len();
        assert!(c.iter().all(|r| r.len() == m), "C rows must agree");
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0.0, "self-transition must be free");
        }
        TaskSystem { d, c }
    }

    /// The two-protocol system of Figure 3.13: protocol A is optimal
    /// under low contention, B under high contention; `c_a_high` is A's
    /// residual cost on a high-contention request and `c_b_low` B's on a
    /// low-contention one.
    pub fn two_protocol(d_ab: f64, d_ba: f64, c_a_high: f64, c_b_low: f64) -> TaskSystem {
        TaskSystem::new(
            vec![vec![0.0, d_ab], vec![d_ba, 0.0]],
            // task 0 = low contention, task 1 = high contention
            vec![vec![0.0, c_a_high], vec![c_b_low, 0.0]],
        )
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.d.len()
    }

    /// Exact off-line optimal cost for a request sequence (lookahead-one
    /// dynamic programming over end states), starting in state 0.
    pub fn offline_opt(&self, reqs: &[usize]) -> f64 {
        let n = self.states();
        let mut cost = vec![f64::INFINITY; n];
        cost[0] = 0.0;
        for &t in reqs {
            let mut next = vec![f64::INFINITY; n];
            for (j, nj) in next.iter_mut().enumerate() {
                for (i, ci) in cost.iter().enumerate() {
                    let via = ci + self.d[i][j] + self.c[j][t];
                    if via < *nj {
                        *nj = via;
                    }
                }
            }
            cost = next;
        }
        cost.into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Run an on-line policy over the request sequence; returns its
    /// total cost (tasks + transitions), starting in state 0.
    pub fn run_online<P: OnlinePolicy>(&self, policy: &mut P, reqs: &[usize]) -> f64 {
        let mut state = 0usize;
        let mut total = 0.0;
        for &t in reqs {
            // Lookahead one: the policy may switch before serving.
            let target = policy.choose(self, state, t);
            if target != state {
                total += self.d[state][target];
                state = target;
            }
            total += self.c[state][t];
            policy.served(self, state, t);
        }
        total
    }
}

/// An on-line policy for a task system.
pub trait OnlinePolicy {
    /// Choose the state in which to serve task `t` (lookahead one).
    fn choose(&mut self, ts: &TaskSystem, state: usize, t: usize) -> usize;

    /// Observe that task `t` was served in `state`.
    fn served(&mut self, _ts: &TaskSystem, _state: usize, _t: usize) {}
}

/// Never switch: serve everything in the initial state.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverSwitch;

impl OnlinePolicy for NeverSwitch {
    fn choose(&mut self, _ts: &TaskSystem, state: usize, _t: usize) -> usize {
        state
    }
}

/// Greedy: switch to the cheapest state for the current task whenever
/// the residual cost is non-zero (the paper's "switch immediately"
/// default policy §3.4). Vulnerable to thrashing adversaries.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysSwitch;

impl OnlinePolicy for AlwaysSwitch {
    fn choose(&mut self, ts: &TaskSystem, state: usize, t: usize) -> usize {
        let mut best = state;
        for j in 0..ts.states() {
            if ts.c[j][t] < ts.c[best][t] {
                best = j;
            }
        }
        best
    }
}

/// The nearly-oblivious policy of Borodin, Linial & Saks specialized to
/// two states (§3.4.1): accumulate the residual (task) cost incurred
/// since entering the current state; switch when it exceeds the
/// round-trip switching cost `d_ab + d_ba`. This is 3-competitive.
#[derive(Clone, Copy, Debug, Default)]
pub struct Competitive3 {
    accumulated: f64,
}

impl OnlinePolicy for Competitive3 {
    fn choose(&mut self, ts: &TaskSystem, state: usize, t: usize) -> usize {
        debug_assert_eq!(ts.states(), 2, "Competitive3 is a two-state policy");
        let other = 1 - state;
        let round_trip = ts.d[state][other] + ts.d[other][state];
        if self.accumulated + ts.c[state][t] > round_trip {
            self.accumulated = 0.0;
            other
        } else {
            state
        }
    }

    fn served(&mut self, ts: &TaskSystem, state: usize, t: usize) {
        // Residual cost relative to the best state for this task.
        let best = (0..ts.states()).fold(f64::INFINITY, |m, j| m.min(ts.c[j][t]));
        self.accumulated += ts.c[state][t] - best;
    }
}

/// Hysteresis(x, y) (§3.5.5): switch A→B after `x` *consecutive*
/// requests that favour B, and B→A after `y` consecutive requests that
/// favour A. Unlike [`Competitive3`], streak breaks reset the evidence.
#[derive(Clone, Copy, Debug)]
pub struct Hysteresis {
    /// Consecutive high-contention requests required to leave state 0.
    pub x: u64,
    /// Consecutive low-contention requests required to leave state 1.
    pub y: u64,
    streak: u64,
}

impl Hysteresis {
    /// Create a hysteresis policy with thresholds `(x, y)`.
    pub fn new(x: u64, y: u64) -> Hysteresis {
        Hysteresis { x, y, streak: 0 }
    }
}

impl OnlinePolicy for Hysteresis {
    fn choose(&mut self, ts: &TaskSystem, state: usize, t: usize) -> usize {
        debug_assert_eq!(ts.states(), 2);
        let other = 1 - state;
        let suboptimal = ts.c[state][t] > ts.c[other][t];
        if suboptimal {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        let limit = if state == 0 { self.x } else { self.y };
        if self.streak >= limit {
            self.streak = 0;
            other
        } else {
            state
        }
    }
}

/// Generate the Figure 3.14 worst case for the two-protocol system: the
/// adversary flips the contention level exactly when the 3-competitive
/// policy switches, for `cycles` rounds. Returns the request sequence.
pub fn worst_case_sequence(ts: &TaskSystem, cycles: usize) -> Vec<usize> {
    let round_trip = ts.d[0][1] + ts.d[1][0];
    // In state 0, high-contention tasks (t=1) cost c[0][1] each; the
    // policy flips after ceil(round_trip / c[0][1]) of them; then the
    // adversary feeds low-contention tasks, and so on.
    let per_phase_high = (round_trip / ts.c[0][1]).ceil() as usize + 1;
    let per_phase_low = (round_trip / ts.c[1][0]).ceil() as usize + 1;
    let mut reqs = Vec::new();
    for _ in 0..cycles {
        reqs.extend(std::iter::repeat_n(1, per_phase_high));
        reqs.extend(std::iter::repeat_n(0, per_phase_low));
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_system() -> TaskSystem {
        // §3.5.5 empirical numbers: TTS→MCS costs ~8000 cycles, MCS→TTS
        // ~800; TTS under high contention wastes ~150/req, MCS under low
        // contention ~15/req.
        TaskSystem::two_protocol(8_000.0, 800.0, 150.0, 15.0)
    }

    #[test]
    fn offline_opt_never_switches_on_uniform_load() {
        let ts = paper_system();
        let reqs = vec![0; 1000];
        assert_eq!(ts.offline_opt(&reqs), 0.0);
    }

    #[test]
    fn offline_opt_switches_when_worth_it() {
        let ts = paper_system();
        // 1000 high-contention requests: staying costs 150k; switching
        // costs 8000. Opt switches once.
        let reqs = vec![1; 1000];
        assert_eq!(ts.offline_opt(&reqs), 8_000.0);
    }

    #[test]
    fn online_policies_serve_all_requests() {
        let ts = paper_system();
        let reqs: Vec<usize> = (0..500).map(|i| (i / 50) % 2).collect();
        for cost in [
            ts.run_online(&mut NeverSwitch, &reqs),
            ts.run_online(&mut AlwaysSwitch, &reqs),
            ts.run_online(&mut Competitive3::default(), &reqs),
            ts.run_online(&mut Hysteresis::new(20, 55), &reqs),
        ] {
            assert!(cost.is_finite() && cost >= 0.0);
        }
    }

    #[test]
    fn competitive3_is_3_competitive_on_worst_case() {
        let ts = paper_system();
        let reqs = worst_case_sequence(&ts, 10);
        let online = ts.run_online(&mut Competitive3::default(), &reqs);
        let opt = ts.offline_opt(&reqs);
        assert!(opt > 0.0);
        let ratio = online / opt;
        assert!(
            ratio <= 3.0 + 1e-9,
            "competitive ratio {ratio} exceeds 3 on the worst case"
        );
        // And the worst case should actually be bad (close to 3, > 2).
        assert!(ratio > 2.0, "adversary too weak: ratio {ratio}");
    }

    #[test]
    fn always_switch_thrashes_on_alternating_load() {
        // The adversary alternates every request: AlwaysSwitch pays a
        // transition per request while Competitive3 stays put mostly.
        let ts = paper_system();
        let reqs: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        let always = ts.run_online(&mut AlwaysSwitch, &reqs);
        let comp = ts.run_online(&mut Competitive3::default(), &reqs);
        assert!(
            always > comp,
            "always-switch ({always}) should lose to 3-competitive ({comp})"
        );
    }

    #[test]
    fn competitive3_adapts_to_sustained_change() {
        // A long block of high contention: the policy should switch and
        // end up near opt (within the 3x bound, and way below staying).
        let ts = paper_system();
        let reqs = vec![1usize; 2_000];
        let comp = ts.run_online(&mut Competitive3::default(), &reqs);
        let never = ts.run_online(&mut NeverSwitch, &reqs);
        let opt = ts.offline_opt(&reqs);
        assert!(
            comp < never / 10.0,
            "policy failed to adapt: {comp} vs {never}"
        );
        assert!(comp <= 3.0 * opt + ts.d[0][1] + 1.0);
    }

    #[test]
    fn hysteresis_resists_brief_fluctuations() {
        // A single high-contention blip must not flip Hysteresis(20, _).
        let ts = paper_system();
        let mut reqs = vec![0usize; 100];
        reqs[50] = 1;
        let mut pol = Hysteresis::new(20, 55);
        let cost = ts.run_online(&mut pol, &reqs);
        // Only the blip's residual cost, no transitions.
        assert_eq!(cost, 150.0);
    }

    #[test]
    #[should_panic(expected = "self-transition")]
    fn rejects_nonzero_diagonal() {
        TaskSystem::new(vec![vec![1.0]], vec![vec![0.0]]);
    }
}
