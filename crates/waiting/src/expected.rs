//! Expected waiting costs of two-phase algorithms (§4.4.2).
//!
//! Following Equation 4.1 of the thesis, a two-phase algorithm with
//! polling limit `Lpoll = α·B` (where `B` is the signaling cost and `β`
//! the polling efficiency — `β = 1` for plain spinning) has expected
//! cost
//!
//! ```text
//! E[C_2phase/α] = ∫₀^{αβB} (t/β) f(t) dt + (1+α)·B · P[T > αβB]
//! ```
//!
//! and the optimal off-line algorithm (Equation 4.2) pays
//!
//! ```text
//! E[C_opt] = ∫₀^{βB} (t/β) f(t) dt + B · P[T > βB]
//! ```
//!
//! `E[C_poll]` is the `α → ∞` limit and `E[C_signal]` the `α = 0` case.

use crate::dist::WaitDist;

/// Expected cost of two-phase waiting with `Lpoll = alpha * b` against
/// waiting times from `d`. `b` is the signaling (blocking) cost; `beta`
/// is the polling efficiency (1 for spinning, ≈ number of contexts for
/// switch-spinning).
pub fn expected_two_phase(d: &WaitDist, alpha: f64, b: f64, beta: f64) -> f64 {
    assert!(b > 0.0 && beta > 0.0 && alpha >= 0.0);
    let cutoff = alpha * beta * b;
    d.partial_mean(cutoff) / beta + (1.0 + alpha) * b * d.tail(cutoff)
}

/// Expected cost of pure polling (`α → ∞`): the mean waiting time over β.
pub fn expected_poll(d: &WaitDist, beta: f64) -> f64 {
    d.mean() / beta
}

/// Expected cost of pure signaling (`α = 0`): the fixed cost `b`.
pub fn expected_signal(b: f64) -> f64 {
    b
}

/// Expected cost of the optimal off-line algorithm (Equation 4.2).
pub fn expected_opt(d: &WaitDist, b: f64, beta: f64) -> f64 {
    let cutoff = beta * b;
    d.partial_mean(cutoff) / beta + b * d.tail(cutoff)
}

/// Expected competitive factor of two-phase waiting with parameter
/// `alpha` against the given distribution: `E[C_2phase] / E[C_opt]`.
pub fn competitive_factor(d: &WaitDist, alpha: f64, b: f64, beta: f64) -> f64 {
    expected_two_phase(d, alpha, b, beta) / expected_opt(d, b, beta)
}

/// Worst-case (over the distribution parameter, i.e. over the restricted
/// adversary's choices) expected competitive factor of two-phase waiting
/// with parameter `alpha` and β = 1.
///
/// For the exponential family the adversary chooses the rate λ; for the
/// uniform family the bound `b_max`. Both are swept on a log grid that
/// brackets the maximizer.
pub fn worst_case_factor(family: Family, alpha: f64, b: f64) -> f64 {
    let mut worst: f64 = 1.0;
    // Sweep the scale parameter from 1e-3·B to 1e3·B on a fine log grid.
    let steps = 4_000;
    for i in 0..=steps {
        let scale = b * 10f64.powf(-3.0 + 6.0 * i as f64 / steps as f64);
        let d = match family {
            Family::Exponential => WaitDist::exponential_with_mean(scale),
            Family::Uniform => WaitDist::uniform(scale),
        };
        worst = worst.max(competitive_factor(&d, alpha, b, 1.0));
    }
    worst
}

/// A family of waiting-time distributions (the restricted adversary
/// picks the parameter within the family).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Exponential waiting times (producer-consumer, mutex §4.4.3).
    Exponential,
    /// Uniform waiting times (barriers §4.4.3).
    Uniform,
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: f64 = 465.0;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn alpha_zero_is_signaling() {
        let d = WaitDist::exponential_with_mean(100.0);
        assert!(close(expected_two_phase(&d, 0.0, B, 1.0), B, 1e-9));
    }

    #[test]
    fn large_alpha_approaches_polling() {
        let d = WaitDist::exponential_with_mean(100.0);
        let e = expected_two_phase(&d, 1e6, B, 1.0);
        assert!(close(e, expected_poll(&d, 1.0), 1e-3));
    }

    #[test]
    fn opt_never_exceeds_either_pure_strategy() {
        for mean in [1.0, 50.0, 465.0, 10_000.0] {
            let d = WaitDist::exponential_with_mean(mean);
            let opt = expected_opt(&d, B, 1.0);
            assert!(opt <= expected_poll(&d, 1.0) + 1e-9);
            assert!(opt <= expected_signal(B) + 1e-9);
        }
    }

    #[test]
    fn two_phase_with_alpha_one_is_2_competitive() {
        // The classic bound: Lpoll = B gives at most 2x the off-line
        // optimum for ANY distribution (here: sampled families).
        for f in [Family::Exponential, Family::Uniform] {
            let w = worst_case_factor(f, 1.0, B);
            assert!(w <= 2.0 + 1e-6, "alpha=1 factor {w} > 2");
            assert!(w > 1.2, "alpha=1 factor suspiciously small: {w}");
        }
    }

    #[test]
    fn exponential_closed_form_matches_quadrature() {
        // Numeric integration of Eq 4.1 against the closed form.
        let d = WaitDist::exponential_with_mean(300.0);
        let alpha = 0.54;
        let cutoff = alpha * B;
        let dt = 0.01;
        let mut poll_part = 0.0;
        let mut t = 0.0;
        while t < cutoff {
            poll_part += t * d.pdf(t) * dt;
            t += dt;
        }
        let numeric = poll_part + (1.0 + alpha) * B * d.tail(cutoff);
        let closed = expected_two_phase(&d, alpha, B, 1.0);
        assert!(
            close(numeric, closed, 0.5),
            "numeric {numeric} vs closed {closed}"
        );
    }

    #[test]
    fn beta_reduces_polling_cost() {
        // Switch-spinning (β = 4) makes polling cheaper, so the expected
        // two-phase cost can only drop.
        let d = WaitDist::exponential_with_mean(400.0);
        let spin = expected_two_phase(&d, 0.54, B, 1.0);
        let switch_spin = expected_two_phase(&d, 0.54, B, 4.0);
        assert!(switch_spin < spin);
    }

    #[test]
    fn worst_case_factor_bounded_for_paper_alphas() {
        // §4.5: α = ln(e-1) gives 1.58 for exponential; α = 0.62 gives
        // 1.62 for uniform.
        let w_exp = worst_case_factor(Family::Exponential, (std::f64::consts::E - 1.0).ln(), B);
        assert!(
            (1.50..=1.59).contains(&w_exp),
            "exponential worst case {w_exp}, expected ≈ 1.58"
        );
        let w_uni = worst_case_factor(Family::Uniform, 0.62, B);
        assert!(
            (1.55..=1.63).contains(&w_uni),
            "uniform worst case {w_uni}, expected ≈ 1.62"
        );
    }
}
