//! Monte-Carlo simulation of waiting algorithms against sampled waiting
//! times, corroborating the closed-form analysis of [`crate::expected`].

use crate::dist::WaitDist;

/// A waiting algorithm's decision for a single wait of length `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitAlg {
    /// Poll for the whole wait.
    AlwaysPoll,
    /// Signal (block) immediately.
    AlwaysSignal,
    /// Poll up to `Lpoll = alpha_milli/1000 * B`, then signal.
    TwoPhase {
        /// α in thousandths (integer so the type stays `Eq`/hashable).
        alpha_milli: u32,
    },
}

/// Cost of serving a single wait of `t` cycles with algorithm `alg`,
/// given signaling cost `b` and polling efficiency `beta`.
pub fn wait_cost(alg: WaitAlg, t: f64, b: f64, beta: f64) -> f64 {
    match alg {
        WaitAlg::AlwaysPoll => t / beta,
        WaitAlg::AlwaysSignal => b,
        WaitAlg::TwoPhase { alpha_milli } => {
            let lpoll = (alpha_milli as f64 / 1000.0) * b;
            // Polling for `beta * lpoll` cycles costs `lpoll`.
            if t <= lpoll * beta {
                t / beta
            } else {
                lpoll + b
            }
        }
    }
}

/// Cost of the optimal off-line algorithm on a wait of `t` cycles.
pub fn opt_cost(t: f64, b: f64, beta: f64) -> f64 {
    (t / beta).min(b)
}

/// Average cost of `alg` over `n` quasi-random samples from `d`
/// (stratified inverse-CDF sampling for fast convergence).
pub fn mean_cost(alg: WaitAlg, d: &WaitDist, b: f64, beta: f64, n: usize) -> f64 {
    let mut s = 0.0;
    for i in 0..n {
        let u = (i as f64 + 0.5) / n as f64;
        s += wait_cost(alg, d.sample_from_u(u), b, beta);
    }
    s / n as f64
}

/// Average off-line-optimal cost over the same samples.
pub fn mean_opt(d: &WaitDist, b: f64, beta: f64, n: usize) -> f64 {
    let mut s = 0.0;
    for i in 0..n {
        let u = (i as f64 + 0.5) / n as f64;
        s += opt_cost(d.sample_from_u(u), b, beta);
    }
    s / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::{expected_opt, expected_two_phase};

    const B: f64 = 465.0;
    const N: usize = 100_000;

    #[test]
    fn monte_carlo_matches_closed_form_exponential() {
        for mean in [50.0, 250.0, 465.0, 2_000.0] {
            let d = WaitDist::exponential_with_mean(mean);
            let mc = mean_cost(WaitAlg::TwoPhase { alpha_milli: 541 }, &d, B, 1.0, N);
            let cf = expected_two_phase(&d, 0.541, B, 1.0);
            assert!(
                (mc - cf).abs() / cf < 0.01,
                "mean {mean}: MC {mc} vs closed form {cf}"
            );
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form_uniform() {
        for max in [100.0, 465.0, 930.0, 5_000.0] {
            let d = WaitDist::uniform(max);
            let mc = mean_cost(WaitAlg::TwoPhase { alpha_milli: 620 }, &d, B, 1.0, N);
            let cf = expected_two_phase(&d, 0.620, B, 1.0);
            assert!(
                (mc - cf).abs() / cf < 0.01,
                "max {max}: MC {mc} vs closed form {cf}"
            );
        }
    }

    #[test]
    fn opt_matches_closed_form() {
        let d = WaitDist::exponential_with_mean(465.0);
        let mc = mean_opt(&d, B, 1.0, N);
        let cf = expected_opt(&d, B, 1.0);
        assert!((mc - cf).abs() / cf < 0.01);
    }

    #[test]
    fn two_phase_never_worse_than_twice_opt_per_sample() {
        // Per-wait guarantee of Lpoll = B: cost ≤ 2 * opt for EVERY t.
        for i in 0..10_000 {
            let t = i as f64;
            let tp = wait_cost(WaitAlg::TwoPhase { alpha_milli: 1000 }, t, B, 1.0);
            let opt = opt_cost(t, B, 1.0);
            assert!(tp <= 2.0 * opt + 1e-9, "t={t}: {tp} > 2*{opt}");
        }
    }

    #[test]
    fn bad_static_choices_lose() {
        // Long waits: always-poll is terrible; short waits:
        // always-signal is terrible. Two-phase is near the better one in
        // both regimes (robustness, §4.7).
        let long = WaitDist::exponential_with_mean(20.0 * B);
        let short = WaitDist::exponential_with_mean(0.05 * B);
        let tp = WaitAlg::TwoPhase { alpha_milli: 541 };
        let tp_long = mean_cost(tp, &long, B, 1.0, N);
        let poll_long = mean_cost(WaitAlg::AlwaysPoll, &long, B, 1.0, N);
        assert!(tp_long < poll_long / 5.0);
        let tp_short = mean_cost(tp, &short, B, 1.0, N);
        let signal_short = mean_cost(WaitAlg::AlwaysSignal, &short, B, 1.0, N);
        assert!(tp_short < signal_short / 2.0);
    }
}
