//! Optimal static choices of `Lpoll` (§4.5).
//!
//! Against a *restricted adversary* that can only pick the parameter of
//! a known distribution family, a static `Lpoll = α·B` can approach the
//! best possible on-line factor of `e/(e-1) ≈ 1.58` (Karlin et al.):
//!
//! * exponential waits: `α* = ln(e-1) ≈ 0.5413`, factor `e/(e-1)`
//!   (Theorem of §4.5.1 — the static choice matches the randomized
//!   lower bound exactly);
//! * uniform waits: `α* ≈ 0.62`, factor ≈ 1.62 (§4.5.2).

use crate::expected::{worst_case_factor, Family};

/// The optimal α for exponentially distributed waiting times:
/// `ln(e - 1) ≈ 0.5413`.
pub const EXP_ALPHA_STAR: f64 = 0.541_324_854_612_918_3;

/// The resulting competitive factor: `e/(e-1) ≈ 1.5820`.
pub const EXP_RHO_STAR: f64 = 1.581_976_706_869_326_3;

/// The optimal α for uniformly distributed waiting times (§4.5.2).
pub const UNI_ALPHA_STAR: f64 = 0.62;

/// The resulting competitive factor under uniform waits (§4.5.2).
pub const UNI_RHO_STAR: f64 = 1.62;

/// Numerically find the α minimizing the worst-case expected
/// competitive factor for a distribution family. Returns `(α*, ρ*)`.
///
/// Uses golden-section search over α ∈ [0, 2] on the (unimodal)
/// worst-case factor; `b` is the signaling cost (the result is scale
/// free, so any positive value works).
pub fn optimal_alpha(family: Family, b: f64) -> (f64, f64) {
    let f = |a: f64| worst_case_factor(family, a, b);
    let (mut lo, mut hi) = (0.01_f64, 2.0_f64);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..40 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = f(x2);
        }
    }
    let a = (lo + hi) / 2.0;
    (a, f(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_alpha_constant_is_ln_e_minus_1() {
        assert!((EXP_ALPHA_STAR - (std::f64::consts::E - 1.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn exponential_rho_constant_is_e_over_e_minus_1() {
        let e = std::f64::consts::E;
        assert!((EXP_RHO_STAR - e / (e - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn search_recovers_exponential_optimum() {
        let (a, rho) = optimal_alpha(Family::Exponential, 465.0);
        assert!(
            (a - EXP_ALPHA_STAR).abs() < 0.02,
            "α* = {a}, expected ≈ 0.5413"
        );
        assert!(
            (rho - EXP_RHO_STAR).abs() < 0.01,
            "ρ* = {rho}, expected ≈ 1.582"
        );
    }

    #[test]
    fn search_recovers_uniform_optimum() {
        let (a, rho) = optimal_alpha(Family::Uniform, 465.0);
        assert!(
            (a - UNI_ALPHA_STAR).abs() < 0.05,
            "α* = {a}, expected ≈ 0.62"
        );
        assert!(
            (rho - UNI_RHO_STAR).abs() < 0.02,
            "ρ* = {rho}, expected ≈ 1.62"
        );
    }

    #[test]
    fn optimum_beats_alpha_one() {
        // The tuned static choice should beat the classic Lpoll = B.
        let b = 465.0;
        for fam in [Family::Exponential, Family::Uniform] {
            let (_, rho_star) = optimal_alpha(fam, b);
            let rho_one = crate::expected::worst_case_factor(fam, 1.0, b);
            assert!(rho_star < rho_one, "{fam:?}: {rho_star} !< {rho_one}");
        }
    }

    #[test]
    fn scale_invariance() {
        let (a1, r1) = optimal_alpha(Family::Exponential, 100.0);
        let (a2, r2) = optimal_alpha(Family::Exponential, 1_000.0);
        assert!((a1 - a2).abs() < 0.02);
        assert!((r1 - r2).abs() < 0.01);
    }
}
