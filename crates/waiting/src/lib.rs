//! # waiting-theory — competitive analysis of waiting algorithms
//!
//! Chapter 4 of the paper, as executable mathematics:
//!
//! * [`dist`] — the waiting-time distributions of §4.4.3 (exponential
//!   for producer-consumer, uniform for barriers) behind the
//!   *restricted adversary* model.
//! * [`expected`] — the expected-cost model of §4.4.2 (Equations 4.1 and
//!   4.2): `E[C_2phase/α]`, `E[C_poll]`, `E[C_signal]`, `E[C_opt]`, and
//!   the resulting competitive factors.
//! * [`optimal`] — derivation of the optimal static `Lpoll` (§4.5):
//!   `α* = ln(e-1) ≈ 0.5413` (1.58-competitive) under exponential
//!   waiting times, `α* ≈ 0.62` (1.62-competitive) under uniform ones.
//! * [`task_system`] — the on-line task systems of Chapter 2, the
//!   Borodin-Linial-Saks nearly-oblivious algorithm, and the
//!   3-competitive protocol-switching policy of §3.4.1 with its
//!   worst-case scenario (Figure 3.14).
//! * [`montecarlo`] — simulation of waiting algorithms against sampled
//!   waiting times, used to corroborate the closed forms.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod expected;
pub mod montecarlo;
pub mod optimal;
pub mod task_system;

pub use dist::WaitDist;
pub use expected::{competitive_factor, expected_opt, expected_signal, expected_two_phase};
pub use optimal::{optimal_alpha, EXP_ALPHA_STAR, EXP_RHO_STAR, UNI_ALPHA_STAR, UNI_RHO_STAR};
