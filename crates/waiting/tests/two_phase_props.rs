//! Property tests of the Chapter 4 waiting model.
//!
//! * **The 2× robustness bound** (§4.4.1): two-phase waiting with
//!   `Lpoll = B` costs at most `2 × min(poll, block)` — per wait, for
//!   *every* waiting time, and therefore in expectation for *arbitrary*
//!   waiting-time distributions (here: random mixtures of exponential
//!   and uniform components, which are dense in the distributions the
//!   restricted adversary can field).
//! * **The `Lpoll = B/2` rule of thumb** (Table 4.6): the halved polling
//!   limit is within the paper's stated factor of the optimal static
//!   choice on both §4.4.3 families — within ~1% of `e/(e-1) ≈ 1.582`
//!   for exponential waits, within ~12% of `≈ 1.62` for uniform waits —
//!   for every adversary parameter, not just the tabulated ones.

use proptest::prelude::*;
use waiting_theory::expected::{expected_opt, expected_poll, expected_two_phase};
use waiting_theory::montecarlo::{opt_cost, wait_cost, WaitAlg};
use waiting_theory::{competitive_factor, WaitDist, EXP_RHO_STAR, UNI_RHO_STAR};

/// Turn raw `(family, scale, weight)` draws into a normalized finite
/// mixture of exponential and uniform components; expectations over the
/// mixture are the weighted sums of the component expectations
/// (linearity), so random mixtures stand in for "arbitrary wait
/// distributions".
fn components(mix: &[(usize, f64, f64)]) -> Vec<(WaitDist, f64)> {
    let total: f64 = mix.iter().map(|&(_, _, w)| w).sum();
    mix.iter()
        .map(|&(family, scale, w)| {
            let d = if family == 0 {
                WaitDist::exponential_with_mean(scale)
            } else {
                WaitDist::uniform(scale)
            };
            (d, w / total)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Per-wait guarantee, arbitrary waiting time and blocking cost:
    /// `C_2phase(t) <= 2 * min(t, B) = 2 * C_opt(t)` when `Lpoll = B`.
    #[test]
    fn two_phase_at_most_twice_opt_per_wait(
        t in 0.0f64..1.0e7,
        b in 1.0f64..100_000.0,
    ) {
        let tp = wait_cost(WaitAlg::TwoPhase { alpha_milli: 1000 }, t, b, 1.0);
        let opt = opt_cost(t, b, 1.0);
        prop_assert!(
            tp <= 2.0 * opt + 1e-9,
            "t = {t}, B = {b}: two-phase {tp} > 2 * opt {opt}"
        );
    }

    /// In expectation over an arbitrary mixture distribution:
    /// `E[C_2phase] <= 2 * min(E[C_poll], B)` — two-phase never loses
    /// more than 2x to either pure strategy, whatever the adversary's
    /// distribution.
    #[test]
    fn two_phase_at_most_twice_best_pure_in_expectation(
        mix in proptest::collection::vec((0usize..2, 1.0f64..20_000.0, 0.05f64..1.0), 1..6),
        b in 50.0f64..5_000.0,
    ) {
        let comps = components(&mix);
        let mut e_tp = 0.0;
        let mut e_poll = 0.0;
        let mut e_opt = 0.0;
        for &(d, w) in &comps {
            e_tp += w * expected_two_phase(&d, 1.0, b, 1.0);
            e_poll += w * expected_poll(&d, 1.0);
            e_opt += w * expected_opt(&d, b, 1.0);
        }
        let best_pure = e_poll.min(b);
        prop_assert!(
            e_tp <= 2.0 * best_pure + 1e-6,
            "E[2phase] = {e_tp} > 2 * min(E[poll] = {e_poll}, B = {b})"
        );
        // The sharper statement it follows from: 2x the offline optimum.
        prop_assert!(
            e_tp <= 2.0 * e_opt + 1e-6,
            "E[2phase] = {e_tp} > 2 * E[opt] = {e_opt}"
        );
    }

    /// `Lpoll = B/2` under exponential waits: within 1.60 of the offline
    /// optimum for every adversary rate — at most ~1% above the optimal
    /// static choice's `e/(e-1) ~= 1.582`.
    #[test]
    fn lpoll_half_b_near_optimal_exponential(
        mean_scale in 0.001f64..1_000.0,
        b in 50.0f64..5_000.0,
    ) {
        let d = WaitDist::exponential_with_mean(mean_scale * b);
        let rho = competitive_factor(&d, 0.5, b, 1.0);
        prop_assert!(
            rho <= 1.02 * EXP_RHO_STAR,
            "exponential mean {mean_scale}B: factor {rho} > 1.02 * {EXP_RHO_STAR}"
        );
    }

    /// `Lpoll = B/2` under uniform waits: within 1.81 of the offline
    /// optimum for every adversary bound — at most ~12% above the
    /// optimal static choice's ~= 1.62.
    #[test]
    fn lpoll_half_b_near_optimal_uniform(
        max_scale in 0.001f64..1_000.0,
        b in 50.0f64..5_000.0,
    ) {
        let d = WaitDist::uniform(max_scale * b);
        let rho = competitive_factor(&d, 0.5, b, 1.0);
        prop_assert!(
            rho <= 1.12 * UNI_RHO_STAR,
            "uniform bound {max_scale}B: factor {rho} > 1.12 * {UNI_RHO_STAR}"
        );
    }
}

/// The worst case over the adversary's parameter is actually attained
/// near the analytical values (sanity that the property bounds above
/// are tight, not vacuous).
#[test]
fn lpoll_half_b_bounds_are_tight() {
    use waiting_theory::expected::{worst_case_factor, Family};
    let we = worst_case_factor(Family::Exponential, 0.5, 465.0);
    assert!(
        (1.585..=1.60).contains(&we),
        "exponential worst case for a = 0.5 drifted: {we}"
    );
    let wu = worst_case_factor(Family::Uniform, 0.5, 465.0);
    assert!(
        (1.75..=1.81).contains(&wu),
        "uniform worst case for a = 0.5 drifted: {wu}"
    );
}
