//! Criterion benchmarks of counter strategies on the host: a hardware
//! `fetch_add` versus a lock-protected counter — the native analogue of
//! the paper's centralized fetch-and-op protocols.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use criterion::{criterion_group, criterion_main, Criterion};
use reactive_native::ReactiveMutex;

fn counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch_add_4_threads");
    g.sample_size(10);
    let threads = 4;
    let iters = 20_000u64;

    g.bench_function("atomic_fetch_add", |b| {
        b.iter(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let start = Arc::new(Barrier::new(threads));
            let hs: Vec<_> = (0..threads)
                .map(|_| {
                    let counter = counter.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        start.wait();
                        for _ in 0..iters {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
        })
    });

    g.bench_function("reactive_mutex_counter", |b| {
        b.iter(|| {
            let counter = Arc::new(ReactiveMutex::new(0u64));
            let start = Arc::new(Barrier::new(threads));
            let hs: Vec<_> = (0..threads)
                .map(|_| {
                    let counter = counter.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        start.wait();
                        for _ in 0..iters {
                            *counter.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), threads as u64 * iters);
        })
    });
    g.finish();
}

criterion_group!(benches, counters);
criterion_main!(benches);
