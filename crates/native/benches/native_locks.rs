//! Criterion benchmarks of the native reactive lock against its
//! component protocols, `std::sync::Mutex`, and `parking_lot::Mutex`,
//! uncontended and under contention (ecosystem-fit validation, E20).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use criterion::{criterion_group, criterion_main, Criterion};
use reactive_native::{McsLock, ReactiveLock, TtsLock};

fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    g.sample_size(20);

    let tts = TtsLock::new();
    g.bench_function("tts", |b| {
        b.iter(|| {
            tts.lock();
            tts.unlock();
        })
    });

    let mcs = McsLock::new();
    g.bench_function("mcs", |b| {
        b.iter(|| {
            let n = reactive_native::mcs::McsNode::new();
            mcs.lock(&n);
            mcs.unlock(&n);
        })
    });

    let re = ReactiveLock::new();
    g.bench_function("reactive", |b| {
        b.iter(|| {
            let h = re.acquire();
            re.release(h);
        })
    });

    let std_m = Mutex::new(());
    g.bench_function("std_mutex", |b| {
        b.iter(|| {
            drop(std_m.lock().unwrap());
        })
    });

    let pl = parking_lot::Mutex::new(());
    g.bench_function("parking_lot", |b| {
        b.iter(|| {
            drop(pl.lock());
        })
    });
    g.finish();
}

/// Contended throughput: `threads` workers each take the lock `iters`
/// times; returns nothing, measured as one batch per iteration.
fn contended_batch<L: Send + Sync + 'static>(
    threads: usize,
    iters: u64,
    lock: Arc<L>,
    acquire_release: fn(&L, &AtomicU64),
) {
    let counter = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(threads));
    let hs: Vec<_> = (0..threads)
        .map(|_| {
            let lock = lock.clone();
            let counter = counter.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..iters {
                    acquire_release(&lock, &counter);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
}

fn contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("contended_4_threads");
    g.sample_size(10);
    let threads = 4;
    let iters = 5_000;

    g.bench_function("tts", |b| {
        b.iter(|| {
            contended_batch(threads, iters, Arc::new(TtsLock::new()), |l, cnt| {
                l.lock();
                let v = cnt.load(Ordering::Relaxed);
                cnt.store(v + 1, Ordering::Relaxed);
                l.unlock();
            })
        })
    });

    g.bench_function("mcs", |b| {
        b.iter(|| {
            contended_batch(threads, iters, Arc::new(McsLock::new()), |l, cnt| {
                let n = reactive_native::mcs::McsNode::new();
                l.lock(&n);
                let v = cnt.load(Ordering::Relaxed);
                cnt.store(v + 1, Ordering::Relaxed);
                l.unlock(&n);
            })
        })
    });

    g.bench_function("reactive", |b| {
        b.iter(|| {
            contended_batch(threads, iters, Arc::new(ReactiveLock::new()), |l, cnt| {
                let h = l.acquire();
                let v = cnt.load(Ordering::Relaxed);
                cnt.store(v + 1, Ordering::Relaxed);
                l.release(h);
            })
        })
    });

    g.bench_function("parking_lot", |b| {
        b.iter(|| {
            contended_batch(
                threads,
                iters,
                Arc::new(parking_lot::Mutex::new(())),
                |l, cnt| {
                    let _g = l.lock();
                    let v = cnt.load(Ordering::Relaxed);
                    cnt.store(v + 1, Ordering::Relaxed);
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, uncontended, contended);
criterion_main!(benches);
