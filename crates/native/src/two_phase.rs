//! Two-phase waiting on real threads (Chapter 4): spin up to `Lpoll`,
//! then park. [`Event`] is a one-shot flag a waiter can wait on with any
//! polling limit; `Lpoll = 0.54 × park cost` is the §4.5.1 default for
//! exponentially distributed waits.

use std::collections::VecDeque;
use std::time::Duration;

use crate::sync::{spin_loop, thread, AtomicBool, Instant, Mutex, Ordering};

/// A two-phase waiting policy: poll for `lpoll`, then park.
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseWait {
    /// Polling-phase budget.
    pub lpoll: Duration,
}

impl TwoPhaseWait {
    /// Explicit polling budget.
    pub fn new(lpoll: Duration) -> TwoPhaseWait {
        TwoPhaseWait { lpoll }
    }

    /// `Lpoll = α × b` where `b` is the measured signaling (park/unpark)
    /// cost.
    pub fn with_alpha(alpha: f64, b: Duration) -> TwoPhaseWait {
        TwoPhaseWait {
            lpoll: b.mul_f64(alpha.max(0.0)),
        }
    }

    /// The §4.5.1 optimum for exponential waits (`α = ln(e-1) ≈ 0.54`).
    pub fn optimal_exponential(b: Duration) -> TwoPhaseWait {
        Self::with_alpha(0.5413, b)
    }

    /// Measure this host's park/unpark round-trip cost `B` (median of
    /// `rounds` self-unpark pairs — a lower bound on the real
    /// cross-thread cost, which is what `Lpoll` should scale with).
    pub fn measure_block_cost(rounds: u32) -> Duration {
        let mut samples: Vec<Duration> = (0..rounds.max(1))
            .map(|_| {
                let t0 = Instant::now();
                thread::current().unpark();
                thread::park(); // returns immediately: token is set
                t0.elapsed()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
}

impl Default for TwoPhaseWait {
    fn default() -> Self {
        // A conservative default in the microsecond range typical of
        // park/unpark on commodity OSes.
        TwoPhaseWait {
            lpoll: Duration::from_micros(5),
        }
    }
}

/// A one-shot event: waiters poll-then-park per [`TwoPhaseWait`];
/// `set` wakes all parked waiters.
///
/// ```
/// use reactive_native::{Event, TwoPhaseWait};
/// use std::sync::Arc;
/// let ev = Arc::new(Event::new());
/// let ev2 = ev.clone();
/// let h = std::thread::spawn(move || ev2.wait(TwoPhaseWait::default()));
/// ev.set();
/// h.join().unwrap();
/// assert!(ev.is_set());
/// ```
#[derive(Debug, Default)]
pub struct Event {
    set: AtomicBool,
    parked: Mutex<VecDeque<thread::Thread>>,
}

impl Event {
    /// Create an unset event.
    pub fn new() -> Event {
        Event::default()
    }

    /// Whether the event has been set.
    pub fn is_set(&self) -> bool {
        // order: Acquire pairs with the Release in `set`, so a waiter
        // that sees the flag also sees everything before `set`.
        self.set.load(Ordering::Acquire)
    }

    /// Set the event and wake all parked waiters.
    pub fn set(&self) {
        // order: Release pairs with the Acquire in `is_set`; it must
        // also land before the registry drain below (same thread,
        // program order) so no waiter registers after the drain yet
        // misses the flag.
        self.set.store(true, Ordering::Release);
        let waiters = {
            let mut q = self.parked.lock().expect("event mutex poisoned");
            std::mem::take(&mut *q)
        };
        for t in waiters {
            t.unpark();
        }
    }

    /// Wait until set, polling for `policy.lpoll` before parking.
    pub fn wait(&self, policy: TwoPhaseWait) {
        // Phase 1: poll.
        let deadline = Instant::now() + policy.lpoll;
        while Instant::now() < deadline {
            if self.is_set() {
                return;
            }
            spin_loop();
        }
        // Phase 2: park. Register before the final check so a racing
        // `set` either sees us (and unparks) or we see `set`.
        loop {
            {
                let mut q = self.parked.lock().expect("event mutex poisoned");
                if self.is_set() {
                    return;
                }
                q.push_back(thread::current());
            }
            thread::park();
            if self.is_set() {
                return;
            }
            // Spurious wakeup: re-register.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn immediate_set_returns_in_polling_phase() {
        let ev = Event::new();
        ev.set();
        let t0 = Instant::now();
        ev.wait(TwoPhaseWait::new(Duration::from_millis(100)));
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn zero_lpoll_blocks_and_wakes() {
        let ev = Arc::new(Event::new());
        let ev2 = ev.clone();
        let h = std::thread::spawn(move || {
            ev2.wait(TwoPhaseWait::new(Duration::ZERO));
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        ev.set();
        assert!(h.join().unwrap());
    }

    #[test]
    fn many_waiters_all_wake() {
        let ev = Arc::new(Event::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let ev = ev.clone();
                std::thread::spawn(move || {
                    // Mix polling budgets so some park and some spin.
                    let lpoll = Duration::from_micros(i * 30);
                    ev.wait(TwoPhaseWait::new(lpoll));
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        ev.set();
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn measured_block_cost_positive() {
        let b = TwoPhaseWait::measure_block_cost(64);
        assert!(b > Duration::ZERO);
        let p = TwoPhaseWait::optimal_exponential(b);
        assert!(p.lpoll < b);
    }
}
