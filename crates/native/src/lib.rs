//! # reactive-native — the reactive algorithms on real hardware
//!
//! The same algorithms as `reactive-core`, implemented on
//! `std::sync::atomic` and OS threads, so the library is directly usable
//! (parking_lot-style adaptive mutexes exist; *protocol-switching* locks
//! like this one are the paper's contribution and are rarely
//! implemented):
//!
//! * [`tts::TtsLock`] — test-and-test-and-set with randomized
//!   exponential backoff.
//! * [`mcs::McsLock`] — the MCS queue lock (waiters spin on their own
//!   cache line; FIFO).
//! * [`reactive::ReactiveLock`] / [`reactive::ReactiveMutex`] — the
//!   reactive lock: TTS under low contention, MCS queue under high
//!   contention, switching at run time with the paper's
//!   never-both-free consensus discipline. Built through
//!   `ReactiveLock::builder()`, it takes any [`api::Policy`] impl and
//!   reports protocol changes to an [`api::Instrument`] sink — the same
//!   traits the simulator-side algorithms use.
//! * [`two_phase::TwoPhaseWait`] — spin up to `Lpoll`, then park the
//!   thread (Chapter 4's two-phase waiting, with `Lpoll ≈ 0.54 × park
//!   cost` as the §4.5.1 default).

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod mcs;
#[cfg(feature = "model")]
pub mod model;
pub mod reactive;
pub mod sync;
pub mod tts;
pub mod two_phase;

pub use mcs::McsLock;
pub use reactive::{ReactiveLock, ReactiveMutex};
pub use reactive_api as api;
pub use tts::TtsLock;
pub use two_phase::{Event, TwoPhaseWait};
