//! The reactive lock on host atomics (§3.3.1 / §3.7.3).
//!
//! Selects between [`TtsLock`] (cheap when uncontended) and
//! [`McsLock`] (scalable, fair) at run time. The consensus discipline
//! is the paper's: **the two sub-locks are never free at the same
//! time** — in queue mode the TTS flag is pinned busy, and in TTS mode
//! the queue is marked invalid with a sentinel tail so enqueuers bounce.
//! The mode word is only a dispatch hint.
//!
//! The lock speaks the same reactive API as the simulator-side
//! algorithms in `reactive-core`: contention monitoring produces
//! [`Observation`]s, the pluggable [`Policy`] (shared trait from
//! `reactive-api`) decides, and every committed protocol change is
//! reported to the configured [`Instrument`] sink as a [`SwitchEvent`](reactive_api::SwitchEvent)
//! stamped in nanoseconds since lock creation.
//!
//! ```
//! use std::sync::Arc;
//! use reactive_native::api::{Hysteresis, SwitchLog};
//! use reactive_native::ReactiveLock;
//!
//! let log = Arc::new(SwitchLog::new());
//! let lock = ReactiveLock::builder()
//!     .policy(Hysteresis::new(4, 4))
//!     .instrument(log.clone())
//!     .build();
//! let held = lock.acquire();
//! lock.release(held);
//! assert_eq!(log.count(), 0);
//! ```

use std::sync::Arc;

use crate::sync::{
    spin_loop, thread, AtomicU64, AtomicU8, Instant, Ordering, BACKOFF_INITIAL, BACKOFF_MAX,
    MODE_CHECK_MASK,
};

use reactive_api::{
    drive, Instrument, Observation, Policy, ProtocolId, SharedWorld, SwitchKernel, SwitchStyle,
    SwitchableObject,
};

use crate::mcs::{McsLock, McsNode};
use crate::tts::TtsLock;

/// Slot of the TTS protocol.
pub const PROTO_TTS: ProtocolId = ProtocolId(0);
/// Slot of the MCS queue protocol.
pub const PROTO_QUEUE: ProtocolId = ProtocolId(1);

const MODE_TTS: u8 = PROTO_TTS.0;
const MODE_QUEUE: u8 = PROTO_QUEUE.0;

/// Failed test&set attempts in one acquisition that signal high
/// contention.
const TTS_RETRY_LIMIT: u64 = 8;
/// Consecutive empty-queue acquisitions that signal low contention.
const EMPTY_QUEUE_LIMIT: u64 = 16;
/// Residual estimate (ns) for one contended TTS acquisition.
const TTS_RESIDUAL: f64 = 150.0;
/// Residual estimate (ns) for one empty-queue acquisition.
const QUEUE_RESIDUAL: f64 = 15.0;

/// What `release` must do (the paper's release-mode token).
#[derive(Debug)]
pub struct Held {
    kind: HeldKind,
}

#[derive(Debug)]
enum HeldKind {
    Tts { switch: bool },
    Queue { node: Box<McsNode>, switch: bool },
}

/// Builder for [`ReactiveLock`]: switching policy and instrumentation
/// are optional with the paper's defaults ([`Always`](reactive_api::Always), no sink).
#[derive(Default)]
pub struct ReactiveLockBuilder {
    policy: Option<Box<dyn Policy + Send>>,
    sink: Option<Arc<dyn Instrument + Send + Sync>>,
    start_in_queue: bool,
}

impl ReactiveLockBuilder {
    /// Use the given switching policy (default: [`Always`](reactive_api::Always)).
    pub fn policy(mut self, p: impl Policy + Send + 'static) -> Self {
        self.policy = Some(Box::new(p));
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy + Send>) -> Self {
        self.policy = Some(p);
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Arc<dyn Instrument + Send + Sync>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Start in the given protocol ([`PROTO_TTS`] by default). §3.5
    /// shows the initial choice matters for short-running applications:
    /// start scalable when contention is expected from the outset.
    ///
    /// # Panics
    /// If `p` is not one of this lock's two protocol slots.
    pub fn initial_protocol(mut self, p: ProtocolId) -> Self {
        assert!(
            p == PROTO_TTS || p == PROTO_QUEUE,
            "reactive lock has protocols {PROTO_TTS} and {PROTO_QUEUE}, not {p}"
        );
        self.start_in_queue = p == PROTO_QUEUE;
        self
    }

    /// Build the lock, unlocked, in the configured initial protocol
    /// (the other sub-lock starts pinned busy — never both free).
    pub fn build(self) -> ReactiveLock {
        // On real hardware both exits use the kernel's CommitFirst
        // discipline: the commit bookkeeping runs while both sub-locks
        // still deny entry, so no racing thread can commit an opposite
        // change ahead of this one and the sink's events stay in true
        // commit order.
        let mut kernel = SwitchKernel::<SharedWorld>::builder()
            .register(PROTO_TTS, "tts", SwitchStyle::CommitFirst)
            .register(PROTO_QUEUE, "mcs-queue", SwitchStyle::CommitFirst)
            .initial(if self.start_in_queue {
                PROTO_QUEUE
            } else {
                PROTO_TTS
            });
        if let Some(p) = self.policy {
            kernel = kernel.policy(p);
        }
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        let lock = ReactiveLock {
            mode: AtomicU8::new(if self.start_in_queue {
                MODE_QUEUE
            } else {
                MODE_TTS
            }),
            tts: TtsLock::new(),
            queue: McsLock::new(),
            queue_valid: AtomicU8::new(u8::from(self.start_in_queue)),
            empty_streak: AtomicU64::new(0),
            kernel: kernel.build(),
            epoch: Instant::now(),
        };
        if self.start_in_queue {
            // Queue mode: the TTS flag is pinned busy from birth.
            let pinned = lock.tts.try_lock();
            debug_assert!(pinned, "fresh TTS sub-lock must be free to pin");
        }
        lock
    }
}

/// The reactive lock. Usable directly (acquire/release) or through
/// [`ReactiveMutex`] for RAII data protection.
pub struct ReactiveLock {
    mode: AtomicU8,
    tts: TtsLock,
    queue: McsLock,
    /// Queue validity: enqueuers check it after enqueueing; the protocol
    /// changer flips it while holding the lock, so a stale enqueuer
    /// receives an eventual grant or observes invalidity and retries.
    queue_valid: AtomicU8,
    empty_streak: AtomicU64,
    /// The switching kernel: policy consultation, validity bookkeeping,
    /// switch counting, and event emission. Consulted only by the
    /// current lock holder, so its internal mutex is never contended.
    kernel: SwitchKernel<SharedWorld>,
    epoch: Instant,
}

impl std::fmt::Debug for ReactiveLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveLock")
            // order: Relaxed — diagnostic snapshot.
            .field("mode", &self.mode.load(Ordering::Relaxed))
            .field("switches", &self.kernel.switches())
            .finish()
    }
}

/// The native lock's [`SwitchableObject`] hooks: plain atomic stores on
/// `queue_valid` and the mode hint. The TTS flag is never written by a
/// transition — invalid means pinned busy; valid means freed by the
/// switcher's own release after the transaction.
struct NativeLockSwitch<'a> {
    lock: &'a ReactiveLock,
}

impl SwitchableObject for NativeLockSwitch<'_> {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == PROTO_QUEUE {
            // order: Release pairs with the Acquire validity check in
            // `acquire`, so a winner of the freshly valid queue also
            // sees the kernel bookkeeping committed before this store.
            self.lock.queue_valid.store(1, Ordering::Release);
        }
    }

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == PROTO_QUEUE {
            // New arrivals bounce on `queue_valid`; waiters already
            // queued still receive FIFO grants and forward them down
            // the chain until the switcher's own unlock drains it.
            // order: Release orders this store before our subsequent
            // queue unlock, so a granted waiter's Acquire check sees
            // invalidity (the §3.2.5 retry discipline relies on it).
            self.lock.queue_valid.store(0, Ordering::Release);
        }
        Some(0)
    }

    async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
        // order: Release — the hint must not be reordered before the
        // validity stores above; dispatchers pair with Acquire loads.
        self.lock.mode.store(to.0, Ordering::Release);
    }

    fn now(&self, _ctx: &()) -> u64 {
        self.lock.epoch.elapsed().as_nanos() as u64
    }

    fn reset_monitor(&self, _to: ProtocolId) {
        // order: Relaxed — monitoring heuristic; no data guarded.
        self.lock.empty_streak.store(0, Ordering::Relaxed);
    }
}

impl Default for ReactiveLock {
    fn default() -> Self {
        Self::new()
    }
}

impl ReactiveLock {
    /// Start building a reactive lock.
    pub fn builder() -> ReactiveLockBuilder {
        ReactiveLockBuilder::default()
    }

    /// Create in TTS mode (unlocked), with the default
    /// switch-immediately policy and no instrumentation.
    pub fn new() -> ReactiveLock {
        ReactiveLock::builder().build()
    }

    /// Number of protocol changes performed.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// The protocol the dispatch hint currently points at; diagnostics
    /// only (it may be mid-change).
    pub fn current_protocol(&self) -> ProtocolId {
        // order: Relaxed — diagnostic snapshot (it may be mid-change).
        ProtocolId(self.mode.load(Ordering::Relaxed))
    }

    /// Consult the kernel's policy with one acquisition's observation;
    /// returns whether to switch to the (only) other protocol. Runs
    /// while we hold the lock, so the kernel's mutex is uncontended —
    /// and the approving residual is carried inside the kernel to the
    /// commit point at release.
    fn consult(&self, obs: &Observation) -> bool {
        self.kernel.observe(obs).is_some()
    }

    /// Acquire; keep the returned [`Held`] and pass it to
    /// [`ReactiveLock::release`].
    pub fn acquire(&self) -> Held {
        loop {
            // Optimistic fast path: in queue mode the TTS flag is pinned
            // busy, so success implies the TTS protocol is current.
            if self.tts.try_lock() {
                // order: Relaxed — monitoring heuristic; no data guarded.
                self.empty_streak.store(0, Ordering::Relaxed);
                let switch = self.consult(&Observation::optimal(PROTO_TTS));
                return Held {
                    kind: HeldKind::Tts { switch },
                };
            }
            // order: Acquire pairs with `publish_mode`'s Release, so a
            // dispatcher routed to the queue also sees `queue_valid`.
            if self.mode.load(Ordering::Acquire) == MODE_TTS {
                // TTS acquisition that re-checks the mode hint while
                // waiting: after a TTS -> queue change the flag is
                // pinned busy *forever*, so a plain spin would livelock.
                if let Some(failures) = self.acquire_tts_watching_mode() {
                    // order: Relaxed — monitoring heuristic.
                    self.empty_streak.store(0, Ordering::Relaxed);
                    let obs = if failures > TTS_RETRY_LIMIT {
                        let residual =
                            TTS_RESIDUAL * (failures as f64 / TTS_RETRY_LIMIT as f64).min(4.0);
                        Observation::suboptimal(PROTO_TTS, PROTO_QUEUE, residual)
                    } else {
                        Observation::optimal(PROTO_TTS)
                    };
                    let switch = self.consult(&obs);
                    return Held {
                        kind: HeldKind::Tts { switch },
                    };
                }
                continue; // mode changed under us: re-dispatch
            }
            // Queue mode.
            let node = Box::new(McsNode::new());
            let empty = self.queue.lock(&node);
            // order: Acquire — pairs with the invalidating Release
            // store; through the queue grant's release/acquire chain a
            // granted waiter cannot miss a pre-unlock invalidation.
            if self.queue_valid.load(Ordering::Acquire) == 0 {
                // We won an *invalid* queue (raced a change back to TTS
                // mode). Release it and retry via dispatch.
                self.queue.unlock(&node);
                continue;
            }
            let obs = if empty {
                // order: Relaxed — monitoring heuristic; we hold the
                // lock, and occasional lost updates only delay a switch.
                let s = self.empty_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if s > EMPTY_QUEUE_LIMIT {
                    Observation::suboptimal(PROTO_QUEUE, PROTO_TTS, QUEUE_RESIDUAL)
                } else {
                    Observation::optimal(PROTO_QUEUE)
                }
            } else {
                // order: Relaxed — monitoring heuristic.
                self.empty_streak.store(0, Ordering::Relaxed);
                Observation::optimal(PROTO_QUEUE)
            };
            let switch = self.consult(&obs);
            return Held {
                kind: HeldKind::Queue { node, switch },
            };
        }
    }

    /// Acquire the TTS sub-lock with exponential backoff, bailing out
    /// with `None` as soon as the mode hint leaves TTS (the flag may
    /// then be pinned busy forever). Returns the failed-attempt count.
    fn acquire_tts_watching_mode(&self) -> Option<u64> {
        let mut failures = 0u64;
        let mut delay = BACKOFF_INITIAL;
        loop {
            if self.tts.try_lock() {
                return Some(failures);
            }
            failures += 1;
            for _ in 0..delay {
                spin_loop();
            }
            // Under the model feature BACKOFF_* are both 0, which makes
            // this `min` trivially true — harmless, keep the real shape.
            #[allow(clippy::unnecessary_min_or_max)]
            {
                delay = (delay * 2).min(BACKOFF_MAX);
            }
            let mut polls = 0u32;
            while self.tts.is_locked() {
                spin_loop();
                polls += 1;
                if polls.is_multiple_of(MODE_CHECK_MASK) {
                    // order: Acquire — see the dispatch comment in
                    // `acquire`; a stale hint here only costs a retry.
                    if self.mode.load(Ordering::Acquire) != MODE_TTS {
                        return None;
                    }
                    thread::yield_now();
                }
            }
            // order: Acquire — same as above.
            if self.mode.load(Ordering::Acquire) != MODE_TTS {
                return None;
            }
        }
    }

    /// Release, performing any protocol change the acquisition decided.
    pub fn release(&self, held: Held) {
        match held.kind {
            HeldKind::Tts { switch: false } => self.tts.unlock(),
            HeldKind::Tts { switch: true } => {
                // TTS -> queue, driven by the kernel's CommitFirst
                // sequence: commit, then validate the queue and publish
                // the hint, leaving TTS pinned busy. Until queue_valid
                // flips, both sub-locks deny entry (TTS pinned, queue
                // bounces), so no racer can consult the policy or
                // commit an opposite change ahead of us — keeping the
                // sink's events in true commit order. After the stores,
                // a racer that dispatches on the new mode and wins the
                // queue first is harmless: our node queues behind it
                // and we pass the grant on.
                drive(self.kernel.switch(
                    &NativeLockSwitch { lock: self },
                    &(),
                    PROTO_TTS,
                    PROTO_QUEUE,
                ));
                let node = Box::new(McsNode::new());
                let _empty = self.queue.lock(&node);
                self.queue.unlock(&node);
            }
            HeldKind::Queue {
                node,
                switch: false,
            } => self.queue.unlock(&node),
            HeldKind::Queue { node, switch: true } => {
                // Queue -> TTS: the kernel commits (we still hold both
                // consensus objects), flips the hint, and invalidates
                // the queue. Waiters already queued still get FIFO
                // grants; new arrivals bounce on `queue_valid`. Freeing
                // the TTS flag is our release through the new protocol.
                drive(self.kernel.switch(
                    &NativeLockSwitch { lock: self },
                    &(),
                    PROTO_QUEUE,
                    PROTO_TTS,
                ));
                self.queue.unlock(&node);
                self.tts.unlock();
            }
        }
    }
}

// Safety argument for the queue -> TTS change: entering the critical
// section requires either winning the TTS flag or (queue grant AND
// queue_valid == 1). The changer stores queue_valid = 0 *before* its
// queue unlock and frees the TTS flag after, so any waiter granted the
// (now invalid) queue observes queue_valid == 0 via the grant's
// release/acquire edge, forwards the grant down the chain, and retries
// through dispatch — no invalid grant ever enters the critical section,
// exactly the paper's "invalid protocol executions return retry"
// discipline (§3.2.5).

/// RAII mutex over a [`ReactiveLock`].
///
/// ```
/// use reactive_native::ReactiveMutex;
/// let m = ReactiveMutex::new(0u64);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ReactiveMutex<T> {
    lock: ReactiveLock,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the lock provides mutual exclusion over `data`.
unsafe impl<T: Send> Send for ReactiveMutex<T> {}
// SAFETY: shared access only hands out `&T`/`&mut T` under the lock.
unsafe impl<T: Send> Sync for ReactiveMutex<T> {}

impl<T> ReactiveMutex<T> {
    /// Wrap `value` (default lock: [`Always`](reactive_api::Always) policy, no sink).
    pub fn new(value: T) -> ReactiveMutex<T> {
        ReactiveMutex::with_lock(ReactiveLock::new(), value)
    }

    /// Wrap `value` behind an explicitly built lock — the hook for
    /// custom policies and instrumentation:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use reactive_native::api::{Competitive3, SwitchLog};
    /// use reactive_native::{ReactiveLock, ReactiveMutex};
    ///
    /// let log = Arc::new(SwitchLog::new());
    /// let m = ReactiveMutex::with_lock(
    ///     ReactiveLock::builder()
    ///         .policy(Competitive3::new(8_800.0))
    ///         .instrument(log.clone())
    ///         .build(),
    ///     0u64,
    /// );
    /// *m.lock() += 1;
    /// ```
    pub fn with_lock(lock: ReactiveLock, value: T) -> ReactiveMutex<T> {
        ReactiveMutex {
            lock,
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquire; the guard releases on drop.
    pub fn lock(&self) -> ReactiveGuard<'_, T> {
        let held = self.lock.acquire();
        ReactiveGuard {
            mutex: self,
            held: Some(held),
        }
    }

    /// Number of protocol switches the underlying lock performed.
    pub fn switches(&self) -> u64 {
        self.lock.switches()
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Guard for [`ReactiveMutex`]; derefs to the protected data.
#[derive(Debug)]
pub struct ReactiveGuard<'a, T> {
    mutex: &'a ReactiveMutex<T>,
    held: Option<Held>,
}

impl<T> std::ops::Deref for ReactiveGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: we hold the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for ReactiveGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we hold the lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for ReactiveGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(held) = self.held.take() {
            self.mutex.lock.release(held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactive_api::SwitchLog;
    use std::sync::Arc;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReactiveMutex<u64>>();
        assert_send_sync::<ReactiveLock>();
    }

    #[test]
    fn uncontended_stays_tts() {
        let l = ReactiveLock::new();
        for _ in 0..100 {
            let h = l.acquire();
            l.release(h);
        }
        assert_eq!(l.switches(), 0);
        assert_eq!(l.current_protocol(), PROTO_TTS);
    }

    #[test]
    fn starts_in_queue_mode_when_asked() {
        let l = ReactiveLock::builder()
            .initial_protocol(PROTO_QUEUE)
            .build();
        assert_eq!(l.current_protocol(), PROTO_QUEUE);
        // Usable from birth, and the default Always policy pulls it
        // down to TTS once the empty-queue streak registers.
        for _ in 0..100 {
            let h = l.acquire();
            l.release(h);
        }
        assert_eq!(l.current_protocol(), PROTO_TTS);
        assert_eq!(l.switches(), 1);
    }

    #[test]
    fn mutex_guard_protects_data() {
        let m = Arc::new(ReactiveMutex::new(0u64));
        let threads = 8;
        let iters = 6_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
    }

    #[test]
    fn contention_can_switch_and_stays_correct() {
        let m = Arc::new(ReactiveMutex::new(0u64));
        let threads = 16;
        let iters = 8_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
        // Under this much contention the lock normally switches at least
        // once; we assert only correctness plus the counter being sane.
        assert!(m.switches() < 1_000_000);
    }

    #[test]
    fn phase_change_round_trip() {
        // Drive contention, then single-threaded use, and verify the
        // counter keeps counting across any switches.
        let m = Arc::new(ReactiveMutex::new(0u64));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..4_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for _ in 0..15_000 {
            *m.lock() += 1;
        }
        assert_eq!(*m.lock(), 8 * 4_000 + 15_000);
    }

    #[test]
    fn sink_sees_every_switch() {
        let log = Arc::new(SwitchLog::new());
        let m = Arc::new(ReactiveMutex::with_lock(
            ReactiveLock::builder().instrument(log.clone()).build(),
            0u64,
        ));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..4_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(log.count() as u64, m.switches());
        for ev in log.events() {
            assert_ne!(ev.from, ev.to);
        }
    }

    #[test]
    fn into_inner() {
        let m = ReactiveMutex::new(7);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 8);
    }
}
